// The simulated network: topology + links + switches (forwarding programs
// and deployed Hydra checkers) + hosts + the event queue.
//
// The per-hop pipeline mirrors the paper's linking rules (§4.2):
//   1. first hop (host-facing ingress on an edge switch): run each
//      checker's init block and inject its telemetry frame;
//   2. the forwarding program computes the egress port (and may rewrite
//      the packet — GTP encap/decap, source-route pop);
//   3. every hop (egress): run the telemetry block;
//   4. last hop (host-facing egress, or a forwarding drop, which ends the
//      packet's journey): run the checker block, honour reject, emit
//      reports, and strip telemetry before the packet reaches the host.
//
// ---- Execution engines ----------------------------------------------------
// Pipeline execution is pulled out of the event loop and split into a
// side-effect-confined COMPUTE step and a globally-ordered COMMIT step so
// an execution engine (net/engine.hpp) can run the compute step for
// different switches on different worker threads:
//
//   * compute_hop() runs init/forwarding/telemetry/check for one packet at
//     one switch. It may touch ONLY (a) the packet, (b) that switch's
//     per-switch checker state (tables/registers) and the forwarding
//     program's switch-confined state, and (c) the ExecContext it is
//     handed. Everything else it produces — reports, counter bumps, the
//     forwarding decision, trace records — is returned in a HopResult.
//   * commit_hop() applies a HopResult's global effects (report emission +
//     callbacks, simulation counters, trace appends, transmission onto
//     links, new event scheduling). Engines call it single-threaded in
//     canonical (time, seq) order, so every global data structure evolves
//     exactly as under serial execution.
//
// OWNERSHIP RULE (per-worker execution contexts): all per-packet scratch —
// the interpreter instance (whose table-key buffer is reused across
// lookups), the value-store scratch, the ExecOutcome scratch, the hot-path
// observability handles, and the RNG stream — lives in an ExecContext, one
// per engine worker, NEVER in the shared Deployment. A deployment-level
// scratch buffer (as PR 1 had) is a latent shared-state hazard the moment
// two switches process packets concurrently. A switch is statically
// sharded to one context (shard_of), so per-switch state needs no locks.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "compiler/compile.hpp"
#include "net/event.hpp"
#include "net/faults.hpp"
#include "net/host.hpp"
#include "net/link.hpp"
#include "net/switch_node.hpp"
#include "net/topology.hpp"
#include "obs/exporter.hpp"
#include "obs/forensics.hpp"
#include "obs/health.hpp"
#include "obs/httpd.hpp"
#include "obs/metrics.hpp"
#include "obs/topk.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "p4rt/interp.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"

namespace hydra::net {

class ExecutionEngine;

enum class EngineKind { kSerial, kParallel };

struct ReportRecord {
  int deployment = -1;
  std::string checker;
  int switch_id = -1;
  double time = 0.0;
  std::vector<BitVec> values;
  // Identity of the packet that triggered the report (inner flow when
  // tunneled) and how many switches it had traversed, so a report is
  // actionable without attaching a debugger to the simulation.
  p4rt::FlowId flow;
  int hop_count = 0;
};

// Everything one hop's compute step produced that must be applied to
// shared state; engines hand it back to Network::commit_hop in canonical
// order.
struct HopResult {
  ForwardingProgram::Decision decision;
  bool last_hop = false;
  bool fwd_drop = false;
  bool rejected = false;
  // Bit d set for each deployment whose checker (or fail-closed telemetry
  // decode) rejected this hop; feeds per-property top-K attribution on the
  // commit path. deploy() caps slots at kMaxDeployments (64), so every
  // deployment id fits.
  std::uint64_t rejected_deps = 0;
  // Generations whose telemetry frames were rejected fail-closed this hop
  // because their deployment slot was retired or relinked (reason
  // "tele_stale_generation"). Attributed per GENERATION on the commit
  // path — never to the slot's current occupant, which may be a different
  // property after reuse. Capacity reused across hops (cleared, not
  // reallocated).
  std::vector<std::uint32_t> stale_generations;
  bool traced = false;
  std::vector<ReportRecord> reports;
  obs::TraceHop hop;  // filled only when traced

  // Control-plane work (ControlOp): the hop carried no packet; commit only
  // bumps fault stats.
  bool control = false;
  bool restarted = false;
  bool rule_pushed = false;

  // Fault-handling effects produced in compute and folded into the
  // injector's stats at commit (compute must not touch shared counters).
  // `reject_reason` is a static string ("tele_bad_tag", ...) set when a
  // damaged telemetry frame was rejected fail-closed this hop.
  const char* reject_reason = nullptr;
  std::uint8_t decode_rejects = 0;
  std::uint8_t decode_recovered = 0;
  std::uint8_t cold_suppressed = 0;
};

// Per-worker execution context (see OWNERSHIP RULE above). The serial
// engine has exactly one; the parallel engine one per worker, with switch
// id statically mapped to a context by Network::shard_of.
struct ExecContext {
  struct PerDeployment {
    std::unique_ptr<p4rt::Interp> interp;
    // Per-packet value-store scratch reused across hops so the hot path
    // does not allocate.
    std::vector<BitVec> vals;
    p4rt::ExecOutcome out;
    // Hot-path counters, attached to `sink` while observability is on.
    obs::Counter init_runs;
    obs::Counter tele_runs;
    obs::Counter check_runs;
    obs::Counter rejects;
    obs::Counter reports;
    // Fault-path counters: fail-closed telemetry decode verdicts and
    // cold-restart verdict suppression.
    obs::Counter decode_rejects;
    obs::Counter decode_recovered;
    obs::Counter cold_suppr;
    // Provenance scratch for the forensics flight recorder: armed on the
    // interp only while forensics is on; buffers reuse capacity across
    // packets, same discipline as `vals`.
    p4rt::ExecProvenance prov;
  };
  std::vector<PerDeployment> deps;  // indexed by deployment id
  // Where this context's hot-path counters land: the main registry for the
  // serial engine (and parallel shard 0), a shard-local shadow registry for
  // parallel workers — merged into the main registry at drain barriers so
  // snapshots are identical across engines and worker counts. Null while
  // observability is off.
  obs::Registry* sink = nullptr;
  std::unique_ptr<obs::Registry> shadow;
  // Per-worker deterministic RNG stream. Hot-path randomness must be keyed
  // on packet/switch data (not drawn from a global stream) to keep results
  // independent of the engine's interleaving.
  Rng rng{0};
  HopResult scratch;  // reused by serial (compute-then-commit) execution
};

class Network {
 public:
  explicit Network(Topology topo);
  ~Network();

  EventQueue& events() { return events_; }
  const Topology& topo() const { return topo_; }
  Host& host(int node_id);
  Link& link(int index) { return links_[static_cast<std::size_t>(index)]; }
  std::size_t link_count() const { return links_.size(); }

  // ---- execution engine -------------------------------------------------
  // Selects how the event queue is drained. kSerial (the default) executes
  // every event inline on the calling thread, bit-identical to the
  // pre-engine simulator. kParallel runs a fixed pool of `workers` threads
  // that execute same-epoch switch work concurrently, sharded by switch
  // id; reports, metrics snapshots, and final switch state are identical
  // to the serial engine for any worker count. `workers` <= 0 picks a
  // default. Must be called while the event queue is idle.
  void set_engine(EngineKind kind, int workers = 0);
  EngineKind engine_kind() const { return engine_kind_; }
  int engine_workers() const { return engine_workers_; }

  // ---- forwarding -------------------------------------------------------
  void set_program(int switch_id, std::shared_ptr<ForwardingProgram> prog);
  ForwardingProgram* program(int switch_id);

  // ---- Hydra deployment (control-plane API) -----------------------------
  // Deployment slots are bounded (rejected_deps is a 64-bit mask); deploy
  // throws std::runtime_error when all slots are live. Retired slots are
  // REUSED — the new property gets a fresh generation tag, so straggler
  // frames of the old occupant reject fail-closed instead of being
  // misattributed.
  static constexpr int kMaxDeployments = 64;
  int deploy(std::shared_ptr<const compiler::CompiledChecker> checker);
  int deployment_count() const { return static_cast<int>(deployments_.size()); }
  const compiler::CompiledChecker& checker(int deployment) const;

  // ---- rolling deploy / undeploy ----------------------------------------
  // The staged-swap path: the checker is compiled and linked off to the
  // side (slot staged with a fresh generation, init stamping OFF), then
  // one kSwap ControlOp per switch — sharded and (time, seq)-ordered like
  // switch restarts — flips that switch to stamping the new frames. The
  // swap is atomic per switch and deterministic across engines. Call on
  // the main thread between drains (the event queue may hold traffic, but
  // the engine must not be mid-drain).
  int deploy_rolling(std::shared_ptr<const compiler::CompiledChecker> checker);
  // Sweeps per-switch disable swaps through the control channel. Frames
  // already in flight keep executing on switches that have not swapped
  // yet; once a switch swaps (and after the slot fully retires), its
  // frames are rejected fail-closed with reason "tele_stale_generation"
  // and counted per generation — never crashed on, never misattributed.
  void undeploy_rolling(int deployment);
  // Immediate undeploy; must be called while the event queue is idle (no
  // in-flight packets). The slot retires at once and becomes reusable.
  void undeploy(int deployment);
  // True while any rolling swap sweep has per-switch flips outstanding.
  bool swap_in_progress() const;
  // False once `deployment` has been undeployed (the slot may since have
  // been reused for a different property). Out-of-range ids throw.
  bool deployment_live(int deployment) const;
  // Generation tag of the slot's current occupant (monotone across the
  // whole network; never reused).
  std::uint32_t deployment_generation(int deployment) const;

  // Table for a control dict/set variable on one switch.
  p4rt::Table& checker_table(int deployment, int switch_id,
                             const std::string& var);
  // Config value(s) for a non-dict control variable on one switch.
  void set_config(int deployment, int switch_id, const std::string& var,
                  std::vector<BitVec> values);
  void set_config_all(int deployment, const std::string& var,
                      std::vector<BitVec> values);
  // Installs the same exact-match dict entry on every switch.
  void dict_insert_all(int deployment, const std::string& var,
                       const std::vector<BitVec>& key,
                       std::vector<BitVec> value);
  p4rt::RegisterArray& checker_register(int deployment, int switch_id,
                                        const std::string& var);

  // ---- fault injection (chaos harness) ----------------------------------
  // Arms the deterministic fault injector: the plan's schedule times are
  // RELATIVE to the arm time, its per-transmit dice are rolled on the
  // commit path only, and a fixed (plan, seed) pair yields bit-identical
  // outcomes under both engines at any worker count. Must be called while
  // the event queue is idle (outages and restarts are scheduled here).
  // With faults armed, damaged telemetry NEVER throws: a frame that fails
  // to re-parse becomes a counted, forensics-annotated checker reject.
  void arm_faults(const FaultPlan& plan, std::uint64_t seed);
  // Drops the injector (pending flap/restart events become no-ops). Must
  // be called while the event queue is idle.
  void disarm_faults();
  bool faults_armed() const { return faults_ != nullptr; }
  // Injector counters; a static all-zero snapshot while disarmed.
  const FaultStats& fault_stats() const;

  // Installs the same dict entry on every switch, but through the
  // control-plane channel: with faults armed, each switch's install lands
  // after the plan's push delay (+jitter), ordered against that switch's
  // packet hops. Falls back to dict_insert_all when disarmed.
  void dict_insert_all_delayed(int deployment, const std::string& var,
                               const std::vector<BitVec>& key,
                               const std::vector<BitVec>& value);

  // Reset semantics (each reset clears exactly one concern):
  //   * clear_reports()            — drops stored ReportRecords. Subscribed
  //     callbacks and all switch state (tables, registers) are untouched.
  //   * clear_report_subscribers() — drops the callbacks only.
  //   * reset_observability()      — zeroes every metric value, drops
  //     recorded packet traces, empties the forensics rings and stored
  //     ViolationReports, and drops profiler spans; registrations, the
  //     sampler, and switch state survive. No-op while observability is
  //     off.
  const std::vector<ReportRecord>& reports() const { return reports_; }
  void clear_reports() { reports_.clear(); }
  void clear_report_subscribers() { report_callbacks_.clear(); }

  // Push-based report delivery: callbacks fire at the simulation time the
  // report is raised (the switch-to-controller digest channel). Callbacks
  // may install table entries — that's the closed control loop the paper's
  // stateful firewall uses. Because such a callback may mutate state that
  // same-epoch switch work reads, the parallel engine degrades to serial
  // per-event execution while any callback is subscribed (determinism
  // over speed; the serial engine is unaffected).
  using ReportCallback = std::function<void(const ReportRecord&)>;
  void subscribe_reports(ReportCallback callback);
  bool has_report_callbacks() const { return !report_callbacks_.empty(); }

  // Tick-driven control loops (e.g. the Aether session-churn generator)
  // mutate table state synchronously from TickTarget::tick — the same
  // hazard as a report callback: same-epoch switch work may have computed
  // against pre-mutation tables. Registering here makes the parallel
  // engine degrade to serial per-event execution, preserving the
  // byte-identical differential at any worker count.
  void set_control_loop_active(bool on) { control_loop_active_ = on; }
  bool has_control_loop() const { return control_loop_active_; }

  // ---- traffic ----------------------------------------------------------
  // Sends from a host onto its access link at the current time. The
  // by-value overload moves `pkt` into a pooled slot (generic/test path);
  // hot-path generators use alloc_packet + the in-place builders +
  // send_pooled and never construct a Packet temporary.
  void send_from_host(int host_id, p4rt::Packet pkt);
  void send_pooled(int host_id, PacketHandle h);

  // ---- pooled in-flight storage -----------------------------------------
  // Packets and control ops live in slab arenas owned by the network;
  // events carry 32-bit handles, and slot buffers (tele frames, header
  // optionals) survive recycling so the steady-state hot path never
  // allocates (audited by util::arena_allocations()). OWNERSHIP: whoever
  // holds the handle frees it — alloc/free happen only on the main thread
  // (inject, commit, serial execution); parallel workers only READ slots
  // through these stable references during compute, which never overlaps a
  // main-thread alloc (see DESIGN.md "Arena storage").
  PacketHandle alloc_packet() {
    const PacketHandle h = packet_pool_.alloc();
    packet_pool_.get(h).reuse();
    return h;
  }
  p4rt::Packet& packet(PacketHandle h) { return packet_pool_.get(h); }
  const p4rt::Packet& packet(PacketHandle h) const {
    return packet_pool_.get(h);
  }
  void free_packet(PacketHandle h) { packet_pool_.free(h); }
  ControlOp& control_op(ControlHandle h) { return control_pool_.get(h); }
  std::size_t packets_in_flight() const { return packet_pool_.live(); }

  struct Counters {
    std::uint64_t injected = 0;
    std::uint64_t delivered = 0;
    std::uint64_t rejected = 0;      // dropped by a Hydra checker
    std::uint64_t fwd_dropped = 0;   // dropped by the forwarding program
    std::uint64_t queue_dropped = 0; // tail-dropped at a full buffer
    std::uint64_t fault_dropped = 0; // dropped by the fault injector
  };
  const Counters& counters() const { return counters_; }

  // ---- latency model ----------------------------------------------------
  // Switch traversal time: base + per-stage cost; stages come from the
  // baseline profile linked with all deployed checkers.
  void set_latency_model(double base_s, double per_stage_s) {
    base_proc_s_ = base_s;
    per_stage_s_ = per_stage_s;
  }
  void set_baseline_profile(compiler::BaselineProfile profile) {
    baseline_ = std::move(profile);
  }
  double switch_latency() const;
  int pipeline_stages() const;  // baseline linked with all deployments

  // When enabled, every telemetry frame is round-tripped through the
  // byte-exact wire codec at every hop (serialize -> parse -> compare),
  // proving that the compiled layout carries the checker state losslessly.
  // Throws std::logic_error on any mismatch. Costs ~2x on telemetry
  // processing; intended for tests and validation runs.
  void set_wire_validation(bool enabled) { wire_validation_ = enabled; }

  // ---- observability ----------------------------------------------------
  // Off by default, and off means free: instrumented components hold
  // detached obs handles, so the only per-packet cost is a handful of
  // predictable null-check branches — on both engines. Enabling wires
  // counters through every layer — per-table lookup hits/misses,
  // interpreter instruction counts, per-switch forwarded/dropped/rejected,
  // per-checker block-run and verdict counts — and arms the packet trace
  // sampler. Under the parallel engine, hot-path counters land in
  // shard-local registries and are merged at drain barriers. Disabling
  // detaches every handle again before the registry is destroyed.
  void set_observability(bool enabled);
  bool observability_enabled() const { return obs_ != nullptr; }

  // Both throw std::logic_error while observability is off.
  obs::Registry& metrics();
  obs::TraceSink& trace_sink();

  // Pull-model metrics (per-link bytes/packets/drops/utilization, table
  // entry counts, simulation totals) are gauges refreshed by
  // collect_metrics(); hot-path counters are always current.
  void collect_metrics();
  std::string metrics_json();  // collect_metrics() + registry export

  // Packets for which `sampler` returns true at injection are traced hop
  // by hop until the trace sink's capacity is reached. Implicitly enables
  // observability.
  using TraceSampler = std::function<bool(const p4rt::Packet&)>;
  void set_trace_sampler(TraceSampler sampler);
  // Convenience sampler: trace the next `n` injected packets.
  void trace_next(std::size_t n);

  void reset_observability();

  // ---- forensics (violation flight recorder) ----------------------------
  // Arms the always-on flight recorder: every per-hop checker execution
  // writes one fixed-size record into that switch's ring (`ring_capacity`
  // slots, allocated up front; recording never allocates). When a checker
  // rejects or reports, commit_hop assembles the packet's retained hops
  // into a ViolationReport. Implies observability. Disabling drops the
  // rings and the stored reports. Off means free: the per-hop cost is one
  // null check. Ring contents — and therefore the assembled reports and
  // their JSON — are byte-identical across engines and worker counts as
  // long as `ring_capacity` exceeds the records a single switch receives
  // within one epoch window (see DESIGN.md).
  void set_forensics(bool enabled, std::size_t ring_capacity = 512);
  bool forensics_enabled() const {
    return obs_ != nullptr && obs_->recorder != nullptr;
  }
  // Assembled reports, in commit order. Empty while forensics is off.
  const std::vector<obs::ViolationReport>& violation_reports() const;
  std::string violation_reports_json() const;
  void clear_violation_reports();
  // Reports kept per run; later violations still record, but only count.
  static constexpr std::size_t kMaxViolationReports = 1024;

  // ---- engine phase profiling -------------------------------------------
  // Arms the engine phase profiler (obs/profiler.hpp): engines record
  // pop_window/compute/commit/barrier spans and per-epoch gauges, exported
  // as Chrome trace-event JSON via engine_profiler().to_chrome_trace_json()
  // and as "engine.*" histograms/counters in metrics(). Implies
  // observability. Off means free: engines hold a null pointer.
  void set_engine_profiling(bool enabled);
  bool engine_profiling_enabled() const {
    return obs_ != nullptr && obs_->profiler != nullptr;
  }
  obs::EngineProfiler& engine_profiler();  // throws std::logic_error if off
  // Engine-facing: null while profiling is off (the disabled-path branch).
  obs::EngineProfiler* engine_profiler_ptr() {
    return obs_ != nullptr ? obs_->profiler.get() : nullptr;
  }

  // ---- streaming export (Prometheus + windowed series) ------------------
  // Arms the export scheduler: every `interval_s` of VIRTUAL time the
  // engines capture a window sample (interval deltas, rates, delivered-
  // latency percentiles) into a bounded ring of `ring_capacity` windows.
  // Ticks fire between events in commit order — after everything with
  // t < tick has committed, before anything with t >= tick runs — so the
  // series (and any Prometheus scrape taken at a tick) is byte-identical
  // across engines and worker counts. Implies observability and registers
  // the delivered-latency histogram. `interval_s` <= 0 disarms. Must be
  // called while the event queue is idle. Off means free: engines hold a
  // null scheduler pointer.
  void set_export_interval(double interval_s, std::size_t ring_capacity = 128);
  bool export_armed() const {
    return obs_ != nullptr && obs_->exporter != nullptr;
  }
  // Fires on the main thread at every captured window; for --watch style
  // periodic rewrites. Throws std::logic_error while export is disarmed.
  void set_export_callback(obs::ExportScheduler::TickCallback cb);
  // Prometheus text exposition of the full registry (collect_metrics() +
  // obs::to_prometheus). Throws std::logic_error while observability is
  // off.
  std::string export_prometheus();
  // Windowed series JSON; throws std::logic_error while export is
  // disarmed.
  std::string window_series_json() const;

  // ---- live observability plane -----------------------------------------
  // Arms top-K attribution + health evaluation on top of the streaming
  // exporter (which must already be armed): delivered packets, checker
  // rejects, and reports feed deterministic Space-Saving sketches on the
  // commit path, and every export tick re-evaluates the SLO verdict and
  // sets the `health.*` gauges. With a publisher attached
  // (set_live_publisher), every tick additionally renders an immutable
  // LiveSnapshot — Prometheus text, series/health/violations/topk JSON,
  // and the obs state snapshot — and swaps it into the publisher for the
  // HTTP plane; bodies for a given tick index are byte-identical across
  // engines and worker counts. Must be called while the event queue is
  // idle. Off means free: the commit path holds one null check.
  struct LiveObsOptions {
    std::size_t topk_k = 8;
    // Subscriber (UE) block identifying PFCP sessions; mask 0 disables
    // session attribution.
    std::uint32_t session_net = 0;
    std::uint32_t session_mask = 0;
    obs::HealthThresholds health;
  };
  void arm_live_obs(const LiveObsOptions& opts);
  void disarm_live_obs();
  bool live_obs_armed() const {
    return obs_ != nullptr && obs_->live != nullptr;
  }
  // Borrowed, not owned; nullptr detaches. Throws while live obs is off.
  void set_live_publisher(obs::SnapshotPublisher* publisher);
  // Null while live obs is off.
  obs::TopKAttribution* topk_ptr() {
    return obs_ != nullptr && obs_->live != nullptr ? obs_->live->topk.get()
                                                    : nullptr;
  }
  // Verdict from the most recent export tick; throws while live obs is
  // off.
  const obs::HealthVerdict& last_health() const;
  std::string health_json() const { return last_health().to_json(); }
  std::string topk_json() const;

  // ---- obs snapshot/restore ---------------------------------------------
  // Deterministic line-oriented serialization of the observability state:
  // simulation counters, registry counters + histograms, the captured
  // window ring, and (when live obs is armed) the top-K sketches. A
  // restarted process that rebuilds the same scenario, arms the same
  // obs/export/live configuration, and calls obs_restore BEFORE running
  // traffic resumes every exported counter monotonically. Throws
  // std::logic_error while observability is off.
  std::string obs_snapshot();
  // Full-state snapshot (format v2, DESIGN.md §15): the v1 observability
  // body plus the simulation clock, the generation table, the deployment
  // set (with embedded checker source for slots the restoring scenario
  // does not rebuild), every live slot's per-switch sensor registers and
  // checker tables (sparse), and mutable forwarding state
  // (ForwardingProgram::save_state). A hydrad restarted from it resumes
  // with identical verdict behavior. Throws std::logic_error while
  // observability is off or while a rolling swap sweep is still in
  // flight (snapshot the quiesced state, not a half-swapped one).
  std::string full_snapshot();
  // Additive restore (values fold into current state); accepts v1 and v2
  // snapshots (v2 additionally overwrites registers, tables, the
  // deployment set, and the clock). Throws std::invalid_argument on a
  // malformed snapshot or when a v2 deployment slot disagrees with the
  // checker already deployed there. Must be called while the event queue
  // is idle.
  void obs_restore(const std::string& text);

  // ---- engine-facing API (internal to net/engine.cpp and tests) --------
  // Side-effect-confined per-hop pipeline execution; see the execution
  // engine contract at the top of this header. `t` is the event's
  // timestamp (== now() by the time the result is committed).
  void compute_hop(ExecContext& ctx, SimTime t, SwitchWork& work,
                   HopResult& result);
  void commit_hop(SimTime t, SwitchWork&& work, HopResult&& result);
  // compute + commit through the owning shard's context — the serial
  // execution path.
  void process_hop_serial(SimTime t, SwitchWork&& work);
  // Executes a kPacketSend item (link arrival at work.sw / work.in_port);
  // engines call it inline in commit order.
  void deliver_packet(const SwitchWork& work);
  int shard_of(int sw) const {
    return engine_workers_ > 1 ? sw % engine_workers_ : 0;
  }
  ExecContext& context(int index) {
    return contexts_[static_cast<std::size_t>(index)];
  }
  ExecContext& context_for_switch(int sw) { return context(shard_of(sw)); }
  // Conservative lookahead: every switch-work event is scheduled at least
  // this far after the event that creates it, so an engine may treat all
  // events inside one lookahead window as a parallel epoch.
  SimTime lookahead() const { return switch_latency(); }
  // Smallest link propagation delay: a sound lower bound on how far after
  // a switch-hop commit the NEXT switch's work for that packet can land
  // (commit -> transmit -> node_receive adds at least this much plus the
  // lookahead). Feeds the parallel engine's adaptive window-extension
  // bound. +infinity for a linkless topology.
  SimTime min_spawn_delay() const;
  // True when the parallel engine may shard the current configuration by
  // FLOW instead of by switch — i.e. hops of the same switch may execute
  // on different workers within a window. Requires:
  //   * observability off — Table's last-hit cache must be bypassed
  //     (lookup_shared), so `*.cache_hits` counters would diverge from
  //     serial; with obs off nobody observes them (this also rules out
  //     forensics/tracing/profiling, which imply observability);
  //   * faults disarmed — cold_until_ stays read-only and telemetry is
  //     never damaged mid-window;
  //   * every deployed checker register-free — register state is
  //     switch-confined but order-sensitive across hops of one switch;
  //   * every installed forwarding program concurrent_safe().
  // Report callbacks and in-window ControlOps are excluded per-window by
  // the engine, not here. The answer only changes at configuration points
  // (deploy / set_program / set_observability / arm_faults), all of which
  // require an idle event queue.
  bool flow_sharding_allowed() const;
  // Flips every interpreter context and concurrent_safe() program between
  // the cached single-threaded table-lookup path and the shared
  // (cache-bypassing) path. The engine brackets flow-sharded drains with
  // this; serial and switch-sharded execution keep the cached path.
  void set_concurrent_tables(bool on);
  // Adds shard-local counter accumulators into the main registry (no-op
  // for the serial engine / while observability is off).
  void absorb_shard_metrics();
  // Engine-facing: null while export is disarmed (the disabled-path
  // branch — one pointer check per event/window).
  obs::ExportScheduler* export_scheduler_ptr() {
    return obs_ != nullptr ? obs_->exporter.get() : nullptr;
  }
  // Fires every export tick with next_tick() <= t. Engines call this
  // before running any event at time t, with all earlier events committed
  // and (parallel) workers quiesced, so the captured totals are exactly
  // the serial ones.
  void export_tick_until(SimTime t);

 private:
  // Per-switch swap phase of one deployment slot. Written ONLY by
  // apply_control (compute, on the switch's owning shard) and by staging/
  // retirement while the engine is not draining; read only by compute on
  // the owning shard — the same confinement discipline as cold_until_, so
  // a rolling sweep lands between a switch's hops identically under every
  // engine.
  enum : std::uint8_t {
    kPhaseRetired = 0,  // frames for this slot reject fail-closed here
    kPhaseStaged = 1,   // tele/check run for matching generations; no init
    kPhaseEnabled = 2,  // fully live: init stamps new frames
  };

  struct Deployment {
    std::shared_ptr<const compiler::CompiledChecker> checker;
    std::vector<p4rt::CheckerState> per_switch;  // indexed by node id
    int tele_wire_bytes = 0;
    // Generation tag stamped into this occupant's telemetry frames; bumps
    // on every (re)deploy so slot reuse never mixes properties.
    std::uint32_t generation = 0;
    bool live = false;      // false once retired; the slot is reusable
    bool retiring = false;  // disable sweep in flight
    int pending_swaps = 0;  // per-switch flips not yet committed
    std::vector<std::uint8_t> phase;  // by node id; see enum above
  };

  // One entry per generation ever deployed (never erased): the compiled
  // checker (name, IR, wire layout) survives the slot's reuse, so
  // stale-frame accounting, fault-path reserialization, and wire sizing
  // stay correct for frames stamped by a retired occupant.
  struct GenerationInfo {
    // Null only after a v2 restore for generations whose slot was reused
    // before the snapshot (no source survives); `property` always holds
    // the name, which is all stale-frame accounting needs then — no
    // in-flight frames survive a restore, so the layout is never read.
    std::shared_ptr<const compiler::CompiledChecker> checker;
    std::string property;
    bool retired = false;
  };

  struct SwitchObsCounters {
    obs::Counter forwarded;
    obs::Counter fwd_dropped;
    obs::Counter rejected;
  };

  struct ObsState {
    obs::Registry registry;
    obs::TraceSink traces;
    TraceSampler sampler;
    std::vector<SwitchObsCounters> switches;  // indexed by node id
    obs::Histogram delivered_hops;
    // Forensics (null unless set_forensics(true)).
    std::unique_ptr<obs::FlightRecorder> recorder;
    std::vector<obs::ViolationReport> violations;
    std::uint64_t violations_seen = 0;  // includes ones past the report cap
    // Engine phase profiler (null unless set_engine_profiling(true)).
    std::unique_ptr<obs::EngineProfiler> profiler;
    // Streaming export (null unless set_export_interval armed). The
    // delivered-latency histogram is registered only alongside it, so
    // snapshots of export-free runs stay byte-identical to earlier
    // releases.
    std::unique_ptr<obs::ExportScheduler> exporter;
    obs::Histogram delivered_latency;
    // Live observability plane (null unless arm_live_obs). The publisher
    // is borrowed from the daemon/test that owns the HTTP server.
    struct LiveObs {
      LiveObsOptions opts;
      std::unique_ptr<obs::TopKAttribution> topk;
      obs::HealthVerdict health;
      obs::SnapshotPublisher* publisher = nullptr;  // not owned
    };
    std::unique_ptr<LiveObs> live;
  };

  // Rebuilds per-worker execution contexts for the current engine and
  // deployments, then rewires observability.
  void rebuild_contexts();
  void add_context_scratch(ExecContext& ctx, const Deployment& d);
  // Rebinds every context's slot `slot` scratch (interpreter, value
  // store) to the slot's current checker — the reuse path of a retired
  // slot.
  void reset_context_scratch(std::size_t slot);
  // Stages `checker` into a reused-or-fresh slot with every switch at
  // `phase`; throws std::runtime_error at the kMaxDeployments cap.
  int stage_deployment(std::shared_ptr<const compiler::CompiledChecker> c,
                       std::uint8_t phase);
  // Schedules one kSwap ControlOp per switch at now() flipping `slot` to
  // `phase`; sets pending_swaps.
  void schedule_swaps(int slot, std::uint8_t phase);
  // Commit-path completion of an undeploy sweep: frees per-switch state,
  // marks the generation retired, and registers its stale-frame counter.
  void finalize_retirement(std::size_t slot);
  // Bounds- and liveness-checks a deployment id from the control-plane
  // API; throws std::invalid_argument naming `what` for a stale or
  // out-of-range id (undeploy leaves holes — a stale id must produce a
  // clear error, not UB).
  Deployment& live_deployment(int deployment, const char* what);
  const Deployment& live_deployment(int deployment, const char* what) const;
  // Registers (or re-attaches) the fail-closed stale-frame counter for a
  // retired generation: flat "checker.<property>.stale_generation", family
  // hydra_checker_stale_generation_rejects_total. Same-property
  // generations share one counter, which stays registered — and therefore
  // present and monotone in every scrape — forever.
  void register_stale_counter(std::uint32_t gen);
  void note_property(const std::string& name);
  // Shared v1 snapshot body (sim counters, registry, window ring, top-K);
  // obs_snapshot wraps it in a v1 envelope, full_snapshot in v2.
  void append_obs_body(std::string& out);
  // (Re)wires every hot-path obs handle to the registry of the shard that
  // executes it (detaches everything when observability is off).
  void rewire_observability();
  // Registry that switch `sw`'s hot-path counters must target.
  obs::Registry* registry_for_switch(int sw);
  // Builds one checker's trace record for the current hop. `before` holds
  // the telemetry values entering the hop (nullptr for the init run, whose
  // "before" is the zeroed fresh frame).
  obs::CheckerHopRecord trace_checker_record(
      const Deployment& d, const p4rt::TeleFrame* after,
      const std::vector<BitVec>* before, const p4rt::ExecOutcome& out,
      bool init, bool tele, bool check) const;
  // Writes one flight-recorder record for checker `di`'s execution at the
  // current hop (forensics on only).
  void record_hop_forensics(ExecContext::PerDeployment& pd, std::size_t di,
                            const p4rt::Packet& pkt, const HopContext& hctx,
                            SimTime t, const ForwardingProgram::Decision* dec,
                            const p4rt::ExecOutcome& out, bool ran_init,
                            bool ran_tele, bool ran_check,
                            const char* fault_note = nullptr);
  // Applies a ControlOp in compute (on the owning shard): a restart wipes
  // the switch's checker registers and marks it cold; a dict insert lands
  // a delayed rule push. Mutates only switch-confined state + cold_until_,
  // which is written/read exclusively by the owning shard's thread.
  void apply_control(SimTime t, int sw, const ControlOp& op, HopResult& res);
  // Damages one telemetry frame's wire bytes (commit path): serializes the
  // frame through the real codec, then applies the plan's corruption mode
  // driven by `entropy`; the next hop must re-parse before trusting it.
  void corrupt_frame(p4rt::Packet& pkt, std::uint64_t entropy);
  // Joins the rings on the packet id and assembles a ViolationReport
  // (commit path; called when a hop rejected or reported).
  void build_violation(const SwitchWork& work, const HopResult& res,
                       SimTime t);

  // Assembles the cumulative export totals (sim counters + per-property
  // registry reads + delivered-latency histogram). Callers must have
  // absorbed shard metrics first.
  obs::ExportCumulative export_cumulative() const;

  // Per-export-tick live plane maintenance (live obs armed only):
  // re-evaluates health, refreshes the health.* gauges, and — with a
  // publisher attached — renders and publishes the tick's LiveSnapshot.
  // Runs on the commit path with workers quiesced and shard metrics
  // absorbed.
  void update_live_after_tick();

  void node_receive(int node, int port, PacketHandle pkt);
  void emit_report(ReportRecord record);
  void transmit(PortRef from, PacketHandle pkt);
  ControlHandle alloc_control();
  int packet_wire_bytes(const p4rt::Packet& pkt) const;
  std::uint32_t switch_tag(int sw) const {
    return static_cast<std::uint32_t>(sw + 1);
  }

  Topology topo_;
  EventQueue events_;
  std::vector<Link> links_;
  std::vector<Host> hosts_;    // indexed by node id (empty for switches)
  std::vector<std::shared_ptr<ForwardingProgram>> programs_;  // by node id
  std::vector<Deployment> deployments_;
  std::vector<GenerationInfo> generations_;  // by generation id, append-only
  // Stale-frame reject counters by generation id (commit path only;
  // detached while observability is off).
  std::vector<obs::Counter> stale_counters_;
  // Every property name ever deployed (sorted, unique). export_cumulative
  // iterates this instead of the live slots so a retired property's
  // per-window attribution rows stay present across the swap.
  std::vector<std::string> known_properties_;
  std::vector<ReportRecord> reports_;
  std::vector<ReportCallback> report_callbacks_;
  bool control_loop_active_ = false;
  Counters counters_;
  compiler::BaselineProfile baseline_ = compiler::simple_router_profile();
  double base_proc_s_ = 8e-7;
  double per_stage_s_ = 5e-8;
  std::uint64_t next_packet_id_ = 1;
  bool wire_validation_ = false;
  // Fault injection (null while disarmed). cold_until_[sw] is the sim time
  // until which switch sw's sensors are "cold" after a restart; it is
  // touched only from compute on sw's owning shard, so it needs no lock.
  std::unique_ptr<FaultInjector> faults_;
  std::vector<double> cold_until_;
  // In-flight packet / control-op pools (see "pooled in-flight storage").
  util::Arena<p4rt::Packet> packet_pool_{1024};
  util::Arena<ControlOp> control_pool_{64};
  std::unique_ptr<ObsState> obs_;  // null while observability is off
  std::vector<ExecContext> contexts_;  // one per engine worker
  EngineKind engine_kind_ = EngineKind::kSerial;
  int engine_workers_ = 1;
  // Declared last: the engine's worker threads may reference everything
  // above, so they must be joined (engine destroyed) first.
  std::unique_ptr<ExecutionEngine> engine_;
};

}  // namespace hydra::net
