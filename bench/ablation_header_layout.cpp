// Ablation: packed vs byte-aligned telemetry header layout (DESIGN.md §5).
// Packed minimizes wire bytes; byte-aligned trades wire bytes for cheaper
// PHV slicing on hardware. Prints the per-checker comparison.
//
//   $ ./ablation_header_layout
#include <cstdio>

#include "checkers/library.hpp"
#include "compiler/compile.hpp"

int main() {
  using namespace hydra;
  std::printf("Ablation: telemetry header layout (wire bytes per packet)\n\n");
  std::printf("%-32s %14s %14s %10s\n", "checker", "packed (B)",
              "aligned (B)", "overhead");
  double worst = 0.0;
  for (const auto& spec : checkers::table1_checkers()) {
    compiler::CompileOptions packed;
    packed.byte_aligned_layout = false;
    compiler::CompileOptions aligned;
    aligned.byte_aligned_layout = true;
    const auto cp = compiler::compile_checker(spec.source, spec.name, packed);
    const auto ca = compiler::compile_checker(spec.source, spec.name, aligned);
    const double overhead =
        100.0 * (ca.layout.wire_bytes - cp.layout.wire_bytes) /
        static_cast<double>(cp.layout.wire_bytes);
    worst = std::max(worst, overhead);
    std::printf("%-32s %14d %14d %9.1f%%\n", spec.name.c_str(),
                cp.layout.wire_bytes, ca.layout.wire_bytes, overhead);
  }
  std::printf("\nworst-case wire overhead of byte alignment: %.1f%%\n",
              worst);
  return 0;
}
