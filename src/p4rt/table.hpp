// Match-action table runtime. Backs both the tables generated from Indus
// control variables and the hand-written forwarding pipelines (ECMP
// routing, UPF, VLAN bridging).
//
// Supports the match kinds real P4 targets offer — exact, ternary
// (value/mask), LPM, and range — with ternary/range disambiguated by entry
// priority (higher wins), matching Tofino TCAM semantics.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/ir.hpp"
#include "util/bitvec.hpp"

namespace hydra::p4rt {

using ir::MatchKind;

struct MatchFieldSpec {
  MatchKind kind = MatchKind::kExact;
  int width = 32;
};

// One field's pattern within an entry.
struct KeyPattern {
  BitVec value{32, 0};
  BitVec mask{32, 0};  // ternary: 1-bits must match; exact: full mask
  int prefix_len = 0;  // lpm
  BitVec lo{32, 0};    // range
  BitVec hi{32, 0};

  static KeyPattern exact(BitVec v);
  static KeyPattern ternary(BitVec v, BitVec m);
  static KeyPattern wildcard(int width);
  static KeyPattern lpm(BitVec v, int prefix_len);
  static KeyPattern range(BitVec lo, BitVec hi);
};

struct TableEntry {
  int priority = 0;  // higher wins among multiple matches
  std::vector<KeyPattern> patterns;
  std::string action;            // action name (informational)
  std::vector<BitVec> action_data;
};

class Table {
 public:
  Table() = default;
  Table(std::string name, std::vector<MatchFieldSpec> key_spec);

  const std::string& name() const { return name_; }
  const std::vector<MatchFieldSpec>& key_spec() const { return key_spec_; }

  // Inserts an entry; throws std::invalid_argument on arity mismatch.
  void insert(TableEntry entry);
  // Convenience for fully-exact entries.
  void insert_exact(const std::vector<BitVec>& key,
                    std::vector<BitVec> action_data,
                    const std::string& action = "hit", int priority = 0);
  // Removes all entries whose patterns equal `entry`'s. Returns count.
  int remove_if_key_equals(const std::vector<KeyPattern>& patterns);
  void clear() { entries_.clear(); }
  std::size_t size() const { return entries_.size(); }
  const std::vector<TableEntry>& entries() const { return entries_; }

  // Highest-priority matching entry, or nullptr on miss. Ties broken by
  // insertion order (earlier wins), like most switch runtimes.
  const TableEntry* lookup(const std::vector<BitVec>& key) const;

  // For keyless "config" tables: the default action data.
  void set_default(std::vector<BitVec> action_data);
  const std::vector<BitVec>& default_data() const { return default_data_; }

 private:
  static bool matches(const KeyPattern& p, MatchKind kind, const BitVec& v);

  std::string name_;
  std::vector<MatchFieldSpec> key_spec_;
  std::vector<TableEntry> entries_;
  std::vector<BitVec> default_data_;
};

}  // namespace hydra::p4rt
