// Top-level Indus compiler driver: source text in, deployable checker out.
//
//   CompiledChecker c = compile_checker(source, "multi_tenancy");
//
// The result bundles everything the rest of the system consumes: the IR
// (executed by simulated switches), the telemetry wire layout (used to size
// packets), the generated P4 text (Table 1 LoC), and the resource report
// (Table 1 stages / PHV).
#pragma once

#include <string>

#include "compiler/emit_p4.hpp"
#include "compiler/layout.hpp"
#include "compiler/resources.hpp"
#include "indus/diagnostics.hpp"  // compile_checker throws indus::CompileError
#include "ir/ir.hpp"

namespace hydra::compiler {

// Where checks execute (§4.3). Last-hop checking is the paper's default;
// per-hop checking runs the checker block at every switch. kAuto asks the
// relocation analysis (compiler/relocate.hpp) to prove per-hop checking
// sound and falls back to last-hop otherwise.
enum class CheckPlacement { kLastHop, kEveryHop, kAuto };

struct CompileOptions {
  CheckPlacement placement = CheckPlacement::kLastHop;
  bool byte_aligned_layout = false;
  BaselineProfile baseline = fabric_upf_profile();
  P4Dialect dialect = P4Dialect::kTna;
};

struct CompiledChecker {
  std::string name;
  std::string source;  // original Indus text
  CompileOptions options;  // options.placement is resolved (never kAuto)

  ir::CheckerIR ir;
  TelemetryLayout layout;
  ResourceReport resources;
  LinkedResources linked;
  std::string p4_code;

  // Verdict of the §4.3 relocation analysis (filled for every compile).
  bool relocatable = false;
  std::string relocation_reason;

  int indus_loc = 0;
  int p4_loc = 0;
};

// Throws indus::CompileError on any lex/parse/type/lowering error.
CompiledChecker compile_checker(const std::string& source,
                                const std::string& name,
                                const CompileOptions& options = {});

}  // namespace hydra::compiler
