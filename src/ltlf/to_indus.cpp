#include "ltlf/to_indus.hpp"

#include <stdexcept>

#include "p4rt/interp.hpp"

namespace hydra::ltlf {

namespace {

// Generates checker-block statements evaluating subformulas at symbolic
// positions. Each subformula instance gets a fresh tele bool temporary.
class Generator {
 public:
  explicit Generator(int capacity) : capacity_(capacity) {}

  // Returns the name of the bool variable holding [[f]] at position `x`.
  std::string emit(const Formula& f, const std::string& x, std::string& out,
                   int indent) {
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    switch (f.op) {
      case Op::kAtom: {
        const std::string r = fresh_bool();
        out += pad + r + " = A" + std::to_string(f.atom) + "[" + x + "];\n";
        return r;
      }
      case Op::kNot: {
        const std::string c = emit(*f.kids[0], x, out, indent);
        const std::string r = fresh_bool();
        out += pad + r + " = !" + c + ";\n";
        return r;
      }
      case Op::kAnd:
      case Op::kOr: {
        const std::string a = emit(*f.kids[0], x, out, indent);
        const std::string b = emit(*f.kids[1], x, out, indent);
        const std::string r = fresh_bool();
        out += pad + r + " = " + a + (f.op == Op::kAnd ? " && " : " || ") +
               b + ";\n";
        return r;
      }
      case Op::kNext: {
        const std::string r = fresh_bool();
        out += pad + r + " = false;\n";
        out += pad + "if (" + x + " + 1 < idx) {\n";
        const std::string c = emit(*f.kids[0], x + " + 1", out, indent + 1);
        out += pad + "  " + r + " = " + c + ";\n";
        out += pad + "}\n";
        return r;
      }
      case Op::kUntil: {
        // Exists j >= x: psi(j) and forall k in [x, j): phi(k). A linear
        // scan with a running "phi held so far" flag.
        const std::string r = fresh_bool();
        const std::string p = fresh_bool();
        const std::string j = fresh_loop();
        out += pad + r + " = false;\n";
        out += pad + p + " = true;\n";
        out += pad + "for (" + j + " in T) {\n";
        out += pad + "  if (" + j + " >= " + x + ") {\n";
        const std::string psi = emit(*f.kids[1], j, out, indent + 2);
        out += pad + "    if (" + p + " && " + psi + ") { " + r +
               " = true; }\n";
        const std::string phi = emit(*f.kids[0], j, out, indent + 2);
        out += pad + "    if (!" + phi + ") { " + p + " = false; }\n";
        out += pad + "  }\n";
        out += pad + "}\n";
        return r;
      }
      case Op::kEventually: {
        const std::string r = fresh_bool();
        const std::string j = fresh_loop();
        out += pad + r + " = false;\n";
        out += pad + "for (" + j + " in T) {\n";
        out += pad + "  if (" + j + " >= " + x + ") {\n";
        const std::string c = emit(*f.kids[0], j, out, indent + 2);
        out += pad + "    if (" + c + ") { " + r + " = true; }\n";
        out += pad + "  }\n";
        out += pad + "}\n";
        return r;
      }
      case Op::kGlobally: {
        const std::string r = fresh_bool();
        const std::string j = fresh_loop();
        out += pad + r + " = true;\n";
        out += pad + "for (" + j + " in T) {\n";
        out += pad + "  if (" + j + " >= " + x + ") {\n";
        const std::string c = emit(*f.kids[0], j, out, indent + 2);
        out += pad + "    if (!" + c + ") { " + r + " = false; }\n";
        out += pad + "  }\n";
        out += pad + "}\n";
        return r;
      }
    }
    throw std::logic_error("unreachable formula op");
  }

  const std::vector<std::string>& temps() const { return temps_; }

 private:
  std::string fresh_bool() {
    temps_.push_back("r" + std::to_string(next_temp_++));
    return temps_.back();
  }
  std::string fresh_loop() { return "j" + std::to_string(next_loop_++); }

  int capacity_;
  int next_temp_ = 0;
  int next_loop_ = 0;
  std::vector<std::string> temps_;
};

}  // namespace

Translation to_indus(const Formula& f, int max_trace_len) {
  if (max_trace_len < 1 || max_trace_len > 64) {
    throw std::invalid_argument("max_trace_len out of range");
  }
  Translation t;
  t.num_atoms = f.max_atom() + 1;
  t.capacity = max_trace_len;
  const std::string cap = std::to_string(max_trace_len);

  Generator gen(max_trace_len);
  std::string check_body;
  const std::string result = gen.emit(f, "0", check_body, 1);

  std::string src;
  for (int i = 0; i < t.num_atoms; ++i) {
    src += "header bool atom" + std::to_string(i) + ";\n";
  }
  src += "tele bit<8>[" + cap + "] T;\n";
  for (int i = 0; i < t.num_atoms; ++i) {
    src += "tele bool[" + cap + "] A" + std::to_string(i) + ";\n";
  }
  src += "tele bit<8> idx = 0;\n";
  for (const auto& temp : gen.temps()) {
    src += "tele bool " + temp + " = false;\n";
  }
  src += "\n{ }\n{\n  T.push(idx);\n";
  for (int i = 0; i < t.num_atoms; ++i) {
    const std::string n = std::to_string(i);
    src += "  A" + n + ".push(atom" + n + ");\n";
  }
  src += "  idx += 1;\n}\n{\n";
  src += check_body;
  src += "  if (!" + result + ") { reject; }\n}\n";
  t.indus_source = std::move(src);
  return t;
}

bool run_translation(const compiler::CompiledChecker& compiled,
                     const Trace& trace) {
  if (trace.empty()) {
    throw std::invalid_argument("run_translation requires a non-empty trace");
  }
  p4rt::Interp interp(compiled.ir);
  p4rt::CheckerState state = p4rt::make_checker_state(compiled.ir);
  auto vals = interp.fresh_store();
  p4rt::ExecOutcome out;

  const std::vector<bool>* event = nullptr;
  auto resolver = [&event](const std::string& ann, int /*width*/) {
    if (ann.rfind("atom", 0) == 0) {
      const auto i = static_cast<std::size_t>(std::stoi(ann.substr(4)));
      const bool v = event != nullptr && i < event->size() && (*event)[i];
      return BitVec::from_bool(v);
    }
    throw std::invalid_argument("unexpected annotation: " + ann);
  };

  interp.run(compiled.ir.init_block, vals, state, resolver, out);
  for (const auto& e : trace) {
    event = &e;
    interp.run(compiled.ir.tele_block, vals, state, resolver, out);
  }
  event = &trace.back();
  interp.run(compiled.ir.check_block, vals, state, resolver, out);
  return !out.reject;
}

bool check_trace(const Formula& f, const Trace& trace, int max_trace_len) {
  const Translation t = to_indus(f, max_trace_len);
  const auto compiled = compiler::compile_checker(
      t.indus_source, "ltlf:" + f.to_string());
  return run_translation(compiled, trace);
}

}  // namespace hydra::ltlf
