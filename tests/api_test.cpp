// Tests for the public hydra:: API surface: compile helpers, deployment
// plumbing and its error paths, configuration helpers, and the IR dump.
#include <gtest/gtest.h>

#include "forwarding/ipv4_ecmp.hpp"
#include "hydra/hydra.hpp"
#include "net/network.hpp"

namespace hydra {
namespace {

struct Fixture {
  net::LeafSpine fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net{fabric.topo};
  std::shared_ptr<fwd::Ipv4EcmpProgram> routing =
      fwd::install_leaf_spine_routing(net, fabric);
};

TEST(Api, CompileSharedProducesDeployableChecker) {
  auto c = compile_shared("{ } { } { }", "noop");
  EXPECT_EQ(c->name, "noop");
  Fixture f;
  const int dep = f.net.deploy(c);
  EXPECT_EQ(dep, 0);
  EXPECT_EQ(f.net.deployment_count(), 1);
  EXPECT_EQ(&f.net.checker(dep), c.get());
}

TEST(Api, CompileLibraryCheckerByName) {
  auto c = compile_library_checker("valley_free");
  EXPECT_EQ(c->name, "valley_free");
  EXPECT_GT(c->p4_loc, 0);
  EXPECT_THROW(compile_library_checker("no_such_checker"),
               std::invalid_argument);
}

TEST(Api, DeployNullCheckerThrows) {
  Fixture f;
  EXPECT_THROW(f.net.deploy(nullptr), std::invalid_argument);
}

TEST(Api, CheckerTableUnknownVariableThrows) {
  Fixture f;
  const int dep = f.net.deploy(compile_library_checker("multi_tenancy"));
  EXPECT_THROW(f.net.checker_table(dep, f.fabric.leaves[0], "nope"),
               std::invalid_argument);
  EXPECT_NO_THROW(f.net.checker_table(dep, f.fabric.leaves[0], "tenants"));
}

TEST(Api, CheckerRegisterLookup) {
  Fixture f;
  const int dep =
      f.net.deploy(compile_library_checker("dc_uplink_load_balance"));
  auto& reg = f.net.checker_register(dep, f.fabric.leaves[0], "left_load");
  EXPECT_EQ(reg.read(0).value(), 0u);
  EXPECT_THROW(f.net.checker_register(dep, f.fabric.leaves[0], "nope"),
               std::invalid_argument);
}

TEST(Api, LoadBalanceNeedsTwoSpines) {
  auto fabric = net::make_leaf_spine(2, 1, 2);
  net::Network net(fabric.topo);
  const int dep = net.deploy(compile_library_checker("dc_uplink_load_balance"));
  EXPECT_THROW(configure_load_balance(net, dep, fabric, 100),
               std::invalid_argument);
}

TEST(Api, SwitchTagIsNonZero) {
  // 0 is reserved as "no switch" (the path-validation sentinel).
  EXPECT_EQ(checker_switch_tag(0), 1u);
  EXPECT_EQ(checker_switch_tag(41), 42u);
}

TEST(Api, HostAccessorRejectsSwitches) {
  Fixture f;
  EXPECT_THROW(f.net.host(f.fabric.leaves[0]), std::invalid_argument);
  EXPECT_NO_THROW(f.net.host(f.fabric.hosts[0][0]));
}

TEST(Api, SetProgramRejectsHosts) {
  Fixture f;
  EXPECT_THROW(f.net.set_program(f.fabric.hosts[0][0], f.routing),
               std::invalid_argument);
}

TEST(Api, IrDumpListsStructure) {
  auto c = compile_library_checker("multi_tenancy");
  const std::string dump = c->ir.dump();
  EXPECT_NE(dump.find("checker multi_tenancy"), std::string::npos);
  EXPECT_NE(dump.find("table tenants"), std::string::npos);
  EXPECT_NE(dump.find("init:"), std::string::npos);
  EXPECT_NE(dump.find("check:"), std::string::npos);
  EXPECT_NE(dump.find("reject"), std::string::npos);
}

TEST(Api, MultipleDeploymentsIndexIndependently) {
  Fixture f;
  const int a = f.net.deploy(compile_library_checker("valley_free"));
  const int b = f.net.deploy(compile_library_checker("loops"));
  EXPECT_NE(a, b);
  EXPECT_EQ(f.net.checker(a).name, "valley_free");
  EXPECT_EQ(f.net.checker(b).name, "loops");
  // Config for one deployment must not leak into the other.
  configure_valley_free(f.net, a, f.fabric);
  EXPECT_EQ(f.net.checker(b).ir.find_table("is_spine_switch"), -1);
}

TEST(Api, ClearReportsResets) {
  Fixture f;
  f.net.deploy(compile_library_checker("stateful_firewall"));
  f.net.send_from_host(
      f.fabric.hosts[0][0],
      p4rt::make_udp(f.net.topo().node(f.fabric.hosts[0][0]).ip,
                     f.net.topo().node(f.fabric.hosts[1][0]).ip, 1, 2, 10));
  f.net.events().run();
  EXPECT_FALSE(f.net.reports().empty());
  f.net.clear_reports();
  EXPECT_TRUE(f.net.reports().empty());
}

}  // namespace
}  // namespace hydra
