#include "forwarding/ipv4_ecmp.hpp"

#include <stdexcept>

namespace hydra::fwd {

void Ipv4EcmpProgram::add_route(int switch_id, std::uint32_t prefix,
                                int prefix_len, std::vector<int> ports) {
  if (ports.empty()) {
    throw std::invalid_argument("ECMP group must have at least one port");
  }
  PerSwitch& sw = switches_[switch_id];
  if (sw.groups.empty()) wire_switch(switch_id, sw);
  const auto group_id = static_cast<std::uint64_t>(sw.groups.size());
  sw.groups.push_back(std::move(ports));
  p4rt::TableEntry e;
  e.priority = prefix_len;  // longer prefixes win
  e.patterns.push_back(p4rt::KeyPattern::lpm(BitVec(32, prefix), prefix_len));
  e.action = "set_group";
  e.action_data.push_back(BitVec(32, group_id));
  sw.routes.insert(std::move(e));
}

void Ipv4EcmpProgram::attach_metrics(obs::Registry* registry) {
  attach_metrics_sharded(registry == nullptr
                             ? MetricsResolver{}
                             : [registry](int) { return registry; });
}

void Ipv4EcmpProgram::attach_metrics_sharded(MetricsResolver resolve) {
  resolver_ = std::move(resolve);
  for (auto& [id, sw] : switches_) wire_switch(id, sw);
}

void Ipv4EcmpProgram::wire_switch(int switch_id, PerSwitch& sw) {
  p4rt::TableMetrics tm;
  if (resolver_) {
    if (obs::Registry* reg = resolver_(switch_id)) {
      tm.hits = reg->counter("fwd.ipv4_ecmp.routes.hits");
      tm.misses = reg->counter("fwd.ipv4_ecmp.routes.misses");
      tm.cache_hits = reg->counter("fwd.ipv4_ecmp.routes.cache_hits");
    }
  }
  sw.routes.attach_metrics(tm);
}

std::uint64_t Ipv4EcmpProgram::flow_hash(const p4rt::Packet& pkt) {
  // FNV-1a over the 5-tuple.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  if (pkt.ipv4) {
    mix(pkt.ipv4->src);
    mix(pkt.ipv4->dst);
    mix(pkt.ipv4->proto);
  }
  if (pkt.l4) {
    mix(pkt.l4->sport);
    mix(pkt.l4->dport);
  }
  return h;
}

Ipv4EcmpProgram::Decision Ipv4EcmpProgram::process(p4rt::Packet& pkt,
                                                   int /*in_port*/,
                                                   int switch_id) {
  Decision d;
  if (!pkt.ipv4) {
    d.drop = true;
    d.reason = "no_ipv4";
    return d;
  }
  if (pkt.ipv4->ttl == 0) {
    ttl_drops_.fetch_add(1, std::memory_order_relaxed);
    d.drop = true;
    d.reason = "ttl_expired";
    return d;
  }
  const auto it = switches_.find(switch_id);
  if (it == switches_.end()) {
    miss_drops_.fetch_add(1, std::memory_order_relaxed);
    d.drop = true;
    d.reason = "unknown_switch";
    return d;
  }
  // Thread-local: in flow-affinity windows several workers call process()
  // for the same switch concurrently, so the lookup key and flatten
  // scratch must not live in the (shared) table or program.
  thread_local std::vector<BitVec> key;
  thread_local p4rt::TableScratch scratch;
  key.assign(1, BitVec(32, pkt.ipv4->dst));
  const p4rt::TableEntry* entry = concurrent_
                                      ? it->second.routes.lookup_shared(key, scratch)
                                      : it->second.routes.lookup(key);
  if (entry == nullptr) {
    miss_drops_.fetch_add(1, std::memory_order_relaxed);
    d.drop = true;
    d.reason = "no_route";
    return d;
  }
  const auto& group =
      it->second.groups[static_cast<std::size_t>(entry->action_data[0].value())];
  d.eg_port = group[flow_hash(pkt) % group.size()];
  pkt.ipv4->ttl -= 1;
  return d;
}

std::shared_ptr<Ipv4EcmpProgram> install_leaf_spine_routing(
    net::Network& net, const net::LeafSpine& fabric) {
  auto prog = std::make_shared<Ipv4EcmpProgram>();
  const int num_leaves = static_cast<int>(fabric.leaves.size());
  const int num_spines = static_cast<int>(fabric.spines.size());

  std::vector<int> uplinks;
  for (int j = 0; j < num_spines; ++j) {
    uplinks.push_back(fabric.leaf_uplink_port(j));
  }
  for (int i = 0; i < num_leaves; ++i) {
    const int leaf = fabric.leaves[static_cast<std::size_t>(i)];
    // /32 host routes on the owning leaf.
    for (int h = 0; h < fabric.hosts_per_leaf; ++h) {
      const int host = fabric.hosts[static_cast<std::size_t>(i)]
                                   [static_cast<std::size_t>(h)];
      prog->add_route(leaf, net.topo().node(host).ip, 32,
                      {fabric.leaf_host_port(h)});
    }
    // Default route: ECMP across all spines.
    prog->add_route(leaf, 0, 0, uplinks);
    net.set_program(leaf, prog);
  }
  for (int j = 0; j < num_spines; ++j) {
    const int spine = fabric.spines[static_cast<std::size_t>(j)];
    for (int i = 0; i < num_leaves; ++i) {
      const std::uint32_t subnet =
          (10u << 24) | (static_cast<std::uint32_t>(i + 1) << 8);
      prog->add_route(spine, subnet, 24, {fabric.spine_down_port(i)});
    }
    net.set_program(spine, prog);
  }
  return prog;
}

std::shared_ptr<Ipv4EcmpProgram> install_fat_tree_routing(
    net::Network& net, const net::FatTree& ft) {
  auto prog = std::make_shared<Ipv4EcmpProgram>();
  const int half = ft.k / 2;

  std::vector<int> edge_uplinks;
  std::vector<int> agg_uplinks;
  for (int i = 0; i < half; ++i) {
    edge_uplinks.push_back(ft.edge_up_port(i));
    agg_uplinks.push_back(ft.agg_up_port(i));
  }

  for (int p = 0; p < ft.k; ++p) {
    for (int e = 0; e < half; ++e) {
      const int edge =
          ft.edges[static_cast<std::size_t>(p)][static_cast<std::size_t>(e)];
      for (int h = 0; h < half; ++h) {
        const int host = ft.hosts[static_cast<std::size_t>(p)]
                                 [static_cast<std::size_t>(e)]
                                 [static_cast<std::size_t>(h)];
        prog->add_route(edge, net.topo().node(host).ip, 32,
                        {ft.edge_host_port(h)});
      }
      prog->add_route(edge, 0, 0, edge_uplinks);
      net.set_program(edge, prog);
    }
    for (int a = 0; a < half; ++a) {
      const int agg =
          ft.aggs[static_cast<std::size_t>(p)][static_cast<std::size_t>(a)];
      for (int e = 0; e < half; ++e) {
        prog->add_route(agg, ft.edge_prefix(p, e), 24,
                        {ft.agg_down_port(e)});
      }
      prog->add_route(agg, 0, 0, agg_uplinks);
      net.set_program(agg, prog);
    }
  }
  for (std::size_t c = 0; c < ft.cores.size(); ++c) {
    const int core = ft.cores[c];
    for (int p = 0; p < ft.k; ++p) {
      prog->add_route(core, ft.pod_prefix(p), 16, {ft.core_pod_port(p)});
    }
    net.set_program(core, prog);
  }
  return prog;
}

}  // namespace hydra::fwd
