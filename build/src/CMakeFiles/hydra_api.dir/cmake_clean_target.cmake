file(REMOVE_RECURSE
  "libhydra_api.a"
)
