// Unit tests for the p4rt substrate: match-action tables, registers, the
// packet model, and direct interpretation of compiled checkers.
#include <gtest/gtest.h>

#include <map>

#include "checkers/library.hpp"
#include "compiler/compile.hpp"
#include "p4rt/interp.hpp"
#include "p4rt/packet.hpp"
#include "p4rt/register.hpp"
#include "p4rt/table.hpp"

namespace hydra::p4rt {
namespace {

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

TEST(Table, ExactMatchHitAndMiss) {
  Table t("t", {{MatchKind::kExact, 8}});
  t.insert_exact({BitVec(8, 5)}, {BitVec(8, 50)});
  const TableEntry* hit = t.lookup({BitVec(8, 5)});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->action_data[0].value(), 50u);
  EXPECT_EQ(t.lookup({BitVec(8, 6)}), nullptr);
}

TEST(Table, TernaryMaskedMatch) {
  Table t("t", {{MatchKind::kTernary, 8}});
  TableEntry e;
  e.patterns.push_back(KeyPattern::ternary(BitVec(8, 0xa0), BitVec(8, 0xf0)));
  e.action_data.push_back(BitVec(8, 1));
  t.insert(std::move(e));
  EXPECT_NE(t.lookup({BitVec(8, 0xa5)}), nullptr);
  EXPECT_EQ(t.lookup({BitVec(8, 0xb5)}), nullptr);
}

TEST(Table, WildcardMatchesEverything) {
  Table t("t", {{MatchKind::kTernary, 16}});
  TableEntry e;
  e.patterns.push_back(KeyPattern::wildcard(16));
  e.action_data.push_back(BitVec(8, 9));
  t.insert(std::move(e));
  EXPECT_NE(t.lookup({BitVec(16, 0)}), nullptr);
  EXPECT_NE(t.lookup({BitVec(16, 65535)}), nullptr);
}

TEST(Table, PriorityBreaksOverlaps) {
  Table t("t", {{MatchKind::kTernary, 8}});
  TableEntry low;
  low.priority = 10;
  low.patterns.push_back(KeyPattern::wildcard(8));
  low.action_data.push_back(BitVec(8, 1));
  TableEntry high;
  high.priority = 20;
  high.patterns.push_back(KeyPattern::exact(BitVec(8, 7)));
  high.action_data.push_back(BitVec(8, 2));
  t.insert(std::move(low));
  t.insert(std::move(high));
  EXPECT_EQ(t.lookup({BitVec(8, 7)})->action_data[0].value(), 2u);
  EXPECT_EQ(t.lookup({BitVec(8, 8)})->action_data[0].value(), 1u);
}

TEST(Table, LpmPrefixes) {
  Table t("t", {{MatchKind::kLpm, 32}});
  TableEntry wide;
  wide.priority = 8;
  wide.patterns.push_back(KeyPattern::lpm(BitVec(32, 0x0a000000), 8));
  wide.action_data.push_back(BitVec(8, 1));
  TableEntry narrow;
  narrow.priority = 24;
  narrow.patterns.push_back(KeyPattern::lpm(BitVec(32, 0x0a000100), 24));
  narrow.action_data.push_back(BitVec(8, 2));
  t.insert(std::move(wide));
  t.insert(std::move(narrow));
  EXPECT_EQ(t.lookup({BitVec(32, 0x0a000105)})->action_data[0].value(), 2u);
  EXPECT_EQ(t.lookup({BitVec(32, 0x0a020305)})->action_data[0].value(), 1u);
  EXPECT_EQ(t.lookup({BitVec(32, 0x0b000000)}), nullptr);
}

TEST(Table, RangeMatch) {
  Table t("t", {{MatchKind::kRange, 16}});
  TableEntry e;
  e.patterns.push_back(KeyPattern::range(BitVec(16, 81), BitVec(16, 82)));
  e.action_data.push_back(BitVec(8, 3));
  t.insert(std::move(e));
  EXPECT_NE(t.lookup({BitVec(16, 81)}), nullptr);
  EXPECT_NE(t.lookup({BitVec(16, 82)}), nullptr);
  EXPECT_EQ(t.lookup({BitVec(16, 80)}), nullptr);
  EXPECT_EQ(t.lookup({BitVec(16, 83)}), nullptr);
}

TEST(Table, ArityChecked) {
  Table t("t", {{MatchKind::kExact, 8}, {MatchKind::kExact, 8}});
  EXPECT_THROW(t.insert_exact({BitVec(8, 1)}, {}), std::invalid_argument);
  EXPECT_THROW(t.lookup({BitVec(8, 1)}), std::invalid_argument);
}

TEST(Table, RemoveByKey) {
  Table t("t", {{MatchKind::kExact, 8}});
  t.insert_exact({BitVec(8, 1)}, {BitVec(8, 10)});
  t.insert_exact({BitVec(8, 2)}, {BitVec(8, 20)});
  std::vector<KeyPattern> key = {KeyPattern::exact(BitVec(8, 1))};
  EXPECT_EQ(t.remove_if_key_equals(key), 1);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.lookup({BitVec(8, 1)}), nullptr);
}

// ---------------------------------------------------------------------------
// RegisterArray
// ---------------------------------------------------------------------------

TEST(RegisterArray, ReadWriteAdd) {
  RegisterArray r("r", 16, 4, BitVec(16, 100));
  EXPECT_EQ(r.read(0).value(), 100u);
  r.write(1, BitVec(16, 7));
  EXPECT_EQ(r.read(1).value(), 7u);
  EXPECT_EQ(r.add(1, BitVec(16, 3)).value(), 10u);
  r.reset();
  EXPECT_EQ(r.read(1).value(), 100u);
}

TEST(RegisterArray, WidthMasking) {
  RegisterArray r("r", 8, 1, BitVec(8, 0));
  r.write(0, BitVec(32, 0x1ff));
  EXPECT_EQ(r.read(0).value(), 0xffu);
}

TEST(RegisterArray, OutOfRangeThrows) {
  RegisterArray r("r", 8, 2, BitVec(8, 0));
  EXPECT_THROW(r.read(2), std::out_of_range);
  EXPECT_THROW(r.write(5, BitVec(8, 0)), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Packet model
// ---------------------------------------------------------------------------

TEST(Packet, WireBytesAccounting) {
  Packet p = make_udp(1, 2, 10, 20, 100);
  EXPECT_EQ(p.base_wire_bytes(), 14 + 20 + 8 + 100);
  Packet t = make_tcp(1, 2, 10, 20, 100);
  EXPECT_EQ(t.base_wire_bytes(), 14 + 20 + 20 + 100);
}

TEST(Packet, GtpuEncapDecapRoundTrip) {
  const Packet inner = make_udp(0x0a000001, 0x0a000002, 1000, 81, 64);
  Packet outer = gtpu_encap(inner, 0xc0000001, 0xc0000002, 42);
  EXPECT_TRUE(outer.gtpu.has_value());
  EXPECT_EQ(outer.gtpu->teid, 42u);
  EXPECT_EQ(outer.ipv4->dst, 0xc0000002u);
  EXPECT_EQ(outer.inner_ipv4->dst, 0x0a000002u);
  EXPECT_GT(outer.base_wire_bytes(), inner.base_wire_bytes());
  const Packet back = gtpu_decap(outer);
  EXPECT_FALSE(back.gtpu.has_value());
  EXPECT_EQ(back.ipv4->dst, inner.ipv4->dst);
  EXPECT_EQ(back.l4->dport, inner.l4->dport);
  EXPECT_EQ(back.base_wire_bytes(), inner.base_wire_bytes());
}

TEST(Packet, IcmpEcho) {
  const Packet p = make_icmp_echo(1, 2, 7, 9);
  EXPECT_EQ(p.ipv4->proto, kProtoIcmp);
  EXPECT_EQ(p.icmp->ident, 7u);
  EXPECT_EQ(p.icmp->seq, 9u);
}

TEST(Packet, TeleFrameLookup) {
  Packet p;
  p.tele.push_back({2, {}});
  p.tele.push_back({5, {}});
  EXPECT_NE(p.frame(2), nullptr);
  EXPECT_NE(p.frame(5), nullptr);
  EXPECT_EQ(p.frame(3), nullptr);
}

// ---------------------------------------------------------------------------
// Interpreter on compiled checkers
// ---------------------------------------------------------------------------

struct Harness {
  compiler::CompiledChecker checker;
  Interp interp;
  CheckerState state;
  std::vector<BitVec> vals;
  ExecOutcome out;
  std::map<std::string, BitVec> headers;

  explicit Harness(const std::string& src)
      : checker(compiler::compile_checker(src, "test")),
        interp(checker.ir),
        state(make_checker_state(checker.ir)),
        vals(interp.fresh_store()) {}

  HeaderResolver resolver() {
    return [this](const std::string& ann, int width) {
      const auto it = headers.find(ann);
      if (it == headers.end()) return BitVec(width, 0);
      return it->second;
    };
  }

  void run_init() {
    interp.run(checker.ir.init_block, vals, state, resolver(), out);
  }
  void run_tele() {
    interp.run(checker.ir.tele_block, vals, state, resolver(), out);
  }
  void run_check() {
    interp.run(checker.ir.check_block, vals, state, resolver(), out);
  }
  BitVec field(const std::string& name) const {
    const auto f = checker.ir.find_field(name);
    EXPECT_TRUE(f.valid()) << name;
    return vals[static_cast<std::size_t>(f.id)];
  }
};

TEST(Interp, MultiTenancyAcceptsSameTenant) {
  Harness h(checkers::checker_by_name("multi_tenancy").source);
  h.state.tables[0].insert_exact({BitVec(8, 1)}, {BitVec(8, 7)});
  h.state.tables[0].insert_exact({BitVec(8, 2)}, {BitVec(8, 7)});
  h.headers.emplace("in_port", BitVec(8, 1));
  h.headers.emplace("eg_port", BitVec(8, 2));
  h.run_init();
  EXPECT_EQ(h.field("tele.tenant").value(), 7u);
  h.run_check();
  EXPECT_FALSE(h.out.reject);
}

TEST(Interp, MultiTenancyRejectsCrossTenant) {
  Harness h(checkers::checker_by_name("multi_tenancy").source);
  h.state.tables[0].insert_exact({BitVec(8, 1)}, {BitVec(8, 7)});
  h.state.tables[0].insert_exact({BitVec(8, 2)}, {BitVec(8, 9)});
  h.headers.emplace("in_port", BitVec(8, 1));
  h.headers.emplace("eg_port", BitVec(8, 2));
  h.run_init();
  h.run_check();
  EXPECT_TRUE(h.out.reject);
}

TEST(Interp, DictMissYieldsZeroValue) {
  Harness h(R"(
    control dict<bit<8>,bit<8>> m;
    tele bit<8> v;
    header bit<8> p;
    { v = m[p]; } { } { }
  )");
  h.headers.emplace("p", BitVec(8, 3));
  h.run_init();
  EXPECT_EQ(h.field("tele.v").value(), 0u);
}

TEST(Interp, ConfigScalarReadsDefault) {
  Harness h(R"(
    control thresh;
    tele bool r;
    { r = packet_length > thresh; } { } { }
  )");
  h.state.tables[0].set_default({BitVec(32, 100)});
  h.headers.emplace("std.packet_length", BitVec(32, 150));
  h.run_init();
  EXPECT_TRUE(h.field("tele.r").as_bool());
}

TEST(Interp, PushSaturatesAtCapacity) {
  Harness h(R"(
    tele bit<8>[2] xs;
    header bit<8> v;
    { } { xs.push(v); } { }
  )");
  h.run_init();
  for (int i = 1; i <= 5; ++i) {
    h.headers["v"] = BitVec(8, static_cast<std::uint64_t>(i));
    h.run_tele();
  }
  EXPECT_EQ(h.field("tele.xs.cnt").value(), 2u);
  EXPECT_EQ(h.field("tele.xs[0]").value(), 1u);
  EXPECT_EQ(h.field("tele.xs[1]").value(), 2u);
}

TEST(Interp, SensorAccumulatesAcrossPackets) {
  Harness h(R"(
    sensor bit<32> total = 0;
    { } { total += packet_length; } { }
  )");
  h.headers.emplace("std.packet_length", BitVec(32, 100));
  h.run_tele();
  h.run_tele();
  h.run_tele();
  EXPECT_EQ(h.state.registers[0].read(0).value(), 300u);
}

TEST(Interp, InOperatorOnTeleArray) {
  Harness h(R"(
    tele bit<32>[4] seen;
    tele bool dup;
    header bit<32> id;
    { } {
      if (id in seen) { dup = true; }
      seen.push(id);
    } { if (dup) { reject; } }
  )");
  h.run_init();
  h.headers["id"] = BitVec(32, 10);
  h.run_tele();
  h.headers["id"] = BitVec(32, 20);
  h.run_tele();
  h.headers["id"] = BitVec(32, 10);  // revisit
  h.run_tele();
  h.run_check();
  EXPECT_TRUE(h.out.reject);
}

TEST(Interp, InOperatorNoFalsePositiveFromEmptySlots) {
  Harness h(R"(
    tele bit<32>[4] seen;
    tele bool dup;
    header bit<32> id;
    { } {
      if (id in seen) { dup = true; }
      seen.push(id);
    } { if (dup) { reject; } }
  )");
  h.run_init();
  // Id 0 equals the uninitialized slot value; the fill-count guard must
  // prevent a false positive on the first visit.
  h.headers["id"] = BitVec(32, 0);
  h.run_tele();
  h.run_check();
  EXPECT_FALSE(h.out.reject);
}

TEST(Interp, ReportCarriesPayload) {
  Harness h(R"(
    header bit<32> a;
    header bit<16> b;
    { } { report((a, b)); } { }
  )");
  h.headers.emplace("a", BitVec(32, 1234));
  h.headers.emplace("b", BitVec(16, 56));
  h.run_tele();
  ASSERT_EQ(h.out.reports.size(), 1u);
  ASSERT_EQ(h.out.reports[0].size(), 2u);
  EXPECT_EQ(h.out.reports[0][0].value(), 1234u);
  EXPECT_EQ(h.out.reports[0][1].value(), 56u);
}

TEST(Interp, ShortCircuitAvoidsSpuriousEvaluation) {
  // (false && X) never evaluates X; with eager evaluation the dict lookup
  // would still be fine, but short-circuit semantics must hold for values.
  Harness h(R"(
    tele bool r;
    tele bit<8> x;
    { r = false && x / x == 1; } { } { }
  )");
  h.run_init();
  EXPECT_FALSE(h.field("tele.r").as_bool());
}

TEST(Interp, DynamicArrayIndexSelectsSlot) {
  Harness h(R"(
    tele bit<8>[4] xs;
    tele bit<8> v;
    header bit<8> i;
    { } { xs.push(10); xs.push(20); xs.push(30); v = xs[i]; } { }
  )");
  h.run_init();
  h.headers["i"] = BitVec(8, 1);
  h.run_tele();
  EXPECT_EQ(h.field("tele.v").value(), 20u);
}

TEST(Interp, StoreFrameZeroesLocals) {
  Harness h(R"(
    control dict<bit<8>,bit<8>> m;
    tele bit<8> v;
    header bit<8> p;
    { v = m[p]; } { } { }
  )");
  h.state.tables[0].insert_exact({BitVec(8, 1)}, {BitVec(8, 99)});
  h.headers.emplace("p", BitVec(8, 1));
  h.run_init();
  TeleFrame frame;
  frame.checker = 0;
  h.interp.store_frame(h.vals, frame);
  // The tele field survives; the table-lookup temporary is zeroed.
  const auto tele_v = h.checker.ir.find_field("tele.v");
  EXPECT_EQ(frame.values[static_cast<std::size_t>(tele_v.id)].value(), 99u);
  for (std::size_t i = 0; i < frame.values.size(); ++i) {
    if (h.checker.ir.fields[i].space != ir::Space::kTele) {
      EXPECT_EQ(frame.values[i].value(), 0u);
    }
  }
}

}  // namespace
}  // namespace hydra::p4rt
