// Register arrays — the switch-local state behind Indus sensor variables
// and stateful forwarding features (e.g. UPF usage counters).
#pragma once

#include <string>
#include <vector>

#include "util/bitvec.hpp"

namespace hydra::p4rt {

class RegisterArray {
 public:
  RegisterArray() = default;
  RegisterArray(std::string name, int width, std::size_t cells,
                BitVec initial);

  const std::string& name() const { return name_; }
  int width() const { return width_; }
  std::size_t size() const { return cells_.size(); }

  BitVec read(std::size_t index) const;
  void write(std::size_t index, const BitVec& value);
  // Atomic read-add-write, returns the new value.
  BitVec add(std::size_t index, const BitVec& delta);
  void reset();
  // Reset value for every cell — lets a snapshot serialize only the cells
  // that diverged from it (sparse full-state snapshot, net/network.cpp).
  const BitVec& initial() const { return initial_; }

 private:
  std::string name_;
  int width_ = 32;
  BitVec initial_{32, 0};
  std::vector<BitVec> cells_;
};

}  // namespace hydra::p4rt
