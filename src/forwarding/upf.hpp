// Aether's P4-based 5G User Plane Function (§5.2, Figure 11).
//
// The UPF splits processing across three kinds of tables to save ASIC
// resources — exactly the design whose sharing behaviour hides the bug the
// paper's Hydra checker catches:
//
//   * Sessions      — identifies direction and client: uplink packets are
//                     GTP-U encapsulated and matched by TEID (then
//                     decapsulated); downlink packets are matched by UE IP
//                     (then encapsulated towards the base station).
//   * Applications  — shared per-slice classifier: matches (slice, app IP
//                     prefix, L4 port range, proto) with a priority and
//                     assigns an app ID. Entries are SHARED by all clients
//                     of a slice.
//   * Terminations  — per-client: (client ID, app ID) -> forward or drop.
//                     A miss drops the packet ("app not allowed").
//
// After UPF processing the packet is routed by the fabric's IPv4 ECMP.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "forwarding/ipv4_ecmp.hpp"
#include "net/switch_node.hpp"
#include "p4rt/table.hpp"

namespace hydra::fwd {

class UpfProgram : public net::ForwardingProgram {
 public:
  // `router` handles post-UPF (and non-UPF) forwarding on this switch.
  explicit UpfProgram(std::shared_ptr<Ipv4EcmpProgram> router);

  // ---- Sessions -----------------------------------------------------------
  void add_uplink_session(std::uint32_t teid, std::uint32_t client_id,
                          std::uint32_t slice_id);
  void add_downlink_session(std::uint32_t ue_ip, std::uint32_t client_id,
                            std::uint32_t slice_id, std::uint32_t teid,
                            std::uint32_t enb_ip, std::uint32_t n3_ip);
  // PFCP session teardown. O(1) hash-probe removals (the churn hot path);
  // return the number of entries removed (0 or 1).
  int remove_uplink_session(std::uint32_t teid);
  int remove_downlink_session(std::uint32_t ue_ip);

  // ---- Applications (shared within a slice) -------------------------------
  void add_application(std::uint32_t slice_id, int priority,
                       std::uint32_t app_prefix, int prefix_len,
                       std::optional<std::uint8_t> proto,
                       std::uint16_t port_lo, std::uint16_t port_hi,
                       std::uint32_t app_id);
  // Removes the shared entry with this exact match (priority/app id are not
  // part of the identity; the controller never installs two entries with
  // the same match). Returns the number removed.
  int remove_application(std::uint32_t slice_id, std::uint32_t app_prefix,
                         int prefix_len, std::optional<std::uint8_t> proto,
                         std::uint16_t port_lo, std::uint16_t port_hi);

  // ---- Terminations (per client) -------------------------------------------
  void add_termination(std::uint32_t client_id, std::uint32_t app_id,
                       bool allow);
  int remove_termination(std::uint32_t client_id, std::uint32_t app_id);

  Decision process(p4rt::Packet& pkt, int in_port, int switch_id) override;
  std::string name() const override { return "aether-upf"; }
  // Registers all four UPF tables under fwd.upf.<table>.*.
  void attach_metrics(obs::Registry* registry) override;

  // Full-state snapshot: the four tables (in storage order, preserving
  // churn-dependent tie-breaks) plus the drop totals. Session state is
  // runtime-mutable — exactly what a restarted hydrad cannot rebuild from
  // the scenario.
  bool has_state() const override { return true; }
  void save_state(std::ostream& out) const override;
  void load_state(std::istream& in) override;

  void invalidate_caches() override {
    sessions_ul_.invalidate_cache();
    sessions_dl_.invalidate_cache();
    applications_.invalidate_cache();
    terminations_.invalidate_cache();
    if (router_ != nullptr) router_->invalidate_caches();
  }

  std::uint64_t termination_drops() const {
    return termination_drops_.load(std::memory_order_relaxed);
  }
  std::uint64_t session_miss_drops() const {
    return session_miss_drops_.load(std::memory_order_relaxed);
  }
  std::size_t application_entries() const { return applications_.size(); }

 private:
  // NOTE (parallel engine): the four tables below are instance-wide, so
  // one UpfProgram instance must serve exactly one switch (the paper's
  // deployment shape — the UPF runs on one fabric switch). Install a
  // separate instance per switch to serve several.
  std::shared_ptr<Ipv4EcmpProgram> router_;

  p4rt::Table sessions_ul_{"sessions_uplink",
                           {{p4rt::MatchKind::kExact, 32}}};  // teid
  p4rt::Table sessions_dl_{"sessions_downlink",
                           {{p4rt::MatchKind::kExact, 32}}};  // ue ip
  p4rt::Table applications_{"applications",
                            {{p4rt::MatchKind::kExact, 32},    // slice
                             {p4rt::MatchKind::kTernary, 32},  // app ip
                             {p4rt::MatchKind::kRange, 16},    // l4 port
                             {p4rt::MatchKind::kTernary, 8}}}; // proto
  p4rt::Table terminations_{"terminations",
                            {{p4rt::MatchKind::kExact, 32},    // client
                             {p4rt::MatchKind::kExact, 32}}};  // app

  std::atomic<std::uint64_t> termination_drops_{0};
  std::atomic<std::uint64_t> session_miss_drops_{0};
};

}  // namespace hydra::fwd
