file(REMOVE_RECURSE
  "CMakeFiles/ltlf_properties.dir/ltlf_properties.cpp.o"
  "CMakeFiles/ltlf_properties.dir/ltlf_properties.cpp.o.d"
  "ltlf_properties"
  "ltlf_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltlf_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
