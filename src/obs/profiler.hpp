// Engine phase profiler — where do epochs spend their time?
//
// The execution engines (net/engine.hpp) are instrumented with phase spans:
//
//   track 0        the engine main loop — pop_window, commit, barrier, and
//                  one "epoch" span per window carrying its gauges (item
//                  counts, degradation mode);
//   track 1 + s    shard s's compute phase (shard 0 runs on the main
//                  thread; shards 1.. on pool workers).
//
// Spans land in per-track buffers — each track has exactly one writer
// thread, so recording takes no locks — and export as Chrome trace-event
// JSON ("X" complete events, microsecond timestamps), loadable directly in
// Perfetto / chrome://tracing. Phase latencies additionally feed fixed-
// bucket histograms in the metrics registry ("engine.phase.*_us",
// "engine.epoch.*"); worker-shard histograms are attached to the shard's
// shadow registry and folded into the main one by Registry::absorb_counters
// at epoch barriers, exactly like hot-path counters.
//
// Disabled discipline: engines hold a raw EngineProfiler pointer that is
// null unless profiling is armed — the entire disabled cost is one branch
// per phase. Span timestamps are wall-clock (this is a profiler), so trace
// exports are NOT run-deterministic; nothing here feeds the engine-
// equivalence contract.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace hydra::obs {

class EngineProfiler {
 public:
  EngineProfiler();

  // Sizes the track buffers for `workers` compute shards (tracks 1..N) plus
  // the main loop (track 0), dropping recorded spans. Called by the network
  // whenever the engine or worker count changes.
  void configure(int workers);
  int workers() const { return workers_; }

  // Microseconds since this profiler was constructed (wall clock).
  double now_us() const;

  // ---- metric wiring (net::Network::rewire_observability) ----------------
  // Main-loop phase histograms + epoch gauges into `reg` (the main
  // registry); per-shard compute histograms into that shard's sink (shadow
  // registry for parallel workers). Same histogram name on every shard, so
  // the barrier merge aggregates them.
  void attach_main(Registry& reg);
  void attach_worker(int shard, Registry& reg);
  void detach();

  // ---- engine-facing recording hooks -------------------------------------
  void pop_window(double t0_us, double t1_us, std::size_t popped);
  // One parallel epoch: item counts, execution mode ("parallel" for
  // switch-group sharding, "flow" for flow-affinity sharding, or the
  // serial-degradation reason: "callbacks", "small_window", "one_worker")
  // and the adaptive lookahead multiplier the window ran at (1 = base
  // lookahead). Each mode gets its own "engine.epochs.<mode>" counter and
  // the multiplier feeds the "engine.epoch.lookahead_mult" histogram.
  void epoch(double t0_us, double t1_us, std::size_t items,
             std::size_t switch_items, const char* mode,
             std::size_t lookahead_mult = 1);
  void compute(int shard, double t0_us, double t1_us, std::size_t items);
  void commit(double t0_us, double t1_us);
  void barrier(double t0_us, double t1_us);
  // SerialEngine: one span per switch-work event.
  void serial_hop(double t0_us, double t1_us);

  // ---- export -------------------------------------------------------------
  // {"displayTimeUnit": ..., "traceEvents": [...]} — Chrome trace-event
  // format. Includes thread_name metadata per track.
  std::string to_chrome_trace_json() const;
  void clear();  // drops spans, keeps wiring and track layout
  std::size_t span_count() const;
  std::uint64_t dropped_spans() const;

 private:
  // A bounded ring would reorder the timeline; instead each track stops
  // recording at a cap and counts what it dropped.
  static constexpr std::size_t kMaxSpansPerTrack = 1u << 18;

  struct Span {
    const char* name = nullptr;
    double ts_us = 0.0;
    double dur_us = 0.0;
    int n_args = 0;
    const char* keys[3] = {nullptr, nullptr, nullptr};
    double vals[3] = {0.0, 0.0, 0.0};
    const char* note = nullptr;  // rendered as args.mode
  };

  void push(int track, const Span& span);

  int workers_ = 0;
  std::vector<std::vector<Span>> tracks_;  // [0] main, [1+s] shard s
  std::vector<std::uint64_t> dropped_;     // parallel to tracks_
  std::chrono::steady_clock::time_point epoch_;

  Histogram pop_us_;
  Histogram commit_us_;
  Histogram barrier_us_;
  Histogram epoch_items_;
  Histogram epoch_switch_items_;
  Histogram lookahead_mult_;
  Counter epochs_;
  Counter serial_windows_;
  // Per-mode epoch counters ("engine.epochs.<mode>"); see epoch().
  Counter epochs_parallel_;
  Counter epochs_flow_;
  Counter epochs_callbacks_;
  Counter epochs_one_worker_;
  Counter epochs_small_window_;
  std::vector<Histogram> compute_us_;  // per shard, shadow-registry backed
};

}  // namespace hydra::obs
