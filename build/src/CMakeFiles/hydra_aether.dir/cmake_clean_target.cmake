file(REMOVE_RECURSE
  "libhydra_aether.a"
)
