// Million-subscriber Aether UPF workload (§5.2 at scale).
//
// Prefills a UE population through PFCP attach (wall-clock timing every
// rule push), then streams a Poisson superposition of attach/detach churn
// and GTP-U uplink traffic through the UPF leaf with the
// application_filtering checker deployed. Sweeps sessions x churn rate and
// emits BENCH_million_users.json with, per configuration:
//
//   * sim-domain packet accounting (identical across engines/machines for
//     a fixed seed);
//   * wall-clock uplink throughput and attach (rule-push) latency
//     percentiles — prefill and under-churn measured separately;
//   * steady-state RSS (VmRSS) and the shared-Applications-table entry
//     count (the TCAM-sharing optimization: O(rules), not O(sessions));
//   * the arena audit counter across the measured window — zero slab
//     growth proves the packet hot path allocates nothing after warmup.
//
//   $ ./million_users [--sessions N] [--churn-per-s X] [--packets-per-s X]
//                     [--duration-s X] [--warmup-s X] [--seed N]
//                     [--engine=serial|parallel[:N]] [--json PATH]
//                     [--metrics PATH] [--sweep]
//
// --metrics writes ONLY deterministic sim-domain numbers (no wall clock,
// no RSS), so serial and parallel runs of the same seed must produce
// byte-identical files — CI compares them with cmp.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "aether/churn.hpp"
#include "aether/controller.hpp"
#include "aether/slice.hpp"
#include "cli_parse.hpp"
#include "forwarding/ipv4_ecmp.hpp"
#include "forwarding/upf.hpp"
#include "hydra/hydra.hpp"
#include "net/engine.hpp"
#include "net/network.hpp"
#include "util/arena.hpp"

using namespace hydra;

namespace {

struct RunConfig {
  std::uint32_t sessions = 0;
  double churn_per_s = 0.0;
  double packets_per_s = 0.0;
  double duration_s = 0.0;
  double warmup_s = 0.0;
  std::uint64_t seed = 0;
};

struct RunResult {
  RunConfig cfg;
  // Sim-domain (deterministic).
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t fwd_dropped = 0;
  std::uint64_t queue_dropped = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t attaches = 0;
  std::uint64_t detaches = 0;
  std::size_t active_sessions = 0;
  std::size_t application_entries = 0;
  std::size_t violations = 0;
  // Wall-clock (machine-dependent; excluded from --metrics).
  double prefill_s = 0.0;
  double run_s = 0.0;
  double throughput_pps = 0.0;
  double prefill_attach_p50_us = 0.0;
  double prefill_attach_p99_us = 0.0;
  double churn_attach_p50_us = 0.0;
  double churn_attach_p99_us = 0.0;
  double churn_attach_max_us = 0.0;
  long rss_mb = 0;
  std::uint64_t arena_slabs_warmup = 0;   // slab allocations up to warmup
  std::uint64_t arena_slabs_measured = 0; // slab allocations during measure
};

net::EngineKind g_kind = net::EngineKind::kSerial;
int g_workers = 0;

long read_rss_mb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  long kb = -1;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %ld kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb < 0 ? -1 : kb / 1024;
}

double percentile_us(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t i = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(i, v.size() - 1)] * 1e6;
}

RunResult run_once(const RunConfig& cfg) {
  using clock = std::chrono::steady_clock;
  RunResult r;
  r.cfg = cfg;

  auto fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net(fabric.topo);
  net.set_engine(g_kind, g_workers);
  auto routing = fwd::install_leaf_spine_routing(net, fabric);
  auto upf = std::make_shared<fwd::UpfProgram>(routing);
  net.set_program(fabric.leaves[0], upf);
  const int dep =
      net.deploy(compile_library_checker("application_filtering"));
  net.set_observability(true);

  aether::AetherController ctl(net, upf, dep);
  ctl.define_slice(aether::example_camera_slice(1));

  aether::SessionChurnGenerator::Config gc;
  gc.sessions = cfg.sessions;
  gc.churn_per_s = cfg.churn_per_s;
  gc.packets_per_s = cfg.packets_per_s;
  gc.slice_id = 1;
  gc.enb_host = fabric.hosts[0][0];
  gc.enb_ip = net.topo().node(fabric.hosts[0][0]).ip;
  gc.n3_ip = 0x0a0001fe;
  gc.app_ip = net.topo().node(fabric.hosts[1][0]).ip;
  gc.seed = cfg.seed;
  aether::SessionChurnGenerator gen(net, ctl, gc);

  const auto p0 = clock::now();
  gen.prefill();
  r.prefill_s = std::chrono::duration<double>(clock::now() - p0).count();
  const std::size_t prefill_samples = gen.attach_latencies().size();

  // Warmup: size the packet/control pools to the in-flight peak so the
  // measured window shows zero arena slab growth.
  gen.start(0.0, cfg.warmup_s);
  net.events().run();
  r.arena_slabs_warmup = util::arena_allocations();

  const auto t0 = clock::now();
  const std::uint64_t sent_before = gen.packets_sent();
  gen.start(net.events().now(), cfg.duration_s);
  net.events().run();
  r.run_s = std::chrono::duration<double>(clock::now() - t0).count();
  r.arena_slabs_measured = util::arena_allocations() - r.arena_slabs_warmup;

  const auto& c = net.counters();
  r.injected = c.injected;
  r.delivered = c.delivered;
  r.fwd_dropped = c.fwd_dropped;
  r.queue_dropped = c.queue_dropped;
  r.packets_sent = gen.packets_sent();
  r.attaches = gen.attaches();
  r.detaches = gen.detaches();
  r.active_sessions = gen.active_sessions();
  r.application_entries = upf->application_entries();
  r.violations = net.violation_reports().size();
  r.throughput_pps =
      r.run_s > 0.0
          ? static_cast<double>(r.packets_sent - sent_before) / r.run_s
          : 0.0;

  const auto& lat = gen.attach_latencies();
  const std::vector<double> pre(lat.begin(),
                                lat.begin() + static_cast<std::ptrdiff_t>(
                                                  prefill_samples));
  const std::vector<double> churn(
      lat.begin() + static_cast<std::ptrdiff_t>(prefill_samples), lat.end());
  r.prefill_attach_p50_us = percentile_us(pre, 0.50);
  r.prefill_attach_p99_us = percentile_us(pre, 0.99);
  r.churn_attach_p50_us = percentile_us(churn, 0.50);
  r.churn_attach_p99_us = percentile_us(churn, 0.99);
  r.churn_attach_max_us = percentile_us(churn, 1.00);
  r.rss_mb = read_rss_mb();
  return r;
}

void append_metrics(std::string& out, const RunResult& r) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "sessions=%" PRIu32 " churn_per_s=%.0f injected=%" PRIu64
      " delivered=%" PRIu64 " fwd_dropped=%" PRIu64 " queue_dropped=%" PRIu64
      " packets_sent=%" PRIu64 " attaches=%" PRIu64 " detaches=%" PRIu64
      " active=%zu app_entries=%zu violations=%zu\n",
      r.cfg.sessions, r.cfg.churn_per_s, r.injected, r.delivered,
      r.fwd_dropped, r.queue_dropped, r.packets_sent, r.attaches, r.detaches,
      r.active_sessions, r.application_entries, r.violations);
  out += buf;
}

void append_json(std::string& out, const RunResult& r, bool last) {
  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      "    {\"sessions\": %" PRIu32 ", \"churn_per_s\": %.0f, "
      "\"packets_per_s\": %.0f, \"duration_s\": %.3f,\n"
      "     \"injected\": %" PRIu64 ", \"delivered\": %" PRIu64
      ", \"fwd_dropped\": %" PRIu64 ", \"queue_dropped\": %" PRIu64 ",\n"
      "     \"attaches\": %" PRIu64 ", \"detaches\": %" PRIu64
      ", \"active_sessions\": %zu, \"application_entries\": %zu, "
      "\"violations\": %zu,\n"
      "     \"prefill_s\": %.3f, \"run_s\": %.3f, \"throughput_pps\": %.0f, "
      "\"rss_mb\": %ld,\n"
      "     \"prefill_attach_p50_us\": %.2f, \"prefill_attach_p99_us\": "
      "%.2f,\n"
      "     \"churn_attach_p50_us\": %.2f, \"churn_attach_p99_us\": %.2f, "
      "\"churn_attach_max_us\": %.2f,\n"
      "     \"arena_slabs_warmup\": %" PRIu64
      ", \"arena_slabs_measured\": %" PRIu64 "}%s\n",
      r.cfg.sessions, r.cfg.churn_per_s, r.cfg.packets_per_s,
      r.cfg.duration_s, r.injected, r.delivered, r.fwd_dropped,
      r.queue_dropped, r.attaches, r.detaches, r.active_sessions,
      r.application_entries, r.violations, r.prefill_s, r.run_s,
      r.throughput_pps, r.rss_mb, r.prefill_attach_p50_us,
      r.prefill_attach_p99_us, r.churn_attach_p50_us, r.churn_attach_p99_us,
      r.churn_attach_max_us, r.arena_slabs_warmup, r.arena_slabs_measured,
      last ? "" : ",");
  out += buf;
}

int usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s [--sessions N] [--churn-per-s X] [--packets-per-s X]\n"
      "          [--duration-s X] [--warmup-s X] [--seed N]\n"
      "          [--engine=serial|parallel[:N]] [--json PATH]\n"
      "          [--metrics PATH] [--sweep]\n",
      prog);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const char* prog = argv[0];
  RunConfig base;
  base.sessions = 1000000;
  base.churn_per_s = 2000.0;
  base.packets_per_s = 100000.0;
  base.duration_s = 1.0;
  base.warmup_s = 0.05;
  base.seed = 42;
  std::string json_path = "BENCH_million_users.json";
  std::string metrics_path;
  bool sweep = false;

  for (int i = 1; i < argc; ++i) {
    long lv = 0;
    if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      if (!tools::parse_long_arg(prog, "--sessions", argv[++i], 1,
                                 100000000, &lv)) {
        return usage(prog);
      }
      base.sessions = static_cast<std::uint32_t>(lv);
    } else if (std::strcmp(argv[i], "--churn-per-s") == 0 && i + 1 < argc) {
      ++i;
      if (std::strcmp(argv[i], "0") == 0) {
        base.churn_per_s = 0.0;
      } else if (!tools::parse_positive_double_arg(prog, "--churn-per-s",
                                                   argv[i],
                                                   &base.churn_per_s)) {
        return usage(prog);
      }
    } else if (std::strcmp(argv[i], "--packets-per-s") == 0 &&
               i + 1 < argc) {
      if (!tools::parse_positive_double_arg(prog, "--packets-per-s",
                                            argv[++i],
                                            &base.packets_per_s)) {
        return usage(prog);
      }
    } else if (std::strcmp(argv[i], "--duration-s") == 0 && i + 1 < argc) {
      if (!tools::parse_positive_double_arg(prog, "--duration-s", argv[++i],
                                            &base.duration_s)) {
        return usage(prog);
      }
    } else if (std::strcmp(argv[i], "--warmup-s") == 0 && i + 1 < argc) {
      if (!tools::parse_positive_double_arg(prog, "--warmup-s", argv[++i],
                                            &base.warmup_s)) {
        return usage(prog);
      }
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      if (!tools::parse_u64_arg(prog, "--seed", argv[++i], &base.seed)) {
        return usage(prog);
      }
    } else if (std::strncmp(argv[i], "--engine=", 9) == 0) {
      g_kind = net::parse_engine_kind(argv[i] + 9, &g_workers);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--sweep") == 0) {
      sweep = true;
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", prog, argv[i]);
      return usage(prog);
    }
  }

  std::vector<RunConfig> configs;
  if (sweep) {
    // Sessions x churn-rate grid up to the headline configuration.
    for (const std::uint32_t sessions : {10000u, 100000u, base.sessions}) {
      for (const double churn : {0.0, base.churn_per_s}) {
        RunConfig c = base;
        c.sessions = sessions;
        c.churn_per_s = churn;
        configs.push_back(c);
      }
    }
  } else {
    configs.push_back(base);
  }

  std::printf("million_users (engine %s): %zu configuration(s)\n\n",
              net::engine_kind_name(g_kind), configs.size());
  std::printf("  %-9s %-9s %10s %10s %9s %8s %7s %6s\n", "sessions",
              "churn/s", "delivered", "pkts/s", "attach_us", "rss_mb",
              "slabs", "apps");

  std::string metrics;
  std::string json = "{\n  \"bench\": \"million_users\",\n";
  {
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "  \"engine\": \"%s\",\n  \"seed\": %" PRIu64
                  ",\n  \"configs\": [\n",
                  net::engine_kind_name(g_kind), base.seed);
    json += buf;
  }
  bool hot_path_clean = true;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const RunResult r = run_once(configs[i]);
    hot_path_clean = hot_path_clean && r.arena_slabs_measured == 0;
    std::printf("  %-9" PRIu32 " %-9.0f %10" PRIu64 " %10.0f %9.1f %8ld "
                "%7" PRIu64 " %6zu\n",
                r.cfg.sessions, r.cfg.churn_per_s, r.delivered,
                r.throughput_pps, r.churn_attach_p50_us, r.rss_mb,
                r.arena_slabs_measured, r.application_entries);
    append_metrics(metrics, r);
    append_json(json, r, i + 1 == configs.size());
  }
  json += "  ],\n";
  json += std::string("  \"hot_path_zero_alloc\": ") +
          (hot_path_clean ? "true" : "false") + "\n}\n";

  if (!tools::write_text_file(json_path, json)) return 1;
  std::printf("\nwrote %s\n", json_path.c_str());
  if (!metrics_path.empty()) {
    if (!tools::write_text_file(metrics_path, metrics)) return 1;
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  if (!hot_path_clean) {
    std::fprintf(stderr,
                 "FAIL: arena slabs grew during a measured window (hot "
                 "path allocated)\n");
    return 1;
  }
  return 0;
}
