#include "aether/controller.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace hydra::aether {

AetherController::AetherController(net::Network& net,
                                   std::shared_ptr<fwd::UpfProgram> upf,
                                   int hydra_deployment)
    : net_(net), upf_(std::move(upf)), hydra_deployment_(hydra_deployment) {
  if (!upf_) throw std::invalid_argument("AetherController: null UPF");
}

void AetherController::define_slice(Slice slice) {
  const std::uint32_t id = slice.id;
  SliceState state;
  state.config = std::move(slice);
  if (!slices_.emplace(id, std::move(state)).second) {
    throw std::invalid_argument("slice " + std::to_string(id) +
                                " already defined");
  }
}

const Slice& AetherController::slice(std::uint32_t slice_id) const {
  return slices_.at(slice_id).config;
}

std::uint32_t AetherController::client_id(std::uint64_t imsi) const {
  return client_ids_.at(imsi);
}

const std::vector<Client>& AetherController::clients(
    std::uint32_t slice_id) const {
  return slices_.at(slice_id).attached;
}

std::uint32_t AetherController::ensure_application(SliceState& s,
                                                   const FilteringRule& rule) {
  // TCAM-saving sharing: reuse an installed entry when the match AND
  // priority AND action are identical; otherwise install a new entry under
  // a fresh app ID. Old entries are never migrated, and are removed only
  // when their last referencing client detaches.
  for (const auto& ia : s.installed_apps) {
    if (ia.rule.same_match(rule)) return ia.app_id;
  }
  const std::uint32_t app_id = next_app_id_++;
  upf_->add_application(s.config.id, rule.priority, rule.app_prefix,
                        rule.prefix_len, rule.proto, rule.port_lo,
                        rule.port_hi, app_id);
  s.installed_apps.push_back({rule, app_id, 0});
  return app_id;
}

void AetherController::release_application(SliceState& s,
                                           std::uint32_t app_id) {
  for (std::size_t i = 0; i < s.installed_apps.size(); ++i) {
    auto& ia = s.installed_apps[i];
    if (ia.app_id != app_id) continue;
    if (--ia.refs == 0) {
      upf_->remove_application(s.config.id, ia.rule.app_prefix,
                               ia.rule.prefix_len, ia.rule.proto,
                               ia.rule.port_lo, ia.rule.port_hi);
      s.installed_apps[i] = s.installed_apps.back();
      s.installed_apps.pop_back();
    }
    return;
  }
}

std::vector<p4rt::TableEntry> AetherController::build_policy_entries(
    const SliceState& s, const Client& client) const {
  // The checker's filtering_actions dict keys (ue_ip, proto, app_ip,
  // l4_port). The entry set is identical on every switch, so build it once
  // and install/remove copies — the per-port expansion of a range rule
  // would otherwise be re-derived per switch.
  std::vector<p4rt::TableEntry> entries;
  for (const auto& rule : s.config.rules) {
    const std::uint32_t mask32 =
        rule.prefix_len == 0
            ? 0
            : static_cast<std::uint32_t>(BitVec::mask(32)
                                         << (32 - rule.prefix_len));
    const auto action_code =
        BitVec(8, static_cast<std::uint64_t>(rule.action));
    const bool any_port = rule.port_lo == 0 && rule.port_hi == 0xffff;
    auto make_entry = [&](std::optional<std::uint16_t> port) {
      p4rt::TableEntry e;
      e.priority = rule.priority;
      e.patterns.push_back(
          p4rt::KeyPattern::exact(BitVec(32, client.ue_ip)));
      e.patterns.push_back(rule.proto
                               ? p4rt::KeyPattern::exact(
                                     BitVec(8, *rule.proto))
                               : p4rt::KeyPattern::wildcard(8));
      e.patterns.push_back(p4rt::KeyPattern::ternary(
          BitVec(32, rule.app_prefix), BitVec(32, mask32)));
      e.patterns.push_back(port ? p4rt::KeyPattern::exact(BitVec(16, *port))
                                : p4rt::KeyPattern::wildcard(16));
      e.action_data.push_back(action_code);
      return e;
    };
    if (any_port) {
      entries.push_back(make_entry(std::nullopt));
    } else {
      for (std::uint32_t p = rule.port_lo; p <= rule.port_hi; ++p) {
        entries.push_back(make_entry(static_cast<std::uint16_t>(p)));
      }
    }
  }
  return entries;
}

void AetherController::install_hydra_policy(const SliceState& s,
                                            const Client& client) {
  if (hydra_deployment_ < 0) return;
  const std::vector<p4rt::TableEntry> entries =
      build_policy_entries(s, client);
  for (int sw = 0; sw < net_.topo().node_count(); ++sw) {
    if (net_.topo().node(sw).kind != net::NodeKind::kSwitch) continue;
    auto& table =
        net_.checker_table(hydra_deployment_, sw, "filtering_actions");
    for (const auto& e : entries) table.insert(e);
  }
}

void AetherController::remove_hydra_policy(const SliceState& s,
                                           const Client& client) {
  if (hydra_deployment_ < 0) return;
  // The policy table always reflects the *current* rules (update_slice_rules
  // refreshes it for every attached client), so rebuilding the entries from
  // the current config yields exactly the installed patterns.
  const std::vector<p4rt::TableEntry> entries =
      build_policy_entries(s, client);
  for (int sw = 0; sw < net_.topo().node_count(); ++sw) {
    if (net_.topo().node(sw).kind != net::NodeKind::kSwitch) continue;
    auto& table =
        net_.checker_table(hydra_deployment_, sw, "filtering_actions");
    for (const auto& e : entries) table.remove_if_key_equals(e.patterns);
  }
}

void AetherController::update_slice_rules(std::uint32_t slice_id,
                                          std::vector<FilteringRule> rules) {
  SliceState& s = slices_.at(slice_id);
  s.config.rules = std::move(rules);
  // THE BUG: nothing else happens here for the UPF tables. Attached
  // clients keep their old Applications/Terminations entries; only clients
  // that attach from now on see the new configuration.
  //
  // The Hydra policy table, by contrast, is the operator's intent, so it
  // is refreshed for every attached client of the slice.
  if (hydra_deployment_ >= 0) {
    for (int sw = 0; sw < net_.topo().node_count(); ++sw) {
      if (net_.topo().node(sw).kind != net::NodeKind::kSwitch) continue;
      net_.checker_table(hydra_deployment_, sw, "filtering_actions").clear();
    }
    for (const auto& [id, state] : slices_) {
      for (const auto& c : state.attached) {
        install_hydra_policy(state, c);
      }
    }
  }
}

void AetherController::attach_client(std::uint32_t slice_id,
                                     const Client& client,
                                     std::uint32_t enb_ip,
                                     std::uint32_t n3_ip) {
  SliceState& s = slices_.at(slice_id);
  const auto [it, fresh] = client_ids_.emplace(client.imsi, next_client_id_);
  if (fresh) ++next_client_id_;
  const std::uint32_t cid = it->second;

  upf_->add_uplink_session(client.teid, cid, slice_id);
  upf_->add_downlink_session(client.ue_ip, cid, slice_id, client.teid,
                             enb_ip, n3_ip);

  // PFCP sends the (current) rule list for this client; the controller
  // translates it into shared Applications entries + per-client
  // Terminations, recording which shared entries this attach references so
  // that detach can release them.
  AttachedRecord* rec = nullptr;
  const auto att = attached_index_.find(client.imsi);
  if (att != attached_index_.end()) {
    // Re-attach without a detach (PFCP re-establishment): refresh sessions
    // and pick up any new rules, but keep the single attached record.
    rec = &att->second;
  } else {
    AttachedRecord fresh_rec;
    fresh_rec.slice_id = slice_id;
    fresh_rec.cid = cid;
    fresh_rec.pos = s.attached.size();
    rec = &attached_index_.emplace(client.imsi, std::move(fresh_rec))
               .first->second;
    s.attached.push_back(client);
  }
  for (const auto& rule : s.config.rules) {
    const std::uint32_t aid = ensure_application(s, rule);
    if (std::find(rec->app_ids.begin(), rec->app_ids.end(), aid) !=
        rec->app_ids.end()) {
      continue;  // rules with an identical match share one entry/termination
    }
    for (auto& ia : s.installed_apps) {
      if (ia.app_id == aid) {
        ++ia.refs;
        break;
      }
    }
    upf_->add_termination(cid, aid, rule.action == FilterAction::kAllow);
    rec->app_ids.push_back(aid);
  }
  install_hydra_policy(s, client);
}

bool AetherController::detach_client(std::uint64_t imsi) {
  const auto it = attached_index_.find(imsi);
  if (it == attached_index_.end()) return false;
  const AttachedRecord rec = std::move(it->second);
  attached_index_.erase(it);

  SliceState& s = slices_.at(rec.slice_id);
  const Client client = s.attached[rec.pos];
  upf_->remove_uplink_session(client.teid);
  upf_->remove_downlink_session(client.ue_ip);
  for (const std::uint32_t aid : rec.app_ids) {
    upf_->remove_termination(rec.cid, aid);
    release_application(s, aid);
  }
  remove_hydra_policy(s, client);

  // Swap-pop the attached list; fix the moved client's recorded position.
  const std::size_t last = s.attached.size() - 1;
  if (rec.pos != last) {
    s.attached[rec.pos] = s.attached[last];
    attached_index_.at(s.attached[rec.pos].imsi).pos = rec.pos;
  }
  s.attached.pop_back();
  // client_ids_ keeps the imsi -> cid binding for re-attach.
  return true;
}

}  // namespace hydra::aether
