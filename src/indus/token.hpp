// Token stream produced by the Indus lexer.
#pragma once

#include <cstdint>
#include <string>

#include "indus/source_loc.hpp"

namespace hydra::indus {

enum class Tok {
  // Literals and identifiers.
  kIdent,
  kNumber,
  kTrue,
  kFalse,
  kString,  // annotation payloads, e.g. @"hdr.ipv4.src_addr"

  // Keywords.
  kTele,
  kSensor,
  kHeader,
  kControl,
  kBitKw,   // `bit`
  kBoolKw,  // `bool`
  kSetKw,
  kDictKw,
  kIf,
  kElsif,
  kElse,
  kFor,
  kIn,
  kReject,
  kReport,
  kPass,

  // Punctuation / operators.
  kLBrace,
  kRBrace,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLAngle,     // <
  kRAngle,     // >
  kLe,         // <=
  kGe,         // >=
  kEq,         // ==
  kNe,         // !=
  kAssign,     // =
  kPlusAssign, // +=
  kMinusAssign,// -=
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kAmp,        // &
  kPipe,       // |
  kCaret,      // ^
  kTilde,      // ~
  kShl,        // <<
  kShr,        // >>
  kAndAnd,     // &&
  kOrOr,       // ||
  kBang,       // !
  kComma,
  kSemi,
  kDot,
  kAt,         // @ (header annotations)

  kEof,
};

const char* tok_name(Tok t);

struct Token {
  Tok kind = Tok::kEof;
  std::string text;          // identifier text / string payload
  std::uint64_t number = 0;  // numeric literal value
  Loc loc;

  std::string to_string() const;
};

}  // namespace hydra::indus
