#include "forwarding/upf.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

#include "p4rt/table_io.hpp"

namespace hydra::fwd {

void UpfProgram::save_state(std::ostream& out) const {
  for (const p4rt::Table* t :
       {&sessions_ul_, &sessions_dl_, &applications_, &terminations_}) {
    out << ' ';
    p4rt::serialize_table(*t, out);
  }
  out << ' ' << termination_drops_.load(std::memory_order_relaxed) << ' '
      << session_miss_drops_.load(std::memory_order_relaxed);
}

void UpfProgram::load_state(std::istream& in) {
  for (p4rt::Table* t :
       {&sessions_ul_, &sessions_dl_, &applications_, &terminations_})
    p4rt::deserialize_table(*t, in);
  std::uint64_t term = 0, miss = 0;
  if (!(in >> term >> miss))
    throw std::runtime_error("upf snapshot: bad drop totals");
  termination_drops_.store(term, std::memory_order_relaxed);
  session_miss_drops_.store(miss, std::memory_order_relaxed);
}

UpfProgram::UpfProgram(std::shared_ptr<Ipv4EcmpProgram> router)
    : router_(std::move(router)) {}

void UpfProgram::add_uplink_session(std::uint32_t teid,
                                    std::uint32_t client_id,
                                    std::uint32_t slice_id) {
  sessions_ul_.insert_exact({BitVec(32, teid)},
                            {BitVec(32, client_id), BitVec(32, slice_id)});
}

void UpfProgram::add_downlink_session(std::uint32_t ue_ip,
                                      std::uint32_t client_id,
                                      std::uint32_t slice_id,
                                      std::uint32_t teid,
                                      std::uint32_t enb_ip,
                                      std::uint32_t n3_ip) {
  sessions_dl_.insert_exact(
      {BitVec(32, ue_ip)},
      {BitVec(32, client_id), BitVec(32, slice_id), BitVec(32, teid),
       BitVec(32, enb_ip), BitVec(32, n3_ip)});
}

int UpfProgram::remove_uplink_session(std::uint32_t teid) {
  return sessions_ul_.remove_if_key_equals(
      {p4rt::KeyPattern::exact(BitVec(32, teid))});
}

int UpfProgram::remove_downlink_session(std::uint32_t ue_ip) {
  return sessions_dl_.remove_if_key_equals(
      {p4rt::KeyPattern::exact(BitVec(32, ue_ip))});
}

void UpfProgram::add_application(std::uint32_t slice_id, int priority,
                                 std::uint32_t app_prefix, int prefix_len,
                                 std::optional<std::uint8_t> proto,
                                 std::uint16_t port_lo, std::uint16_t port_hi,
                                 std::uint32_t app_id) {
  p4rt::TableEntry e;
  e.priority = priority;
  e.patterns.push_back(p4rt::KeyPattern::exact(BitVec(32, slice_id)));
  const std::uint64_t mask =
      prefix_len == 0 ? 0 : (BitVec::mask(32) << (32 - prefix_len)) &
                                BitVec::mask(32);
  e.patterns.push_back(
      p4rt::KeyPattern::ternary(BitVec(32, app_prefix), BitVec(32, mask)));
  e.patterns.push_back(
      p4rt::KeyPattern::range(BitVec(16, port_lo), BitVec(16, port_hi)));
  e.patterns.push_back(proto ? p4rt::KeyPattern::exact(BitVec(8, *proto))
                             : p4rt::KeyPattern::wildcard(8));
  e.action = "set_app_id";
  e.action_data.push_back(BitVec(32, app_id));
  applications_.insert(std::move(e));
}

int UpfProgram::remove_application(std::uint32_t slice_id,
                                   std::uint32_t app_prefix, int prefix_len,
                                   std::optional<std::uint8_t> proto,
                                   std::uint16_t port_lo,
                                   std::uint16_t port_hi) {
  // Mirrors add_application's pattern construction field for field.
  const std::uint64_t mask =
      prefix_len == 0 ? 0 : (BitVec::mask(32) << (32 - prefix_len)) &
                                BitVec::mask(32);
  std::vector<p4rt::KeyPattern> patterns;
  patterns.push_back(p4rt::KeyPattern::exact(BitVec(32, slice_id)));
  patterns.push_back(
      p4rt::KeyPattern::ternary(BitVec(32, app_prefix), BitVec(32, mask)));
  patterns.push_back(
      p4rt::KeyPattern::range(BitVec(16, port_lo), BitVec(16, port_hi)));
  patterns.push_back(proto ? p4rt::KeyPattern::exact(BitVec(8, *proto))
                           : p4rt::KeyPattern::wildcard(8));
  return applications_.remove_if_key_equals(patterns);
}

void UpfProgram::add_termination(std::uint32_t client_id,
                                 std::uint32_t app_id, bool allow) {
  terminations_.insert_exact(
      {BitVec(32, client_id), BitVec(32, app_id)},
      {BitVec::from_bool(allow)}, allow ? "forward" : "drop");
}

int UpfProgram::remove_termination(std::uint32_t client_id,
                                   std::uint32_t app_id) {
  return terminations_.remove_if_key_equals(
      {p4rt::KeyPattern::exact(BitVec(32, client_id)),
       p4rt::KeyPattern::exact(BitVec(32, app_id))});
}

void UpfProgram::attach_metrics(obs::Registry* registry) {
  const auto wire = [registry](p4rt::Table& table) {
    p4rt::TableMetrics tm;
    if (registry != nullptr) {
      const std::string base = "fwd.upf." + table.name();
      tm.hits = registry->counter(base + ".hits");
      tm.misses = registry->counter(base + ".misses");
      tm.cache_hits = registry->counter(base + ".cache_hits");
    }
    table.attach_metrics(tm);
  };
  wire(sessions_ul_);
  wire(sessions_dl_);
  wire(applications_);
  wire(terminations_);
}

UpfProgram::Decision UpfProgram::process(p4rt::Packet& pkt, int in_port,
                                         int switch_id) {
  Decision d;
  std::uint32_t client_id = 0;
  std::uint32_t slice_id = 0;
  std::uint32_t app_ip = 0;
  std::uint16_t app_port = 0;
  std::uint8_t app_proto = 0;
  bool is_upf_traffic = false;

  if (pkt.gtpu && pkt.ipv4 && pkt.l4 && pkt.l4->dport == p4rt::kGtpuPort) {
    // Uplink: match the tunnel, then decapsulate.
    const p4rt::TableEntry* s =
        sessions_ul_.lookup({BitVec(32, pkt.gtpu->teid)});
    if (s == nullptr) {
      session_miss_drops_.fetch_add(1, std::memory_order_relaxed);
      d.drop = true;
      d.reason = "session_miss";
      return d;
    }
    client_id = static_cast<std::uint32_t>(s->action_data[0].value());
    slice_id = static_cast<std::uint32_t>(s->action_data[1].value());
    p4rt::gtpu_decap_inplace(pkt);
    // The application is identified by the destination side.
    if (pkt.ipv4) {
      app_ip = pkt.ipv4->dst;
      app_proto = pkt.ipv4->proto;
    }
    if (pkt.l4) app_port = pkt.l4->dport;
    is_upf_traffic = true;
  } else if (pkt.ipv4) {
    const p4rt::TableEntry* s =
        sessions_dl_.lookup({BitVec(32, pkt.ipv4->dst)});
    if (s != nullptr) {
      // Downlink: the application is the remote (source) side.
      client_id = static_cast<std::uint32_t>(s->action_data[0].value());
      slice_id = static_cast<std::uint32_t>(s->action_data[1].value());
      app_ip = pkt.ipv4->src;
      app_proto = pkt.ipv4->proto;
      if (pkt.l4) app_port = pkt.l4->sport;
      const auto teid = static_cast<std::uint32_t>(s->action_data[2].value());
      const auto enb = static_cast<std::uint32_t>(s->action_data[3].value());
      const auto n3 = static_cast<std::uint32_t>(s->action_data[4].value());
      p4rt::gtpu_encap_inplace(pkt, n3, enb, teid);
      is_upf_traffic = true;
    }
  }

  if (is_upf_traffic) {
    const p4rt::TableEntry* app = applications_.lookup(
        {BitVec(32, slice_id), BitVec(32, app_ip), BitVec(16, app_port),
         BitVec(8, app_proto)});
    // Figure 11: a miss in Applications leaves app_id 0, which never has a
    // termination — default drop.
    const std::uint32_t app_id =
        app != nullptr
            ? static_cast<std::uint32_t>(app->action_data[0].value())
            : 0;
    const p4rt::TableEntry* term =
        terminations_.lookup({BitVec(32, client_id), BitVec(32, app_id)});
    if (term == nullptr || !term->action_data[0].as_bool()) {
      termination_drops_.fetch_add(1, std::memory_order_relaxed);
      d.drop = true;
      d.reason = "no_termination";
      return d;
    }
  }

  return router_->process(pkt, in_port, switch_id);
}

}  // namespace hydra::fwd
