# Empty compiler generated dependencies file for frontend_extra_test.
# This may be replaced when dependencies are built.
