#include "obs/profiler.hpp"

#include <cstdio>

namespace hydra::obs {

namespace {

// Phase latencies span ~100ns (cached pop) to ~100ms (huge epochs).
std::vector<double> phase_bounds() {
  return {0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
          5000.0, 25000.0, 100000.0};
}

std::vector<double> item_bounds() {
  return {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
          4096.0};
}

// The adaptive lookahead multiplier is a power of two in [1, 64].
std::vector<double> mult_bounds() {
  return {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0};
}

std::string format_us(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

EngineProfiler::EngineProfiler() : epoch_(std::chrono::steady_clock::now()) {
  configure(0);
}

void EngineProfiler::configure(int workers) {
  workers_ = workers < 0 ? 0 : workers;
  tracks_.assign(static_cast<std::size_t>(workers_) + 1, {});
  dropped_.assign(tracks_.size(), 0);
  compute_us_.assign(static_cast<std::size_t>(workers_), Histogram{});
}

double EngineProfiler::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void EngineProfiler::attach_main(Registry& reg) {
  pop_us_ = reg.histogram("engine.phase.pop_window_us", phase_bounds());
  commit_us_ = reg.histogram("engine.phase.commit_us", phase_bounds());
  barrier_us_ = reg.histogram("engine.phase.barrier_us", phase_bounds());
  epoch_items_ = reg.histogram("engine.epoch.items", item_bounds());
  epoch_switch_items_ =
      reg.histogram("engine.epoch.switch_items", item_bounds());
  lookahead_mult_ =
      reg.histogram("engine.epoch.lookahead_mult", mult_bounds());
  epochs_ = reg.counter("engine.epochs");
  serial_windows_ = reg.counter("engine.epochs_serial_degraded");
  epochs_parallel_ = reg.counter("engine.epochs.parallel");
  epochs_flow_ = reg.counter("engine.epochs.flow");
  epochs_callbacks_ = reg.counter("engine.epochs.callbacks");
  epochs_one_worker_ = reg.counter("engine.epochs.one_worker");
  epochs_small_window_ = reg.counter("engine.epochs.small_window");
}

void EngineProfiler::attach_worker(int shard, Registry& reg) {
  if (shard >= 0 && static_cast<std::size_t>(shard) < compute_us_.size()) {
    // Same name on every shard: absorbed into one aggregate at barriers.
    compute_us_[static_cast<std::size_t>(shard)] =
        reg.histogram("engine.phase.compute_us", phase_bounds());
  }
}

void EngineProfiler::detach() {
  pop_us_ = {};
  commit_us_ = {};
  barrier_us_ = {};
  epoch_items_ = {};
  epoch_switch_items_ = {};
  lookahead_mult_ = {};
  epochs_ = {};
  serial_windows_ = {};
  epochs_parallel_ = {};
  epochs_flow_ = {};
  epochs_callbacks_ = {};
  epochs_one_worker_ = {};
  epochs_small_window_ = {};
  for (auto& h : compute_us_) h = {};
}

void EngineProfiler::push(int track, const Span& span) {
  auto& buf = tracks_[static_cast<std::size_t>(track)];
  if (buf.size() >= kMaxSpansPerTrack) {
    ++dropped_[static_cast<std::size_t>(track)];
    return;
  }
  buf.push_back(span);
}

void EngineProfiler::pop_window(double t0_us, double t1_us,
                                std::size_t popped) {
  pop_us_.observe(t1_us - t0_us);
  Span s;
  s.name = "pop_window";
  s.ts_us = t0_us;
  s.dur_us = t1_us - t0_us;
  s.n_args = 1;
  s.keys[0] = "items";
  s.vals[0] = static_cast<double>(popped);
  push(0, s);
}

void EngineProfiler::epoch(double t0_us, double t1_us, std::size_t items,
                           std::size_t switch_items, const char* mode,
                           std::size_t lookahead_mult) {
  epochs_.inc();
  epoch_items_.observe(static_cast<double>(items));
  epoch_switch_items_.observe(static_cast<double>(switch_items));
  lookahead_mult_.observe(static_cast<double>(lookahead_mult));
  // "parallel" and "flow" are the concurrent modes; everything else is a
  // serial degradation.
  const bool concurrent =
      mode != nullptr && (mode[0] == 'p' || mode[0] == 'f');
  if (!concurrent) serial_windows_.inc();
  if (mode != nullptr) {
    switch (mode[0]) {
      case 'p': epochs_parallel_.inc(); break;
      case 'f': epochs_flow_.inc(); break;
      case 'c': epochs_callbacks_.inc(); break;
      case 'o': epochs_one_worker_.inc(); break;
      case 's': epochs_small_window_.inc(); break;
      default: break;
    }
  }
  Span s;
  s.name = "epoch";
  s.ts_us = t0_us;
  s.dur_us = t1_us - t0_us;
  s.n_args = 3;
  s.keys[0] = "items";
  s.vals[0] = static_cast<double>(items);
  s.keys[1] = "switch_items";
  s.vals[1] = static_cast<double>(switch_items);
  s.keys[2] = "lookahead_mult";
  s.vals[2] = static_cast<double>(lookahead_mult);
  s.note = mode;
  push(0, s);
}

void EngineProfiler::compute(int shard, double t0_us, double t1_us,
                             std::size_t items) {
  if (shard >= 0 && static_cast<std::size_t>(shard) < compute_us_.size()) {
    compute_us_[static_cast<std::size_t>(shard)].observe(t1_us - t0_us);
  }
  Span s;
  s.name = "compute";
  s.ts_us = t0_us;
  s.dur_us = t1_us - t0_us;
  s.n_args = 1;
  s.keys[0] = "items";
  s.vals[0] = static_cast<double>(items);
  push(shard + 1, s);
}

void EngineProfiler::commit(double t0_us, double t1_us) {
  commit_us_.observe(t1_us - t0_us);
  Span s;
  s.name = "commit";
  s.ts_us = t0_us;
  s.dur_us = t1_us - t0_us;
  push(0, s);
}

void EngineProfiler::barrier(double t0_us, double t1_us) {
  barrier_us_.observe(t1_us - t0_us);
  Span s;
  s.name = "barrier";
  s.ts_us = t0_us;
  s.dur_us = t1_us - t0_us;
  push(0, s);
}

void EngineProfiler::serial_hop(double t0_us, double t1_us) {
  if (!compute_us_.empty()) compute_us_[0].observe(t1_us - t0_us);
  Span s;
  s.name = "hop";
  s.ts_us = t0_us;
  s.dur_us = t1_us - t0_us;
  push(0, s);
}

std::string EngineProfiler::to_chrome_trace_json() const {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  const auto sep = [&] {
    out += first ? "\n" : ",\n";
    first = false;
  };
  for (std::size_t track = 0; track < tracks_.size(); ++track) {
    sep();
    const std::string tname =
        track == 0 ? "engine" : "shard " + std::to_string(track - 1);
    out += " {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
           "\"tid\": " +
           std::to_string(track) + ", \"args\": {\"name\": \"" + tname +
           "\"}}";
  }
  for (std::size_t track = 0; track < tracks_.size(); ++track) {
    for (const Span& s : tracks_[track]) {
      sep();
      out += " {\"name\": \"";
      out += s.name;
      out += "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " +
             std::to_string(track) + ", \"ts\": " + format_us(s.ts_us) +
             ", \"dur\": " + format_us(s.dur_us);
      if (s.n_args > 0 || s.note != nullptr) {
        out += ", \"args\": {";
        bool afirst = true;
        for (int a = 0; a < s.n_args; ++a) {
          if (!afirst) out += ", ";
          afirst = false;
          out += "\"";
          out += s.keys[a];
          out += "\": " + std::to_string(static_cast<long long>(s.vals[a]));
        }
        if (s.note != nullptr) {
          if (!afirst) out += ", ";
          out += "\"mode\": \"";
          out += s.note;
          out += "\"";
        }
        out += "}";
      }
      out += "}";
    }
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

void EngineProfiler::clear() {
  for (auto& t : tracks_) t.clear();
  for (auto& d : dropped_) d = 0;
}

std::size_t EngineProfiler::span_count() const {
  std::size_t n = 0;
  for (const auto& t : tracks_) n += t.size();
  return n;
}

std::uint64_t EngineProfiler::dropped_spans() const {
  std::uint64_t n = 0;
  for (const auto& d : dropped_) n += d;
  return n;
}

}  // namespace hydra::obs
