// hydrad — long-running runtime-verification daemon.
//
// Rebuilds the million-subscriber Aether scenario (leaf-spine fabric, UPF
// leaf, application_filtering checker, SessionChurnGenerator load), arms
// the streaming exporter + live observability plane, and serves the live
// plane over HTTP while continuously advancing simulated time, paced
// against the wall clock:
//
//   GET /metrics     Prometheus text (text/plain; version=0.0.4)
//   GET /healthz     SLO verdict JSON (always 200; verdict in the body)
//   GET /series      windowed series JSON
//   GET /violations  forensic violation reports JSON
//   GET /topk        top-K flow/session/property attribution JSON
//   GET /snapshot    obs state snapshot (the restart file format)
//   GET /deploy?checker=<name>   rolling-deploy a library checker (202)
//   GET /undeploy?dep=<id>       rolling-retire a deployment slot (202)
//
//   $ hydrad [--listen PORT] [--interval S] [--snapshot PATH]
//            [--sessions N] [--churn-per-s X] [--packets-per-s X]
//            [--duration-s X] [--pace X] [--topk K] [--ring N] [--seed N]
//            [--engine=serial|parallel[:N]] [--workers=N] [--forensics]
//
// `--pace` is simulated seconds advanced per wall-clock second (default
// 1). `--duration-s 0` (default) runs until SIGTERM/SIGINT, which
// triggers a graceful shutdown: a full-state snapshot (format v2 —
// clock, deployment set, checker sensors/tables, UPF forwarding state,
// and the whole obs plane) is flushed to `--snapshot PATH` and the
// process exits 0. If PATH already exists at startup it is restored
// first: a v2 snapshot resumes the simulation clock, deployment set, and
// every exported counter exactly; a legacy v1 snapshot folds counters in
// additively. A corrupt/truncated file is renamed to PATH.bad and the
// daemon starts fresh rather than dying.
//
// The deploy/undeploy control routes are applied between event slices on
// the main loop via Network::deploy_rolling / undeploy_rolling — traffic
// keeps flowing through the swap, and telemetry frames stamped by a
// retired deployment generation are rejected fail-closed (the
// hydra_checker_stale_generation_rejects_total family), never dropped on
// the floor.
//
// The PFCP control plane (controller bindings, churn bookkeeping) is
// deliberately NOT serialized: after a v2 restore the daemon re-seeds the
// slice and re-attaches the population. Re-installed config entries
// duplicate restored ones with identical match+action — lookups are
// unaffected and duplicates drain as churn detaches sessions.
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <chrono>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "aether/churn.hpp"
#include "aether/controller.hpp"
#include "aether/slice.hpp"
#include "cli_parse.hpp"
#include "forwarding/ipv4_ecmp.hpp"
#include "forwarding/upf.hpp"
#include "hydra/hydra.hpp"
#include "net/engine.hpp"
#include "net/network.hpp"
#include "obs/httpd.hpp"

using namespace hydra;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

// UE address block assigned by SessionChurnGenerator (kUeBase=0x50000001):
// PFCP-session top-K attribution keys on flow endpoints inside it.
constexpr std::uint32_t kUeNet = 0x50000000u;
constexpr std::uint32_t kUeMask = 0xFC000000u;

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--listen PORT] [--interval S] [--snapshot PATH]\n"
               "          [--sessions N] [--churn-per-s X] "
               "[--packets-per-s X]\n"
               "          [--duration-s X] [--pace X] [--topk K] [--ring N]\n"
               "          [--seed N] [--engine=serial|parallel[:N]] "
               "[--workers=N] [--forensics]\n",
               prog);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  long listen_port = 9464;
  double interval_s = 0.01;
  std::string snapshot_path;
  long sessions = 2000;
  double churn_per_s = 500.0;
  double packets_per_s = 20000.0;
  double duration_s = 0.0;  // 0 = run until SIGTERM
  double pace = 1.0;
  long topk_k = 8;
  long ring = 128;
  std::uint64_t seed = 42;
  bool forensics = false;
  net::EngineKind kind = net::EngineKind::kSerial;
  int workers = 0;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--listen") == 0) {
      const char* v = next(a);
      if (v == nullptr || !tools::parse_long_arg(argv[0], a, v, 0, 65535,
                                                 &listen_port)) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(a, "--interval") == 0) {
      const char* v = next(a);
      if (v == nullptr ||
          !tools::parse_positive_double_arg(argv[0], a, v, &interval_s)) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(a, "--snapshot") == 0) {
      const char* v = next(a);
      if (v == nullptr) return usage(argv[0]);
      snapshot_path = v;
    } else if (std::strcmp(a, "--sessions") == 0) {
      const char* v = next(a);
      if (v == nullptr ||
          !tools::parse_long_arg(argv[0], a, v, 1, 100000000, &sessions)) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(a, "--churn-per-s") == 0) {
      const char* v = next(a);
      if (v == nullptr ||
          !tools::parse_positive_double_arg(argv[0], a, v, &churn_per_s)) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(a, "--packets-per-s") == 0) {
      const char* v = next(a);
      if (v == nullptr ||
          !tools::parse_positive_double_arg(argv[0], a, v, &packets_per_s)) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(a, "--duration-s") == 0) {
      const char* v = next(a);
      if (v == nullptr ||
          !tools::parse_positive_double_arg(argv[0], a, v, &duration_s)) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(a, "--pace") == 0) {
      const char* v = next(a);
      if (v == nullptr ||
          !tools::parse_positive_double_arg(argv[0], a, v, &pace)) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(a, "--topk") == 0) {
      const char* v = next(a);
      if (v == nullptr ||
          !tools::parse_long_arg(argv[0], a, v, 1, 65536, &topk_k)) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(a, "--ring") == 0) {
      const char* v = next(a);
      if (v == nullptr ||
          !tools::parse_long_arg(argv[0], a, v, 1, 1000000, &ring)) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(a, "--seed") == 0) {
      const char* v = next(a);
      if (v == nullptr || !tools::parse_u64_arg(argv[0], a, v, &seed)) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(a, "--forensics") == 0) {
      forensics = true;
    } else if (std::strncmp(a, "--engine=", 9) == 0) {
      kind = net::parse_engine_kind(a + 9, &workers);
    } else if (std::strncmp(a, "--workers=", 10) == 0) {
      long w = 0;
      if (!tools::parse_long_arg(argv[0], "--workers", a + 10, 1, 1024, &w)) {
        return usage(argv[0]);
      }
      workers = static_cast<int>(w);
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], a);
      return usage(argv[0]);
    }
  }

  // ---- scenario (identical shape to bench/million_users) -----------------
  auto fabric = net::make_leaf_spine(2, 2, 2);
  std::unique_ptr<net::Network> netp;
  std::shared_ptr<fwd::UpfProgram> upf;
  const auto build_scenario = [&]() {
    netp = std::make_unique<net::Network>(fabric.topo);
    netp->set_engine(kind, workers);
    auto routing = fwd::install_leaf_spine_routing(*netp, fabric);
    upf = std::make_shared<fwd::UpfProgram>(routing);
    netp->set_program(fabric.leaves[0], upf);
    netp->set_observability(true);
    if (forensics) netp->set_forensics(true);
    netp->set_export_interval(interval_s, static_cast<std::size_t>(ring));
    net::Network::LiveObsOptions live;
    live.topk_k = static_cast<std::size_t>(topk_k);
    live.session_net = kUeNet;
    live.session_mask = kUeMask;
    netp->arm_live_obs(live);
  };
  build_scenario();

  // Restore BEFORE any deploy or traffic: a v2 snapshot rebuilds the
  // deployment set itself (and the clock, registers, tables, and UPF
  // state); a v1 snapshot folds counters in additively under whatever the
  // scenario deploys. A bad file is set aside and the daemon starts
  // fresh — a crashed snapshot write must not wedge the restart loop.
  std::string snapshot_text;
  if (!snapshot_path.empty()) {
    std::ifstream in(snapshot_path, std::ios::binary);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      snapshot_text = buf.str();
    }
  }
  const bool snapshot_v2 =
      snapshot_text.compare(0, 22, "hydra-obs-snapshot v2\n") == 0;
  int dep = -1;
  if (!snapshot_text.empty() && !snapshot_v2) {
    dep = netp->deploy(compile_library_checker("application_filtering"));
  }
  if (!snapshot_text.empty()) {
    try {
      netp->obs_restore(snapshot_text);
      std::printf("hydrad: restored %s state from %s\n",
                  snapshot_v2 ? "full network" : "obs", snapshot_path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "hydrad: cannot restore %s: %s\n",
                   snapshot_path.c_str(), e.what());
      const std::string bad = snapshot_path + ".bad";
      if (std::rename(snapshot_path.c_str(), bad.c_str()) == 0) {
        std::fprintf(stderr, "hydrad: set aside as %s; starting fresh\n",
                     bad.c_str());
      }
      build_scenario();  // drop any partially-restored state
      dep = -1;
    }
  }
  if (dep < 0) {
    // v2 restore carries the deployment set: adopt the restored
    // application_filtering slot if one is live, else deploy fresh.
    for (int i = 0; i < netp->deployment_count(); ++i) {
      if (netp->deployment_live(i) &&
          netp->checker(i).name == "application_filtering") {
        dep = i;
        break;
      }
    }
    if (dep < 0) {
      dep = netp->deploy(compile_library_checker("application_filtering"));
    }
  }
  net::Network& net = *netp;

  obs::SnapshotPublisher publisher;
  net.set_live_publisher(&publisher);
  std::unique_ptr<obs::HttpServer> server;
  try {
    server = std::make_unique<obs::HttpServer>(
        publisher, static_cast<std::uint16_t>(listen_port));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hydrad: %s\n", e.what());
    return 1;
  }

  aether::AetherController ctl(net, upf, dep);
  ctl.define_slice(aether::example_camera_slice(1));
  aether::SessionChurnGenerator::Config gc;
  gc.sessions = static_cast<std::uint32_t>(sessions);
  gc.churn_per_s = churn_per_s;
  gc.packets_per_s = packets_per_s;
  gc.slice_id = 1;
  gc.enb_host = fabric.hosts[0][0];
  gc.enb_ip = net.topo().node(fabric.hosts[0][0]).ip;
  gc.n3_ip = 0x0a0001fe;
  gc.app_ip = net.topo().node(fabric.hosts[1][0]).ip;
  gc.seed = seed;
  aether::SessionChurnGenerator gen(net, ctl, gc);
  gen.prefill();

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  std::printf("hydrad: listening on 127.0.0.1:%u (pid %d)\n",
              static_cast<unsigned>(server->port()),
              static_cast<int>(::getpid()));
  std::printf(
      "hydrad: sessions=%ld churn=%g/s packets=%g/s interval=%gs pace=%g "
      "engine=%s\n",
      sessions, churn_per_s, packets_per_s, interval_s, pace,
      net::engine_kind_name(kind));
  std::fflush(stdout);

  // ---- serve loop --------------------------------------------------------
  // Advance simulated time in export-interval slices, pacing sim seconds
  // against wall seconds; churn load is scheduled ahead in chunks so the
  // event queue never starves (which would stall export ticks).
  using clock = std::chrono::steady_clock;
  const double slice = interval_s;
  const double chunk =
      duration_s > 0.0 ? duration_s : std::max(0.5, 50.0 * interval_s);
  // A v2 restore resumed the simulation clock; pace, schedule, and stop
  // relative to where the snapshot left off.
  const double sim_start = net.events().now();
  const double sim_stop = duration_s > 0.0 ? sim_start + duration_s : 0.0;
  double scheduled_until = sim_start;
  double target = sim_start;
  const auto wall_start = clock::now();
  while (!g_stop) {
    // Control-plane commands accepted by the HTTP thread since the last
    // slice: applied here, on the main loop, with the engine idle — the
    // HTTP thread never touches simulator state.
    for (const obs::HttpServer::Command& cmd : server->drain_commands()) {
      try {
        if (cmd.kind == obs::HttpServer::Command::Kind::kDeploy) {
          const int slot =
              net.deploy_rolling(compile_library_checker(cmd.checker));
          std::printf("hydrad: rolling deploy of '%s' into slot %d (gen %u)\n",
                      cmd.checker.c_str(), slot,
                      net.deployment_generation(slot));
        } else if (cmd.deployment == dep) {
          // The churn control plane pushes policy into this slot on every
          // attach; retiring it would wedge the generator.
          std::fprintf(stderr,
                       "hydrad: refusing to undeploy slot %d (the churn "
                       "scenario's checker)\n",
                       cmd.deployment);
        } else {
          net.undeploy_rolling(cmd.deployment);
          std::printf("hydrad: rolling undeploy of slot %d\n",
                      cmd.deployment);
        }
        std::fflush(stdout);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "hydrad: control command failed: %s\n",
                     e.what());
      }
    }
    if (target + slice > scheduled_until &&
        (sim_stop <= 0.0 || scheduled_until < sim_stop)) {
      gen.start(scheduled_until, chunk);
      scheduled_until += chunk;
    }
    target += slice;
    net.events().run_until(target);
    if (sim_stop > 0.0 && target >= sim_stop) break;
    // Wall-clock pacing: sleep (in interruptible hops) until this slice's
    // wall deadline; fall behind silently if the machine is too slow.
    const auto deadline =
        wall_start + std::chrono::duration_cast<clock::duration>(
                         std::chrono::duration<double>((target - sim_start) /
                                                       pace));
    while (!g_stop && clock::now() < deadline) {
      const auto remain = deadline - clock::now();
      std::this_thread::sleep_for(
          std::min<clock::duration>(remain, std::chrono::milliseconds(50)));
    }
  }

  // ---- graceful shutdown -------------------------------------------------
  server->stop();
  // Quiesce any rolling swap sweep still in flight (its per-switch flips
  // are scheduled at or before the current virtual time) so the snapshot
  // captures a fully-swapped deployment set.
  if (net.swap_in_progress()) {
    net.events().run_until(net.events().now() + slice);
  }
  const std::string snap = net.full_snapshot();
  if (!snapshot_path.empty()) {
    if (!tools::write_text_file(snapshot_path, snap)) return 1;
    std::printf("hydrad: wrote snapshot %s (%zu bytes)\n",
                snapshot_path.c_str(), snap.size());
  }
  const auto& c = net.counters();
  std::printf(
      "hydrad: exiting at sim t=%.3fs — injected=%llu delivered=%llu "
      "rejected=%llu windows=%llu scrapes=%llu\n",
      net.events().now(), static_cast<unsigned long long>(c.injected),
      static_cast<unsigned long long>(c.delivered),
      static_cast<unsigned long long>(c.rejected),
      static_cast<unsigned long long>(net.export_scheduler_ptr()->captured()),
      static_cast<unsigned long long>(server->requests_served()));
  return 0;
}
