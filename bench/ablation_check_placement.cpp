// Ablation for §4.3: last-hop checking (the paper's default) vs. per-hop
// checking. Per-hop rejects errant packets at the violating switch, saving
// downstream link capacity at the cost of running the checker everywhere.
//
//   $ ./ablation_check_placement
#include <cstdio>

#include "forwarding/source_route.hpp"
#include "hydra/hydra.hpp"
#include "net/network.hpp"

using namespace hydra;

namespace {

struct Outcome {
  std::uint64_t rejected = 0;
  std::uint64_t fabric_bytes = 0;  // bytes carried on leaf-spine links
};

Outcome run(compiler::CheckPlacement placement, int errant_packets) {
  auto fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net(fabric.topo);
  auto sr = std::make_shared<fwd::SourceRouteProgram>();
  for (int sw : fabric.leaves) net.set_program(sw, sr);
  for (int sw : fabric.spines) net.set_program(sw, sr);

  compiler::CompileOptions opts;
  opts.placement = placement;
  auto checker = compile_shared(
      checkers::checker_by_name("valley_free").source, "valley_free", opts);
  const int dep = net.deploy(checker);
  configure_valley_free(net, dep, fabric);

  // Errant valley paths: up, down, up again, down, out.
  for (int i = 0; i < errant_packets; ++i) {
    p4rt::Packet p = p4rt::make_udp(1, 2, 3, 4, 400);
    fwd::set_source_route(p, {fabric.leaf_uplink_port(0),
                              fabric.spine_down_port(1),
                              fabric.leaf_uplink_port(1),
                              fabric.spine_down_port(1),
                              fabric.leaf_host_port(0)});
    net.send_from_host(fabric.hosts[0][0], std::move(p));
  }
  net.events().run();

  Outcome out;
  out.rejected = net.counters().rejected;
  for (std::size_t li = 0; li < net.link_count(); ++li) {
    const auto& link = net.link(static_cast<int>(li));
    const bool host_link =
        net.topo().node(link.spec().a.node).kind == net::NodeKind::kHost ||
        net.topo().node(link.spec().b.node).kind == net::NodeKind::kHost;
    if (host_link) continue;
    out.fabric_bytes += link.stats(0).bytes + link.stats(1).bytes;
  }
  return out;
}

}  // namespace

int main() {
  std::printf("Ablation (§4.3): last-hop vs per-hop check placement, 100 "
              "errant valley packets\n\n");
  const Outcome last = run(compiler::CheckPlacement::kLastHop, 100);
  const Outcome every = run(compiler::CheckPlacement::kEveryHop, 100);
  std::printf("%-12s %10s %16s\n", "placement", "rejected", "fabric bytes");
  std::printf("%-12s %10llu %16llu\n", "last-hop",
              static_cast<unsigned long long>(last.rejected),
              static_cast<unsigned long long>(last.fabric_bytes));
  std::printf("%-12s %10llu %16llu\n", "every-hop",
              static_cast<unsigned long long>(every.rejected),
              static_cast<unsigned long long>(every.fabric_bytes));
  const double saved = 100.0 * (1.0 - static_cast<double>(every.fabric_bytes) /
                                          static_cast<double>(last.fabric_bytes));
  std::printf("\nper-hop checking rejects at the violating switch and saves "
              "%.1f%% of the fabric bytes wasted on errant packets\n"
              "(the trade-off the paper describes: less telemetry carried, "
              "earlier rejection, but checker logic on every switch).\n",
              saved);
  return every.rejected == last.rejected && every.fabric_bytes <
                 last.fabric_bytes
             ? 0
             : 1;
}
