file(REMOVE_RECURSE
  "CMakeFiles/hydra_ltlf.dir/ltlf/eval.cpp.o"
  "CMakeFiles/hydra_ltlf.dir/ltlf/eval.cpp.o.d"
  "CMakeFiles/hydra_ltlf.dir/ltlf/formula.cpp.o"
  "CMakeFiles/hydra_ltlf.dir/ltlf/formula.cpp.o.d"
  "CMakeFiles/hydra_ltlf.dir/ltlf/random_formula.cpp.o"
  "CMakeFiles/hydra_ltlf.dir/ltlf/random_formula.cpp.o.d"
  "CMakeFiles/hydra_ltlf.dir/ltlf/to_indus.cpp.o"
  "CMakeFiles/hydra_ltlf.dir/ltlf/to_indus.cpp.o.d"
  "libhydra_ltlf.a"
  "libhydra_ltlf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_ltlf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
