file(REMOVE_RECURSE
  "CMakeFiles/relocate_test.dir/relocate_test.cpp.o"
  "CMakeFiles/relocate_test.dir/relocate_test.cpp.o.d"
  "relocate_test"
  "relocate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relocate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
