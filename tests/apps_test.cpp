// Tests for the report channel and the control-loop applications
// (FirewallAgent, ReportCounter).
#include <gtest/gtest.h>

#include "forwarding/ipv4_ecmp.hpp"
#include "hydra/apps.hpp"
#include "hydra/hydra.hpp"
#include "net/network.hpp"

namespace hydra::apps {
namespace {

struct Fixture {
  net::LeafSpine fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net{fabric.topo};
  std::shared_ptr<fwd::Ipv4EcmpProgram> routing =
      fwd::install_leaf_spine_routing(net, fabric);

  int h(int leaf, int i) const {
    return fabric.hosts[static_cast<std::size_t>(leaf)]
                       [static_cast<std::size_t>(i)];
  }
  std::uint32_t ip(int host) const { return net.topo().node(host).ip; }
  void send(int from, int to, std::uint16_t sport = 1000) {
    net.send_from_host(from,
                       p4rt::make_udp(ip(from), ip(to), sport, 2000, 64));
    net.events().run();
  }
};

TEST(ReportChannel, CallbackFiresAtReportTime) {
  Fixture f;
  f.net.deploy(compile_library_checker("stateful_firewall"));
  double report_time = -1;
  std::string checker_name;
  f.net.subscribe_reports([&](const net::ReportRecord& r) {
    report_time = r.time;
    checker_name = r.checker;
  });
  f.send(f.h(0, 0), f.h(1, 0));  // unsolicited: report at the last hop
  EXPECT_GT(report_time, 0.0);
  EXPECT_EQ(checker_name, "stateful_firewall");
}

TEST(ReportChannel, MultipleSubscribersAllFire) {
  Fixture f;
  f.net.deploy(compile_library_checker("stateful_firewall"));
  int a = 0;
  int b = 0;
  f.net.subscribe_reports([&](const net::ReportRecord&) { ++a; });
  f.net.subscribe_reports([&](const net::ReportRecord&) { ++b; });
  f.send(f.h(0, 0), f.h(1, 0));
  EXPECT_GT(a, 0);
  EXPECT_EQ(a, b);
}

TEST(FirewallAgent, InstallsReverseRulesFromReports) {
  Fixture f;
  const int dep = f.net.deploy(compile_library_checker("stateful_firewall"));
  FirewallAgent agent(f.net, dep);
  // Pre-allow the initiating direction (egress policy).
  f.net.dict_insert_all(dep, "allowed",
                        {BitVec(32, f.ip(f.h(0, 0))),
                         BitVec(32, f.ip(f.h(1, 0)))},
                        {BitVec::from_bool(true)});
  // The inside host initiates; the checker reports the missing reverse
  // rule and the agent installs it DURING the simulation.
  f.send(f.h(0, 0), f.h(1, 0));
  EXPECT_EQ(agent.rules_installed(), 1u);
  // The response now flows without rejection.
  f.send(f.h(1, 0), f.h(0, 0));
  EXPECT_EQ(f.net.counters().delivered, 2u);
  EXPECT_EQ(f.net.counters().rejected, 0u);
}

TEST(FirewallAgent, DeduplicatesRepeatedReports) {
  Fixture f;
  const int dep = f.net.deploy(compile_library_checker("stateful_firewall"));
  FirewallAgent agent(f.net, dep);
  f.net.dict_insert_all(dep, "allowed",
                        {BitVec(32, f.ip(f.h(0, 0))),
                         BitVec(32, f.ip(f.h(1, 0)))},
                        {BitVec::from_bool(true)});
  f.send(f.h(0, 0), f.h(1, 0));
  const auto installed = agent.rules_installed();
  // A second forward packet arrives before any reverse traffic: the
  // reverse rule already exists, so no further report fires at all (the
  // checker itself is quiet once the dictionary has the entry).
  f.send(f.h(0, 0), f.h(1, 0));
  EXPECT_EQ(agent.rules_installed(), installed);
}

TEST(FirewallAgent, IgnoresOtherCheckersReports) {
  Fixture f;
  const int fw = f.net.deploy(compile_library_checker("stateful_firewall"));
  const int lb = f.net.deploy(
      compile_library_checker("dc_uplink_load_balance"));
  configure_load_balance(f.net, lb, f.fabric, /*threshold_bytes=*/1);
  FirewallAgent agent(f.net, fw);
  f.net.dict_insert_all(fw, "allowed",
                        {BitVec(32, f.ip(f.h(0, 0))),
                         BitVec(32, f.ip(f.h(1, 0)))},
                        {BitVec::from_bool(true)});
  // This packet triggers BOTH a firewall report (reverse missing) and
  // load-balance reports (threshold 1); the agent must only act on its own.
  f.send(f.h(0, 0), f.h(1, 0));
  EXPECT_EQ(agent.rules_installed(), 1u);
}

TEST(ReportCounter, AggregatesBySwitchAndChecker) {
  Fixture f;
  const int lb = f.net.deploy(
      compile_library_checker("dc_uplink_load_balance"));
  configure_load_balance(f.net, lb, f.fabric, /*threshold_bytes=*/1);
  ReportCounter counter(f.net);
  for (int i = 0; i < 5; ++i) {
    f.send(f.h(0, 0), f.h(1, 0), static_cast<std::uint16_t>(1000 + i));
  }
  EXPECT_GT(counter.total(), 0u);
  EXPECT_EQ(counter.total(), counter.for_checker("dc_uplink_load_balance"));
  EXPECT_EQ(counter.for_checker("nonexistent"), 0u);
  std::uint64_t by_switch_sum = 0;
  for (int sw = 0; sw < f.net.topo().node_count(); ++sw) {
    by_switch_sum += counter.at_switch(sw);
  }
  EXPECT_EQ(by_switch_sum, counter.total());
}

}  // namespace
}  // namespace hydra::apps
