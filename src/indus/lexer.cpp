#include "indus/lexer.hpp"

#include <cctype>
#include <unordered_map>

namespace hydra::indus {

namespace {
const std::unordered_map<std::string_view, Tok>& keywords() {
  static const std::unordered_map<std::string_view, Tok> kMap = {
      {"tele", Tok::kTele},       {"sensor", Tok::kSensor},
      {"header", Tok::kHeader},   {"control", Tok::kControl},
      {"bit", Tok::kBitKw},       {"bool", Tok::kBoolKw},
      {"set", Tok::kSetKw},       {"dict", Tok::kDictKw},
      {"if", Tok::kIf},           {"elsif", Tok::kElsif},
      {"else", Tok::kElse},       {"for", Tok::kFor},
      {"in", Tok::kIn},           {"reject", Tok::kReject},
      {"report", Tok::kReport},   {"pass", Tok::kPass},
      {"true", Tok::kTrue},       {"false", Tok::kFalse},
  };
  return kMap;
}
}  // namespace

Lexer::Lexer(std::string_view source, Diagnostics& diags)
    : src_(source), diags_(diags) {}

char Lexer::peek(int ahead) const {
  const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
  return i < src_.size() ? src_[i] : '\0';
}

char Lexer::advance() {
  const char c = src_[pos_++];
  if (c == '\n') {
    ++loc_.line;
    loc_.col = 1;
  } else {
    ++loc_.col;
  }
  return c;
}

bool Lexer::match(char expected) {
  if (peek() != expected) return false;
  advance();
  return true;
}

void Lexer::skip_trivia() {
  for (;;) {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0') advance();
    } else if (c == '/' && peek(1) == '*') {
      const Loc start = loc_;
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          diags_.error(start, "unterminated block comment");
          return;
        }
        advance();
      }
      advance();
      advance();
    } else {
      return;
    }
  }
}

Token Lexer::make(Tok kind, Loc loc) const {
  Token t;
  t.kind = kind;
  t.loc = loc;
  return t;
}

Token Lexer::lex_number(Loc loc) {
  Token t = make(Tok::kNumber, loc);
  std::uint64_t value = 0;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    advance();
    advance();
    bool any = false;
    while (std::isxdigit(static_cast<unsigned char>(peek()))) {
      const char c = advance();
      const int digit = std::isdigit(static_cast<unsigned char>(c))
                            ? c - '0'
                            : std::tolower(c) - 'a' + 10;
      value = value * 16 + static_cast<std::uint64_t>(digit);
      any = true;
    }
    if (!any) diags_.error(loc, "malformed hex literal");
  } else if (peek() == '0' && (peek(1) == 'b' || peek(1) == 'B')) {
    advance();
    advance();
    bool any = false;
    while (peek() == '0' || peek() == '1') {
      value = value * 2 + static_cast<std::uint64_t>(advance() - '0');
      any = true;
    }
    if (!any) diags_.error(loc, "malformed binary literal");
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
      value = value * 10 + static_cast<std::uint64_t>(advance() - '0');
    }
  }
  t.number = value;
  return t;
}

Token Lexer::lex_ident(Loc loc) {
  std::string text;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
    text += advance();
  }
  const auto it = keywords().find(text);
  if (it != keywords().end()) return make(it->second, loc);
  Token t = make(Tok::kIdent, loc);
  t.text = std::move(text);
  return t;
}

Token Lexer::lex_string(Loc loc) {
  Token t = make(Tok::kString, loc);
  advance();  // opening quote
  std::string text;
  while (peek() != '"') {
    if (peek() == '\0' || peek() == '\n') {
      diags_.error(loc, "unterminated string literal");
      t.text = std::move(text);
      return t;
    }
    text += advance();
  }
  advance();  // closing quote
  t.text = std::move(text);
  return t;
}

Token Lexer::next_token() {
  skip_trivia();
  const Loc loc = loc_;
  const char c = peek();
  if (c == '\0') return make(Tok::kEof, loc);
  if (std::isdigit(static_cast<unsigned char>(c))) return lex_number(loc);
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    return lex_ident(loc);
  }
  if (c == '"') return lex_string(loc);

  advance();
  switch (c) {
    case '{': return make(Tok::kLBrace, loc);
    case '}': return make(Tok::kRBrace, loc);
    case '(': return make(Tok::kLParen, loc);
    case ')': return make(Tok::kRParen, loc);
    case '[': return make(Tok::kLBracket, loc);
    case ']': return make(Tok::kRBracket, loc);
    case ',': return make(Tok::kComma, loc);
    case ';': return make(Tok::kSemi, loc);
    case '.': return make(Tok::kDot, loc);
    case '@': return make(Tok::kAt, loc);
    case '~': return make(Tok::kTilde, loc);
    case '^': return make(Tok::kCaret, loc);
    case '+':
      return make(match('=') ? Tok::kPlusAssign : Tok::kPlus, loc);
    case '-':
      return make(match('=') ? Tok::kMinusAssign : Tok::kMinus, loc);
    case '*': return make(Tok::kStar, loc);
    case '/': return make(Tok::kSlash, loc);
    case '%': return make(Tok::kPercent, loc);
    case '&':
      return make(match('&') ? Tok::kAndAnd : Tok::kAmp, loc);
    case '|':
      return make(match('|') ? Tok::kOrOr : Tok::kPipe, loc);
    case '!':
      return make(match('=') ? Tok::kNe : Tok::kBang, loc);
    case '=':
      return make(match('=') ? Tok::kEq : Tok::kAssign, loc);
    case '<':
      if (match('=')) return make(Tok::kLe, loc);
      if (match('<')) return make(Tok::kShl, loc);
      return make(Tok::kLAngle, loc);
    case '>':
      if (match('=')) return make(Tok::kGe, loc);
      if (match('>')) return make(Tok::kShr, loc);
      return make(Tok::kRAngle, loc);
    default:
      diags_.error(loc, std::string("unexpected character '") + c + "'");
      return next_token();
  }
}

std::vector<Token> Lexer::lex_all() {
  std::vector<Token> out;
  for (;;) {
    Token t = next_token();
    const bool eof = t.kind == Tok::kEof;
    out.push_back(std::move(t));
    if (eof) break;
  }
  return out;
}

}  // namespace hydra::indus
