// Stateful firewall (Figure 3) with a closed control loop: flows may only
// enter the network if a device inside initiated the communication. The
// checker REPORTS missing reverse-direction entries, and a small control
// application consumes those reports to install the reverse rules — the
// paper's §2 scenario, end to end.
//
//   $ ./stateful_firewall
#include <cstdio>

#include "forwarding/ipv4_ecmp.hpp"
#include "hydra/hydra.hpp"
#include "net/network.hpp"
#include "util/strings.hpp"

using namespace hydra;

int main() {
  auto fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net(fabric.topo);
  fwd::install_leaf_spine_routing(net, fabric);

  auto checker = compile_library_checker("stateful_firewall");
  std::printf("stateful-firewall checker: %d LoC Indus -> %d LoC P4\n\n",
              checker->indus_loc, checker->p4_loc);
  const int dep = net.deploy(checker);

  const int inside = fabric.hosts[0][0];   // trusted host behind leaf1
  const int outside = fabric.hosts[1][0];  // "internet" host behind leaf2
  auto ip = [&](int h) { return net.topo().node(h).ip; };

  // The control app: allow everything the inside host initiates, and react
  // to Hydra reports by installing reverse-direction rules.
  std::size_t handled = 0;
  auto pump_reports = [&] {
    for (; handled < net.reports().size(); ++handled) {
      const auto& r = net.reports()[handled];
      std::printf("  [control] report: reverse flow %s -> %s missing; "
                  "installing rule\n",
                  str::ipv4_to_string(
                      static_cast<std::uint32_t>(r.values[0].value()))
                      .c_str(),
                  str::ipv4_to_string(
                      static_cast<std::uint32_t>(r.values[1].value()))
                      .c_str());
      net.dict_insert_all(dep, "allowed", {r.values[0], r.values[1]},
                          {BitVec::from_bool(true)});
    }
  };

  // 1. Unsolicited traffic from outside is rejected.
  std::printf("[1] outside -> inside, unsolicited:\n");
  net.send_from_host(outside,
                     p4rt::make_udp(ip(outside), ip(inside), 4444, 53, 64));
  net.events().run();
  std::printf("  delivered=%llu rejected=%llu (expected 0/1)\n\n",
              static_cast<unsigned long long>(net.counters().delivered),
              static_cast<unsigned long long>(net.counters().rejected));

  // 2. The inside host opens a connection (its direction is pre-allowed by
  //    the egress policy).
  std::printf("[2] inside -> outside, initiating:\n");
  net.dict_insert_all(dep, "allowed",
                      {BitVec(32, ip(inside)), BitVec(32, ip(outside))},
                      {BitVec::from_bool(true)});
  net.send_from_host(inside,
                     p4rt::make_udp(ip(inside), ip(outside), 5555, 53, 64));
  net.events().run();
  pump_reports();
  std::printf("  delivered=%llu (the checker reported the missing reverse "
              "rule)\n\n",
              static_cast<unsigned long long>(net.counters().delivered));

  // 3. Now the reverse direction works: the outside host can answer.
  std::printf("[3] outside -> inside, response:\n");
  const auto rejected_before = net.counters().rejected;
  net.send_from_host(outside,
                     p4rt::make_udp(ip(outside), ip(inside), 53, 5555, 64));
  net.events().run();
  const bool ok = net.counters().rejected == rejected_before &&
                  net.counters().delivered == 2;
  std::printf("  delivered=%llu rejected=%llu (expected 2/%llu)\n\n",
              static_cast<unsigned long long>(net.counters().delivered),
              static_cast<unsigned long long>(net.counters().rejected),
              static_cast<unsigned long long>(rejected_before));
  std::printf(ok ? "firewall behaviour verified on every packet.\n"
                 : "unexpected firewall behaviour!\n");
  return ok ? 0 : 1;
}
