// Source positions for diagnostics. Lines and columns are 1-based.
#pragma once

#include <string>

namespace hydra::indus {

struct Loc {
  int line = 1;
  int col = 1;

  std::string to_string() const {
    return std::to_string(line) + ":" + std::to_string(col);
  }
  bool operator==(const Loc&) const = default;
};

}  // namespace hydra::indus
