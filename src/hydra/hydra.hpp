// Hydra public API — the one-stop header a downstream user includes.
//
//   auto checker = hydra::compile_library_checker("valley_free");
//   hydra::net::Network net(fabric.topo);
//   const int dep = net.deploy(checker);
//   hydra::configure_valley_free(net, dep, fabric);
//
// Compilation helpers wrap the Indus compiler; the configure_* functions
// are the small control-plane applications that populate each library
// checker's control variables from the topology (the paper's "control
// plane specifies ... to the compiler / at runtime" steps).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "checkers/library.hpp"
#include "compiler/compile.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"

namespace hydra {

// Compiles Indus source; the shared_ptr form is what Network::deploy takes.
std::shared_ptr<const compiler::CompiledChecker> compile_shared(
    const std::string& source, const std::string& name,
    const compiler::CompileOptions& options = {});

// Compiles a checker from the library (src/checkers) by name.
std::shared_ptr<const compiler::CompiledChecker> compile_library_checker(
    std::string_view name, const compiler::CompileOptions& options = {});

// ---- control-plane configuration for the library checkers ---------------

// valley_free / routing_validity: classify switches as spine/leaf.
void configure_valley_free(net::Network& net, int deployment,
                           const net::LeafSpine& fabric);
void configure_routing_validity(net::Network& net, int deployment,
                                const net::LeafSpine& fabric);

// up_down_routing: assign every switch its tier (0 = lowest/edge).
void configure_up_down(net::Network& net, int deployment,
                       const net::LeafSpine& fabric);
void configure_up_down(net::Network& net, int deployment,
                       const net::FatTree& ft);

// source_routing_path_validation: adjacency dict + leaf classification.
void configure_path_validation(net::Network& net, int deployment,
                               const net::LeafSpine& fabric);

// egress_port_validity: every connected port is allowed (callers can
// remove entries afterwards to model misconfiguration).
void configure_egress_port_validity(net::Network& net, int deployment);

// waypointing: all packets must pass through `waypoint_switch`.
void configure_waypoint(net::Network& net, int deployment,
                        int waypoint_switch);

// service_chains: packets must visit `chain` (switch ids) in order.
void configure_service_chain(net::Network& net, int deployment,
                             const std::vector<int>& chain);

// multi_tenancy: tenant id per (switch, port). Ports not listed get tenant
// 0. The same dict is installed on every switch (tenants of *edge* ports).
void configure_multi_tenancy(
    net::Network& net, int deployment,
    const std::map<std::pair<int, int>, std::uint8_t>& port_tenants);

// dc_uplink_load_balance: uplink classification + port pair + threshold.
void configure_load_balance(net::Network& net, int deployment,
                            const net::LeafSpine& fabric,
                            std::uint32_t threshold_bytes);

// The stable switch id exposed to checkers via the `switch_id` header
// variable (node id + 1, so 0 means "none").
std::uint32_t checker_switch_tag(int switch_node_id);

}  // namespace hydra
