#include "obs/topk.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace hydra::obs {

using detail::format_double;

namespace {

std::atomic<std::uint64_t> g_topk_allocations{0};

std::string ip_str(std::uint32_t ip) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ip >> 24) & 0xFF,
                (ip >> 16) & 0xFF, (ip >> 8) & 0xFF, ip & 0xFF);
  return buf;
}

std::size_t pow2_at_least(std::size_t n) {
  std::size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::uint64_t topk_allocations() {
  return g_topk_allocations.load(std::memory_order_relaxed);
}

SpaceSaving::SpaceSaving(std::size_t capacity) : slots_cap_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("SpaceSaving: capacity must be positive");
  }
  slots_.reserve(slots_cap_);
  index_.assign(pow2_at_least(4 * slots_cap_), 0);
  mask_ = index_.size() - 1;
  g_topk_allocations.fetch_add(2, std::memory_order_relaxed);
}

std::uint64_t SpaceSaving::hash(const TopKKey& key) {
  // splitmix64-style mix over both words; fixed constants keep slot
  // placement a pure function of the key stream.
  std::uint64_t h = key.hi * 0x9E3779B97F4A7C15ULL;
  h ^= h >> 32;
  h += key.lo;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 29;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 32;
  return h;
}

std::size_t SpaceSaving::probe(const TopKKey& key) const {
  std::size_t i = static_cast<std::size_t>(hash(key)) & mask_;
  while (index_[i] != 0 && !(slots_[index_[i] - 1].key == key)) {
    i = (i + 1) & mask_;
  }
  return i;
}

void SpaceSaving::index_erase(const TopKKey& key) {
  std::size_t hole = probe(key);
  if (index_[hole] == 0) return;
  // Backward-shift deletion: pull displaced entries back over the hole so
  // linear probing stays correct without tombstones (no allocation).
  std::size_t j = hole;
  while (true) {
    j = (j + 1) & mask_;
    if (index_[j] == 0) break;
    const std::size_t home =
        static_cast<std::size_t>(hash(slots_[index_[j] - 1].key)) & mask_;
    const bool movable = j > hole ? (home <= hole || home > j)
                                  : (home <= hole && home > j);
    if (movable) {
      index_[hole] = index_[j];
      hole = j;
    }
  }
  index_[hole] = 0;
}

void SpaceSaving::add(const TopKKey& key, std::uint64_t w) {
  total_ += w;
  const std::size_t ip = probe(key);
  if (index_[ip] != 0) {
    slots_[index_[ip] - 1].count += w;
    return;
  }
  if (slots_.size() < slots_cap_) {
    Entry e;
    e.key = key;
    e.count = w;
    e.stamp = stamp_++;
    slots_.push_back(e);  // within reserve(): no allocation
    index_[ip] = static_cast<std::uint32_t>(slots_.size());
    return;
  }
  // Space-Saving eviction: replace the minimum, charging the newcomer the
  // victim's count as its overcount bound. Ties break on the older stamp
  // so the victim is schedule-independent.
  std::size_t victim = 0;
  for (std::size_t i = 1; i < slots_.size(); ++i) {
    const Entry& a = slots_[i];
    const Entry& b = slots_[victim];
    if (a.count < b.count || (a.count == b.count && a.stamp < b.stamp)) {
      victim = i;
    }
  }
  Entry& e = slots_[victim];
  index_erase(e.key);
  const std::uint64_t min_count = e.count;
  e.key = key;
  e.error = min_count;
  e.count = min_count + w;
  e.stamp = stamp_++;
  const std::size_t np = probe(key);
  index_[np] = static_cast<std::uint32_t>(victim + 1);
}

void SpaceSaving::erase(const TopKKey& key) {
  const std::size_t ip = probe(key);
  if (index_[ip] == 0) return;
  const std::size_t slot = index_[ip] - 1;
  index_erase(key);
  const std::size_t last = slots_.size() - 1;
  if (slot != last) {
    slots_[slot] = slots_[last];
    // The moved entry's index cell still points at the old last slot;
    // repoint it (probe is valid again after the backward-shift above).
    index_[probe(slots_[slot].key)] = static_cast<std::uint32_t>(slot + 1);
  }
  slots_.pop_back();
}

std::vector<SpaceSaving::Entry> SpaceSaving::ranked() const {
  std::vector<Entry> out = slots_;
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    if (a.stamp != b.stamp) return a.stamp < b.stamp;
    return a.key.hi != b.key.hi ? a.key.hi < b.key.hi : a.key.lo < b.key.lo;
  });
  return out;
}

void SpaceSaving::clear() {
  slots_.clear();  // keeps capacity
  std::fill(index_.begin(), index_.end(), 0);
  total_ = 0;
  stamp_ = 0;
}

void SpaceSaving::restore_entry(const TopKKey& key, std::uint64_t count,
                                std::uint64_t error) {
  const std::size_t ip = probe(key);
  if (index_[ip] != 0) {
    slots_[index_[ip] - 1].count += count;
    return;
  }
  if (slots_.size() >= slots_cap_) return;  // snapshot from a larger K
  Entry e;
  e.key = key;
  e.count = count;
  e.error = error;
  e.stamp = stamp_++;
  slots_.push_back(e);
  index_[ip] = static_cast<std::uint32_t>(slots_.size());
}

TopKKey pack_flow(const TopKFlow& f) {
  TopKKey k;
  k.hi = (static_cast<std::uint64_t>(f.src_ip) << 32) | f.dst_ip;
  k.lo = (static_cast<std::uint64_t>(f.src_port) << 32) |
         (static_cast<std::uint64_t>(f.dst_port) << 16) |
         (static_cast<std::uint64_t>(f.proto) << 8) | (f.parsed ? 1u : 0u);
  return k;
}

TopKFlow unpack_flow(const TopKKey& k) {
  TopKFlow f;
  f.src_ip = static_cast<std::uint32_t>(k.hi >> 32);
  f.dst_ip = static_cast<std::uint32_t>(k.hi);
  f.src_port = static_cast<std::uint16_t>(k.lo >> 32);
  f.dst_port = static_cast<std::uint16_t>((k.lo >> 16) & 0xFFFF);
  f.proto = static_cast<std::uint8_t>((k.lo >> 8) & 0xFF);
  f.parsed = (k.lo & 1u) != 0;
  return f;
}

TopKAttribution::TopKAttribution(TopKConfig cfg,
                                 std::vector<std::string> properties)
    : cfg_(cfg),
      properties_(std::move(properties)),
      flow_packets_(cfg.k),
      flow_rejects_(cfg.k),
      flow_reports_(cfg.k),
      session_packets_(cfg.k),
      session_rejects_(cfg.k),
      session_reports_(cfg.k),
      property_rejects_(cfg.k),
      property_reports_(cfg.k) {}

bool TopKAttribution::session_key(const TopKFlow& flow, TopKKey* out) const {
  if (cfg_.session_mask == 0 || !flow.parsed) return false;
  if ((flow.src_ip & cfg_.session_mask) ==
      (cfg_.session_net & cfg_.session_mask)) {
    out->hi = flow.src_ip;
    out->lo = 0;
    return true;
  }
  if ((flow.dst_ip & cfg_.session_mask) ==
      (cfg_.session_net & cfg_.session_mask)) {
    out->hi = flow.dst_ip;
    out->lo = 0;
    return true;
  }
  return false;
}

void TopKAttribution::on_delivered(const TopKFlow& flow) {
  flow_packets_.add(pack_flow(flow));
  TopKKey sk;
  if (session_key(flow, &sk)) session_packets_.add(sk);
}

void TopKAttribution::on_rejected(const TopKFlow& flow,
                                  std::uint64_t dep_mask) {
  flow_rejects_.add(pack_flow(flow));
  TopKKey sk;
  if (session_key(flow, &sk)) session_rejects_.add(sk);
  for (int d = 0; d < 64 && dep_mask != 0; ++d) {
    if (dep_mask & (1ULL << d)) {
      property_rejects_.add(
          TopKKey{static_cast<std::uint64_t>(d), 0});
      dep_mask &= ~(1ULL << d);
    }
  }
}

void TopKAttribution::redefine_property(int deployment, std::string name) {
  if (deployment < 0 || deployment >= 64) return;
  const std::size_t d = static_cast<std::size_t>(deployment);
  if (properties_.size() <= d) properties_.resize(d + 1);
  properties_[d] = std::move(name);
  const TopKKey key{static_cast<std::uint64_t>(d), 0};
  property_rejects_.erase(key);
  property_reports_.erase(key);
}

void TopKAttribution::on_report(const TopKFlow& flow, int deployment) {
  flow_reports_.add(pack_flow(flow));
  TopKKey sk;
  if (session_key(flow, &sk)) session_reports_.add(sk);
  if (deployment >= 0 && deployment < 64) {
    property_reports_.add(TopKKey{static_cast<std::uint64_t>(deployment), 0});
  }
}

std::string TopKAttribution::property_label(const TopKKey& key) const {
  const std::size_t dep = static_cast<std::size_t>(key.hi);
  if (dep < properties_.size() && !properties_[dep].empty()) {
    return properties_[dep];
  }
  return "dep" + std::to_string(dep);
}

namespace {

enum class Domain { kFlow, kSession, kProperty };

struct SketchRef {
  const char* tag;        // snapshot + family suffix
  Domain domain;
  const SpaceSaving* sk;
};

std::string flow_label_body(const TopKFlow& f) {
  if (!f.parsed) return "flow=\"unparsed\"";
  // Keys emitted pre-sorted (dst < proto < src) to honor the exposition's
  // sorted-label contract.
  return "dst=\"" + ip_str(f.dst_ip) + ":" + std::to_string(f.dst_port) +
         "\",proto=\"" + std::to_string(f.proto) + "\",src=\"" +
         ip_str(f.src_ip) + ":" + std::to_string(f.src_port) + "\"";
}

}  // namespace

void TopKAttribution::prom_families(std::vector<PromFamily>& out) const {
  const SketchRef refs[] = {
      {"flow_packets", Domain::kFlow, &flow_packets_},
      {"flow_rejects", Domain::kFlow, &flow_rejects_},
      {"flow_reports", Domain::kFlow, &flow_reports_},
      {"session_packets", Domain::kSession, &session_packets_},
      {"session_rejects", Domain::kSession, &session_rejects_},
      {"session_reports", Domain::kSession, &session_reports_},
      {"property_rejects", Domain::kProperty, &property_rejects_},
      {"property_reports", Domain::kProperty, &property_reports_},
  };
  for (const SketchRef& r : refs) {
    if (r.sk->size() == 0) continue;  // no TYPE line for an empty sketch
    PromFamily f;
    f.name = std::string("hydra_topk_") + r.tag;
    f.kind = MetricKind::kGauge;  // entries are evictable, not monotone
    for (const SpaceSaving::Entry& e : r.sk->ranked()) {
      PromFamily::Sample s;
      switch (r.domain) {
        case Domain::kFlow:
          s.label_body = flow_label_body(unpack_flow(e.key));
          break;
        case Domain::kSession:
          s.label_body =
              "session=\"" + ip_str(static_cast<std::uint32_t>(e.key.hi)) +
              "\"";
          break;
        case Domain::kProperty:
          s.label_body = "property=\"" + prom_escape(property_label(e.key)) +
                         "\"";
          break;
      }
      s.value = std::to_string(e.count);
      f.samples.push_back(std::move(s));
    }
    out.push_back(std::move(f));
  }
  std::sort(out.begin(), out.end(),
            [](const PromFamily& a, const PromFamily& b) {
              return a.name < b.name;
            });
}

std::string TopKAttribution::to_json() const {
  const SketchRef refs[] = {
      {"flow_packets", Domain::kFlow, &flow_packets_},
      {"flow_rejects", Domain::kFlow, &flow_rejects_},
      {"flow_reports", Domain::kFlow, &flow_reports_},
      {"session_packets", Domain::kSession, &session_packets_},
      {"session_rejects", Domain::kSession, &session_rejects_},
      {"session_reports", Domain::kSession, &session_reports_},
      {"property_rejects", Domain::kProperty, &property_rejects_},
      {"property_reports", Domain::kProperty, &property_reports_},
  };
  std::string out = "{\n  \"k\": " + std::to_string(cfg_.k) + ",\n";
  bool first_sk = true;
  for (const SketchRef& r : refs) {
    out += first_sk ? "" : ",\n";
    first_sk = false;
    out += "  \"" + std::string(r.tag) +
           "\": {\"total\": " + std::to_string(r.sk->total()) +
           ", \"entries\": [";
    bool first_e = true;
    for (const SpaceSaving::Entry& e : r.sk->ranked()) {
      out += first_e ? "" : ", ";
      first_e = false;
      out += "{";
      switch (r.domain) {
        case Domain::kFlow: {
          const TopKFlow f = unpack_flow(e.key);
          if (f.parsed) {
            out += "\"src\": \"" + ip_str(f.src_ip) + ":" +
                   std::to_string(f.src_port) + "\", \"dst\": \"" +
                   ip_str(f.dst_ip) + ":" + std::to_string(f.dst_port) +
                   "\", \"proto\": " + std::to_string(f.proto);
          } else {
            out += "\"flow\": \"unparsed\"";
          }
          break;
        }
        case Domain::kSession:
          out += "\"session\": \"" +
                 ip_str(static_cast<std::uint32_t>(e.key.hi)) + "\"";
          break;
        case Domain::kProperty:
          out += "\"property\": \"" + property_label(e.key) + "\"";
          break;
      }
      out += ", \"count\": " + std::to_string(e.count) +
             ", \"error\": " + std::to_string(e.error) + "}";
    }
    out += "]}";
  }
  out += "\n}\n";
  return out;
}

std::string TopKAttribution::snapshot_text() const {
  const SketchRef refs[] = {
      {"flow_packets", Domain::kFlow, &flow_packets_},
      {"flow_rejects", Domain::kFlow, &flow_rejects_},
      {"flow_reports", Domain::kFlow, &flow_reports_},
      {"session_packets", Domain::kSession, &session_packets_},
      {"session_rejects", Domain::kSession, &session_rejects_},
      {"session_reports", Domain::kSession, &session_reports_},
      {"property_rejects", Domain::kProperty, &property_rejects_},
      {"property_reports", Domain::kProperty, &property_reports_},
  };
  std::string out;
  for (const SketchRef& r : refs) {
    out += "topk " + std::string(r.tag) + " " + std::to_string(r.sk->total()) +
           "\n";
    // Stamp order = insertion order; replaying in this order re-issues the
    // same relative stamps, so ranking tie-breaks survive the restart.
    std::vector<SpaceSaving::Entry> entries = r.sk->slots();
    std::sort(entries.begin(), entries.end(),
              [](const SpaceSaving::Entry& a, const SpaceSaving::Entry& b) {
                return a.stamp < b.stamp;
              });
    for (const SpaceSaving::Entry& e : entries) {
      out += "tke " + std::string(r.tag) + " " + std::to_string(e.key.hi) +
             " " + std::to_string(e.key.lo) + " " + std::to_string(e.count) +
             " " + std::to_string(e.error) + "\n";
    }
  }
  return out;
}

bool TopKAttribution::restore_line(const std::string& line) {
  SpaceSaving* const by_tag[] = {
      &flow_packets_,    &flow_rejects_,    &flow_reports_,
      &session_packets_, &session_rejects_, &session_reports_,
      &property_rejects_, &property_reports_,
  };
  static const char* kTags[] = {
      "flow_packets",    "flow_rejects",    "flow_reports",
      "session_packets", "session_rejects", "session_reports",
      "property_rejects", "property_reports",
  };
  std::istringstream in(line);
  std::string kw, tag;
  in >> kw >> tag;
  if (kw != "topk" && kw != "tke") return false;
  SpaceSaving* sk = nullptr;
  for (std::size_t i = 0; i < 8; ++i) {
    if (tag == kTags[i]) {
      sk = by_tag[i];
      break;
    }
  }
  if (sk == nullptr) return true;  // topk line from an unknown sketch: skip
  if (kw == "topk") {
    std::uint64_t total = 0;
    in >> total;
    if (!in.fail()) sk->restore_total(total);
    return true;
  }
  TopKKey key;
  std::uint64_t count = 0;
  std::uint64_t error = 0;
  in >> key.hi >> key.lo >> count >> error;
  if (!in.fail()) sk->restore_entry(key, count, error);
  return true;
}

}  // namespace hydra::obs
