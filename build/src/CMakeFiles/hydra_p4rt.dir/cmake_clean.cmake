file(REMOVE_RECURSE
  "CMakeFiles/hydra_p4rt.dir/p4rt/interp.cpp.o"
  "CMakeFiles/hydra_p4rt.dir/p4rt/interp.cpp.o.d"
  "CMakeFiles/hydra_p4rt.dir/p4rt/packet.cpp.o"
  "CMakeFiles/hydra_p4rt.dir/p4rt/packet.cpp.o.d"
  "CMakeFiles/hydra_p4rt.dir/p4rt/register.cpp.o"
  "CMakeFiles/hydra_p4rt.dir/p4rt/register.cpp.o.d"
  "CMakeFiles/hydra_p4rt.dir/p4rt/table.cpp.o"
  "CMakeFiles/hydra_p4rt.dir/p4rt/table.cpp.o.d"
  "CMakeFiles/hydra_p4rt.dir/p4rt/tele_codec.cpp.o"
  "CMakeFiles/hydra_p4rt.dir/p4rt/tele_codec.cpp.o.d"
  "libhydra_p4rt.a"
  "libhydra_p4rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_p4rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
