file(REMOVE_RECURSE
  "CMakeFiles/aether_bug.dir/aether_bug.cpp.o"
  "CMakeFiles/aether_bug.dir/aether_bug.cpp.o.d"
  "aether_bug"
  "aether_bug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aether_bug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
