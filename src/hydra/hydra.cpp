#include "hydra/hydra.hpp"

#include <algorithm>

namespace hydra {

std::shared_ptr<const compiler::CompiledChecker> compile_shared(
    const std::string& source, const std::string& name,
    const compiler::CompileOptions& options) {
  return std::make_shared<const compiler::CompiledChecker>(
      compiler::compile_checker(source, name, options));
}

std::shared_ptr<const compiler::CompiledChecker> compile_library_checker(
    std::string_view name, const compiler::CompileOptions& options) {
  const checkers::CheckerSpec& spec = checkers::checker_by_name(name);
  return compile_shared(spec.source, spec.name, options);
}

std::uint32_t checker_switch_tag(int switch_node_id) {
  return static_cast<std::uint32_t>(switch_node_id + 1);
}

void configure_valley_free(net::Network& net, int deployment,
                           const net::LeafSpine& fabric) {
  for (int sw : fabric.spines) {
    net.set_config(deployment, sw, "is_spine_switch",
                   {BitVec::from_bool(true)});
  }
  for (int sw : fabric.leaves) {
    net.set_config(deployment, sw, "is_spine_switch",
                   {BitVec::from_bool(false)});
  }
}

void configure_routing_validity(net::Network& net, int deployment,
                                const net::LeafSpine& fabric) {
  for (int sw : fabric.leaves) {
    net.set_config(deployment, sw, "is_leaf_switch",
                   {BitVec::from_bool(true)});
  }
  for (int sw : fabric.spines) {
    net.set_config(deployment, sw, "is_leaf_switch",
                   {BitVec::from_bool(false)});
  }
}

void configure_up_down(net::Network& net, int deployment,
                       const net::LeafSpine& fabric) {
  for (int sw : fabric.leaves) {
    net.set_config(deployment, sw, "my_tier", {BitVec(8, 0)});
  }
  for (int sw : fabric.spines) {
    net.set_config(deployment, sw, "my_tier", {BitVec(8, 1)});
  }
}

void configure_up_down(net::Network& net, int deployment,
                       const net::FatTree& ft) {
  for (int sw = 0; sw < net.topo().node_count(); ++sw) {
    if (net.topo().node(sw).kind != net::NodeKind::kSwitch) continue;
    const int tier = ft.tier(sw);
    net.set_config(deployment, sw, "my_tier",
                   {BitVec(8, static_cast<std::uint64_t>(
                                  tier < 0 ? 0 : tier))});
  }
}

void configure_path_validation(net::Network& net, int deployment,
                               const net::LeafSpine& fabric) {
  // The checker only needs the leaf/spine classification; the declared
  // route itself travels as telemetry.
  configure_routing_validity(net, deployment, fabric);
}

void configure_egress_port_validity(net::Network& net, int deployment) {
  const net::Topology& topo = net.topo();
  for (int sw = 0; sw < topo.node_count(); ++sw) {
    if (topo.node(sw).kind != net::NodeKind::kSwitch) continue;
    auto& table = net.checker_table(deployment, sw, "allowed_eg_ports");
    for (const auto& link : topo.links()) {
      if (link.a.node == sw) {
        table.insert_exact(
            {BitVec(8, static_cast<std::uint64_t>(link.a.port))}, {});
      }
      if (link.b.node == sw) {
        table.insert_exact(
            {BitVec(8, static_cast<std::uint64_t>(link.b.port))}, {});
      }
    }
  }
}

void configure_waypoint(net::Network& net, int deployment,
                        int waypoint_switch) {
  net.set_config_all(deployment, "waypoint_id",
                     {BitVec(32, checker_switch_tag(waypoint_switch))});
}

void configure_service_chain(net::Network& net, int deployment,
                             const std::vector<int>& chain) {
  // The library checker's control array holds 4 slots.
  std::vector<BitVec> values;
  for (std::size_t i = 0; i < 4; ++i) {
    values.emplace_back(32, i < chain.size()
                                ? checker_switch_tag(chain[i])
                                : 0);
  }
  net.set_config_all(deployment, "chain", values);
  net.set_config_all(deployment, "chain_len",
                     {BitVec(32, static_cast<std::uint64_t>(chain.size()))});
}

void configure_multi_tenancy(
    net::Network& net, int deployment,
    const std::map<std::pair<int, int>, std::uint8_t>& port_tenants) {
  for (const auto& [key, tenant] : port_tenants) {
    const auto& [sw, port] = key;
    net.checker_table(deployment, sw, "tenants")
        .insert_exact({BitVec(8, static_cast<std::uint64_t>(port))},
                      {BitVec(8, tenant)});
  }
}

void configure_load_balance(net::Network& net, int deployment,
                            const net::LeafSpine& fabric,
                            std::uint32_t threshold_bytes) {
  if (fabric.spines.size() < 2) {
    throw std::invalid_argument(
        "load balance checker needs at least two spines");
  }
  const int left = fabric.leaf_uplink_port(0);
  const int right = fabric.leaf_uplink_port(1);
  for (int sw : fabric.leaves) {
    net.set_config(deployment, sw, "left_port",
                   {BitVec(32, static_cast<std::uint64_t>(left))});
    net.set_config(deployment, sw, "right_port",
                   {BitVec(32, static_cast<std::uint64_t>(right))});
    net.set_config(deployment, sw, "thresh", {BitVec(32, threshold_bytes)});
    auto& uplinks = net.checker_table(deployment, sw, "is_uplink");
    for (std::size_t j = 0; j < fabric.spines.size(); ++j) {
      uplinks.insert_exact(
          {BitVec(8, static_cast<std::uint64_t>(
                         fabric.leaf_uplink_port(static_cast<int>(j))))},
          {BitVec::from_bool(true)});
    }
  }
  for (int sw : fabric.spines) {
    net.set_config(deployment, sw, "left_port", {BitVec(32, 0)});
    net.set_config(deployment, sw, "right_port", {BitVec(32, 0)});
    net.set_config(deployment, sw, "thresh", {BitVec(32, threshold_bytes)});
  }
}

}  // namespace hydra
