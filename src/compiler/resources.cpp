#include "compiler/resources.hpp"

#include <algorithm>
#include <map>

namespace hydra::compiler {

BaselineProfile fabric_upf_profile() { return {"fabric-upf", 12, 44.53}; }

BaselineProfile simple_router_profile() { return {"simple-router", 4, 12.50}; }

namespace {

int container_bits(int width) {
  if (width <= 8) return 8;
  if (width <= 16) return 16;
  if (width <= 32) return 32;
  // Wider values span multiple 32-bit containers.
  return ((width + 31) / 32) * 32;
}

// Data-dependence stage scheduler. `avail[f]` is the first stage at which
// field f's value can be read. Returns the stage after the last one used.
class StageScheduler {
 public:
  int schedule(const std::vector<ir::InstrPtr>& body) {
    last_stage_ = 0;
    avail_.clear();
    run(body, 1);
    return last_stage_;
  }

 private:
  int read_stage(const ir::RValue& rv, int floor) {
    std::vector<ir::FieldId> fields;
    rv.collect_fields(fields);
    int stage = floor;
    for (const auto& f : fields) {
      const auto it = avail_.find(f.id);
      if (it != avail_.end()) stage = std::max(stage, it->second);
    }
    // Each operator level in the expression tree is one ALU pass.
    const int depth = rv.depth();
    return stage + std::max(0, depth - 1);
  }

  void write(ir::FieldId f, int stage) {
    avail_[f.id] = stage + 1;
    last_stage_ = std::max(last_stage_, stage);
  }

  void run(const std::vector<ir::InstrPtr>& body, int floor) {
    for (const auto& instr : body) {
      switch (instr->kind) {
        case ir::InstrKind::kAssign: {
          const int s = read_stage(*instr->value, floor);
          write(instr->dst, s);
          break;
        }
        case ir::InstrKind::kTableLookup: {
          int s = floor;
          for (const auto& k : instr->keys) {
            s = std::max(s, read_stage(*k, floor));
          }
          for (const auto& d : instr->dsts) write(d, s);
          if (instr->hit_dst.valid()) write(instr->hit_dst, s);
          last_stage_ = std::max(last_stage_, s);
          break;
        }
        case ir::InstrKind::kRegRead:
          write(instr->dst, floor);
          break;
        case ir::InstrKind::kRegWrite: {
          const int s = read_stage(*instr->value, floor);
          last_stage_ = std::max(last_stage_, s);
          break;
        }
        case ir::InstrKind::kPush: {
          const int s = read_stage(*instr->push_value, floor);
          last_stage_ = std::max(last_stage_, s);
          break;
        }
        case ir::InstrKind::kIf: {
          // The gateway evaluates the condition; predicated bodies start
          // in the same stage as the gateway's result.
          const int c = read_stage(*instr->cond, floor);
          run(instr->then_body, c);
          run(instr->else_body, c);
          break;
        }
        case ir::InstrKind::kReject:
        case ir::InstrKind::kReport: {
          int s = floor;
          for (const auto& p : instr->report_payload) {
            s = std::max(s, read_stage(*p, floor));
          }
          last_stage_ = std::max(last_stage_, s);
          break;
        }
      }
    }
  }

  std::map<int, int> avail_;
  int last_stage_ = 0;
};

}  // namespace

ResourceReport estimate_resources(const ir::CheckerIR& ir) {
  ResourceReport r;
  StageScheduler sched;
  r.init_stages = sched.schedule(ir.init_block);
  r.tele_stages = sched.schedule(ir.tele_block);
  r.check_stages = sched.schedule(ir.check_block);
  r.checker_stages =
      std::max({r.init_stages, r.tele_stages, r.check_stages});

  // PHV: checker-owned fields only; header bindings alias forwarding PHV.
  int bits = 0;
  for (const auto& f : ir.fields) {
    if (f.space == ir::Space::kHeader) continue;
    bits += container_bits(f.width);
  }
  // Encapsulation preamble (EtherType tag) and the reject/report flags the
  // generated code threads through the pipeline.
  bits += 16 + 8;
  r.phv_bits = bits;
  r.phv_percent = 100.0 * static_cast<double>(bits) /
                  static_cast<double>(kTotalPhvBits);
  r.tables = static_cast<int>(ir.tables.size());
  r.registers = static_cast<int>(ir.registers.size());
  return r;
}

LinkedResources link_resources(const BaselineProfile& baseline,
                               const ResourceReport& checker) {
  LinkedResources out;
  out.stages = std::max(baseline.stages, checker.checker_stages);
  out.phv_percent = baseline.phv_percent + checker.phv_percent;
  out.fits = out.stages <= kHardwareStages && out.phv_percent <= 100.0;
  return out;
}

}  // namespace hydra::compiler
