// Regenerates §6.2's throughput comparison: offered vs. achieved rate with
// and without Hydra, plus the campus-trace replay at 350 Kpps (Figure 13's
// workload) through leaf1.
//
//   $ ./throughput [--json BENCH_throughput.json] [--obs]
//                  [--engine=serial|parallel[:N]] [--workers=N]
//
// --obs enables the observability layer (metrics registry wired through
// every table/interpreter/switch) for all runs; the output schema is
// unchanged, so comparing a --obs run against a plain run measures the
// instrumentation overhead.
//
// --engine selects the execution engine for every simulation (results are
// identical by contract; wall-clock differs). The fabric section always
// runs the serial engine once as a wall-clock reference and reports the
// selected engine's speedup over it.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cli_parse.hpp"
#include "forwarding/anonymizer.hpp"
#include "forwarding/ipv4_ecmp.hpp"
#include "hydra/hydra.hpp"
#include "net/engine.hpp"
#include "net/network.hpp"
#include "net/traffic.hpp"

using namespace hydra;

namespace {

struct Result {
  double offered_gbps = 0;
  double delivered_gbps = 0;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  double pps = 0;
};

void deploy_everything(net::Network& net, const net::LeafSpine& fabric) {
  const int vf = net.deploy(compile_library_checker("valley_free"));
  configure_valley_free(net, vf, fabric);
  net.deploy(compile_library_checker("loops"));
  const int rv = net.deploy(compile_library_checker("routing_validity"));
  configure_routing_validity(net, rv, fabric);
  const int ep = net.deploy(compile_library_checker("egress_port_validity"));
  configure_egress_port_validity(net, ep);
  net.deploy(compile_library_checker("application_filtering"));
}

bool g_obs = false;  // --obs: run with the observability layer enabled
net::EngineKind g_kind = net::EngineKind::kSerial;
int g_workers = 0;

// True when the machine has fewer hardware threads than the requested
// worker count: parallel numbers are then oversubscription artifacts, not
// speedups. Recorded honestly in the JSON so downstream comparisons (CI
// perf gates, plots) can discard the run.
bool degraded_hw(int eff_workers) {
  const unsigned hw = std::thread::hardware_concurrency();
  return g_kind == net::EngineKind::kParallel && hw != 0 &&
         hw < static_cast<unsigned>(eff_workers < 1 ? 1 : eff_workers);
}

void apply_engine(net::Network& net) { net.set_engine(g_kind, g_workers); }

Result iperf_run(bool with_checkers, double duration) {
  auto fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net(fabric.topo);
  apply_engine(net);
  fwd::install_leaf_spine_routing(net, fabric);
  net.set_baseline_profile(compiler::fabric_upf_profile());
  if (with_checkers) deploy_everything(net, fabric);
  if (g_obs) net.set_observability(true);

  // Two 10 Gb/s flows (one per host pair): 20 Gb/s offered in aggregate,
  // the rate the paper's microbenchmark reaches.
  net::UdpFlood f1(net, fabric.hosts[0][0], fabric.hosts[1][0], 10.0, 8000,
                   7001);
  net::UdpFlood f2(net, fabric.hosts[0][1], fabric.hosts[1][1], 10.0, 8000,
                   7002);
  f1.start(0.0, duration);
  f2.start(0.0, duration);
  net.events().run();

  Result r;
  r.sent = f1.packets_sent() + f2.packets_sent();
  r.delivered = net.counters().delivered;
  r.offered_gbps = static_cast<double>(r.sent) * 8000 * 8 / duration / 1e9;
  r.delivered_gbps =
      static_cast<double>(r.delivered) * 8000 * 8 / duration / 1e9;
  return r;
}

Result campus_run(bool with_checkers, double duration) {
  auto fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net(fabric.topo);
  apply_engine(net);
  auto routing = fwd::install_leaf_spine_routing(net, fabric);
  if (with_checkers) deploy_everything(net, fabric);
  if (g_obs) net.set_observability(true);

  // Figure 13 pipeline: the mirrored traffic passes a line-rate
  // prefix-preserving anonymizer at the broker switch (leaf1) before
  // being delivered towards the testbed.
  auto anonymizer =
      std::make_shared<fwd::AnonymizerProgram>(routing, /*salt=*/2023);
  net.set_program(fabric.leaves[0], anonymizer);
  const std::uint32_t dst = net.topo().node(fabric.hosts[1][0]).ip;
  const std::uint32_t anon_dst = fwd::anonymize_ipv4(dst, 2023);
  routing->add_route(fabric.leaves[0], anon_dst, 32,
                     {fabric.leaf_uplink_port(0), fabric.leaf_uplink_port(1)});
  for (std::size_t j = 0; j < fabric.spines.size(); ++j) {
    routing->add_route(fabric.spines[j], anon_dst, 32,
                       {fabric.spine_down_port(1)});
  }
  routing->add_route(fabric.leaves[1], anon_dst, 32,
                     {fabric.leaf_host_port(0)});

  net::CampusReplay replay(net, fabric.hosts[0][0], fabric.hosts[1][0],
                           350000.0);
  replay.start(0.0, duration);
  net.events().run();

  Result r;
  r.sent = replay.packets_sent();
  r.delivered = net.counters().delivered;
  r.pps = static_cast<double>(r.sent) / duration;
  r.offered_gbps =
      static_cast<double>(replay.bytes_sent()) * 8 / duration / 1e9;
  r.delivered_gbps = r.offered_gbps *
                     static_cast<double>(r.delivered) /
                     static_cast<double>(r.sent);
  return r;
}

// Wall-clock view of one engine processing a 16-switch fabric under load:
// how fast the simulator itself chews through packet-hops.
struct FabricResult {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  double wall_s = 0;
  double hops_per_wall_s = 0;
};

FabricResult fabric_run(net::EngineKind kind, int workers, double duration) {
  auto fabric = net::make_leaf_spine(8, 8, 2);  // 16 switches, 16 hosts
  net::Network net(fabric.topo);
  net.set_engine(kind, workers);
  fwd::install_leaf_spine_routing(net, fabric);
  if (g_obs) net.set_observability(true);
  const int vf = net.deploy(compile_library_checker("valley_free"));
  configure_valley_free(net, vf, fabric);
  net.deploy(compile_library_checker("loops"));

  // One cross-leaf flow per host, shifted pairings so every leaf and spine
  // carries traffic concurrently — the shape parallel shards feed on.
  std::vector<std::unique_ptr<net::UdpFlood>> flows;
  const int leaves = static_cast<int>(fabric.leaves.size());
  for (int i = 0; i < leaves; ++i) {
    for (int h = 0; h < fabric.hosts_per_leaf; ++h) {
      const int src = fabric.hosts[static_cast<std::size_t>(i)]
                                  [static_cast<std::size_t>(h)];
      const int dst =
          fabric.hosts[static_cast<std::size_t>((i + 1 + h) % leaves)]
                      [static_cast<std::size_t>(h)];
      flows.push_back(std::make_unique<net::UdpFlood>(
          net, src, dst, 2.0, 1000,
          static_cast<std::uint16_t>(6000 + i * 8 + h)));
      flows.back()->set_poisson(
          static_cast<std::uint64_t>(100 + i * 8 + h));
      flows.back()->start(0.0, duration);
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  net.events().run();
  const auto t1 = std::chrono::steady_clock::now();

  FabricResult r;
  for (const auto& f : flows) r.sent += f->packets_sent();
  r.delivered = net.counters().delivered;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  // Each delivered packet crosses leaf -> spine -> leaf (3 pipeline hops).
  r.hops_per_wall_s =
      r.wall_s > 0 ? 3.0 * static_cast<double>(r.delivered) / r.wall_s : 0;
  return r;
}

void write_result(std::FILE* f, const char* name, const Result& r,
                  const char* trailer) {
  std::fprintf(f,
               "    \"%s\": {\"offered_gbps\": %.4f, \"delivered_gbps\": "
               "%.4f, \"sent\": %llu, \"delivered\": %llu, \"pps\": %.1f}%s\n",
               name, r.offered_gbps, r.delivered_gbps,
               static_cast<unsigned long long>(r.sent),
               static_cast<unsigned long long>(r.delivered), r.pps, trailer);
}

void write_fabric(std::FILE* f, const char* name, const FabricResult& r,
                  const char* trailer) {
  std::fprintf(f,
               "    \"%s\": {\"sent\": %llu, \"delivered\": %llu, "
               "\"wall_s\": %.4f, \"hops_per_wall_s\": %.1f}%s\n",
               name, static_cast<unsigned long long>(r.sent),
               static_cast<unsigned long long>(r.delivered), r.wall_s,
               r.hops_per_wall_s, trailer);
}

void write_json(const std::string& path, const Result& iperf_base,
                const Result& iperf_hydra, const Result& campus_base,
                const Result& campus_hydra, double delta_pct,
                const FabricResult& fabric_serial,
                const FabricResult& fabric_engine, int workers) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"throughput\",\n"
               "  \"engine\": \"%s\",\n  \"workers\": %d,\n"
               "  \"hw_threads\": %u,\n  \"degraded_hw\": %s,\n"
               "  \"iperf\": {\n",
               net::engine_kind_name(g_kind), workers,
               std::thread::hardware_concurrency(),
               degraded_hw(workers) ? "true" : "false");
  write_result(f, "baseline", iperf_base, ",");
  write_result(f, "all_checkers", iperf_hydra, ",");
  std::fprintf(f, "    \"delta_pct\": %.4f\n  },\n  \"campus\": {\n",
               delta_pct);
  write_result(f, "baseline", campus_base, ",");
  write_result(f, "all_checkers", campus_hydra, "");
  const double speedup = fabric_engine.wall_s > 0
                             ? fabric_serial.wall_s / fabric_engine.wall_s
                             : 0;
  std::fprintf(f, "  },\n  \"fabric_16sw\": {\n");
  write_fabric(f, "serial_reference", fabric_serial, ",");
  write_fabric(f, "selected_engine", fabric_engine, ",");
  std::fprintf(f, "    \"speedup\": %.3f\n  }\n}\n", speedup);
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_throughput.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--obs") == 0) {
      g_obs = true;
    } else if (std::strncmp(argv[i], "--engine=", 9) == 0) {
      g_kind = net::parse_engine_kind(argv[i] + 9, &g_workers);
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      long w = 0;
      if (!tools::parse_long_arg(argv[0], "--workers", argv[i] + 10, 1, 1024,
                                 &w)) {
        return 2;
      }
      g_workers = static_cast<int>(w);
    }
  }
  const int eff_workers =
      g_kind == net::EngineKind::kSerial ? 1 : g_workers;
  if (degraded_hw(eff_workers)) {
    std::fprintf(stderr,
                 "WARNING: %d workers requested but only %u hardware "
                 "thread(s) available — parallel wall-clock numbers below "
                 "measure oversubscription, NOT speedup. The JSON output is "
                 "tagged \"degraded_hw\": true; do not compare it against "
                 "multi-core runs.\n",
                 eff_workers, std::thread::hardware_concurrency());
  }
  std::printf("Throughput comparison (paper §6.2: 'almost identical with "
              "around 20 Gb/s')%s [engine=%s workers=%d]\n\n",
              g_obs ? " [observability ON]" : "",
              net::engine_kind_name(g_kind), eff_workers);

  const double dur = 0.05;
  const Result b = iperf_run(false, dur);
  const Result h = iperf_run(true, dur);
  std::printf("iperf3-style UDP load:\n");
  std::printf("  %-14s %10s %12s %12s\n", "config", "offered", "delivered",
              "loss");
  auto loss = [](const Result& r) {
    return 100.0 * (1.0 - static_cast<double>(r.delivered) /
                              static_cast<double>(r.sent));
  };
  std::printf("  %-14s %8.2f G %10.2f G %10.3f%%\n", "baseline",
              b.offered_gbps, b.delivered_gbps, loss(b));
  std::printf("  %-14s %8.2f G %10.2f G %10.3f%%\n", "all-checkers",
              h.offered_gbps, h.delivered_gbps, loss(h));
  const double delta =
      100.0 * (b.delivered_gbps - h.delivered_gbps) / b.delivered_gbps;
  std::printf("  delta: %.3f%% -> %s\n\n", delta,
              std::abs(delta) < 1.0 ? "throughput unchanged by Hydra "
                                      "(matches the paper)"
                                    : "NOTICEABLE drop (paper reports none)");

  const Result cb = campus_run(false, 0.05);
  const Result ch = campus_run(true, 0.05);
  std::printf("campus trace replay towards leaf1 (paper: ~350 Kpps):\n");
  std::printf("  %-14s %10s %12s %12s\n", "config", "pps", "offered",
              "delivered");
  std::printf("  %-14s %10.0f %10.2f G %10.2f G\n", "baseline", cb.pps,
              cb.offered_gbps, cb.delivered_gbps);
  std::printf("  %-14s %10.0f %10.2f G %10.2f G\n", "all-checkers", ch.pps,
              ch.offered_gbps, ch.delivered_gbps);

  // 16-switch fabric under all-pairs-style load: simulator wall-clock
  // throughput, serial reference vs the selected engine.
  const double fabric_dur = 0.02;
  const FabricResult fs =
      fabric_run(net::EngineKind::kSerial, 0, fabric_dur);
  const FabricResult fe = g_kind == net::EngineKind::kSerial
                              ? fs
                              : fabric_run(g_kind, g_workers, fabric_dur);
  std::printf("\n16-switch fabric wall-clock (%u hw threads):\n",
              std::thread::hardware_concurrency());
  std::printf("  %-18s %12s %14s\n", "engine", "wall_s", "hops/wall-s");
  std::printf("  %-18s %12.3f %14.0f\n", "serial", fs.wall_s,
              fs.hops_per_wall_s);
  if (g_kind != net::EngineKind::kSerial) {
    std::printf("  %-18s %12.3f %14.0f  (speedup %.2fx)\n", "selected",
                fe.wall_s, fe.hops_per_wall_s,
                fe.wall_s > 0 ? fs.wall_s / fe.wall_s : 0.0);
  }

  write_json(json_path, b, h, cb, ch, delta, fs, fe, eff_workers);
  return 0;
}
