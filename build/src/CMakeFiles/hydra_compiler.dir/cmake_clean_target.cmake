file(REMOVE_RECURSE
  "libhydra_compiler.a"
)
