#include "util/arena.hpp"

#include <atomic>

namespace hydra::util {

namespace {
// Relaxed is enough: the counter is read for before/after deltas on the
// main thread; slab growth itself is main-thread-only.
std::atomic<std::uint64_t> g_arena_allocations{0};
}  // namespace

std::uint64_t arena_allocations() {
  return g_arena_allocations.load(std::memory_order_relaxed);
}

namespace detail {
void note_arena_allocation(std::uint64_t n) {
  g_arena_allocations.fetch_add(n, std::memory_order_relaxed);
}
}  // namespace detail

}  // namespace hydra::util
