// Random well-typed Indus program generator for property-based tests
// (parser round-trips, compiler differential testing). Programs draw from
// a fixed set of declarations with randomized widths and random statement
// trees, so they typecheck by construction while covering the whole
// statement/expression surface.
#pragma once

#include <string>
#include <vector>

#include "util/rng.hpp"

namespace hydra::testgen {

struct GenConfig {
  int max_stmt_depth = 3;
  int stmts_per_block = 4;
};

class ProgramGen {
 public:
  explicit ProgramGen(Rng& rng, GenConfig config = {})
      : rng_(rng), config_(config) {}

  std::string generate() {
    w_t0_ = pick_width();
    w_t1_ = pick_width();
    w_arr_ = pick_width();
    w_brr_ = pick_width();
    w_dictv_ = pick_width();
    std::string src;
    src += "tele bit<" + std::to_string(w_t0_) + "> t0;\n";
    src += "tele bit<" + std::to_string(w_t1_) + "> t1 = " +
           std::to_string(rng_.below(200)) + ";\n";
    src += "tele bool tb = " + std::string(rng_.chance(0.5) ? "true" : "false") +
           ";\n";
    src += "tele bit<" + std::to_string(w_arr_) + ">[4] arr;\n";
    src += "tele bit<" + std::to_string(w_brr_) + ">[4] brr;\n";
    src += "tele bool[3] flags;\n";
    src += "sensor bit<16> sens = " + std::to_string(rng_.below(1000)) +
           ";\n";
    src += "header bit<8> h0;\n";
    src += "header bit<16> h1;\n";
    src += "header bool hb;\n";
    src += "control dict<bit<8>,bit<" + std::to_string(w_dictv_) +
           ">> dict1;\n";
    src += "control dict<(bit<8>,bit<8>),bool> dict2;\n";
    src += "control set<bit<8>> set1;\n";
    src += "control cfg;\n";
    src += "control bit<8>[3] carr;\n";
    src += "\n";
    src += block(/*checker=*/false);
    src += block(/*checker=*/false);
    src += block(/*checker=*/true);
    return src;
  }

 private:
  int pick_width() { return static_cast<int>(rng_.range(4, 32)); }

  // Index expressions are reduced modulo the container size so they are
  // dynamic (never a bare literal, which would be a static bounds error)
  // and usually in range.
  std::string idx_expr(int depth, int size) {
    return "(" + bit_expr(depth) + " % " + std::to_string(size) + ")";
  }

  std::string bit_expr(int depth) {
    // Leaves when depth is exhausted.
    if (depth <= 0 || rng_.chance(0.3)) {
      switch (rng_.below(loop_var_.empty() ? 7 : 8)) {
        case 0: return std::to_string(rng_.below(256));
        case 1: return "t0";
        case 2: return "t1";
        case 3: return "h0";
        case 4: return "h1";
        case 5: return "sens";
        case 6: return "packet_length";
        default: return loop_var_;
      }
    }
    switch (rng_.below(8)) {
      case 0: return "dict1[" + bit_expr(depth - 1) + "]";
      case 1: return "arr[" + idx_expr(depth - 1, 4) + "]";
      case 2: return "carr[" + idx_expr(depth - 1, 3) + "]";
      case 3: return "length(arr)";
      case 4:
        return "abs(" + bit_expr(depth - 1) + " - " + bit_expr(depth - 1) +
               ")";
      case 5: {
        static const char* ops[] = {"+", "-", "&", "|", "^"};
        return "(" + bit_expr(depth - 1) + " " + ops[rng_.below(5)] + " " +
               bit_expr(depth - 1) + ")";
      }
      case 6: return "cfg";
      default: return "(" + bit_expr(depth - 1) + " * 3)";
    }
  }

  std::string bool_expr(int depth) {
    if (depth <= 0 || rng_.chance(0.3)) {
      switch (rng_.below(4)) {
        case 0: return "true";
        case 1: return "false";
        case 2: return "tb";
        default: return "hb";
      }
    }
    switch (rng_.below(8)) {
      case 0: return "!" + bool_expr(depth - 1);
      case 1:
        return "(" + bool_expr(depth - 1) + " && " + bool_expr(depth - 1) +
               ")";
      case 2:
        return "(" + bool_expr(depth - 1) + " || " + bool_expr(depth - 1) +
               ")";
      case 3: {
        static const char* cmps[] = {"==", "!=", "<", "<=", ">", ">="};
        return "(" + bit_expr(depth - 1) + " " + cmps[rng_.below(6)] + " " +
               bit_expr(depth - 1) + ")";
      }
      case 4:
        return "dict2[(" + bit_expr(depth - 1) + ", " + bit_expr(depth - 1) +
               ")]";
      case 5: return "(" + bit_expr(depth - 1) + " in set1)";
      case 6: return "(" + bit_expr(depth - 1) + " in arr)";
      default: return "(" + bit_expr(depth - 1) + " in carr)";
    }
  }

  std::string stmt(bool checker, int depth, int indent) {
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    const int choice = static_cast<int>(rng_.below(checker ? 10 : 9));
    switch (choice) {
      case 0: return pad + "t0 = " + bit_expr(depth) + ";\n";
      case 1: return pad + "t1 += " + bit_expr(depth) + ";\n";
      case 2: return pad + "tb = " + bool_expr(depth) + ";\n";
      case 3: return pad + "sens += " + bit_expr(depth) + ";\n";
      case 4: return pad + "arr.push(" + bit_expr(depth) + ");\n";
      case 5: {
        std::string out = pad + "if (" + bool_expr(depth) + ") {\n";
        out += stmt(checker, depth - 1, indent + 1);
        if (rng_.chance(0.5)) {
          out += pad + "} elsif (" + bool_expr(depth) + ") {\n";
          out += stmt(checker, depth - 1, indent + 1);
        }
        if (rng_.chance(0.5)) {
          out += pad + "} else {\n";
          out += stmt(checker, depth - 1, indent + 1);
        }
        out += pad + "}\n";
        return out;
      }
      case 6: {
        if (!loop_var_.empty()) return pad + "flags.push(hb);\n";
        loop_var_ = "lv";
        std::string out;
        if (rng_.chance(0.5)) {
          out = pad + "for (lv in arr) {\n" +
                stmt(checker, depth - 1, indent + 1) + pad + "}\n";
        } else {
          out = pad + "for (lv, lw in arr, brr) {\n" +
                stmt(checker, depth - 1, indent + 1) + pad + "}\n";
        }
        loop_var_.clear();
        return out;
      }
      case 7: return pad + "report((t0, h0, " + bit_expr(depth) + "));\n";
      case 8: return pad + "brr[" + idx_expr(depth, 4) + "] = " +
                     bit_expr(depth) + ";\n";
      default:  // checker only
        return pad + "if (" + bool_expr(depth) + ") { reject; }\n";
    }
  }

  std::string block(bool checker) {
    std::string out = "{\n";
    const int n = 1 + static_cast<int>(rng_.below(
                          static_cast<std::uint64_t>(config_.stmts_per_block)));
    for (int i = 0; i < n; ++i) {
      out += stmt(checker, config_.max_stmt_depth, 1);
    }
    out += "}\n";
    return out;
  }

  Rng& rng_;
  GenConfig config_;
  std::string loop_var_;
  int w_t0_ = 8, w_t1_ = 8, w_arr_ = 8, w_brr_ = 8, w_dictv_ = 8;
};

}  // namespace hydra::testgen
