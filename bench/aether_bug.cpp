// Regenerates the §5.2 / Figure 11 experiment: the Aether application-
// filtering bug, swept over the number of clients attached before the rule
// update. Every pre-update client silently loses its allowed traffic, and
// Hydra reports each one.
//
//   $ ./aether_bug
//   $ ./aether_bug --json                  # also write BENCH_aether_bug.json
//   $ ./aether_bug --json sweep.json       # ... to a chosen path
//
// The JSON document carries the sweep table, the run's reject/report
// totals, and — with the forensics flight recorder armed — the first
// violation's full forensic report (obs::violation_json), so the bug's
// diagnosis is machine-readable without re-running the tool.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "aether/controller.hpp"
#include "forwarding/ipv4_ecmp.hpp"
#include "forwarding/upf.hpp"
#include "hydra/hydra.hpp"
#include "net/network.hpp"

using namespace hydra;

namespace {

struct Outcome {
  int old_clients;
  std::uint64_t silently_dropped = 0;
  std::uint64_t hydra_reports = 0;
  std::uint64_t new_client_ok = 0;
  std::uint64_t rejected = 0;
  // One representative report, showing the flow identity Hydra attaches.
  std::string sample_report;
  // First assembled ViolationReport as JSON (forensics runs only).
  std::string first_violation_json;
};

Outcome run(int old_clients, bool forensics) {
  auto fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net(fabric.topo);
  auto routing = fwd::install_leaf_spine_routing(net, fabric);
  auto upf = std::make_shared<fwd::UpfProgram>(routing);
  net.set_program(fabric.leaves[0], upf);
  const int dep = net.deploy(compile_library_checker("application_filtering"));
  if (forensics) net.set_forensics(true);
  aether::AetherController ctl(net, upf, dep);
  ctl.define_slice(aether::example_camera_slice(1));

  const std::uint32_t enb = net.topo().node(fabric.hosts[0][0]).ip;
  const std::uint32_t n3 = 0x0a0001fe;
  const std::uint32_t app = net.topo().node(fabric.hosts[1][0]).ip;

  auto uplink = [&](std::uint32_t ue, std::uint32_t teid,
                    std::uint16_t port) {
    p4rt::Packet inner = p4rt::make_udp(ue, app, 40000, port, 64);
    net.send_from_host(fabric.hosts[0][0],
                       p4rt::gtpu_encap(inner, enb, n3, teid));
    net.events().run();
  };

  // Attach the pre-update population and verify they work.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ues;  // (ip, teid)
  for (int i = 0; i < old_clients; ++i) {
    const std::uint32_t ue = 0x0a640001 + static_cast<std::uint32_t>(i);
    const std::uint32_t teid = 1001 + static_cast<std::uint32_t>(i);
    ctl.attach_client(1, {123450001ULL + static_cast<std::uint64_t>(i), ue,
                          teid},
                      enb, n3);
    ues.emplace_back(ue, teid);
    uplink(ue, teid, 81);
  }
  const auto delivered_before = net.counters().delivered;
  if (delivered_before != static_cast<std::uint64_t>(old_clients)) {
    std::printf("  !! pre-update traffic broken\n");
  }

  // Rule update + one new client.
  aether::Slice updated = aether::example_camera_slice(1);
  updated.rules[1].port_hi = 82;
  updated.rules[1].priority = 30;
  ctl.update_slice_rules(1, updated.rules);
  const std::uint32_t new_ue = 0x0a6400f0;
  ctl.attach_client(1, {123459999, new_ue, 2001}, enb, n3);
  uplink(new_ue, 2001, 81);

  Outcome out;
  out.old_clients = old_clients;
  out.new_client_ok = net.counters().delivered - delivered_before;

  // Every old client retries its previously-allowed traffic.
  const auto drops0 = upf->termination_drops();
  const auto reports0 = net.reports().size();
  for (const auto& [ue, teid] : ues) uplink(ue, teid, 81);
  out.silently_dropped = upf->termination_drops() - drops0;
  out.hydra_reports = net.reports().size() - reports0;
  out.rejected = net.counters().rejected;
  if (net.reports().size() > reports0) {
    const net::ReportRecord& r = net.reports()[reports0];
    out.sample_report = "checker=" + r.checker +
                        " switch=" + net.topo().node(r.switch_id).name +
                        " flow=" + r.flow.to_string() +
                        " hop=" + std::to_string(r.hop_count);
  }
  if (forensics && !net.violation_reports().empty()) {
    out.first_violation_json =
        obs::violation_json(net.violation_reports().front());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string json_path = "BENCH_aether_bug.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json [FILE]]\n", argv[0]);
      return 2;
    }
  }

  std::printf("Aether application-filtering bug sweep (§5.2, Figure 11)\n");
  std::printf("scenario: N clients attach -> operator updates rule "
              "(81 -> 81-82, prio up) -> client N+1 attaches\n\n");
  std::printf("%12s %14s %18s %14s\n", "old clients", "new client ok",
              "silently dropped", "Hydra reports");
  bool all_detected = true;
  std::string sample;
  std::string first_violation;
  std::uint64_t total_reports = 0;
  std::uint64_t total_rejects = 0;
  std::string rows;
  for (int n : {1, 2, 4, 8, 16}) {
    // Forensics is armed only for the JSON run, so the default invocation
    // measures exactly what it always measured.
    const Outcome o = run(n, json);
    std::printf("%12d %14llu %18llu %14llu\n", o.old_clients,
                static_cast<unsigned long long>(o.new_client_ok),
                static_cast<unsigned long long>(o.silently_dropped),
                static_cast<unsigned long long>(o.hydra_reports));
    if (sample.empty()) sample = o.sample_report;
    if (first_violation.empty()) first_violation = o.first_violation_json;
    total_reports += o.hydra_reports;
    total_rejects += o.rejected;
    if (!rows.empty()) rows += ",\n";
    rows += "    {\"old_clients\": " + std::to_string(o.old_clients) +
            ", \"new_client_ok\": " + std::to_string(o.new_client_ok) +
            ", \"silently_dropped\": " + std::to_string(o.silently_dropped) +
            ", \"hydra_reports\": " + std::to_string(o.hydra_reports) + "}";
    all_detected = all_detected &&
                   o.silently_dropped == static_cast<std::uint64_t>(n) &&
                   o.hydra_reports == o.silently_dropped;
  }
  if (!sample.empty()) {
    std::printf("\nsample report: %s\n", sample.c_str());
  }
  std::printf("\n%s\n",
              all_detected
                  ? "every silent drop produced exactly one Hydra report at "
                    "the switch where it happened (matches the paper)"
                  : "DETECTION MISMATCH");

  if (json) {
    std::string doc = "{\n  \"bench\": \"aether_bug\",\n  \"sweep\": [\n" +
                      rows + "\n  ],\n  \"reports\": " +
                      std::to_string(total_reports) +
                      ",\n  \"rejects\": " + std::to_string(total_rejects) +
                      ",\n  \"all_detected\": " +
                      (all_detected ? "true" : "false") +
                      ",\n  \"first_violation\": " +
                      (first_violation.empty() ? std::string("null")
                                               : first_violation) +
                      "\n}\n";
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return all_detected ? 0 : 1;
}
