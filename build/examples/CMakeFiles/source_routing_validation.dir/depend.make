# Empty dependencies file for source_routing_validation.
# This may be replaced when dependencies are built.
