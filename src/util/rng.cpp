#include "util/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace hydra {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::below(0)");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::range: lo > hi");
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next();  // full 64-bit range
  return lo + below(span);
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::exponential(double mean) {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

}  // namespace hydra
