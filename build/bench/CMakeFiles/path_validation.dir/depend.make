# Empty dependencies file for path_validation.
# This may be replaced when dependencies are built.
