
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/indus/ast.cpp" "src/CMakeFiles/hydra_indus.dir/indus/ast.cpp.o" "gcc" "src/CMakeFiles/hydra_indus.dir/indus/ast.cpp.o.d"
  "/root/repo/src/indus/diagnostics.cpp" "src/CMakeFiles/hydra_indus.dir/indus/diagnostics.cpp.o" "gcc" "src/CMakeFiles/hydra_indus.dir/indus/diagnostics.cpp.o.d"
  "/root/repo/src/indus/eval_ref.cpp" "src/CMakeFiles/hydra_indus.dir/indus/eval_ref.cpp.o" "gcc" "src/CMakeFiles/hydra_indus.dir/indus/eval_ref.cpp.o.d"
  "/root/repo/src/indus/lexer.cpp" "src/CMakeFiles/hydra_indus.dir/indus/lexer.cpp.o" "gcc" "src/CMakeFiles/hydra_indus.dir/indus/lexer.cpp.o.d"
  "/root/repo/src/indus/parser.cpp" "src/CMakeFiles/hydra_indus.dir/indus/parser.cpp.o" "gcc" "src/CMakeFiles/hydra_indus.dir/indus/parser.cpp.o.d"
  "/root/repo/src/indus/pretty.cpp" "src/CMakeFiles/hydra_indus.dir/indus/pretty.cpp.o" "gcc" "src/CMakeFiles/hydra_indus.dir/indus/pretty.cpp.o.d"
  "/root/repo/src/indus/token.cpp" "src/CMakeFiles/hydra_indus.dir/indus/token.cpp.o" "gcc" "src/CMakeFiles/hydra_indus.dir/indus/token.cpp.o.d"
  "/root/repo/src/indus/typecheck.cpp" "src/CMakeFiles/hydra_indus.dir/indus/typecheck.cpp.o" "gcc" "src/CMakeFiles/hydra_indus.dir/indus/typecheck.cpp.o.d"
  "/root/repo/src/indus/types.cpp" "src/CMakeFiles/hydra_indus.dir/indus/types.cpp.o" "gcc" "src/CMakeFiles/hydra_indus.dir/indus/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hydra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
