// Streaming export surface for the obs registry.
//
// Two pieces live here:
//
//  * Prometheus text exposition (`to_prometheus`): a deterministic
//    serialization of a Registry snapshot. Metrics registered with a
//    family + labels (see Registry::counter(name, family, labels)) are
//    grouped into labeled samples; legacy flat names get a family derived
//    mechanically from the name. Families are emitted in sorted order and
//    samples within a family in sorted label order, so the output is a
//    pure function of the registry contents — byte-identical across
//    engines whenever the snapshots agree.
//
//  * Windowed series (`ExportScheduler`): a bounded ring of per-interval
//    deltas over the cumulative totals the Network hands in at each
//    virtual-time tick. Ticks are driven from the engines' commit phases
//    (see engine.cpp): a tick at T fires after every event with t < T has
//    committed and before any event with t >= T runs. That boundary is a
//    property of the event timeline, not of the schedule, so the sample
//    sequence is identical across SerialEngine and ParallelEngine at any
//    worker count. The scheduler itself is passive — it never reads the
//    registry; the Network assembles an ExportCumulative at each tick
//    (after shard metrics are absorbed) and the scheduler only diffs it
//    against the previous tick's snapshot.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace hydra::obs {

// Escapes a label value per the Prometheus text format: backslash, double
// quote, and newline become \\, \", and \n.
std::string prom_escape(const std::string& v);

// Derives a Prometheus family name from a flat snapshot name: characters
// outside [a-zA-Z0-9_:] become '_', a "hydra_" prefix is added, and
// counters gain the conventional "_total" suffix.
std::string prom_family_from_name(const std::string& name, MetricKind kind);

// Full text exposition of the registry: `# TYPE` line per family, families
// sorted, histogram buckets cumulative and terminated by `+Inf`, plus the
// `_sum` / `_count` series. Throws std::invalid_argument if two metrics of
// different kinds map to the same family.
//
// The exposition ends with exactly one trailing newline and is what HTTP
// consumers must receive under `Content-Type: text/plain; version=0.0.4`
// (the Prometheus text-format identifier served by obs::HttpServer and
// written verbatim by hydrastat/hydrascope --prom).
std::string to_prometheus(const Registry& reg);

// A pre-rendered exposition family merged into to_prometheus output by
// the overload below. Used for values that live outside the Registry
// (e.g. top-K sketch entries, whose label sets churn as keys are
// evicted). Samples are emitted in sorted label-body order; an empty
// sample list suppresses the family entirely.
struct PromFamily {
  struct Sample {
    std::string label_body;  // `k1="v1",k2="v2"` — keys sorted, no braces
    std::string value;       // pre-formatted number
  };
  std::string name;
  MetricKind kind = MetricKind::kGauge;
  std::vector<Sample> samples;
};

// to_prometheus with extra synthesized families interleaved in sorted
// order with the registry-derived ones. Throws std::invalid_argument if an
// extra family collides with a registry family name.
std::string to_prometheus(const Registry& reg,
                          const std::vector<PromFamily>& extra);

// Prometheus-style interpolated quantile over non-cumulative bucket counts
// (`buckets.size() == bounds.size() + 1`, last bucket is overflow).
// Quiet/degenerate inputs never produce NaN or Inf: an empty or all-zero
// bucket window, missing bounds, or a non-finite `q` all return 0, and `q`
// clamps to [0, 1]. Values that land in the overflow bucket clamp to the
// highest finite bound.
double histogram_quantile(double q, const std::vector<double>& bounds,
                          const std::vector<std::uint64_t>& buckets);

// Cumulative totals at one tick boundary. The same struct doubles as the
// per-window delta inside WindowSample.
struct ExportCumulative {
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t rejected = 0;
  std::uint64_t fwd_dropped = 0;
  std::uint64_t queue_dropped = 0;
  std::uint64_t fault_dropped = 0;
  std::uint64_t reports = 0;
  // Telemetry damaged in flight and rejected fail-closed, and reports
  // suppressed by checker cold-start — the burn-rate inputs for health
  // evaluation (summed across deployments).
  std::uint64_t decode_rejects = 0;
  std::uint64_t cold_suppressed = 0;
  // Per-property attribution, sorted by property name.
  struct Property {
    std::string name;
    std::uint64_t rejects = 0;
    std::uint64_t reports = 0;
    std::uint64_t check_runs = 0;
    std::uint64_t tele_runs = 0;
  };
  std::vector<Property> properties;
  // Delivered-latency histogram state (bounds fixed at arm time; empty
  // until the first delivery).
  std::vector<std::uint64_t> latency_buckets;
  std::uint64_t latency_count = 0;
  double latency_sum = 0.0;
};

// One captured interval: [t0, t1) deltas plus derived rates/percentiles.
struct WindowSample {
  std::uint64_t index = 0;  // monotone across ring evictions
  double t0 = 0.0;
  double t1 = 0.0;
  ExportCumulative delta;
  double pps = 0.0;           // delivered / interval
  double rejects_per_s = 0.0; // rejected / interval
  double latency_p50 = 0.0;
  double latency_p90 = 0.0;
  double latency_p99 = 0.0;
};

class ExportScheduler {
 public:
  // Invoked on the main thread immediately after a sample is captured;
  // used by tools for --watch style periodic rewrites.
  using TickCallback = std::function<void(const WindowSample&)>;

  ExportScheduler(double interval_s, double first_tick,
                  std::vector<double> latency_bounds,
                  std::size_t ring_capacity);

  double interval() const { return interval_; }
  // The next virtual-time boundary at which a sample is due. Engines fire
  // every due tick before running any event with t >= next_tick().
  // Computed multiplicatively (first + k * interval), not by repeated
  // addition, so boundaries carry no accumulated rounding drift.
  double next_tick() const {
    return first_tick_ + interval_ * static_cast<double>(ticks_);
  }
  std::uint64_t captured() const { return captured_; }
  std::uint64_t ticks() const { return ticks_; }
  double first_tick() const { return first_tick_; }
  const std::deque<WindowSample>& windows() const { return ring_; }
  const std::vector<double>& latency_bounds() const { return latency_bounds_; }

  void set_on_tick(TickCallback cb) { on_tick_ = std::move(cb); }

  // Captures the window ending at next_tick(): diffs `cum` against the
  // previous tick's snapshot, derives rates and latency percentiles,
  // pushes the sample (evicting the oldest past ring capacity), advances
  // the tick, and fires the callback.
  void tick(const ExportCumulative& cum);

  // Re-anchors the delta baseline at `cum` and drops captured windows;
  // used when the underlying metrics are reset mid-run.
  void rebaseline(const ExportCumulative& cum);

  // Reinstates a snapshotted ring: sets the capture count and retained
  // windows, leaving the tick clock (`ticks_`, `first_tick_`) alone so a
  // restarted process schedules boundaries in its own fresh time domain
  // while window indices continue monotonically from the snapshot.
  void restore_series(std::uint64_t captured, std::deque<WindowSample> windows);

  // Full-state restore (snapshot v2): the restarted process resumes the
  // SNAPSHOT's time domain. Both anchor and tick count are reinstated
  // verbatim — boundaries are computed as first_tick_ + k * interval_, so
  // restoring the exact (anchor, count) pair reproduces the original run's
  // window edges bit-for-bit (a re-derived anchor with a different count
  // splits the same product differently and drifts in the last ulp).
  void resume_clock(double first_tick, std::uint64_t ticks) {
    first_tick_ = first_tick;
    ticks_ = ticks;
  }

  // The delta baseline: cumulative totals as of the last fired tick. The
  // events between that tick and a mid-window snapshot are NOT yet in any
  // window — a restore that re-anchors the baseline at the snapshot's
  // totals would silently drop them from the next window, so full-state
  // snapshots serialize this and reinstate it verbatim.
  const ExportCumulative& baseline() const { return prev_; }
  void restore_baseline(ExportCumulative cum) { prev_ = std::move(cum); }

  // Deterministic JSON: interval, capture count, and the retained windows
  // (oldest first) with per-property attribution.
  std::string series_json() const;

 private:
  double interval_ = 0.0;
  double first_tick_ = 0.0;
  std::uint64_t ticks_ = 0;  // boundaries fired, monotone across rebaselines
  std::vector<double> latency_bounds_;
  std::size_t ring_capacity_ = 0;
  std::deque<WindowSample> ring_;
  std::uint64_t captured_ = 0;
  ExportCumulative prev_;
  TickCallback on_tick_;
};

}  // namespace hydra::obs
