file(REMOVE_RECURSE
  "CMakeFiles/hydra_compiler.dir/compiler/compile.cpp.o"
  "CMakeFiles/hydra_compiler.dir/compiler/compile.cpp.o.d"
  "CMakeFiles/hydra_compiler.dir/compiler/emit_p4.cpp.o"
  "CMakeFiles/hydra_compiler.dir/compiler/emit_p4.cpp.o.d"
  "CMakeFiles/hydra_compiler.dir/compiler/layout.cpp.o"
  "CMakeFiles/hydra_compiler.dir/compiler/layout.cpp.o.d"
  "CMakeFiles/hydra_compiler.dir/compiler/link_p4.cpp.o"
  "CMakeFiles/hydra_compiler.dir/compiler/link_p4.cpp.o.d"
  "CMakeFiles/hydra_compiler.dir/compiler/lower.cpp.o"
  "CMakeFiles/hydra_compiler.dir/compiler/lower.cpp.o.d"
  "CMakeFiles/hydra_compiler.dir/compiler/relocate.cpp.o"
  "CMakeFiles/hydra_compiler.dir/compiler/relocate.cpp.o.d"
  "CMakeFiles/hydra_compiler.dir/compiler/resources.cpp.o"
  "CMakeFiles/hydra_compiler.dir/compiler/resources.cpp.o.d"
  "CMakeFiles/hydra_compiler.dir/ir/ir.cpp.o"
  "CMakeFiles/hydra_compiler.dir/ir/ir.cpp.o.d"
  "libhydra_compiler.a"
  "libhydra_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
