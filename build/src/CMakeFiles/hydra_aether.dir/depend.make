# Empty dependencies file for hydra_aether.
# This may be replaced when dependencies are built.
