file(REMOVE_RECURSE
  "CMakeFiles/link_p4_test.dir/link_p4_test.cpp.o"
  "CMakeFiles/link_p4_test.dir/link_p4_test.cpp.o.d"
  "link_p4_test"
  "link_p4_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_p4_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
