file(REMOVE_RECURSE
  "CMakeFiles/anonymizer_test.dir/anonymizer_test.cpp.o"
  "CMakeFiles/anonymizer_test.dir/anonymizer_test.cpp.o.d"
  "anonymizer_test"
  "anonymizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anonymizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
