// Regenerates Figure 12: the performance overhead of Hydra.
//
//   12a: RTT of a fast ping over time, baseline vs. ALL checkers linked;
//   12b: the RTT CDF of both runs, plus the paper's t-test.
//
// Scaling note (documented in EXPERIMENTS.md): the paper pings every 0.2 s
// for 30 minutes of wall-clock on hardware; the simulation compresses this
// to 1 s of simulated time with a 2 ms ping interval (500 samples) under
// the same kind of bidirectional UDP background load over ECMP.
//
//   $ ./fig12_latency [--json BENCH_fig12.json]
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "forwarding/ipv4_ecmp.hpp"
#include "hydra/hydra.hpp"
#include "net/network.hpp"
#include "net/traffic.hpp"
#include "util/stats.hpp"

using namespace hydra;

namespace {

constexpr double kDuration = 1.0;        // simulated seconds
constexpr double kPingInterval = 2e-3;   // 2 ms "fast ping"
// Two Poisson flows converge on the ping destination's 10 Gb/s access
// link at ~85% utilization, so pings experience genuine queueing — the
// RTT spread of Figure 12 rather than a constant.
constexpr double kFlowGbps = 4.25;
constexpr int kFlowPktBytes = 8000;

struct RunResult {
  std::vector<net::RttSample> samples;
  std::uint64_t background_pkts = 0;
};

// Deploys and configures all eleven Table-1 checkers so that well-behaved
// traffic passes them all.
void deploy_all_checkers(net::Network& net, const net::LeafSpine& fabric) {
  auto ip_of = [&](int h) { return net.topo().node(h).ip; };

  const int mt = net.deploy(compile_library_checker("multi_tenancy"));
  std::map<std::pair<int, int>, std::uint8_t> tenants;
  for (std::size_t leaf = 0; leaf < fabric.leaves.size(); ++leaf) {
    for (int i = 0; i < fabric.hosts_per_leaf; ++i) {
      tenants[{fabric.leaves[leaf], fabric.leaf_host_port(i)}] = 1;
    }
  }
  configure_multi_tenancy(net, mt, tenants);

  const int lb = net.deploy(compile_library_checker("dc_uplink_load_balance"));
  configure_load_balance(net, lb, fabric, /*threshold_bytes=*/0xffffffffu);

  const int fw = net.deploy(compile_library_checker("stateful_firewall"));
  for (const auto& hs1 : fabric.hosts) {
    for (int a : hs1) {
      for (const auto& hs2 : fabric.hosts) {
        for (int b : hs2) {
          if (a == b) continue;
          net.dict_insert_all(fw, "allowed",
                              {BitVec(32, ip_of(a)), BitVec(32, ip_of(b))},
                              {BitVec::from_bool(true)});
        }
      }
    }
  }

  net.deploy(compile_library_checker("application_filtering"));

  net.deploy(compile_library_checker("vlan_isolation"));

  const int ep = net.deploy(compile_library_checker("egress_port_validity"));
  configure_egress_port_validity(net, ep);

  const int rv = net.deploy(compile_library_checker("routing_validity"));
  configure_routing_validity(net, rv, fabric);

  net.deploy(compile_library_checker("loops"));

  const int wp = net.deploy(compile_library_checker("waypointing"));
  // All cross-leaf traffic in the 2x2 testbed transits both leaves; use
  // leaf1 as the choke point.
  configure_waypoint(net, wp, fabric.leaves[0]);

  const int sc = net.deploy(compile_library_checker("service_chains"));
  configure_service_chain(net, sc, {});  // empty chain: vacuously satisfied

  const int pv = net.deploy(
      compile_library_checker("source_routing_path_validation"));
  configure_path_validation(net, pv, fabric);
}

RunResult run(bool with_checkers) {
  auto fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net(fabric.topo);
  fwd::install_leaf_spine_routing(net, fabric);
  net.set_baseline_profile(compiler::fabric_upf_profile());
  if (with_checkers) deploy_all_checkers(net, fabric);

  // Bidirectional UDP background over ECMP, as in the paper. Both flows
  // target h4 so its access link queues; reverse flows load the opposite
  // direction.
  std::vector<std::unique_ptr<net::UdpFlood>> floods;
  const int h4 = fabric.hosts[1][1];
  const int sources[2] = {fabric.hosts[0][0], fabric.hosts[0][1]};
  std::uint16_t port = 7000;
  std::uint64_t seed = 11;
  for (const int src : sources) {
    floods.push_back(std::make_unique<net::UdpFlood>(
        net, src, h4, kFlowGbps, kFlowPktBytes, ++port, 5201));
    floods.back()->set_poisson(seed++);
    floods.back()->start(0.0, kDuration);
    floods.push_back(std::make_unique<net::UdpFlood>(
        net, h4, src, kFlowGbps, kFlowPktBytes, ++port, 5201));
    floods.back()->set_poisson(seed++);
    floods.back()->start(0.0, kDuration);
  }

  net::PingProbe ping(net, fabric.hosts[0][0], h4, kPingInterval);
  ping.start(0.001, kDuration - 0.002);
  net.events().run();

  RunResult r;
  r.samples = ping.samples();
  for (const auto& f : floods) r.background_pkts += f->packets_sent();
  return r;
}

void print_time_series(const char* label, const RunResult& r, int bins) {
  std::printf("# Fig 12a series: %s (bin-averaged RTT, ms)\n", label);
  std::printf("%-10s %-10s\n", "time_s", "rtt_ms");
  const double bin_w = kDuration / bins;
  std::vector<double> sum(static_cast<std::size_t>(bins), 0.0);
  std::vector<int> cnt(static_cast<std::size_t>(bins), 0);
  for (const auto& s : r.samples) {
    auto b = static_cast<std::size_t>(s.sent_at / bin_w);
    if (b >= sum.size()) b = sum.size() - 1;
    sum[b] += s.rtt;
    ++cnt[b];
  }
  for (int b = 0; b < bins; ++b) {
    if (cnt[static_cast<std::size_t>(b)] == 0) continue;
    std::printf("%-10.3f %-10.4f\n", (b + 0.5) * bin_w,
                sum[static_cast<std::size_t>(b)] /
                    cnt[static_cast<std::size_t>(b)] * 1e3);
  }
  std::printf("\n");
}

void print_cdf(const char* label, const std::vector<double>& rtts_ms) {
  std::printf("# Fig 12b CDF: %s\n", label);
  std::printf("%-12s %-8s\n", "rtt_ms", "F");
  for (const auto& [x, fx] : stats::empirical_cdf(rtts_ms, 20)) {
    std::printf("%-12.4f %-8.3f\n", x, fx);
  }
  std::printf("\n");
}

void write_summary(std::FILE* f, const char* name, const stats::Summary& s,
                   std::uint64_t background_pkts, const char* trailer) {
  std::fprintf(f,
               "    \"%s\": {\"samples\": %zu, \"mean_ms\": %.4f, "
               "\"stddev_ms\": %.4f, \"p50_ms\": %.4f, \"p90_ms\": %.4f, "
               "\"p99_ms\": %.4f, \"background_pkts\": %llu}%s\n",
               name, s.count, s.mean, s.stddev, s.p50, s.p90, s.p99,
               static_cast<unsigned long long>(background_pkts), trailer);
}

void write_json(const std::string& path, const stats::Summary& sb,
                const stats::Summary& sf, std::uint64_t base_pkts,
                std::uint64_t full_pkts, const stats::TTest& t) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig12_latency\",\n  \"rtt\": {\n");
  write_summary(f, "baseline", sb, base_pkts, ",");
  write_summary(f, "all_checkers", sf, full_pkts, "");
  std::fprintf(f,
               "  },\n  \"t_test\": {\"t\": %.4f, \"df\": %.2f, "
               "\"p_value\": %.4f, \"significant\": %s}\n}\n",
               t.t, t.df, t.p_value, t.p_value <= 0.05 ? "true" : "false");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  std::printf("Figure 12: performance overhead of Hydra (simulated "
              "testbed; %g s, ping every %g ms, %g Gb/s x4 background)\n\n",
              kDuration, kPingInterval * 1e3, kFlowGbps);

  const RunResult base = run(false);
  std::fprintf(stderr, "[baseline] ping samples: %zu\n", base.samples.size());
  const RunResult full = run(true);
  std::fprintf(stderr, "[checkers] ping samples: %zu\n", full.samples.size());

  print_time_series("Baseline", base, 20);
  print_time_series("All Checkers", full, 20);

  auto to_ms = [](const std::vector<net::RttSample>& v) {
    std::vector<double> out;
    for (const auto& s : v) out.push_back(s.rtt * 1e3);
    return out;
  };
  const auto base_ms = to_ms(base.samples);
  const auto full_ms = to_ms(full.samples);
  print_cdf("Baseline", base_ms);
  print_cdf("All Checkers", full_ms);

  const auto sb = stats::summarize(base_ms);
  const auto sf = stats::summarize(full_ms);
  std::printf("summary (ms):      %-10s %-10s\n", "Baseline", "AllCheckers");
  std::printf("  samples          %-10zu %-10zu\n", sb.count, sf.count);
  std::printf("  mean             %-10.4f %-10.4f\n", sb.mean, sf.mean);
  std::printf("  p50              %-10.4f %-10.4f\n", sb.p50, sf.p50);
  std::printf("  p99              %-10.4f %-10.4f\n", sb.p99, sf.p99);
  std::printf("  background pkts  %-10llu %-10llu\n",
              static_cast<unsigned long long>(base.background_pkts),
              static_cast<unsigned long long>(full.background_pkts));

  const auto t = stats::welch_t_test(base_ms, full_ms);
  std::printf("\nt-test: t=%.3f df=%.1f p=%.3f -> %s\n", t.t, t.df,
              t.p_value,
              t.p_value > 0.05
                  ? "no statistically significant latency difference "
                    "(matches the paper)"
                  : "SIGNIFICANT DIFFERENCE (paper reports none)");
  if (!json_path.empty()) {
    write_json(json_path, sb, sf, base.background_pkts, full.background_pkts,
               t);
  }
  return 0;
}
