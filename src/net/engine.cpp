#include "net/engine.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

namespace hydra::net {

// ---------------------------------------------------------------------------
// ExecutionEngine
// ---------------------------------------------------------------------------

void ExecutionEngine::drain_spawned_before(EventQueue& q, SimTime t) {
  // Items spawned while draining carry larger seqs than every window item,
  // so a strict time comparison reproduces full (t, seq) order.
  while (!q.empty() && q.next_time() < t) {
    EventQueue::Item item = q.pop_next();
    q.advance_now(item.t);
    if (item.is_switch_work) {
      // Unreachable while the lookahead invariant holds (switch work is
      // scheduled >= lookahead after its creator); executing it serially
      // here keeps even a violated invariant deterministic.
      net_->process_hop_serial(item.t, std::move(item.work));
    } else {
      item.fn();
    }
  }
}

// ---------------------------------------------------------------------------
// SerialEngine
// ---------------------------------------------------------------------------

void SerialEngine::drain(EventQueue& q, SimTime limit) {
  // Null unless profiling is armed; one branch per event otherwise.
  obs::EngineProfiler* prof = net_->engine_profiler_ptr();
  while (q.has_ready(limit)) {
    EventQueue::Item item = q.pop_next();
    q.advance_now(item.t);
    if (item.is_switch_work) {
      if (prof != nullptr) {
        const double t0 = prof->now_us();
        net_->process_hop_serial(item.t, std::move(item.work));
        prof->serial_hop(t0, prof->now_us());
      } else {
        net_->process_hop_serial(item.t, std::move(item.work));
      }
    } else {
      item.fn();
    }
  }
}

// ---------------------------------------------------------------------------
// ParallelEngine
// ---------------------------------------------------------------------------

ParallelEngine::ParallelEngine(Network& net, int workers)
    : ExecutionEngine(net), workers_(workers) {
  if (workers_ < 1) {
    throw std::invalid_argument("parallel engine needs >= 1 worker");
  }
  errors_.assign(static_cast<std::size_t>(workers_), nullptr);
  threads_.reserve(static_cast<std::size_t>(workers_ - 1));
  for (int w = 1; w < workers_; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

ParallelEngine::~ParallelEngine() {
  {
    std::lock_guard<std::mutex> lock(m_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
}

void ParallelEngine::worker_main(int shard) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(m_);
      cv_work_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
    }
    compute_shard(shard);
    {
      std::lock_guard<std::mutex> lock(m_);
      if (--remaining_ == 0) cv_done_.notify_one();
    }
  }
}

void ParallelEngine::compute_shard(int shard) {
  try {
    const double t0 = prof_ != nullptr ? prof_->now_us() : 0.0;
    std::size_t computed = 0;
    ExecContext& ctx = net_->context(shard);
    for (std::size_t i = 0; i < window_.size(); ++i) {
      EventQueue::Item& item = window_[i];
      if (!item.is_switch_work) continue;
      if (net_->shard_of(item.work.sw) != shard) continue;
      net_->compute_hop(ctx, item.t, item.work, results_[i]);
      ++computed;
    }
    if (prof_ != nullptr) {
      prof_->compute(shard, t0, prof_->now_us(), computed);
    }
  } catch (...) {
    errors_[static_cast<std::size_t>(shard)] = std::current_exception();
  }
}

void ParallelEngine::run_window(EventQueue& q) {
  const double e0 = prof_ != nullptr ? prof_->now_us() : 0.0;
  std::size_t switch_items = 0;
  for (const auto& item : window_) {
    if (item.is_switch_work) ++switch_items;
  }

  // Closed control loop subscribed: a commit may mutate state that later
  // same-window compute reads, so fall back to serial per-event execution
  // (see the degradation rule in the header).
  const char* mode = "parallel";
  if (net_->has_report_callbacks()) {
    mode = "callbacks";
  } else if (workers_ == 1) {
    mode = "one_worker";
  } else if (switch_items < kDispatchThreshold) {
    mode = "small_window";
  }
  const bool serial_window = mode[0] != 'p';

  if (serial_window) {
    for (auto& item : window_) {
      drain_spawned_before(q, item.t);
      q.advance_now(item.t);
      if (item.is_switch_work) {
        net_->process_hop_serial(item.t, std::move(item.work));
      } else {
        item.fn();
      }
    }
    if (prof_ != nullptr) {
      prof_->epoch(e0, prof_->now_us(), window_.size(), switch_items, mode);
    }
    return;
  }

  // COMPUTE: publish the window, wake the pool, take shard 0 ourselves.
  results_.resize(window_.size());
  {
    std::lock_guard<std::mutex> lock(m_);
    std::fill(errors_.begin(), errors_.end(), nullptr);
    remaining_ = workers_ - 1;
    ++epoch_;
  }
  cv_work_.notify_all();
  compute_shard(0);
  const double b0 = prof_ != nullptr ? prof_->now_us() : 0.0;
  {
    std::unique_lock<std::mutex> lock(m_);
    cv_done_.wait(lock, [&] { return remaining_ == 0; });
  }
  if (prof_ != nullptr) prof_->barrier(b0, prof_->now_us());
  for (const auto& err : errors_) {
    if (err) std::rethrow_exception(err);
  }

  // COMMIT: canonical (t, seq) order, merging in spawned closures.
  const double c0 = prof_ != nullptr ? prof_->now_us() : 0.0;
  for (std::size_t i = 0; i < window_.size(); ++i) {
    EventQueue::Item& item = window_[i];
    drain_spawned_before(q, item.t);
    q.advance_now(item.t);
    if (item.is_switch_work) {
      net_->commit_hop(item.t, std::move(item.work), std::move(results_[i]));
    } else {
      item.fn();
    }
  }
  if (prof_ != nullptr) {
    const double c1 = prof_->now_us();
    prof_->commit(c0, c1);
    prof_->epoch(e0, c1, window_.size(), switch_items, mode);
  }
}

void ParallelEngine::drain(EventQueue& q, SimTime limit) {
  // Refreshed while the pool is idle; the epoch handshake publishes it.
  prof_ = net_->engine_profiler_ptr();
  while (q.has_ready(limit)) {
    const SimTime t0 = q.next_time();
    window_.clear();
    const double p0 = prof_ != nullptr ? prof_->now_us() : 0.0;
    q.pop_window(limit, t0 + net_->lookahead(), window_);
    if (prof_ != nullptr) {
      prof_->pop_window(p0, prof_->now_us(), window_.size());
    }
    run_window(q);
  }
  net_->absorb_shard_metrics();
}

// ---------------------------------------------------------------------------
// Engine spec parsing
// ---------------------------------------------------------------------------

EngineKind parse_engine_kind(const std::string& spec, int* workers_out) {
  if (spec == "serial") {
    if (workers_out != nullptr) *workers_out = 0;
    return EngineKind::kSerial;
  }
  if (spec == "parallel") {
    if (workers_out != nullptr) *workers_out = 0;
    return EngineKind::kParallel;
  }
  const std::string prefix = "parallel:";
  if (spec.rfind(prefix, 0) == 0) {
    const int n = std::stoi(spec.substr(prefix.size()));
    if (workers_out != nullptr) *workers_out = n;
    return EngineKind::kParallel;
  }
  throw std::invalid_argument("unknown engine spec '" + spec +
                              "' (serial | parallel[:N])");
}

const char* engine_kind_name(EngineKind kind) {
  return kind == EngineKind::kSerial ? "serial" : "parallel";
}

}  // namespace hydra::net
