// EventQueue edge cases the parallel engine's epoch pipeline leans on:
// pop_window boundary semantics (exclusive end, t0 group inclusion, limit),
// the split closure/switch-work heaps merging back into one (t, seq) pop
// order, the O(1) per-kind next-time probes (infinity when empty), and the
// strict-< invariant of ExecutionEngine::drain_spawned_before that lets
// commits merge mid-window spawns deterministically.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "net/engine.hpp"
#include "net/event.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "p4rt/packet.hpp"

namespace hydra {
namespace {

// The queue never dereferences packet handles, so any value works here.
net::PacketHandle pkt() { return net::PacketHandle{42}; }

TEST(EventQueue, PopWindowOnEmptyQueue) {
  net::EventQueue q;
  std::vector<net::EventQueue::Item> out;
  q.pop_window(10.0, 20.0, out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
}

// window_end is EXCLUSIVE: an event scheduled exactly at t0 + lookahead
// belongs to the NEXT window (its spawns could land at t0 + 2L, inside an
// extended window, so it must not be computed with this one).
TEST(EventQueue, PopWindowEndIsExclusive) {
  net::EventQueue q;
  q.schedule_at(1.0, [] {});
  q.schedule_at(1.5, [] {});
  q.schedule_at(2.0, [] {});  // exactly window_end: stays queued
  std::vector<net::EventQueue::Item> out;
  q.pop_window(10.0, 2.0, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].t, 1.0);
  EXPECT_DOUBLE_EQ(out[1].t, 1.5);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

// The t == t0 group is always taken, even when window_end <= t0 (a
// degenerate window); same-timestamp events are never split across windows.
TEST(EventQueue, PopWindowAlwaysIncludesT0Group) {
  net::EventQueue q;
  q.schedule_at(5.0, [] {});
  q.schedule_switch_at(5.0, 0, 1, pkt());
  q.schedule_at(5.0, [] {});
  q.schedule_at(5.0 + 1e-9, [] {});
  std::vector<net::EventQueue::Item> out;
  q.pop_window(10.0, 5.0, out);  // window_end == t0
  ASSERT_EQ(out.size(), 3u);
  for (const auto& item : out) EXPECT_DOUBLE_EQ(item.t, 5.0);
  // Stable (t, seq): scheduling order within the group.
  EXPECT_FALSE(out[0].is_switch_work());
  EXPECT_TRUE(out[1].is_switch_work());
  EXPECT_FALSE(out[2].is_switch_work());
  EXPECT_EQ(q.pending(), 1u);
}

// The drain limit caps the window independently of window_end.
TEST(EventQueue, PopWindowRespectsLimit) {
  net::EventQueue q;
  q.schedule_at(1.0, [] {});
  q.schedule_at(3.0, [] {});
  std::vector<net::EventQueue::Item> out;
  q.pop_window(2.0, 100.0, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].t, 1.0);
  EXPECT_EQ(q.pending(), 1u);
}

// Closures and switch work live in separate heaps sharing one seq stream;
// a window pop must interleave them back into exact scheduling order.
TEST(EventQueue, SplitHeapsMergeInScheduleOrder) {
  net::EventQueue q;
  q.schedule_at(1.0, [] {});            // seq 0
  q.schedule_switch_at(1.0, 3, 0, pkt());  // seq 1
  q.schedule_at(1.0, [] {});            // seq 2
  q.schedule_switch_at(1.0, 7, 0, pkt());  // seq 3
  std::vector<net::EventQueue::Item> out;
  q.pop_window(10.0, 2.0, out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_FALSE(out[0].is_switch_work());
  EXPECT_TRUE(out[1].is_switch_work());
  EXPECT_EQ(out[1].work.sw, 3);
  EXPECT_FALSE(out[2].is_switch_work());
  EXPECT_TRUE(out[3].is_switch_work());
  EXPECT_EQ(out[3].work.sw, 7);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1].seq, out[i].seq);
  }
}

// Per-kind next-time probes: +infinity when that kind has nothing pending.
// The adaptive lookahead bound takes min() over these, so an empty kind
// must never constrain the window.
TEST(EventQueue, NextKindTimesReportInfinityWhenEmpty) {
  net::EventQueue q;
  EXPECT_TRUE(std::isinf(q.next_closure_time()));
  EXPECT_TRUE(std::isinf(q.next_switch_time()));

  q.schedule_at(2.5, [] {});
  EXPECT_DOUBLE_EQ(q.next_closure_time(), 2.5);
  EXPECT_TRUE(std::isinf(q.next_switch_time()));

  q.schedule_switch_at(1.25, 0, 0, pkt());
  EXPECT_DOUBLE_EQ(q.next_switch_time(), 1.25);
  EXPECT_DOUBLE_EQ(q.next_closure_time(), 2.5);
  EXPECT_DOUBLE_EQ(q.next_time(), 1.25);

  (void)q.pop_next();  // the switch item
  EXPECT_TRUE(std::isinf(q.next_switch_time()));
  EXPECT_DOUBLE_EQ(q.next_closure_time(), 2.5);
}

// Exposes the protected commit-merge primitive for direct testing.
class ProbeEngine : public net::ExecutionEngine {
 public:
  explicit ProbeEngine(net::Network& net) : ExecutionEngine(net) {}
  const char* name() const override { return "probe"; }
  int workers() const override { return 1; }
  void drain(net::EventQueue&, net::SimTime) override {}
  void run_spawned_before(net::EventQueue& q, net::SimTime t) {
    drain_spawned_before(q, t);
  }
};

// drain_spawned_before runs everything strictly BEFORE t — an event at
// exactly t is the commit about to be applied (or a peer in its same-t
// group) and must stay queued, or it would run twice.
TEST(EventQueue, DrainSpawnedBeforeIsStrict) {
  auto fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net(fabric.topo);
  ProbeEngine probe(net);
  net::EventQueue q;

  std::vector<int> ran;
  q.schedule_at(1.0, [&] { ran.push_back(1); });
  q.schedule_at(2.0, [&] { ran.push_back(2); });
  q.schedule_at(2.0, [&] { ran.push_back(3); });
  q.schedule_at(3.0, [&] { ran.push_back(4); });

  probe.run_spawned_before(q, 2.0);
  EXPECT_EQ(ran, (std::vector<int>{1}));
  EXPECT_EQ(q.pending(), 3u);
  EXPECT_DOUBLE_EQ(q.now(), 1.0);  // clock advanced to what it executed

  // Nudging the key past 2.0 releases the whole t == 2.0 group, in order.
  probe.run_spawned_before(q, 2.0 + 1e-9);
  EXPECT_EQ(ran, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.pending(), 1u);
}

// A spawn DURING the merge that lands before the key is itself merged
// (commits can cascade closures inside the window); one landing at/after
// the key stays for the next commit or window.
TEST(EventQueue, DrainSpawnedBeforeMergesCascadedSpawns) {
  auto fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net(fabric.topo);
  ProbeEngine probe(net);
  net::EventQueue q;

  std::vector<int> ran;
  q.schedule_at(1.0, [&] {
    ran.push_back(1);
    q.schedule_at(1.5, [&] { ran.push_back(2); });  // in-window: runs now
    q.schedule_at(2.5, [&] { ran.push_back(3); });  // out: stays queued
  });
  probe.run_spawned_before(q, 2.0);
  EXPECT_EQ(ran, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.5);
}

}  // namespace
}  // namespace hydra
