// Compiler intermediate representation.
//
// An Indus program lowers to a CheckerIR: a set of scalar *fields* (PHV
// slots), *telemetry lists* (header stacks), *tables* (from control
// variables), and *registers* (from sensor variables), plus three
// instruction blocks (init / telemetry / check). The IR is loop-free —
// `for` loops are unrolled over the statically-known list capacity — which
// mirrors what the paper's compiler does for P4 targets (§4.1).
//
// The same IR drives three consumers:
//   * the P4 text emitter (Table 1 "P4 Output LoC"),
//   * the pipeline resource estimator (stages / PHV bits),
//   * the runtime interpreter executing on simulated switches.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "indus/ast.hpp"
#include "util/bitvec.hpp"

namespace hydra::ir {

// Where a scalar field lives.
enum class Space {
  kTele,    // serialized into the Hydra telemetry header (on the wire)
  kMeta,    // per-packet switch-local metadata (not on the wire)
  kHeader,  // read-only binding into the forwarding program / intrinsic
  kLocal,   // compiler temporary (metadata)
};

struct FieldId {
  int id = -1;
  bool valid() const { return id >= 0; }
  bool operator==(const FieldId&) const = default;
};

struct Field {
  std::string name;  // debug name, e.g. "tele.tenant" or "tmp3"
  Space space = Space::kLocal;
  int width = 1;             // bits
  bool is_bool = false;      // rendered as bool in P4 output
  std::string annotation;    // kHeader: path in the forwarding program
};

// A tele array: `capacity` slots of a scalar element plus a fill counter.
struct TeleList {
  std::string name;
  int capacity = 0;
  int elem_width = 1;
  bool elem_is_bool = false;
  std::vector<FieldId> slots;  // size == capacity
  FieldId count;               // current fill level
};

// Match kinds supported by generated tables.
enum class MatchKind { kExact, kTernary, kLpm, kRange };

// A match-action table generated from a control variable.
//   * dict controls match on the flattened key and return the flattened
//     value plus a hit flag;
//   * non-dict controls ("config scalars") are keyless tables whose default
//     action supplies the value;
//   * set controls match on the element and return only the hit flag.
struct Table {
  std::string name;
  std::vector<int> key_widths;    // empty for config scalars
  std::vector<int> value_widths;  // empty for sets
  bool from_set = false;
  bool config_scalar = false;
};

// A register generated from a sensor variable.
struct Register {
  std::string name;
  int width = 32;
  hydra::BitVec initial{32, 0};
};

// ---------------------------------------------------------------------------
// RValues: pure expression trees over fields and constants.
// ---------------------------------------------------------------------------

enum class RKind { kConst, kField, kUnary, kBinary, kAbsDiff };

struct RValue;
using RValuePtr = std::unique_ptr<RValue>;

struct RValue {
  RKind kind = RKind::kConst;
  hydra::BitVec cval;                       // kConst
  FieldId field;                            // kField
  indus::UnOp unop = indus::UnOp::kNot;     // kUnary
  indus::BinOp binop = indus::BinOp::kAdd;  // kBinary
  std::vector<RValuePtr> args;

  RValuePtr clone() const;
  // Maximum operator-nesting depth; proxies ALU dependency depth for the
  // stage scheduler.
  int depth() const;
  void collect_fields(std::vector<FieldId>& out) const;
};

RValuePtr rv_const(hydra::BitVec v);
RValuePtr rv_bool(bool b);
RValuePtr rv_field(FieldId f);
RValuePtr rv_unary(indus::UnOp op, RValuePtr a);
RValuePtr rv_binary(indus::BinOp op, RValuePtr a, RValuePtr b);
RValuePtr rv_absdiff(RValuePtr a, RValuePtr b);

// ---------------------------------------------------------------------------
// Instructions
// ---------------------------------------------------------------------------

enum class InstrKind {
  kAssign,       // dst := value
  kTableLookup,  // dsts..., hit := table[keys...]
  kRegRead,      // dst := registers[reg]
  kRegWrite,     // registers[reg] := value
  kPush,         // lists[list].push(value)
  kIf,           // if (cond) then_body else else_body
  kReject,
  kReport,       // report(payload...)
};

struct Instr;
using InstrPtr = std::unique_ptr<Instr>;

struct Instr {
  InstrKind kind = InstrKind::kAssign;

  FieldId dst;             // kAssign, kRegRead
  RValuePtr value;         // kAssign, kRegWrite

  int table = -1;               // kTableLookup
  std::vector<RValuePtr> keys;  // kTableLookup
  std::vector<FieldId> dsts;    // kTableLookup value outputs
  FieldId hit_dst;              // kTableLookup optional hit flag

  int reg = -1;  // kRegRead / kRegWrite

  int list = -1;           // kPush
  RValuePtr push_value;    // kPush

  RValuePtr cond;                 // kIf
  std::vector<InstrPtr> then_body;
  std::vector<InstrPtr> else_body;

  std::vector<RValuePtr> report_payload;  // kReport

  InstrPtr clone() const;
};

InstrPtr in_assign(FieldId dst, RValuePtr value);
InstrPtr in_table(int table, std::vector<RValuePtr> keys,
                  std::vector<FieldId> dsts, FieldId hit_dst);
InstrPtr in_reg_read(int reg, FieldId dst);
InstrPtr in_reg_write(int reg, RValuePtr value);
InstrPtr in_push(int list, RValuePtr value);
InstrPtr in_if(RValuePtr cond, std::vector<InstrPtr> then_body,
               std::vector<InstrPtr> else_body = {});
InstrPtr in_reject();
InstrPtr in_report(std::vector<RValuePtr> payload);

// ---------------------------------------------------------------------------
// Whole-checker IR
// ---------------------------------------------------------------------------

struct CheckerIR {
  std::string name;

  std::vector<Field> fields;
  std::vector<TeleList> lists;
  std::vector<Table> tables;
  std::vector<Register> registers;

  std::vector<InstrPtr> init_block;
  std::vector<InstrPtr> tele_block;
  std::vector<InstrPtr> check_block;

  const Field& field(FieldId id) const { return fields[id.id]; }

  // Wire footprint of the telemetry header this checker adds to packets,
  // in bits (scalars plus list slots plus list counters), excluding the
  // fixed encapsulation preamble.
  int telemetry_wire_bits() const;

  int find_table(const std::string& name) const;   // -1 if absent
  int find_register(const std::string& name) const;
  int find_list(const std::string& name) const;
  FieldId find_field(const std::string& name) const;

  std::string dump() const;  // human-readable IR listing for tests/debug
};

}  // namespace hydra::ir
