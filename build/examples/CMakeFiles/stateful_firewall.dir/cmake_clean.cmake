file(REMOVE_RECURSE
  "CMakeFiles/stateful_firewall.dir/stateful_firewall.cpp.o"
  "CMakeFiles/stateful_firewall.dir/stateful_firewall.cpp.o.d"
  "stateful_firewall"
  "stateful_firewall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stateful_firewall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
