#include "ir/ir.hpp"

#include <algorithm>

namespace hydra::ir {

RValuePtr RValue::clone() const {
  auto out = std::make_unique<RValue>();
  out->kind = kind;
  out->cval = cval;
  out->field = field;
  out->unop = unop;
  out->binop = binop;
  out->args.reserve(args.size());
  for (const auto& a : args) out->args.push_back(a->clone());
  return out;
}

int RValue::depth() const {
  int d = 0;
  for (const auto& a : args) d = std::max(d, a->depth());
  return (kind == RKind::kConst || kind == RKind::kField) ? d : d + 1;
}

void RValue::collect_fields(std::vector<FieldId>& out) const {
  if (kind == RKind::kField) out.push_back(field);
  for (const auto& a : args) a->collect_fields(out);
}

RValuePtr rv_const(hydra::BitVec v) {
  auto r = std::make_unique<RValue>();
  r->kind = RKind::kConst;
  r->cval = v;
  return r;
}

RValuePtr rv_bool(bool b) { return rv_const(hydra::BitVec::from_bool(b)); }

RValuePtr rv_field(FieldId f) {
  auto r = std::make_unique<RValue>();
  r->kind = RKind::kField;
  r->field = f;
  return r;
}

RValuePtr rv_unary(indus::UnOp op, RValuePtr a) {
  auto r = std::make_unique<RValue>();
  r->kind = RKind::kUnary;
  r->unop = op;
  r->args.push_back(std::move(a));
  return r;
}

RValuePtr rv_binary(indus::BinOp op, RValuePtr a, RValuePtr b) {
  auto r = std::make_unique<RValue>();
  r->kind = RKind::kBinary;
  r->binop = op;
  r->args.push_back(std::move(a));
  r->args.push_back(std::move(b));
  return r;
}

RValuePtr rv_absdiff(RValuePtr a, RValuePtr b) {
  auto r = std::make_unique<RValue>();
  r->kind = RKind::kAbsDiff;
  r->args.push_back(std::move(a));
  r->args.push_back(std::move(b));
  return r;
}

InstrPtr Instr::clone() const {
  auto out = std::make_unique<Instr>();
  out->kind = kind;
  out->dst = dst;
  if (value) out->value = value->clone();
  out->table = table;
  for (const auto& k : keys) out->keys.push_back(k->clone());
  out->dsts = dsts;
  out->hit_dst = hit_dst;
  out->reg = reg;
  out->list = list;
  if (push_value) out->push_value = push_value->clone();
  if (cond) out->cond = cond->clone();
  for (const auto& i : then_body) out->then_body.push_back(i->clone());
  for (const auto& i : else_body) out->else_body.push_back(i->clone());
  for (const auto& p : report_payload) out->report_payload.push_back(p->clone());
  return out;
}

namespace {
InstrPtr new_instr(InstrKind kind) {
  auto i = std::make_unique<Instr>();
  i->kind = kind;
  return i;
}
}  // namespace

InstrPtr in_assign(FieldId dst, RValuePtr value) {
  auto i = new_instr(InstrKind::kAssign);
  i->dst = dst;
  i->value = std::move(value);
  return i;
}

InstrPtr in_table(int table, std::vector<RValuePtr> keys,
                  std::vector<FieldId> dsts, FieldId hit_dst) {
  auto i = new_instr(InstrKind::kTableLookup);
  i->table = table;
  i->keys = std::move(keys);
  i->dsts = std::move(dsts);
  i->hit_dst = hit_dst;
  return i;
}

InstrPtr in_reg_read(int reg, FieldId dst) {
  auto i = new_instr(InstrKind::kRegRead);
  i->reg = reg;
  i->dst = dst;
  return i;
}

InstrPtr in_reg_write(int reg, RValuePtr value) {
  auto i = new_instr(InstrKind::kRegWrite);
  i->reg = reg;
  i->value = std::move(value);
  return i;
}

InstrPtr in_push(int list, RValuePtr value) {
  auto i = new_instr(InstrKind::kPush);
  i->list = list;
  i->push_value = std::move(value);
  return i;
}

InstrPtr in_if(RValuePtr cond, std::vector<InstrPtr> then_body,
               std::vector<InstrPtr> else_body) {
  auto i = new_instr(InstrKind::kIf);
  i->cond = std::move(cond);
  i->then_body = std::move(then_body);
  i->else_body = std::move(else_body);
  return i;
}

InstrPtr in_reject() { return new_instr(InstrKind::kReject); }

InstrPtr in_report(std::vector<RValuePtr> payload) {
  auto i = new_instr(InstrKind::kReport);
  i->report_payload = std::move(payload);
  return i;
}

int CheckerIR::telemetry_wire_bits() const {
  int bits = 0;
  for (const auto& f : fields) {
    if (f.space == Space::kTele) bits += f.width;
  }
  for (const auto& l : lists) {
    // Slots are kTele fields (already counted); count the fill counter only
    // if it is not itself a tele field.
    if (l.count.valid() && fields[l.count.id].space != Space::kTele) {
      bits += fields[l.count.id].width;
    }
  }
  return bits;
}

int CheckerIR::find_table(const std::string& name) const {
  for (std::size_t i = 0; i < tables.size(); ++i) {
    if (tables[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int CheckerIR::find_register(const std::string& name) const {
  for (std::size_t i = 0; i < registers.size(); ++i) {
    if (registers[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int CheckerIR::find_list(const std::string& name) const {
  for (std::size_t i = 0; i < lists.size(); ++i) {
    if (lists[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

FieldId CheckerIR::find_field(const std::string& name) const {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].name == name) return FieldId{static_cast<int>(i)};
  }
  return FieldId{};
}

namespace {

std::string rv_str(const CheckerIR& ir, const RValue& r) {
  switch (r.kind) {
    case RKind::kConst:
      return r.cval.to_string();
    case RKind::kField:
      return ir.field(r.field).name;
    case RKind::kUnary:
      return std::string(indus::unop_name(r.unop)) + "(" +
             rv_str(ir, *r.args[0]) + ")";
    case RKind::kBinary:
      return "(" + rv_str(ir, *r.args[0]) + " " + indus::binop_name(r.binop) +
             " " + rv_str(ir, *r.args[1]) + ")";
    case RKind::kAbsDiff:
      return "absdiff(" + rv_str(ir, *r.args[0]) + ", " +
             rv_str(ir, *r.args[1]) + ")";
  }
  return "?";
}

void dump_block(const CheckerIR& ir, const std::vector<InstrPtr>& body,
                int indent, std::string& out) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  for (const auto& i : body) {
    switch (i->kind) {
      case InstrKind::kAssign:
        out += pad + ir.field(i->dst).name + " := " + rv_str(ir, *i->value) +
               "\n";
        break;
      case InstrKind::kTableLookup: {
        out += pad;
        for (std::size_t d = 0; d < i->dsts.size(); ++d) {
          if (d) out += ", ";
          out += ir.field(i->dsts[d]).name;
        }
        if (i->hit_dst.valid()) {
          if (!i->dsts.empty()) out += ", ";
          out += ir.field(i->hit_dst).name + "(hit)";
        }
        out += " := " + ir.tables[static_cast<std::size_t>(i->table)].name +
               "[";
        for (std::size_t k = 0; k < i->keys.size(); ++k) {
          if (k) out += ", ";
          out += rv_str(ir, *i->keys[k]);
        }
        out += "]\n";
        break;
      }
      case InstrKind::kRegRead:
        out += pad + ir.field(i->dst).name + " := reg " +
               ir.registers[static_cast<std::size_t>(i->reg)].name + "\n";
        break;
      case InstrKind::kRegWrite:
        out += pad + "reg " +
               ir.registers[static_cast<std::size_t>(i->reg)].name + " := " +
               rv_str(ir, *i->value) + "\n";
        break;
      case InstrKind::kPush:
        out += pad + ir.lists[static_cast<std::size_t>(i->list)].name +
               ".push(" + rv_str(ir, *i->push_value) + ")\n";
        break;
      case InstrKind::kIf:
        out += pad + "if " + rv_str(ir, *i->cond) + " {\n";
        dump_block(ir, i->then_body, indent + 1, out);
        if (!i->else_body.empty()) {
          out += pad + "} else {\n";
          dump_block(ir, i->else_body, indent + 1, out);
        }
        out += pad + "}\n";
        break;
      case InstrKind::kReject:
        out += pad + "reject\n";
        break;
      case InstrKind::kReport: {
        out += pad + "report(";
        for (std::size_t p = 0; p < i->report_payload.size(); ++p) {
          if (p) out += ", ";
          out += rv_str(ir, *i->report_payload[p]);
        }
        out += ")\n";
        break;
      }
    }
  }
}

}  // namespace

std::string CheckerIR::dump() const {
  std::string out = "checker " + name + "\n";
  for (const auto& f : fields) {
    out += "  field " + f.name + " : " + std::to_string(f.width) + "b\n";
  }
  for (const auto& t : tables) {
    out += "  table " + t.name + "\n";
  }
  for (const auto& r : registers) {
    out += "  register " + r.name + " : " + std::to_string(r.width) + "b\n";
  }
  out += "init:\n";
  dump_block(*this, init_block, 1, out);
  out += "telemetry:\n";
  dump_block(*this, tele_block, 1, out);
  out += "check:\n";
  dump_block(*this, check_block, 1, out);
  return out;
}

}  // namespace hydra::ir
