// End hosts: packet sources/sinks with an automatic ICMP echo responder
// (so ping RTTs can be measured exactly as the paper does with a "fast
// ping" between servers).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "p4rt/packet.hpp"

namespace hydra::net {

class Host {
 public:
  Host() = default;
  Host(int id, std::string name, std::uint32_t ip, std::uint64_t mac)
      : id_(id), name_(std::move(name)), ip_(ip), mac_(mac) {}

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  std::uint32_t ip() const { return ip_; }
  std::uint64_t mac() const { return mac_; }

  using Sink = std::function<void(const p4rt::Packet&, double now)>;
  void add_sink(Sink sink) { sinks_.push_back(std::move(sink)); }

  void set_auto_icmp_reply(bool v) { auto_icmp_reply_ = v; }
  bool auto_icmp_reply() const { return auto_icmp_reply_; }

  std::uint64_t received() const { return received_; }

  // Called by the network on delivery. Returns an echo reply to send, if
  // the packet was an ICMP echo request addressed to this host.
  std::optional<p4rt::Packet> deliver(const p4rt::Packet& pkt, double now);

 private:
  int id_ = -1;
  std::string name_;
  std::uint32_t ip_ = 0;
  std::uint64_t mac_ = 0;
  std::vector<Sink> sinks_;
  bool auto_icmp_reply_ = true;
  std::uint64_t received_ = 0;
};

}  // namespace hydra::net
