#include "net/event.hpp"

#include <limits>
#include <stdexcept>

namespace hydra::net {

void EventQueue::schedule_at(SimTime t, std::function<void()> fn) {
  if (t < now_) {
    throw std::invalid_argument("cannot schedule an event in the past");
  }
  Item item;
  item.t = t;
  item.seq = next_seq_++;
  item.fn = std::move(fn);
  heap_.push(std::move(item));
}

void EventQueue::schedule_switch_at(SimTime t, int sw, int in_port,
                                    p4rt::Packet pkt) {
  if (t < now_) {
    throw std::invalid_argument("cannot schedule an event in the past");
  }
  Item item;
  item.t = t;
  item.seq = next_seq_++;
  item.is_switch_work = true;
  item.work.sw = sw;
  item.work.in_port = in_port;
  item.work.pkt = std::move(pkt);
  heap_.push(std::move(item));
}

void EventQueue::schedule_control_at(SimTime t, int sw,
                                     std::unique_ptr<ControlOp> op) {
  if (t < now_) {
    throw std::invalid_argument("cannot schedule an event in the past");
  }
  Item item;
  item.t = t;
  item.seq = next_seq_++;
  item.is_switch_work = true;
  item.work.sw = sw;
  item.work.ctl = std::move(op);
  heap_.push(std::move(item));
}

EventQueue::Item EventQueue::pop_next() {
  // Copy out before pop so handlers may schedule more events.
  Item item = std::move(const_cast<Item&>(heap_.top()));
  heap_.pop();
  return item;
}

void EventQueue::pop_window(SimTime limit, SimTime window_end,
                            std::vector<Item>& out) {
  if (heap_.empty()) return;
  const SimTime t0 = heap_.top().t;
  while (!heap_.empty() && heap_.top().t <= limit &&
         (heap_.top().t == t0 || heap_.top().t < window_end)) {
    out.push_back(pop_next());
  }
}

void EventQueue::run_self(SimTime t) {
  while (!heap_.empty() && heap_.top().t <= t) {
    Item item = pop_next();
    now_ = item.t;
    if (item.is_switch_work) {
      throw std::logic_error(
          "switch work scheduled on an EventQueue with no executor");
    }
    item.fn();
  }
}

void EventQueue::run_until(SimTime t) {
  if (executor_ != nullptr) {
    executor_->drain(*this, t);
  } else {
    run_self(t);
  }
  if (now_ < t) now_ = t;
}

void EventQueue::run() {
  const SimTime inf = std::numeric_limits<SimTime>::infinity();
  if (executor_ != nullptr) {
    executor_->drain(*this, inf);
  } else {
    run_self(inf);
  }
}

}  // namespace hydra::net
