// Diagnostic accumulation for the Indus frontend. The lexer/parser/type
// checker report into a Diagnostics sink instead of throwing, so a single
// compile surfaces every error in the program. CompileError is thrown only
// at phase boundaries when errors are present.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "indus/source_loc.hpp"

namespace hydra::indus {

enum class Severity { kError, kWarning };

struct Diagnostic {
  Severity severity = Severity::kError;
  Loc loc;
  std::string message;

  std::string to_string() const;
};

class Diagnostics {
 public:
  void error(Loc loc, std::string message);
  void warning(Loc loc, std::string message);

  bool has_errors() const { return error_count_ > 0; }
  int error_count() const { return error_count_; }
  const std::vector<Diagnostic>& all() const { return items_; }

  // Human-readable rendering of every diagnostic, one per line.
  std::string to_string() const;

  // Throws CompileError carrying to_string() if any error was reported.
  void throw_if_errors(const std::string& phase) const;

 private:
  std::vector<Diagnostic> items_;
  int error_count_ = 0;
};

class CompileError : public std::runtime_error {
 public:
  explicit CompileError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace hydra::indus
