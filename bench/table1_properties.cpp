// Regenerates Table 1: for every property, the Indus LoC, the generated P4
// LoC, and the Tofino-model resource estimate (pipeline stages and PHV%)
// when linked against the Aether fabric-upf baseline.
//
//   $ ./table1_properties [--json BENCH_table1.json]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "checkers/library.hpp"
#include "compiler/compile.hpp"

int main(int argc, char** argv) {
  using namespace hydra;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  const auto baseline = compiler::fabric_upf_profile();

  std::printf("Table 1: Hydra properties (baseline: Aether %s profile)\n\n",
              baseline.name.c_str());
  std::printf("%-32s %12s %12s %8s %9s\n", "Property", "Indus LoC",
              "P4 Out LoC", "Stages", "PHV (%)");
  std::printf("%-32s %12s %12s %8d %9.2f\n", "Baseline", "-", "-",
              baseline.stages, baseline.phv_percent);

  struct Row {
    std::string name;
    int indus_loc;
    int p4_loc;
    int stages;
    double phv;
    bool fits;
  };
  std::vector<Row> rows;
  bool all_fit = true;
  for (const auto& spec : checkers::table1_checkers()) {
    const auto c = compiler::compile_checker(spec.source, spec.name);
    std::printf("%-32s %12d %12d %8d %9.2f\n", spec.name.c_str(),
                c.indus_loc, c.p4_loc, c.linked.stages,
                c.linked.phv_percent);
    rows.push_back({spec.name, c.indus_loc, c.p4_loc, c.linked.stages,
                    c.linked.phv_percent, c.linked.fits});
    all_fit = all_fit && c.linked.fits;
  }

  std::printf("\nShape checks vs. the paper:\n");
  std::printf("  * every checker links without adding pipeline stages "
              "(parallel placement): %s\n",
              all_fit ? "yes" : "NO");
  double min_ratio = 1e9;
  for (const auto& r : rows) {
    min_ratio = std::min(
        min_ratio,
        static_cast<double>(r.p4_loc) / static_cast<double>(r.indus_loc));
  }
  std::printf("  * Indus is consistently more concise than generated P4 "
              "(min expansion %.1fx)\n", min_ratio);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"table1_properties\",\n"
                 "  \"baseline\": {\"name\": \"%s\", \"stages\": %d, "
                 "\"phv_percent\": %.2f},\n  \"checkers\": [\n",
                 baseline.name.c_str(), baseline.stages,
                 baseline.phv_percent);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"indus_loc\": %d, \"p4_loc\": "
                   "%d, \"stages\": %d, \"phv_percent\": %.2f, \"fits\": "
                   "%s}%s\n",
                   r.name.c_str(), r.indus_loc, r.p4_loc, r.stages, r.phv,
                   r.fits ? "true" : "false",
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"all_fit\": %s,\n  \"min_expansion\": %.2f\n}\n",
                 all_fit ? "true" : "false", min_ratio);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return all_fit ? 0 : 1;
}
