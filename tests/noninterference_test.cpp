// The §3.2 non-interference property, tested end to end: "for packets that
// do not trigger a property violation, the final output packet(s) will be
// identical to the packet(s) that would have been produced had the Indus
// program not been running at all."
//
// Strategy: run the same randomized traffic twice — once on a bare network
// and once with checkers deployed (configured so nothing violates) — and
// compare the delivered packets field by field, their receiving hosts, and
// their paths (ECMP choices must be unaffected because checkers cannot
// touch forwarding state).
#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "forwarding/ipv4_ecmp.hpp"
#include "hydra/hydra.hpp"
#include "net/network.hpp"
#include "util/rng.hpp"

namespace hydra {
namespace {

// Everything observable about a delivered packet from the receiver's side.
struct Observed {
  int host;
  std::uint32_t src, dst;
  std::uint8_t proto;
  std::uint16_t sport, dport;
  std::uint8_t ttl;  // encodes the path length actually taken
  int payload;
  bool has_telemetry;
  auto key() const {
    return std::tie(host, src, dst, proto, sport, dport, ttl, payload,
                    has_telemetry);
  }
  bool operator==(const Observed& o) const { return key() == o.key(); }
  bool operator<(const Observed& o) const { return key() < o.key(); }
};

struct World {
  net::LeafSpine fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net{fabric.topo};
  std::shared_ptr<fwd::Ipv4EcmpProgram> routing =
      fwd::install_leaf_spine_routing(net, fabric);
  std::vector<Observed> delivered;

  World() {
    for (const auto& hs : fabric.hosts) {
      for (int h : hs) {
        net.host(h).set_auto_icmp_reply(false);
        net.host(h).add_sink([this, h](const p4rt::Packet& p, double) {
          Observed o;
          o.host = h;
          o.src = p.ipv4 ? p.ipv4->src : 0;
          o.dst = p.ipv4 ? p.ipv4->dst : 0;
          o.proto = p.ipv4 ? p.ipv4->proto : 0;
          o.sport = p.l4 ? p.l4->sport : 0;
          o.dport = p.l4 ? p.l4->dport : 0;
          o.ttl = p.ipv4 ? p.ipv4->ttl : 0;
          o.payload = p.payload_bytes;
          o.has_telemetry = p.has_live_tele();
          delivered.push_back(o);
        });
      }
    }
  }

  void deploy_clean_checkers() {
    const int mt = net.deploy(compile_library_checker("multi_tenancy"));
    std::map<std::pair<int, int>, std::uint8_t> tenants;
    for (std::size_t leaf = 0; leaf < fabric.leaves.size(); ++leaf) {
      for (int i = 0; i < fabric.hosts_per_leaf; ++i) {
        tenants[{fabric.leaves[leaf], fabric.leaf_host_port(i)}] = 1;
      }
    }
    configure_multi_tenancy(net, mt, tenants);
    const int vf = net.deploy(compile_library_checker("valley_free"));
    configure_valley_free(net, vf, fabric);
    net.deploy(compile_library_checker("loops"));
    const int ep = net.deploy(compile_library_checker("egress_port_validity"));
    configure_egress_port_validity(net, ep);
    const int rv = net.deploy(compile_library_checker("routing_validity"));
    configure_routing_validity(net, rv, fabric);
    const int fw = net.deploy(compile_library_checker("stateful_firewall"));
    for (const auto& hs1 : fabric.hosts) {
      for (int a : hs1) {
        for (const auto& hs2 : fabric.hosts) {
          for (int b : hs2) {
            if (a == b) continue;
            net.dict_insert_all(
                fw, "allowed",
                {BitVec(32, net.topo().node(a).ip),
                 BitVec(32, net.topo().node(b).ip)},
                {BitVec::from_bool(true)});
          }
        }
      }
    }
    net.deploy(compile_library_checker("application_filtering"));
    const int lb = net.deploy(
        compile_library_checker("dc_uplink_load_balance"));
    configure_load_balance(net, lb, fabric, 0xffffffffu);
  }

  void send_random_traffic(std::uint64_t seed, int packets) {
    Rng rng(seed);
    std::vector<int> all_hosts;
    for (const auto& hs : fabric.hosts) {
      for (int h : hs) all_hosts.push_back(h);
    }
    for (int i = 0; i < packets; ++i) {
      const int src = all_hosts[rng.below(all_hosts.size())];
      int dst = src;
      while (dst == src) dst = all_hosts[rng.below(all_hosts.size())];
      const auto sport = static_cast<std::uint16_t>(rng.range(1024, 60000));
      const auto dport = static_cast<std::uint16_t>(rng.range(1, 1000));
      const int size = static_cast<int>(rng.range(0, 1400));
      p4rt::Packet p =
          rng.chance(0.5)
              ? p4rt::make_udp(net.topo().node(src).ip,
                               net.topo().node(dst).ip, sport, dport, size)
              : p4rt::make_tcp(net.topo().node(src).ip,
                               net.topo().node(dst).ip, sport, dport, size);
      net.send_from_host(src, std::move(p));
    }
    net.events().run();
  }
};

class NonInterference : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NonInterference, CleanTrafficIsBitIdenticalWithCheckersOn) {
  constexpr int kPackets = 200;
  World bare;
  bare.send_random_traffic(GetParam(), kPackets);
  World checked;
  checked.deploy_clean_checkers();
  checked.send_random_traffic(GetParam(), kPackets);

  ASSERT_EQ(bare.net.counters().delivered, static_cast<std::uint64_t>(kPackets));
  ASSERT_EQ(checked.net.counters().rejected, 0u)
      << "a checker rejected clean traffic";
  ASSERT_EQ(checked.net.counters().delivered,
            static_cast<std::uint64_t>(kPackets));

  // Deterministic simulation + read-only checkers: the delivered multiset
  // must be identical — same receiving hosts, same header fields, same
  // TTLs (i.e. same ECMP paths), no telemetry residue. Arrival *order* may
  // differ microscopically because telemetry bytes shift serialization
  // times, so compare sorted.
  std::sort(bare.delivered.begin(), bare.delivered.end());
  std::sort(checked.delivered.begin(), checked.delivered.end());
  ASSERT_EQ(bare.delivered.size(), checked.delivered.size());
  for (std::size_t i = 0; i < bare.delivered.size(); ++i) {
    EXPECT_TRUE(bare.delivered[i] == checked.delivered[i])
        << "packet " << i << " differs";
    EXPECT_FALSE(checked.delivered[i].has_telemetry)
        << "telemetry leaked to a host";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NonInterference,
                         ::testing::Values(1, 7, 42, 1234, 99999));

TEST(NonInterference, ViolatingTrafficOnlyAffectsViolators) {
  // Mix clean cross-leaf packets with cross-tenant violations: the clean
  // half must be delivered exactly as before, the violating half rejected.
  World w;
  const int mt = w.net.deploy(compile_library_checker("multi_tenancy"));
  std::map<std::pair<int, int>, std::uint8_t> tenants;
  tenants[{w.fabric.leaves[0], w.fabric.leaf_host_port(0)}] = 1;  // h1: t1
  tenants[{w.fabric.leaves[0], w.fabric.leaf_host_port(1)}] = 2;  // h2: t2
  tenants[{w.fabric.leaves[1], w.fabric.leaf_host_port(0)}] = 1;  // h3: t1
  tenants[{w.fabric.leaves[1], w.fabric.leaf_host_port(1)}] = 2;  // h4: t2
  configure_multi_tenancy(w.net, mt, tenants);

  auto ip = [&](int h) { return w.net.topo().node(h).ip; };
  const int h1 = w.fabric.hosts[0][0];
  const int h2 = w.fabric.hosts[0][1];
  const int h3 = w.fabric.hosts[1][0];
  const int h4 = w.fabric.hosts[1][1];
  for (int i = 0; i < 10; ++i) {
    w.net.send_from_host(h1, p4rt::make_udp(ip(h1), ip(h3),
                                            static_cast<std::uint16_t>(i + 1),
                                            80, 64));  // clean t1 -> t1
    w.net.send_from_host(h2, p4rt::make_udp(ip(h2), ip(h3),
                                            static_cast<std::uint16_t>(i + 1),
                                            80, 64));  // violating t2 -> t1
    w.net.send_from_host(h2, p4rt::make_udp(ip(h2), ip(h4),
                                            static_cast<std::uint16_t>(i + 1),
                                            80, 64));  // clean t2 -> t2
  }
  w.net.events().run();
  EXPECT_EQ(w.net.counters().delivered, 20u);
  EXPECT_EQ(w.net.counters().rejected, 10u);
  for (const auto& o : w.delivered) {
    EXPECT_NE(o.host, -1);
    EXPECT_FALSE(o.has_telemetry);
  }
}

}  // namespace
}  // namespace hydra
