#include "util/strings.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>

namespace hydra::str {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

int count_loc(std::string_view source) {
  int loc = 0;
  for (const auto& line : split(source, '\n')) {
    if (!trim(line).empty()) ++loc;
  }
  return loc;
}

std::string ipv4_to_string(std::uint32_t addr) {
  std::ostringstream os;
  os << ((addr >> 24) & 0xff) << '.' << ((addr >> 16) & 0xff) << '.'
     << ((addr >> 8) & 0xff) << '.' << (addr & 0xff);
  return os.str();
}

std::uint32_t ipv4_from_string(std::string_view s) {
  const auto parts = split(s, '.');
  if (parts.size() != 4) {
    throw std::invalid_argument("malformed IPv4 address: " + std::string(s));
  }
  std::uint32_t addr = 0;
  for (const auto& p : parts) {
    if (p.empty() || p.size() > 3) {
      throw std::invalid_argument("malformed IPv4 address: " + std::string(s));
    }
    for (char c : p) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        throw std::invalid_argument("malformed IPv4 address: " +
                                    std::string(s));
      }
    }
    const int octet = std::stoi(p);
    if (octet > 255) {
      throw std::invalid_argument("malformed IPv4 address: " + std::string(s));
    }
    addr = (addr << 8) | static_cast<std::uint32_t>(octet);
  }
  return addr;
}

std::string indent(std::string_view body, int spaces) {
  const std::string pad(static_cast<std::size_t>(spaces), ' ');
  std::string out;
  for (const auto& line : split(body, '\n')) {
    if (!line.empty()) out += pad;
    out += line;
    out += '\n';
  }
  if (!out.empty() && !body.empty() && body.back() != '\n') out.pop_back();
  return out;
}

}  // namespace hydra::str
