// Benchmarks for the Theorem 3.1 pipeline: LTLf -> Indus translation and
// compilation cost as formula depth and trace capacity grow (the unrolled
// loops blow up combinatorially — this quantifies the §3.3 construction).
//
//   $ ./ltlf_compile
#include <benchmark/benchmark.h>

#include "ltlf/random_formula.hpp"
#include "ltlf/to_indus.hpp"
#include "util/rng.hpp"

namespace {

void BM_TranslateAndCompile_Depth(benchmark::State& state) {
  hydra::Rng rng(7);
  const auto f = hydra::ltlf::random_formula(
      rng, 2, static_cast<int>(state.range(0)));
  int p4_loc = 0;
  for (auto _ : state) {
    const auto t = hydra::ltlf::to_indus(*f, 6);
    const auto c = hydra::compiler::compile_checker(t.indus_source, "bm");
    p4_loc = c.p4_loc;
    benchmark::DoNotOptimize(c);
  }
  state.counters["p4_loc"] = p4_loc;
  state.SetLabel(f->to_string());
}
BENCHMARK(BM_TranslateAndCompile_Depth)->DenseRange(1, 4);

void BM_TranslateAndCompile_TraceCapacity(benchmark::State& state) {
  using F = hydra::ltlf::Formula;
  // (a0 U a1): one quantifier loop; cost scales with the unroll capacity.
  const auto f = F::make_until(F::make_atom(0), F::make_atom(1));
  int p4_loc = 0;
  for (auto _ : state) {
    const auto t =
        hydra::ltlf::to_indus(*f, static_cast<int>(state.range(0)));
    const auto c = hydra::compiler::compile_checker(t.indus_source, "bm");
    p4_loc = c.p4_loc;
    benchmark::DoNotOptimize(c);
  }
  state.counters["p4_loc"] = p4_loc;
}
BENCHMARK(BM_TranslateAndCompile_TraceCapacity)->DenseRange(2, 12, 2);

void BM_CheckTrace(benchmark::State& state) {
  using F = hydra::ltlf::Formula;
  const auto f = F::make_globally(F::make_not(F::make_and(
      F::make_atom(0),
      F::make_next(F::make_eventually(F::make_atom(0))))));
  const auto t = hydra::ltlf::to_indus(*f, 8);
  const auto c = hydra::compiler::compile_checker(t.indus_source, "bm");
  hydra::Rng rng(9);
  const auto trace = hydra::ltlf::random_trace(rng, 1, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hydra::ltlf::run_translation(c, trace));
  }
}
BENCHMARK(BM_CheckTrace);

}  // namespace

BENCHMARK_MAIN();
