#include "util/bitvec.hpp"

#include <algorithm>
#include <stdexcept>

namespace hydra {

BitVec::BitVec(int width, std::uint64_t value) : width_(width) {
  if (width < 1 || width > kMaxWidth) {
    throw std::invalid_argument("BitVec width out of range: " +
                                std::to_string(width));
  }
  value_ = value & mask(width);
}

std::uint64_t BitVec::mask(int width) {
  if (width >= 64) return ~0ULL;
  return (1ULL << width) - 1;
}

namespace {
int join_width(const BitVec& a, const BitVec& b) {
  return std::max(a.width(), b.width());
}
}  // namespace

BitVec BitVec::add(const BitVec& rhs) const {
  return BitVec(join_width(*this, rhs), value_ + rhs.value_);
}

BitVec BitVec::sub(const BitVec& rhs) const {
  return BitVec(join_width(*this, rhs), value_ - rhs.value_);
}

BitVec BitVec::mul(const BitVec& rhs) const {
  return BitVec(join_width(*this, rhs), value_ * rhs.value_);
}

BitVec BitVec::div(const BitVec& rhs) const {
  const int w = join_width(*this, rhs);
  if (rhs.value_ == 0) return BitVec(w, mask(w));
  return BitVec(w, value_ / rhs.value_);
}

BitVec BitVec::mod(const BitVec& rhs) const {
  const int w = join_width(*this, rhs);
  if (rhs.value_ == 0) return BitVec(w, 0);
  return BitVec(w, value_ % rhs.value_);
}

BitVec BitVec::band(const BitVec& rhs) const {
  return BitVec(join_width(*this, rhs), value_ & rhs.value_);
}

BitVec BitVec::bor(const BitVec& rhs) const {
  return BitVec(join_width(*this, rhs), value_ | rhs.value_);
}

BitVec BitVec::bxor(const BitVec& rhs) const {
  return BitVec(join_width(*this, rhs), value_ ^ rhs.value_);
}

BitVec BitVec::bnot() const { return BitVec(width_, ~value_); }

BitVec BitVec::shl(const BitVec& rhs) const {
  if (rhs.value_ >= 64) return BitVec(width_, 0);
  return BitVec(width_, value_ << rhs.value_);
}

BitVec BitVec::shr(const BitVec& rhs) const {
  if (rhs.value_ >= 64) return BitVec(width_, 0);
  return BitVec(width_, value_ >> rhs.value_);
}

BitVec BitVec::abs_diff(const BitVec& rhs) const {
  const int w = join_width(*this, rhs);
  const std::uint64_t d =
      value_ >= rhs.value_ ? value_ - rhs.value_ : rhs.value_ - value_;
  return BitVec(w, d);
}

BitVec BitVec::resize(int width) const { return BitVec(width, value_); }

std::string BitVec::to_string() const {
  return std::to_string(width_) + "w" + std::to_string(value_);
}

std::string BitVec::to_hex() const {
  static const char* digits = "0123456789abcdef";
  std::string out;
  std::uint64_t v = value_;
  do {
    out.insert(out.begin(), digits[v & 0xf]);
    v >>= 4;
  } while (v != 0);
  return "0x" + out;
}

}  // namespace hydra
