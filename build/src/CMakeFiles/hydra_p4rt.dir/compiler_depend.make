# Empty compiler generated dependencies file for hydra_p4rt.
# This may be replaced when dependencies are built.
