// Tests for the forwarding substrates: source routing, VLAN bridging, and
// the Aether UPF pipeline (including the raw Figure 11 table mechanics).
#include <gtest/gtest.h>

#include "forwarding/ipv4_ecmp.hpp"
#include "forwarding/source_route.hpp"
#include "forwarding/upf.hpp"
#include "forwarding/vlan_bridge.hpp"
#include "net/network.hpp"

namespace hydra::fwd {
namespace {

// ---------------------------------------------------------------------------
// Source routing
// ---------------------------------------------------------------------------

TEST(SourceRoute, PopsPortsInOrder) {
  SourceRouteProgram prog;
  p4rt::Packet p;
  set_source_route(p, {3, 5, 1});
  auto d1 = prog.process(p, 0, 0);
  EXPECT_EQ(d1.eg_port, 3);
  auto d2 = prog.process(p, 0, 1);
  EXPECT_EQ(d2.eg_port, 5);
  auto d3 = prog.process(p, 0, 2);
  EXPECT_EQ(d3.eg_port, 1);
  EXPECT_FALSE(p.has_sr);
}

TEST(SourceRoute, EmptyStackDrops) {
  SourceRouteProgram prog;
  p4rt::Packet p;
  const auto d = prog.process(p, 0, 0);
  EXPECT_TRUE(d.drop);
  EXPECT_EQ(prog.underflow_drops(), 1u);
}

TEST(SourceRoute, LeafSpineRouteComputation) {
  const auto fabric = net::make_leaf_spine(2, 2, 2);
  // Cross-leaf via spine 1: uplink port at src leaf, down port at spine,
  // host port at dst leaf.
  const auto route =
      leaf_spine_route(fabric, fabric.hosts[0][0], fabric.hosts[1][1], 1);
  ASSERT_EQ(route.size(), 3u);
  EXPECT_EQ(route[0], fabric.leaf_uplink_port(1));
  EXPECT_EQ(route[1], fabric.spine_down_port(1));
  EXPECT_EQ(route[2], fabric.leaf_host_port(1));
  // Same-leaf: single hop.
  const auto local =
      leaf_spine_route(fabric, fabric.hosts[0][0], fabric.hosts[0][1], 0);
  ASSERT_EQ(local.size(), 1u);
  EXPECT_EQ(local[0], fabric.leaf_host_port(1));
}

TEST(SourceRoute, EndToEndDelivery) {
  auto fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net(fabric.topo);
  auto prog = std::make_shared<SourceRouteProgram>();
  for (int sw : fabric.leaves) net.set_program(sw, prog);
  for (int sw : fabric.spines) net.set_program(sw, prog);
  int got = 0;
  net.host(fabric.hosts[1][0]).add_sink(
      [&](const p4rt::Packet&, double) { ++got; });
  p4rt::Packet p = p4rt::make_udp(1, 2, 3, 4, 64);
  set_source_route(
      p, leaf_spine_route(fabric, fabric.hosts[0][0], fabric.hosts[1][0], 0));
  net.send_from_host(fabric.hosts[0][0], std::move(p));
  net.events().run();
  EXPECT_EQ(got, 1);
}

// ---------------------------------------------------------------------------
// VLAN bridging
// ---------------------------------------------------------------------------

TEST(VlanBridge, ForwardsWithinVlan) {
  VlanBridgeProgram prog;
  prog.add_member(0, 1, 100);
  prog.add_member(0, 2, 100);
  prog.add_l2_entry(0, 100, 0xaabb, 2);
  p4rt::Packet p;
  p.vlan = p4rt::VlanH{100};
  p.eth.dst = 0xaabb;
  const auto d = prog.process(p, 1, 0);
  EXPECT_FALSE(d.drop);
  EXPECT_EQ(d.eg_port, 2);
}

TEST(VlanBridge, DropsCrossVlan) {
  VlanBridgeProgram prog;
  prog.add_member(0, 1, 100);
  prog.add_member(0, 2, 200);        // egress port is in another VLAN
  prog.add_l2_entry(0, 100, 0xaabb, 2);
  p4rt::Packet p;
  p.vlan = p4rt::VlanH{100};
  p.eth.dst = 0xaabb;
  const auto d = prog.process(p, 1, 0);
  EXPECT_TRUE(d.drop);
  EXPECT_GT(prog.membership_drops(), 0u);
}

TEST(VlanBridge, DropsIngressNotMember) {
  VlanBridgeProgram prog;
  prog.add_member(0, 2, 100);
  prog.add_l2_entry(0, 100, 0xaabb, 2);
  p4rt::Packet p;
  p.vlan = p4rt::VlanH{100};
  p.eth.dst = 0xaabb;
  EXPECT_TRUE(prog.process(p, 1, 0).drop);
}

TEST(VlanBridge, DropsUnknownMacAndUntagged) {
  VlanBridgeProgram prog;
  prog.add_member(0, 1, 100);
  p4rt::Packet tagged;
  tagged.vlan = p4rt::VlanH{100};
  tagged.eth.dst = 0xdead;
  EXPECT_TRUE(prog.process(tagged, 1, 0).drop);
  EXPECT_GT(prog.l2_miss_drops(), 0u);
  p4rt::Packet untagged;
  EXPECT_TRUE(prog.process(untagged, 1, 0).drop);
}

// ---------------------------------------------------------------------------
// UPF
// ---------------------------------------------------------------------------

struct UpfFixture {
  net::LeafSpine fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net{fabric.topo};
  std::shared_ptr<Ipv4EcmpProgram> routing =
      install_leaf_spine_routing(net, fabric);
  std::shared_ptr<UpfProgram> upf = std::make_shared<UpfProgram>(routing);

  static constexpr std::uint32_t kUeIp = 0x0a640001;    // 10.100.0.1
  static constexpr std::uint32_t kEnbIp = 0x0a000101;   // small cell = h1
  static constexpr std::uint32_t kN3Ip = 0x0a0001fe;    // UPF endpoint
  std::uint32_t app_ip;

  UpfFixture() {
    // The UPF runs on leaf1; small cells behind h1, app servers at leaf2.
    net.set_program(fabric.leaves[0], upf);
    app_ip = net.topo().node(fabric.hosts[1][0]).ip;
    // Route the UE pool back towards the small cell for downlink.
    routing->add_route(fabric.leaves[0], kUeIp & 0xffffff00u, 24,
                       {fabric.leaf_host_port(0)});
  }

  // An uplink packet as it arrives from the small cell: GTP-encapsulated.
  p4rt::Packet uplink(std::uint32_t teid, std::uint16_t dport,
                      std::uint8_t proto = p4rt::kProtoUdp) {
    p4rt::Packet inner = proto == p4rt::kProtoUdp
                             ? p4rt::make_udp(kUeIp, app_ip, 40000, dport, 64)
                             : p4rt::make_tcp(kUeIp, app_ip, 40000, dport, 64);
    return p4rt::gtpu_encap(inner, kEnbIp, kN3Ip, teid);
  }
};

TEST(Upf, UplinkDecapAndForwardWhenAllowed) {
  UpfFixture f;
  f.upf->add_uplink_session(1001, 1, 1);
  f.upf->add_application(1, 20, 0, 0, p4rt::kProtoUdp, 81, 81, 2);
  f.upf->add_termination(1, 2, true);
  p4rt::Packet p = f.uplink(1001, 81);
  const auto d = f.upf->process(p, 1, f.fabric.leaves[0]);
  EXPECT_FALSE(d.drop);
  EXPECT_FALSE(p.gtpu.has_value());  // decapsulated
  EXPECT_EQ(p.ipv4->dst, f.app_ip);
}

TEST(Upf, UplinkUnknownTeidDrops) {
  UpfFixture f;
  p4rt::Packet p = f.uplink(9999, 81);
  EXPECT_TRUE(f.upf->process(p, 1, f.fabric.leaves[0]).drop);
  EXPECT_EQ(f.upf->session_miss_drops(), 1u);
}

TEST(Upf, ApplicationMissDrops) {
  UpfFixture f;
  f.upf->add_uplink_session(1001, 1, 1);
  // No applications installed: app_id 0 has no termination.
  p4rt::Packet p = f.uplink(1001, 81);
  EXPECT_TRUE(f.upf->process(p, 1, f.fabric.leaves[0]).drop);
  EXPECT_EQ(f.upf->termination_drops(), 1u);
}

TEST(Upf, DenyTerminationDrops) {
  UpfFixture f;
  f.upf->add_uplink_session(1001, 1, 1);
  f.upf->add_application(1, 10, 0, 0, std::nullopt, 0, 0xffff, 1);
  f.upf->add_termination(1, 1, false);  // default deny
  p4rt::Packet p = f.uplink(1001, 443, p4rt::kProtoTcp);
  EXPECT_TRUE(f.upf->process(p, 1, f.fabric.leaves[0]).drop);
}

TEST(Upf, PriorityPicksMoreSpecificApplication) {
  UpfFixture f;
  f.upf->add_uplink_session(1001, 1, 1);
  f.upf->add_application(1, 10, 0, 0, std::nullopt, 0, 0xffff, 1);
  f.upf->add_application(1, 20, 0, 0, p4rt::kProtoUdp, 81, 81, 2);
  f.upf->add_termination(1, 1, false);
  f.upf->add_termination(1, 2, true);
  p4rt::Packet allowed = f.uplink(1001, 81);
  EXPECT_FALSE(f.upf->process(allowed, 1, f.fabric.leaves[0]).drop);
  p4rt::Packet denied = f.uplink(1001, 82);
  EXPECT_TRUE(f.upf->process(denied, 1, f.fabric.leaves[0]).drop);
}

TEST(Upf, DownlinkEncapsulates) {
  UpfFixture f;
  f.upf->add_downlink_session(UpfFixture::kUeIp, 1, 1, 1001,
                              UpfFixture::kEnbIp, UpfFixture::kN3Ip);
  f.upf->add_application(1, 10, 0, 0, std::nullopt, 0, 0xffff, 1);
  f.upf->add_termination(1, 1, true);
  p4rt::Packet p =
      p4rt::make_udp(f.app_ip, UpfFixture::kUeIp, 81, 40000, 64);
  const auto d = f.upf->process(p, 5, f.fabric.leaves[0]);
  EXPECT_FALSE(d.drop);
  ASSERT_TRUE(p.gtpu.has_value());
  EXPECT_EQ(p.gtpu->teid, 1001u);
  EXPECT_EQ(p.ipv4->dst, UpfFixture::kEnbIp);
}

TEST(Upf, NonUpfTrafficRoutesThrough) {
  UpfFixture f;
  p4rt::Packet p = p4rt::make_udp(
      f.net.topo().node(f.fabric.hosts[0][0]).ip, f.app_ip, 1, 2, 64);
  const auto d = f.upf->process(p, 1, f.fabric.leaves[0]);
  EXPECT_FALSE(d.drop);  // plain IPv4, routed by the embedded ECMP
}

// The exact Figure 11 scenario at the table level (control plane done by
// hand here; the controller version lives in aether_test.cpp).
TEST(Upf, Figure11SharedEntryBugMechanics) {
  UpfFixture f;
  // Client 1 attaches under rules {10:any:deny -> app1, 20:udp81:allow -> app2}.
  f.upf->add_uplink_session(1001, 1, 1);
  f.upf->add_application(1, 10, 0, 0, std::nullopt, 0, 0xffff, 1);
  f.upf->add_application(1, 20, 0, 0, p4rt::kProtoUdp, 81, 81, 2);
  f.upf->add_termination(1, 1, false);
  f.upf->add_termination(1, 2, true);
  // Client 1 can reach UDP 81.
  p4rt::Packet before = f.uplink(1001, 81);
  EXPECT_FALSE(f.upf->process(before, 1, f.fabric.leaves[0]).drop);

  // Operator updates the rule to 30:udp81-82:allow; client 2 attaches and
  // ONOS installs the new shared entry with app id 3 + client-2 rules.
  f.upf->add_uplink_session(1002, 2, 1);
  f.upf->add_application(1, 30, 0, 0, p4rt::kProtoUdp, 81, 82, 3);
  f.upf->add_termination(2, 1, false);
  f.upf->add_termination(2, 3, true);

  // Client 2 works under the new policy.
  p4rt::Packet c2 = f.uplink(1002, 81);
  EXPECT_FALSE(f.upf->process(c2, 1, f.fabric.leaves[0]).drop);
  // Client 1's previously-allowed traffic is now classified as app 3,
  // which client 1 has no termination for: silently dropped. THE BUG.
  p4rt::Packet after = f.uplink(1001, 81);
  EXPECT_TRUE(f.upf->process(after, 1, f.fabric.leaves[0]).drop);
}

}  // namespace
}  // namespace hydra::fwd
