// Case study 1 (§5.1): valley-free path validation for source routing.
//
// Reproduces the paper's Mininet experiment: all switches run a simple
// source-routing program; the valley-free checker (Figure 7) is linked
// alongside. A bug is injected into the *sender's* route-construction
// script that appends extra invalid hops — Hydra drops exactly the errant
// packets while every legal valley-free path keeps working.
//
//   $ ./source_routing_validation
#include <cstdio>
#include <vector>

#include "forwarding/source_route.hpp"
#include "hydra/hydra.hpp"
#include "net/network.hpp"
#include "util/rng.hpp"

using namespace hydra;

namespace {

struct Path {
  int src_host;
  int dst_host;
  std::vector<int> ports;
  bool valley_free;
};

// The buggy sender script: with some probability it "pads" the route with
// an extra up-and-down excursion after the packet already descended.
std::vector<int> buggy_sender_route(const net::LeafSpine& fabric,
                                    int src_host, int dst_host, int spine,
                                    bool inject_bug) {
  auto route = fwd::leaf_spine_route(fabric, src_host, dst_host, spine);
  if (inject_bug && route.size() == 3) {
    // After the descent to the destination leaf, bounce to the other spine
    // and back — a valley.
    const int other = 1 - spine;
    std::vector<int> padded;
    padded.push_back(route[0]);                       // up at src leaf
    padded.push_back(route[1]);                       // down at spine
    padded.push_back(fabric.leaf_uplink_port(other)); // up AGAIN (bug)
    // Find the destination leaf to descend back to it.
    padded.push_back(route[1]);                       // down at other spine
    padded.push_back(route[2]);                       // out to the host
    return padded;
  }
  return route;
}

}  // namespace

int main() {
  auto fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net(fabric.topo);
  auto sr = std::make_shared<fwd::SourceRouteProgram>();
  for (int sw : fabric.leaves) net.set_program(sw, sr);
  for (int sw : fabric.spines) net.set_program(sw, sr);

  auto checker = compile_library_checker("valley_free");
  std::printf("valley-free checker: %d LoC Indus -> %d LoC P4, "
              "%d stages, +%.2f%% PHV\n\n",
              checker->indus_loc, checker->p4_loc,
              checker->resources.checker_stages,
              checker->resources.phv_percent);
  const int dep = net.deploy(checker);
  configure_valley_free(net, dep, fabric);

  // Enumerate every host pair and every spine choice; inject the sender
  // bug into a third of the cross-leaf routes.
  Rng rng(2023);
  int legal = 0;
  int errant = 0;
  for (std::size_t sl = 0; sl < 2; ++sl) {
    for (std::size_t si = 0; si < 2; ++si) {
      for (std::size_t dl = 0; dl < 2; ++dl) {
        for (std::size_t di = 0; di < 2; ++di) {
          if (sl == dl && si == di) continue;
          const int src = fabric.hosts[sl][si];
          const int dst = fabric.hosts[dl][di];
          const int spines = sl == dl ? 1 : 2;
          for (int spine = 0; spine < spines; ++spine) {
            const bool bug = sl != dl && rng.chance(0.34);
            auto ports =
                buggy_sender_route(fabric, src, dst, spine, bug);
            p4rt::Packet p = p4rt::make_udp(net.topo().node(src).ip,
                                            net.topo().node(dst).ip,
                                            4000, 5000, 64);
            fwd::set_source_route(p, ports);
            net.send_from_host(src, std::move(p));
            bug ? ++errant : ++legal;
          }
        }
      }
    }
  }
  net.events().run();

  const auto& c = net.counters();
  std::printf("generated %d legal valley-free paths and %d errant paths\n",
              legal, errant);
  std::printf("delivered=%llu rejected=%llu\n",
              static_cast<unsigned long long>(c.delivered),
              static_cast<unsigned long long>(c.rejected));
  const bool ok = c.delivered == static_cast<std::uint64_t>(legal) &&
                  c.rejected == static_cast<std::uint64_t>(errant);
  std::printf(ok ? "Hydra allowed every legal path and dropped every "
                   "errant one.\n"
                 : "MISMATCH: checker behaviour differs from expectation!\n");
  return ok ? 0 : 1;
}
