#include "indus/ast.hpp"

namespace hydra::indus {

const char* unop_name(UnOp op) {
  switch (op) {
    case UnOp::kNot: return "!";
    case UnOp::kBitNot: return "~";
    case UnOp::kNeg: return "-";
  }
  return "?";
}

const char* binop_name(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kBitAnd: return "&";
    case BinOp::kBitOr: return "|";
    case BinOp::kBitXor: return "^";
    case BinOp::kShl: return "<<";
    case BinOp::kShr: return ">>";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "&&";
    case BinOp::kOr: return "||";
  }
  return "?";
}

const char* var_kind_name(VarKind k) {
  switch (k) {
    case VarKind::kTele: return "tele";
    case VarKind::kSensor: return "sensor";
    case VarKind::kHeader: return "header";
    case VarKind::kControl: return "control";
  }
  return "?";
}

ExprPtr Expr::clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->loc = loc;
  out->name = name;
  out->number = number;
  out->bool_value = bool_value;
  out->unop = unop;
  out->binop = binop;
  out->type = type;
  out->args.reserve(args.size());
  for (const auto& a : args) out->args.push_back(a->clone());
  return out;
}

StmtPtr Stmt::clone() const {
  auto out = std::make_unique<Stmt>();
  out->kind = kind;
  out->loc = loc;
  for (const auto& s : body) out->body.push_back(s->clone());
  if (target) out->target = target->clone();
  out->assign_op = assign_op;
  if (value) out->value = value->clone();
  for (const auto& arm : arms) {
    out->arms.push_back({arm.cond->clone(), arm.body->clone()});
  }
  if (else_body) out->else_body = else_body->clone();
  out->loop_vars = loop_vars;
  for (const auto& it : iterables) out->iterables.push_back(it->clone());
  if (push_list) out->push_list = push_list->clone();
  if (push_value) out->push_value = push_value->clone();
  for (const auto& r : report_args) out->report_args.push_back(r->clone());
  return out;
}

namespace {
ExprPtr new_expr(ExprKind kind, Loc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->loc = loc;
  return e;
}

StmtPtr new_stmt(StmtKind kind, Loc loc) {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  s->loc = loc;
  return s;
}
}  // namespace

ExprPtr make_var(std::string name, Loc loc) {
  auto e = new_expr(ExprKind::kVar, loc);
  e->name = std::move(name);
  return e;
}

ExprPtr make_number(std::uint64_t value, Loc loc) {
  auto e = new_expr(ExprKind::kNumber, loc);
  e->number = value;
  return e;
}

ExprPtr make_bool(bool value, Loc loc) {
  auto e = new_expr(ExprKind::kBoolLit, loc);
  e->bool_value = value;
  return e;
}

ExprPtr make_unary(UnOp op, ExprPtr operand, Loc loc) {
  auto e = new_expr(ExprKind::kUnary, loc);
  e->unop = op;
  e->args.push_back(std::move(operand));
  return e;
}

ExprPtr make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs, Loc loc) {
  auto e = new_expr(ExprKind::kBinary, loc);
  e->binop = op;
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

ExprPtr make_index(ExprPtr base, ExprPtr index, Loc loc) {
  auto e = new_expr(ExprKind::kIndex, loc);
  e->args.push_back(std::move(base));
  e->args.push_back(std::move(index));
  return e;
}

ExprPtr make_tuple(std::vector<ExprPtr> elems, Loc loc) {
  auto e = new_expr(ExprKind::kTuple, loc);
  e->args = std::move(elems);
  return e;
}

ExprPtr make_call(std::string name, std::vector<ExprPtr> args, Loc loc) {
  auto e = new_expr(ExprKind::kCall, loc);
  e->name = std::move(name);
  e->args = std::move(args);
  return e;
}

ExprPtr make_in(ExprPtr needle, ExprPtr haystack, Loc loc) {
  auto e = new_expr(ExprKind::kIn, loc);
  e->args.push_back(std::move(needle));
  e->args.push_back(std::move(haystack));
  return e;
}

StmtPtr make_pass(Loc loc) { return new_stmt(StmtKind::kPass, loc); }

StmtPtr make_block(std::vector<StmtPtr> body, Loc loc) {
  auto s = new_stmt(StmtKind::kBlock, loc);
  s->body = std::move(body);
  return s;
}

StmtPtr make_assign(ExprPtr target, AssignOp op, ExprPtr value, Loc loc) {
  auto s = new_stmt(StmtKind::kAssign, loc);
  s->target = std::move(target);
  s->assign_op = op;
  s->value = std::move(value);
  return s;
}

StmtPtr make_if(std::vector<IfArm> arms, StmtPtr else_body, Loc loc) {
  auto s = new_stmt(StmtKind::kIf, loc);
  s->arms = std::move(arms);
  s->else_body = std::move(else_body);
  return s;
}

StmtPtr make_for(std::vector<std::string> vars, std::vector<ExprPtr> iters,
                 StmtPtr body, Loc loc) {
  auto s = new_stmt(StmtKind::kFor, loc);
  s->loop_vars = std::move(vars);
  s->iterables = std::move(iters);
  s->body.push_back(std::move(body));
  return s;
}

StmtPtr make_push(ExprPtr list, ExprPtr value, Loc loc) {
  auto s = new_stmt(StmtKind::kPush, loc);
  s->push_list = std::move(list);
  s->push_value = std::move(value);
  return s;
}

StmtPtr make_report(std::vector<ExprPtr> args, Loc loc) {
  auto s = new_stmt(StmtKind::kReport, loc);
  s->report_args = std::move(args);
  return s;
}

StmtPtr make_reject(Loc loc) { return new_stmt(StmtKind::kReject, loc); }

const Decl* Program::find_decl(const std::string& name) const {
  for (const auto& d : decls) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

}  // namespace hydra::indus
