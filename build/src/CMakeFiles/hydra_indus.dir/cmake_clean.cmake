file(REMOVE_RECURSE
  "CMakeFiles/hydra_indus.dir/indus/ast.cpp.o"
  "CMakeFiles/hydra_indus.dir/indus/ast.cpp.o.d"
  "CMakeFiles/hydra_indus.dir/indus/diagnostics.cpp.o"
  "CMakeFiles/hydra_indus.dir/indus/diagnostics.cpp.o.d"
  "CMakeFiles/hydra_indus.dir/indus/eval_ref.cpp.o"
  "CMakeFiles/hydra_indus.dir/indus/eval_ref.cpp.o.d"
  "CMakeFiles/hydra_indus.dir/indus/lexer.cpp.o"
  "CMakeFiles/hydra_indus.dir/indus/lexer.cpp.o.d"
  "CMakeFiles/hydra_indus.dir/indus/parser.cpp.o"
  "CMakeFiles/hydra_indus.dir/indus/parser.cpp.o.d"
  "CMakeFiles/hydra_indus.dir/indus/pretty.cpp.o"
  "CMakeFiles/hydra_indus.dir/indus/pretty.cpp.o.d"
  "CMakeFiles/hydra_indus.dir/indus/token.cpp.o"
  "CMakeFiles/hydra_indus.dir/indus/token.cpp.o.d"
  "CMakeFiles/hydra_indus.dir/indus/typecheck.cpp.o"
  "CMakeFiles/hydra_indus.dir/indus/typecheck.cpp.o.d"
  "CMakeFiles/hydra_indus.dir/indus/types.cpp.o"
  "CMakeFiles/hydra_indus.dir/indus/types.cpp.o.d"
  "libhydra_indus.a"
  "libhydra_indus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_indus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
