file(REMOVE_RECURSE
  "CMakeFiles/compiler_speed.dir/compiler_speed.cpp.o"
  "CMakeFiles/compiler_speed.dir/compiler_speed.cpp.o.d"
  "compiler_speed"
  "compiler_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
