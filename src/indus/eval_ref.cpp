#include "indus/eval_ref.hpp"

#include <stdexcept>

namespace hydra::indus {

namespace {

std::vector<std::uint64_t> raw(const RefValue& v) {
  std::vector<std::uint64_t> out;
  out.reserve(v.size());
  for (const auto& b : v) out.push_back(b.value());
  return out;
}

BitVec apply_binop(BinOp op, const BitVec& a, const BitVec& b) {
  switch (op) {
    case BinOp::kAdd: return a.add(b);
    case BinOp::kSub: return a.sub(b);
    case BinOp::kMul: return a.mul(b);
    case BinOp::kDiv: return a.div(b);
    case BinOp::kMod: return a.mod(b);
    case BinOp::kBitAnd: return a.band(b);
    case BinOp::kBitOr: return a.bor(b);
    case BinOp::kBitXor: return a.bxor(b);
    case BinOp::kShl: return a.shl(b);
    case BinOp::kShr: return a.shr(b);
    case BinOp::kEq: return BitVec::from_bool(a == b);
    case BinOp::kNe: return BitVec::from_bool(!(a == b));
    case BinOp::kLt: return BitVec::from_bool(a < b);
    case BinOp::kLe: return BitVec::from_bool(a <= b);
    case BinOp::kGt: return BitVec::from_bool(a > b);
    case BinOp::kGe: return BitVec::from_bool(a >= b);
    case BinOp::kAnd:
      return BitVec::from_bool(a.as_bool() && b.as_bool());
    case BinOp::kOr:
      return BitVec::from_bool(a.as_bool() || b.as_bool());
  }
  return a;
}

}  // namespace

// Loop-variable bindings, chained for nested loops.
struct RefEvaluator::Frame {
  const Frame* parent = nullptr;
  std::map<std::string, BitVec> vars;

  const BitVec* find(const std::string& name) const {
    const auto it = vars.find(name);
    if (it != vars.end()) return &it->second;
    return parent != nullptr ? parent->find(name) : nullptr;
  }
};

RefEvaluator::RefEvaluator(const Program& program, const SymbolTable& symbols)
    : program_(program), symbols_(symbols) {}

int RefEvaluator::declared_width(const std::string& name,
                                 std::size_t part) const {
  const VarInfo* info = symbols_.lookup(name);
  if (info == nullptr) {
    throw std::logic_error("ref eval: unknown variable '" + name + "'");
  }
  const auto widths = info->type->flatten_widths();
  return widths.at(part);
}

void RefEvaluator::init_packet_state(RefState& state) const {
  for (const auto& d : program_.decls) {
    if (d.kind != VarKind::kTele) continue;
    if (d.type->is_array()) {
      RefArray arr;
      const int elem_w = d.type->element()->is_bool()
                             ? 1
                             : d.type->element()->bit_width();
      arr.slots.assign(static_cast<std::size_t>(d.type->array_size()),
                       BitVec(elem_w, 0));
      arr.count = 0;
      state.arrays[d.name] = std::move(arr);
      continue;
    }
    RefValue v;
    for (int w : d.type->flatten_widths()) v.emplace_back(w, 0);
    if (d.init) {
      // Initializers are constant (enforced by the type checker); reuse
      // the expression evaluator with empty state.
      RefState empty;
      RefOutcome ignored;
      (void)ignored;
      const RefValue init =
          eval(*d.init, empty,
               [](const std::string&, int w) { return BitVec(w, 0); },
               nullptr);
      for (std::size_t i = 0; i < v.size() && i < init.size(); ++i) {
        v[i] = init[i].resize(v[i].width());
      }
    }
    state.scalars[d.name] = std::move(v);
  }
}

void RefEvaluator::init_switch_state(RefState& state) const {
  for (const auto& d : program_.decls) {
    if (d.kind != VarKind::kSensor) continue;
    const int w = d.type->is_bool() ? 1 : d.type->bit_width();
    BitVec init(w, 0);
    if (d.init) {
      RefState empty;
      const RefValue v =
          eval(*d.init, empty,
               [](const std::string&, int width) { return BitVec(width, 0); },
               nullptr);
      init = v.at(0).resize(w);
    }
    state.sensors[d.name] = init;
  }
}

RefValue RefEvaluator::eval(const Expr& e, RefState& state,
                            const RefHeaderFn& hdr,
                            const Frame* frame) const {
  switch (e.kind) {
    case ExprKind::kNumber:
      return {BitVec(64, e.number)};
    case ExprKind::kBoolLit:
      return {BitVec::from_bool(e.bool_value)};
    case ExprKind::kVar: {
      if (frame != nullptr) {
        const BitVec* bound = frame->find(e.name);
        if (bound != nullptr) return {*bound};
      }
      const VarInfo* info = symbols_.lookup(e.name);
      if (info == nullptr) {
        throw std::logic_error("ref eval: unbound '" + e.name + "'");
      }
      switch (info->kind) {
        case VarKind::kHeader: {
          const std::string ann =
              info->annotation.empty() ? e.name : info->annotation;
          const int w = info->type->is_bool() ? 1 : info->type->bit_width();
          return {hdr(ann, w).resize(w)};
        }
        case VarKind::kSensor:
          return {state.sensors.at(e.name)};
        case VarKind::kControl: {
          const auto it = state.configs.find(e.name);
          if (it != state.configs.end()) return it->second;
          // Unconfigured control scalar reads as zeros.
          RefValue zeros;
          for (int w : info->type->flatten_widths()) zeros.emplace_back(w, 0);
          return zeros;
        }
        case VarKind::kTele: {
          const auto it = state.scalars.find(e.name);
          if (it != state.scalars.end()) return it->second;
          throw std::logic_error("ref eval: array '" + e.name +
                                 "' used as a scalar");
        }
      }
      throw std::logic_error("unreachable");
    }
    case ExprKind::kUnary: {
      const BitVec a = eval1(*e.args[0], state, hdr, frame);
      switch (e.unop) {
        case UnOp::kNot: return {BitVec::from_bool(!a.as_bool())};
        case UnOp::kBitNot: return {a.bnot()};
        case UnOp::kNeg: return {BitVec(a.width(), 0).sub(a)};
      }
      return {a};
    }
    case ExprKind::kBinary: {
      // Tuple (in)equality and logical short-circuit mirror the compiler.
      if (e.binop == BinOp::kAnd) {
        if (!eval1(*e.args[0], state, hdr, frame).as_bool()) {
          return {BitVec::from_bool(false)};
        }
        return {BitVec::from_bool(
            eval1(*e.args[1], state, hdr, frame).as_bool())};
      }
      if (e.binop == BinOp::kOr) {
        if (eval1(*e.args[0], state, hdr, frame).as_bool()) {
          return {BitVec::from_bool(true)};
        }
        return {BitVec::from_bool(
            eval1(*e.args[1], state, hdr, frame).as_bool())};
      }
      const RefValue lhs = eval(*e.args[0], state, hdr, frame);
      const RefValue rhs = eval(*e.args[1], state, hdr, frame);
      if (lhs.size() > 1 && (e.binop == BinOp::kEq || e.binop == BinOp::kNe)) {
        bool all = lhs.size() == rhs.size();
        for (std::size_t i = 0; all && i < lhs.size(); ++i) {
          all = lhs[i] == rhs[i];
        }
        return {BitVec::from_bool(e.binop == BinOp::kEq ? all : !all)};
      }
      return {apply_binop(e.binop, lhs.at(0), rhs.at(0))};
    }
    case ExprKind::kIndex: {
      const Expr& base = *e.args[0];
      if (base.kind != ExprKind::kVar) {
        throw std::logic_error("ref eval: non-variable index base");
      }
      const VarInfo* info = symbols_.lookup(base.name);
      if (info != nullptr && info->type->is_dict()) {
        const RefValue key = eval(*e.args[1], state, hdr, frame);
        // Keys are width-normalized to the declared key widths, exactly
        // like table keys in the compiled pipeline.
        const auto widths = info->type->key()->flatten_widths();
        RefValue norm;
        for (std::size_t i = 0; i < key.size(); ++i) {
          norm.push_back(key[i].resize(widths.at(i)));
        }
        const auto& dict = state.dicts[base.name];
        const auto it = dict.find(raw(norm));
        if (it != dict.end()) return it->second;
        RefValue zeros;
        for (int w : info->type->value()->flatten_widths()) {
          zeros.emplace_back(w, 0);
        }
        return zeros;
      }
      // Array index: tele array or control array.
      const BitVec idx = eval1(*e.args[1], state, hdr, frame);
      if (info != nullptr && info->kind == VarKind::kControl) {
        const auto it = state.configs.find(base.name);
        const std::size_t n =
            static_cast<std::size_t>(info->type->array_size());
        const int w = info->type->element()->is_bool()
                          ? 1
                          : info->type->element()->bit_width();
        if (it == state.configs.end() || idx.value() >= n) {
          return {BitVec(w, 0)};
        }
        return {it->second.at(static_cast<std::size_t>(idx.value()))};
      }
      const RefArray& arr = state.arrays.at(base.name);
      const int w = arr.slots.empty() ? 1 : arr.slots[0].width();
      if (idx.value() >= arr.slots.size()) return {BitVec(w, 0)};
      return {arr.slots[static_cast<std::size_t>(idx.value())]};
    }
    case ExprKind::kTuple: {
      RefValue out;
      for (const auto& a : e.args) {
        const RefValue part = eval(*a, state, hdr, frame);
        out.insert(out.end(), part.begin(), part.end());
      }
      return out;
    }
    case ExprKind::kCall: {
      if (e.name == "abs") {
        const Expr& arg = *e.args[0];
        // Mirror the compiler's pattern: abs(a - b) is |a - b|; any other
        // abs is the identity on unsigned values.
        if (arg.kind == ExprKind::kBinary && arg.binop == BinOp::kSub) {
          const BitVec a = eval1(*arg.args[0], state, hdr, frame);
          const BitVec b = eval1(*arg.args[1], state, hdr, frame);
          return {a.abs_diff(b)};
        }
        return {eval1(arg, state, hdr, frame)};
      }
      if (e.name == "length") {
        const Expr& arg = *e.args[0];
        const VarInfo* info = symbols_.lookup(arg.name);
        if (info != nullptr && info->kind == VarKind::kControl) {
          return {BitVec(32, static_cast<std::uint64_t>(
                                 info->type->array_size()))};
        }
        const RefArray& arr = state.arrays.at(arg.name);
        return {BitVec(32, static_cast<std::uint64_t>(arr.count))};
      }
      throw std::logic_error("ref eval: unknown call '" + e.name + "'");
    }
    case ExprKind::kIn: {
      const Expr& hay = *e.args[1];
      const VarInfo* info = symbols_.lookup(hay.name);
      if (info != nullptr && info->type->is_set()) {
        const RefValue needle = eval(*e.args[0], state, hdr, frame);
        const auto widths = info->type->element()->flatten_widths();
        RefValue norm;
        for (std::size_t i = 0; i < needle.size(); ++i) {
          norm.push_back(needle[i].resize(widths.at(i)));
        }
        const auto& set = state.sets[hay.name];
        return {BitVec::from_bool(set.count(raw(norm)) != 0U)};
      }
      const BitVec needle = eval1(*e.args[0], state, hdr, frame);
      if (info != nullptr && info->kind == VarKind::kControl) {
        const auto it = state.configs.find(hay.name);
        bool found = false;
        if (it != state.configs.end()) {
          for (const auto& v : it->second) found = found || v == needle;
        }
        return {BitVec::from_bool(found)};
      }
      const RefArray& arr = state.arrays.at(hay.name);
      bool found = false;
      for (int i = 0; i < arr.count; ++i) {
        found = found || arr.slots[static_cast<std::size_t>(i)] == needle;
      }
      return {BitVec::from_bool(found)};
    }
  }
  throw std::logic_error("unreachable expr kind");
}

BitVec RefEvaluator::eval1(const Expr& e, RefState& state,
                           const RefHeaderFn& hdr, const Frame* frame) const {
  const RefValue v = eval(e, state, hdr, frame);
  if (v.size() != 1) {
    throw std::logic_error("ref eval: expected a scalar");
  }
  return v[0];
}

void RefEvaluator::assign(const Expr& target, AssignOp op, RefValue value,
                          RefState& state, const RefHeaderFn& hdr,
                          const Frame* frame) const {
  if (target.kind == ExprKind::kVar) {
    const VarInfo* info = symbols_.lookup(target.name);
    if (info == nullptr) {
      throw std::logic_error("ref eval: assign to unknown variable");
    }
    if (info->kind == VarKind::kSensor) {
      BitVec& cell = state.sensors.at(target.name);
      BitVec v = value.at(0);
      if (op == AssignOp::kAdd) v = cell.add(v);
      if (op == AssignOp::kSub) v = cell.sub(v);
      cell = v.resize(cell.width());
      return;
    }
    RefValue& dst = state.scalars.at(target.name);
    for (std::size_t i = 0; i < dst.size(); ++i) {
      BitVec v = value.at(i);
      if (op == AssignOp::kAdd) v = dst[i].add(v);
      if (op == AssignOp::kSub) v = dst[i].sub(v);
      dst[i] = v.resize(dst[i].width());
    }
    return;
  }
  // Array element target.
  const Expr& base = *target.args[0];
  const BitVec idx = eval1(*target.args[1], state, hdr, frame);
  RefArray& arr = state.arrays.at(base.name);
  if (idx.value() >= arr.slots.size()) return;  // silently out of range
  BitVec& slot = arr.slots[static_cast<std::size_t>(idx.value())];
  BitVec v = value.at(0);
  if (op == AssignOp::kAdd) v = slot.add(v);
  if (op == AssignOp::kSub) v = slot.sub(v);
  slot = v.resize(slot.width());
}

void RefEvaluator::exec(const Stmt& s, RefState& state, const RefHeaderFn& hdr,
                        RefOutcome& out, const Frame* frame) const {
  switch (s.kind) {
    case StmtKind::kPass:
      return;
    case StmtKind::kBlock:
      for (const auto& child : s.body) exec(*child, state, hdr, out, frame);
      return;
    case StmtKind::kAssign:
      assign(*s.target, s.assign_op, eval(*s.value, state, hdr, frame),
             state, hdr, frame);
      return;
    case StmtKind::kIf: {
      for (const auto& arm : s.arms) {
        if (eval1(*arm.cond, state, hdr, frame).as_bool()) {
          exec(*arm.body, state, hdr, out, frame);
          return;
        }
      }
      if (s.else_body) exec(*s.else_body, state, hdr, out, frame);
      return;
    }
    case StmtKind::kFor: {
      // Iteration count: the minimum fill across the iterated containers
      // (config arrays count as full).
      int iterations = -1;
      for (const auto& it : s.iterables) {
        const VarInfo* info = symbols_.lookup(it->name);
        int n;
        if (info != nullptr && info->kind == VarKind::kControl) {
          n = info->type->array_size();
        } else {
          n = state.arrays.at(it->name).count;
        }
        iterations = iterations < 0 ? n : std::min(iterations, n);
      }
      for (int i = 0; i < iterations; ++i) {
        Frame inner;
        inner.parent = frame;
        for (std::size_t v = 0; v < s.loop_vars.size(); ++v) {
          const Expr& it = *s.iterables[v];
          const VarInfo* info = symbols_.lookup(it.name);
          BitVec value(1, 0);
          if (info != nullptr && info->kind == VarKind::kControl) {
            const auto cfg = state.configs.find(it.name);
            const int w = info->type->element()->is_bool()
                              ? 1
                              : info->type->element()->bit_width();
            value = cfg != state.configs.end()
                        ? cfg->second.at(static_cast<std::size_t>(i))
                        : BitVec(w, 0);
          } else {
            value = state.arrays.at(it.name)
                        .slots[static_cast<std::size_t>(i)];
          }
          inner.vars.emplace(s.loop_vars[v], value);
        }
        exec(*s.body[0], state, hdr, out, &inner);
      }
      return;
    }
    case StmtKind::kPush: {
      RefArray& arr = state.arrays.at(s.push_list->name);
      const BitVec v = eval1(*s.push_value, state, hdr, frame);
      if (arr.count < static_cast<int>(arr.slots.size())) {
        arr.slots[static_cast<std::size_t>(arr.count)] =
            v.resize(arr.slots[0].width());
        ++arr.count;
      }
      return;
    }
    case StmtKind::kReport: {
      RefValue payload;
      for (const auto& a : s.report_args) {
        const RefValue part = eval(*a, state, hdr, frame);
        payload.insert(payload.end(), part.begin(), part.end());
      }
      out.reports.push_back(std::move(payload));
      return;
    }
    case StmtKind::kReject:
      out.reject = true;
      return;
  }
}

void RefEvaluator::run_init(RefState& state, const RefHeaderFn& hdr,
                            RefOutcome& out) const {
  exec(*program_.init_block, state, hdr, out, nullptr);
}

void RefEvaluator::run_tele(RefState& state, const RefHeaderFn& hdr,
                            RefOutcome& out) const {
  exec(*program_.tele_block, state, hdr, out, nullptr);
}

void RefEvaluator::run_check(RefState& state, const RefHeaderFn& hdr,
                             RefOutcome& out) const {
  exec(*program_.check_block, state, hdr, out, nullptr);
}

}  // namespace hydra::indus
