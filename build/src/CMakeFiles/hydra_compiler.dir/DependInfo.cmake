
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/compile.cpp" "src/CMakeFiles/hydra_compiler.dir/compiler/compile.cpp.o" "gcc" "src/CMakeFiles/hydra_compiler.dir/compiler/compile.cpp.o.d"
  "/root/repo/src/compiler/emit_p4.cpp" "src/CMakeFiles/hydra_compiler.dir/compiler/emit_p4.cpp.o" "gcc" "src/CMakeFiles/hydra_compiler.dir/compiler/emit_p4.cpp.o.d"
  "/root/repo/src/compiler/layout.cpp" "src/CMakeFiles/hydra_compiler.dir/compiler/layout.cpp.o" "gcc" "src/CMakeFiles/hydra_compiler.dir/compiler/layout.cpp.o.d"
  "/root/repo/src/compiler/link_p4.cpp" "src/CMakeFiles/hydra_compiler.dir/compiler/link_p4.cpp.o" "gcc" "src/CMakeFiles/hydra_compiler.dir/compiler/link_p4.cpp.o.d"
  "/root/repo/src/compiler/lower.cpp" "src/CMakeFiles/hydra_compiler.dir/compiler/lower.cpp.o" "gcc" "src/CMakeFiles/hydra_compiler.dir/compiler/lower.cpp.o.d"
  "/root/repo/src/compiler/relocate.cpp" "src/CMakeFiles/hydra_compiler.dir/compiler/relocate.cpp.o" "gcc" "src/CMakeFiles/hydra_compiler.dir/compiler/relocate.cpp.o.d"
  "/root/repo/src/compiler/resources.cpp" "src/CMakeFiles/hydra_compiler.dir/compiler/resources.cpp.o" "gcc" "src/CMakeFiles/hydra_compiler.dir/compiler/resources.cpp.o.d"
  "/root/repo/src/ir/ir.cpp" "src/CMakeFiles/hydra_compiler.dir/ir/ir.cpp.o" "gcc" "src/CMakeFiles/hydra_compiler.dir/ir/ir.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hydra_indus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
