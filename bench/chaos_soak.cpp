// Chaos soak: sweeps packet-loss and link-flap rates over the 2x2
// leaf-spine with the stateful firewall deployed and the full fault plan
// armed (corruption, duplication, reordering, a mid-run switch restart,
// delayed rule pushes). Two properties are asserted per configuration:
//
//   1. robustness — with faults armed, NO run may throw or abort; damaged
//      telemetry must surface as counted fail-closed rejects (the seed
//      codec threw std::invalid_argument out of the event loop instead);
//   2. accounting — every injected packet is accounted for by exactly one
//      outcome counter (delivered / rejected / fwd / queue / fault drop,
//      or still carried by a duplicate), so fault handling never leaks or
//      double-counts packets.
//
//   $ ./chaos_soak [--json BENCH_chaos.json] [--seed N]
//                  [--engine=serial|parallel[:N]]
//
// The JSON carries simulation-domain numbers only (no wall clock), so a
// fixed seed gives byte-identical output across engines and machines.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "cli_parse.hpp"
#include "forwarding/ipv4_ecmp.hpp"
#include "hydra/hydra.hpp"
#include "net/engine.hpp"
#include "net/network.hpp"

using namespace hydra;

namespace {

struct SoakResult {
  double loss = 0.0;
  double flap_rate_hz = 0.0;
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t rejected = 0;
  std::uint64_t fwd_dropped = 0;
  std::uint64_t queue_dropped = 0;
  std::uint64_t fault_dropped = 0;
  std::size_t violations = 0;
  std::string fault_stats;  // FaultStats::to_json()
  bool threw = false;
  std::string error;
};

net::EngineKind g_kind = net::EngineKind::kSerial;
int g_workers = 0;

SoakResult soak_once(double loss, double flap_rate_hz, std::uint64_t seed) {
  SoakResult r;
  r.loss = loss;
  r.flap_rate_hz = flap_rate_hz;
  try {
    auto fabric = net::make_leaf_spine(2, 2, 2);
    net::Network net(fabric.topo);
    net.set_engine(g_kind, g_workers);
    net.set_forensics(true, 512);
    fwd::install_leaf_spine_routing(net, fabric);
    const int dep = net.deploy(compile_library_checker("stateful_firewall"));

    net::FaultPlan plan;
    plan.loss = loss;
    plan.corrupt = 0.06;
    plan.duplicate = 0.02;
    plan.reorder = 0.04;
    plan.reorder_max_s = 30e-6;
    plan.flap_rate_hz = flap_rate_hz;
    plan.flap_down_s = 120e-6;
    plan.horizon_s = 3e-3;
    plan.restarts.push_back({fabric.leaves[1], 1.0e-3});
    plan.restart_warmup_s = 300e-6;
    plan.rule_push_delay_s = 60e-6;
    plan.rule_push_jitter_s = 60e-6;
    net.arm_faults(plan, seed);

    const std::uint32_t client = net.topo().node(fabric.hosts[0][0]).ip;
    const std::uint32_t server = net.topo().node(fabric.hosts[1][0]).ip;
    const std::uint32_t intruder = net.topo().node(fabric.hosts[0][1]).ip;
    net.dict_insert_all_delayed(dep, "allowed",
                                {BitVec(32, client), BitVec(32, server)},
                                {BitVec::from_bool(true)});
    net.dict_insert_all_delayed(dep, "allowed",
                                {BitVec(32, server), BitVec(32, client)},
                                {BitVec::from_bool(true)});

    for (int i = 0; i < 300; ++i) {
      const double t = 8e-6 * (i + 1);
      const bool bad = i % 5 == 4;
      const int src_host = bad ? fabric.hosts[0][1] : fabric.hosts[0][0];
      const std::uint32_t src_ip = bad ? intruder : client;
      const auto sport = static_cast<std::uint16_t>(40000 + i % 16);
      net.events().schedule_at(t, [&net, src_host, src_ip, server, sport]() {
        net.send_from_host(src_host,
                           p4rt::make_udp(src_ip, server, sport, 80, 64));
      });
    }
    net.events().run();

    const auto& c = net.counters();
    r.injected = c.injected;
    r.delivered = c.delivered;
    r.rejected = c.rejected;
    r.fwd_dropped = c.fwd_dropped;
    r.queue_dropped = c.queue_dropped;
    r.fault_dropped = c.fault_dropped;
    r.violations = net.violation_reports().size();
    r.fault_stats = net.fault_stats().to_json();
  } catch (const std::exception& e) {
    r.threw = true;
    r.error = e.what();
  } catch (...) {
    r.threw = true;
    r.error = "non-std exception";
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_chaos.json";
  std::uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      if (!tools::parse_u64_arg(argv[0], "--seed", argv[++i], &seed)) {
        return 2;
      }
    } else if (std::strncmp(argv[i], "--engine=", 9) == 0) {
      g_kind = net::parse_engine_kind(argv[i] + 9, &g_workers);
    }
  }

  const double losses[] = {0.0, 0.01, 0.05};
  const double flaps[] = {0.0, 1000.0, 4000.0};
  std::vector<SoakResult> results;
  bool any_threw = false;

  std::printf("Chaos soak (seed %llu, engine %s): loss x flap sweep\n\n",
              static_cast<unsigned long long>(seed),
              net::engine_kind_name(g_kind));
  std::printf("  %-6s %-9s %9s %9s %9s %9s %7s\n", "loss", "flap_hz",
              "injected", "delivered", "rejected", "faultdrop", "threw");
  for (double loss : losses) {
    for (double flap : flaps) {
      SoakResult r = soak_once(loss, flap, seed);
      any_threw = any_threw || r.threw;
      std::printf("  %-6.2f %-9.0f %9llu %9llu %9llu %9llu %7s\n", r.loss,
                  r.flap_rate_hz, static_cast<unsigned long long>(r.injected),
                  static_cast<unsigned long long>(r.delivered),
                  static_cast<unsigned long long>(r.rejected),
                  static_cast<unsigned long long>(r.fault_dropped),
                  r.threw ? "YES" : "no");
      if (r.threw) {
        std::fprintf(stderr, "  ERROR: %s\n", r.error.c_str());
      }
      results.push_back(std::move(r));
    }
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"chaos_soak\",\n  \"seed\": %llu,\n"
               "  \"configs\": [\n",
               static_cast<unsigned long long>(seed));
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SoakResult& r = results[i];
    std::fprintf(
        f,
        "    {\"loss\": %.2f, \"flap_rate_hz\": %.0f, \"injected\": %llu, "
        "\"delivered\": %llu, \"rejected\": %llu, \"fwd_dropped\": %llu, "
        "\"queue_dropped\": %llu, \"fault_dropped\": %llu, "
        "\"violations\": %zu, \"threw\": %s,\n     \"fault_stats\": %s}%s\n",
        r.loss, r.flap_rate_hz, static_cast<unsigned long long>(r.injected),
        static_cast<unsigned long long>(r.delivered),
        static_cast<unsigned long long>(r.rejected),
        static_cast<unsigned long long>(r.fwd_dropped),
        static_cast<unsigned long long>(r.queue_dropped),
        static_cast<unsigned long long>(r.fault_dropped), r.violations,
        r.threw ? "true" : "false",
        r.fault_stats.empty() ? "{}" : r.fault_stats.c_str(),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path.c_str());

  if (any_threw) {
    std::fprintf(stderr,
                 "FAIL: a fault-armed run threw (fail-closed contract)\n");
    return 1;
  }
  std::printf("all %zu configurations completed without throwing\n",
              results.size());
  return 0;
}
