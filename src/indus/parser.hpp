// Recursive-descent parser for Indus.
//
// Grammar (paper Figure 4 core plus prototype extensions):
//   program  := decl* block block block
//   decl     := kind type? ident ('@' string)? ('=' expr)? ';'
//   type     := base ('[' number ']')*
//   base     := 'bit' '<' number '>' | 'bool'
//             | 'set' '<' type '>' | 'dict' '<' type ',' type '>'
//             | '(' type (',' type)+ ')'
//   block    := '{' stmt* '}'
//   stmt     := 'pass' ';' | 'reject' ';' | report | if | for
//             | postfix '.' 'push' '(' expr ')' ';'
//             | postfix ('=' | '+=' | '-=') expr ';'
// Expressions use standard precedence climbing; `in` binds like a
// comparison. Nested generics close with '>>' which the parser splits.
#pragma once

#include <string>
#include <vector>

#include "indus/ast.hpp"
#include "indus/diagnostics.hpp"
#include "indus/token.hpp"

namespace hydra::indus {

class Parser {
 public:
  Parser(std::vector<Token> tokens, Diagnostics& diags);

  // Parses a full three-block program. Diagnostics receive all errors; the
  // returned Program is best-effort when errors are present.
  Program parse_program();

  // Parses a single expression (used by tests and the LTLf translator).
  ExprPtr parse_expression();

 private:
  const Token& cur() const { return tokens_[idx_]; }
  const Token& peek(int ahead = 1) const;
  bool at(Tok kind) const { return cur().kind == kind; }
  Token take();
  bool accept(Tok kind);
  Token expect(Tok kind, const char* context);
  void expect_rangle(const char* context);  // splits '>>' when needed
  void sync_to_semi();

  Decl parse_decl();
  TypePtr parse_type();
  TypePtr parse_base_type();
  StmtPtr parse_block();
  StmtPtr parse_stmt();
  StmtPtr parse_if(Loc loc);
  StmtPtr parse_for(Loc loc);
  StmtPtr parse_report(Loc loc);

  ExprPtr parse_binary(int min_prec);
  ExprPtr parse_unary();
  ExprPtr parse_postfix();
  ExprPtr parse_primary();

  std::vector<Token> tokens_;
  std::size_t idx_ = 0;
  Diagnostics& diags_;
};

// Convenience: lex + parse + (optionally) typecheck in one call.
Program parse_indus(const std::string& source, Diagnostics& diags);

}  // namespace hydra::indus
