// Strict numeric argv parsing shared by the CLI tools.
//
// atoi/atol silently turn garbage into 0 and saturate nothing; a typo like
// `--workers 8x` or `--ring 1e9` must instead fail loudly with the flag
// name and the accepted range — the same strictness parse_engine_kind
// applies to `--engine parallel:N`. Each helper prints a one-line
// diagnostic to stderr and returns false on bad input; callers follow up
// with their usage text and exit 2.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace hydra::tools {

// Base-10 integer in [lo, hi]; rejects empty input, trailing characters,
// and out-of-range values.
inline bool parse_long_arg(const char* prog, const char* flag,
                           const char* text, long lo, long hi, long* out) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || v < lo || v > hi) {
    std::fprintf(
        stderr, "%s: bad value '%s' for %s: expected an integer in [%ld, %ld]\n",
        prog, text, flag, lo, hi);
    return false;
  }
  *out = v;
  return true;
}

// Base-10 unsigned 64-bit integer (full range); rejects signs, empty
// input, trailing characters, and overflow.
inline bool parse_u64_arg(const char* prog, const char* flag,
                          const char* text, std::uint64_t* out) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v =
      text[0] == '-' || text[0] == '+' ? (errno = ERANGE, 0ULL)
                                       : std::strtoull(text, &end, 10);
  if (end == text || end == nullptr || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr,
                 "%s: bad value '%s' for %s: expected an unsigned integer\n",
                 prog, text, flag);
    return false;
  }
  *out = v;
  return true;
}

// Strictly-positive double (scientific notation fine: `--interval 5e-6`).
inline bool parse_positive_double_arg(const char* prog, const char* flag,
                                      const char* text, double* out) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE || !(v > 0.0)) {
    std::fprintf(stderr,
                 "%s: bad value '%s' for %s: expected a number > 0\n", prog,
                 text, flag);
    return false;
  }
  *out = v;
  return true;
}

// Writes `content` to `path`; false (with a diagnostic) on I/O failure.
inline bool write_text_file(const std::string& path,
                            const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace hydra::tools
