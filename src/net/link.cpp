#include "net/link.hpp"

#include <algorithm>

namespace hydra::net {

Link::Link(const LinkSpec& spec)
    : spec_(spec), buffer_bytes_(spec.buffer_bytes) {}

std::optional<double> Link::transmit(int dir, double now, int bytes) {
  DirStats& d = dirs_[dir];
  const double rate_bps = spec_.gbps * 1e9;
  const double tx_time = static_cast<double>(bytes) * 8.0 / rate_bps;
  const double start = std::max(now, d.busy_until);
  // Backlog currently queued ahead of this packet, in bytes.
  const double backlog_bytes = (start - now) * rate_bps / 8.0;
  if (backlog_bytes + static_cast<double>(bytes) > buffer_bytes_) {
    ++d.drops;
    return std::nullopt;
  }
  d.busy_until = start + tx_time;
  d.busy_time += tx_time;
  ++d.packets;
  d.bytes += static_cast<std::uint64_t>(bytes);
  return d.busy_until + spec_.latency_s;
}

double Link::throughput_gbps(int dir, double now) const {
  if (now <= 0.0) return 0.0;
  return static_cast<double>(dirs_[dir].bytes) * 8.0 / now / 1e9;
}

}  // namespace hydra::net
