# Empty compiler generated dependencies file for hydra_indus.
# This may be replaced when dependencies are built.
