#include "ltlf/formula.hpp"

#include <algorithm>

namespace hydra::ltlf {

namespace {
FormulaPtr node(Op op, std::vector<FormulaPtr> kids, int atom = 0) {
  auto f = std::make_shared<Formula>();
  f->op = op;
  f->atom = atom;
  f->kids = std::move(kids);
  return f;
}
}  // namespace

FormulaPtr Formula::make_atom(int index) { return node(Op::kAtom, {}, index); }
FormulaPtr Formula::make_not(FormulaPtr a) {
  return node(Op::kNot, {std::move(a)});
}
FormulaPtr Formula::make_and(FormulaPtr a, FormulaPtr b) {
  return node(Op::kAnd, {std::move(a), std::move(b)});
}
FormulaPtr Formula::make_or(FormulaPtr a, FormulaPtr b) {
  return node(Op::kOr, {std::move(a), std::move(b)});
}
FormulaPtr Formula::make_next(FormulaPtr a) {
  return node(Op::kNext, {std::move(a)});
}
FormulaPtr Formula::make_until(FormulaPtr a, FormulaPtr b) {
  return node(Op::kUntil, {std::move(a), std::move(b)});
}
FormulaPtr Formula::make_eventually(FormulaPtr a) {
  return node(Op::kEventually, {std::move(a)});
}
FormulaPtr Formula::make_globally(FormulaPtr a) {
  return node(Op::kGlobally, {std::move(a)});
}

int Formula::max_atom() const {
  int mx = op == Op::kAtom ? atom : -1;
  for (const auto& k : kids) mx = std::max(mx, k->max_atom());
  return mx;
}

int Formula::depth() const {
  int d = 0;
  for (const auto& k : kids) d = std::max(d, k->depth());
  return d + 1;
}

std::string Formula::to_string() const {
  switch (op) {
    case Op::kAtom:
      return "a" + std::to_string(atom);
    case Op::kNot:
      return "!" + kids[0]->to_string();
    case Op::kAnd:
      return "(" + kids[0]->to_string() + " & " + kids[1]->to_string() + ")";
    case Op::kOr:
      return "(" + kids[0]->to_string() + " | " + kids[1]->to_string() + ")";
    case Op::kNext:
      return "X" + kids[0]->to_string();
    case Op::kUntil:
      return "(" + kids[0]->to_string() + " U " + kids[1]->to_string() + ")";
    case Op::kEventually:
      return "F" + kids[0]->to_string();
    case Op::kGlobally:
      return "G" + kids[0]->to_string();
  }
  return "?";
}

}  // namespace hydra::ltlf
