// Fixed-width bit vectors, the value representation used throughout the
// Indus interpreter and the P4 runtime substrate.
//
// Indus `bit<n>` values (1 <= n <= 64) are modelled as an unsigned integer
// truncated to n bits. All arithmetic wraps modulo 2^n, matching P4 / Tofino
// semantics. Booleans are represented as bit<1> by the runtime but keep a
// distinct static type in the frontend.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace hydra {

class BitVec {
 public:
  static constexpr int kMaxWidth = 64;

  BitVec() : width_(1), value_(0) {}
  BitVec(int width, std::uint64_t value);

  static BitVec from_bool(bool b) { return BitVec(1, b ? 1 : 0); }

  int width() const { return width_; }
  std::uint64_t value() const { return value_; }
  bool as_bool() const { return value_ != 0; }

  // Mask for `width` bits; width==64 yields all-ones.
  static std::uint64_t mask(int width);

  // Arithmetic (wrapping, result has the max of the operand widths).
  BitVec add(const BitVec& rhs) const;
  BitVec sub(const BitVec& rhs) const;
  BitVec mul(const BitVec& rhs) const;
  BitVec div(const BitVec& rhs) const;  // division by zero yields all-ones
  BitVec mod(const BitVec& rhs) const;  // modulo zero yields zero

  // Bitwise.
  BitVec band(const BitVec& rhs) const;
  BitVec bor(const BitVec& rhs) const;
  BitVec bxor(const BitVec& rhs) const;
  BitVec bnot() const;
  BitVec shl(const BitVec& rhs) const;
  BitVec shr(const BitVec& rhs) const;

  // |a - b| as used by the load-balance checker's abs().
  BitVec abs_diff(const BitVec& rhs) const;

  // Comparisons compare numeric values regardless of width.
  std::strong_ordering operator<=>(const BitVec& rhs) const {
    return value_ <=> rhs.value_;
  }
  bool operator==(const BitVec& rhs) const { return value_ == rhs.value_; }

  // Returns the value truncated/zero-extended to `width` bits.
  BitVec resize(int width) const;

  std::string to_string() const;  // e.g. "8w42"
  std::string to_hex() const;     // e.g. "0x2a"

 private:
  int width_;
  std::uint64_t value_;
};

}  // namespace hydra
