// Discrete-event simulation core. Time is in seconds (double); events with
// equal timestamps fire in scheduling order (stable), which keeps runs
// deterministic for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace hydra::net {

using SimTime = double;

class EventQueue {
 public:
  SimTime now() const { return now_; }

  void schedule_at(SimTime t, std::function<void()> fn);
  void schedule_in(SimTime delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  // Runs events until the queue is empty or `t` is passed; `now()` advances
  // to at most t.
  void run_until(SimTime t);
  void run();  // until empty

 private:
  struct Item {
    SimTime t;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Item, std::vector<Item>, Later> heap_;
};

}  // namespace hydra::net
