// Line-rate packet anonymizer, modelled on the ONTAS-based P4 anonymizer
// of the paper's Figure 13 (P4Campus): mirrored campus traffic has its MAC
// and IPv4 addresses hashed in a PREFIX-PRESERVING manner with a salt
// before reaching the testbed, and payloads are discarded.
//
// Prefix preservation: two addresses sharing exactly k leading bits map to
// outputs sharing exactly k leading bits — so subnet structure (and thus
// routing behaviour) survives anonymization while identities do not.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "net/switch_node.hpp"

namespace hydra::fwd {

// Standalone anonymization functions (used by the program and tests).
std::uint32_t anonymize_ipv4(std::uint32_t addr, std::uint64_t salt);
std::uint64_t anonymize_mac(std::uint64_t mac, std::uint64_t salt);

// A forwarding wrapper that anonymizes every packet before handing it to
// the inner program — deploy at the mirror/broker switch.
class AnonymizerProgram : public net::ForwardingProgram {
 public:
  AnonymizerProgram(std::shared_ptr<net::ForwardingProgram> inner,
                    std::uint64_t salt)
      : inner_(std::move(inner)), salt_(salt) {}

  Decision process(p4rt::Packet& pkt, int in_port, int switch_id) override;
  std::string name() const override { return "anonymizer"; }

  std::uint64_t packets_anonymized() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<net::ForwardingProgram> inner_;
  std::uint64_t salt_;
  std::atomic<std::uint64_t> count_{0};
};

}  // namespace hydra::fwd
