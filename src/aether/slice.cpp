#include "aether/slice.hpp"

#include "p4rt/packet.hpp"
#include "util/bitvec.hpp"
#include "util/strings.hpp"

namespace hydra::aether {

std::string FilteringRule::to_string() const {
  std::string proto_s = "any";
  if (proto) {
    proto_s = *proto == p4rt::kProtoUdp   ? "UDP"
              : *proto == p4rt::kProtoTcp ? "TCP"
                                          : std::to_string(*proto);
  }
  std::string port_s = "any";
  if (!(port_lo == 0 && port_hi == 0xffff)) {
    port_s = std::to_string(port_lo);
    if (port_hi != port_lo) port_s += "-" + std::to_string(port_hi);
  }
  return std::to_string(priority) + ":" + str::ipv4_to_string(app_prefix) +
         "/" + std::to_string(prefix_len) + ":" + proto_s + ":" + port_s +
         ":" + (action == FilterAction::kAllow ? "allow" : "deny");
}

bool FilteringRule::matches(std::uint32_t ip, std::uint8_t proto_v,
                            std::uint16_t port) const {
  const std::uint32_t mask =
      prefix_len == 0
          ? 0
          : static_cast<std::uint32_t>(BitVec::mask(32) << (32 - prefix_len));
  if ((ip & mask) != (app_prefix & mask)) return false;
  if (proto && *proto != proto_v) return false;
  return port_lo <= port && port <= port_hi;
}

bool FilteringRule::same_match(const FilteringRule& other) const {
  return app_prefix == other.app_prefix && prefix_len == other.prefix_len &&
         proto == other.proto && port_lo == other.port_lo &&
         port_hi == other.port_hi && priority == other.priority &&
         action == other.action;
}

FilterAction Slice::decide(std::uint32_t app_ip, std::uint8_t proto,
                           std::uint16_t port) const {
  const FilteringRule* best = nullptr;
  for (const auto& r : rules) {
    if (!r.matches(app_ip, proto, port)) continue;
    if (best == nullptr || r.priority > best->priority) best = &r;
  }
  return best != nullptr ? best->action : FilterAction::kDeny;
}

Slice example_camera_slice(std::uint32_t id) {
  Slice s;
  s.id = id;
  s.name = "camera-slice";
  FilteringRule deny_all;
  deny_all.priority = 10;
  deny_all.action = FilterAction::kDeny;
  FilteringRule allow_udp81;
  allow_udp81.priority = 20;
  allow_udp81.proto = p4rt::kProtoUdp;
  allow_udp81.port_lo = 81;
  allow_udp81.port_hi = 81;
  allow_udp81.action = FilterAction::kAllow;
  s.rules = {deny_all, allow_udp81};
  return s;
}

}  // namespace hydra::aether
