// Regenerates §6.2's throughput comparison: offered vs. achieved rate with
// and without Hydra, plus the campus-trace replay at 350 Kpps (Figure 13's
// workload) through leaf1.
//
//   $ ./throughput [--json BENCH_throughput.json] [--obs]
//
// --obs enables the observability layer (metrics registry wired through
// every table/interpreter/switch) for all runs; the output schema is
// unchanged, so comparing a --obs run against a plain run measures the
// instrumentation overhead.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "forwarding/anonymizer.hpp"
#include "forwarding/ipv4_ecmp.hpp"
#include "hydra/hydra.hpp"
#include "net/network.hpp"
#include "net/traffic.hpp"

using namespace hydra;

namespace {

struct Result {
  double offered_gbps = 0;
  double delivered_gbps = 0;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  double pps = 0;
};

void deploy_everything(net::Network& net, const net::LeafSpine& fabric) {
  const int vf = net.deploy(compile_library_checker("valley_free"));
  configure_valley_free(net, vf, fabric);
  net.deploy(compile_library_checker("loops"));
  const int rv = net.deploy(compile_library_checker("routing_validity"));
  configure_routing_validity(net, rv, fabric);
  const int ep = net.deploy(compile_library_checker("egress_port_validity"));
  configure_egress_port_validity(net, ep);
  net.deploy(compile_library_checker("application_filtering"));
}

bool g_obs = false;  // --obs: run with the observability layer enabled

Result iperf_run(bool with_checkers, double duration) {
  auto fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net(fabric.topo);
  fwd::install_leaf_spine_routing(net, fabric);
  net.set_baseline_profile(compiler::fabric_upf_profile());
  if (with_checkers) deploy_everything(net, fabric);
  if (g_obs) net.set_observability(true);

  // Two 10 Gb/s flows (one per host pair): 20 Gb/s offered in aggregate,
  // the rate the paper's microbenchmark reaches.
  net::UdpFlood f1(net, fabric.hosts[0][0], fabric.hosts[1][0], 10.0, 8000,
                   7001);
  net::UdpFlood f2(net, fabric.hosts[0][1], fabric.hosts[1][1], 10.0, 8000,
                   7002);
  f1.start(0.0, duration);
  f2.start(0.0, duration);
  net.events().run();

  Result r;
  r.sent = f1.packets_sent() + f2.packets_sent();
  r.delivered = net.counters().delivered;
  r.offered_gbps = static_cast<double>(r.sent) * 8000 * 8 / duration / 1e9;
  r.delivered_gbps =
      static_cast<double>(r.delivered) * 8000 * 8 / duration / 1e9;
  return r;
}

Result campus_run(bool with_checkers, double duration) {
  auto fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net(fabric.topo);
  auto routing = fwd::install_leaf_spine_routing(net, fabric);
  if (with_checkers) deploy_everything(net, fabric);
  if (g_obs) net.set_observability(true);

  // Figure 13 pipeline: the mirrored traffic passes a line-rate
  // prefix-preserving anonymizer at the broker switch (leaf1) before
  // being delivered towards the testbed.
  auto anonymizer =
      std::make_shared<fwd::AnonymizerProgram>(routing, /*salt=*/2023);
  net.set_program(fabric.leaves[0], anonymizer);
  const std::uint32_t dst = net.topo().node(fabric.hosts[1][0]).ip;
  const std::uint32_t anon_dst = fwd::anonymize_ipv4(dst, 2023);
  routing->add_route(fabric.leaves[0], anon_dst, 32,
                     {fabric.leaf_uplink_port(0), fabric.leaf_uplink_port(1)});
  for (std::size_t j = 0; j < fabric.spines.size(); ++j) {
    routing->add_route(fabric.spines[j], anon_dst, 32,
                       {fabric.spine_down_port(1)});
  }
  routing->add_route(fabric.leaves[1], anon_dst, 32,
                     {fabric.leaf_host_port(0)});

  net::CampusReplay replay(net, fabric.hosts[0][0], fabric.hosts[1][0],
                           350000.0);
  replay.start(0.0, duration);
  net.events().run();

  Result r;
  r.sent = replay.packets_sent();
  r.delivered = net.counters().delivered;
  r.pps = static_cast<double>(r.sent) / duration;
  r.offered_gbps =
      static_cast<double>(replay.bytes_sent()) * 8 / duration / 1e9;
  r.delivered_gbps = r.offered_gbps *
                     static_cast<double>(r.delivered) /
                     static_cast<double>(r.sent);
  return r;
}

void write_result(std::FILE* f, const char* name, const Result& r,
                  const char* trailer) {
  std::fprintf(f,
               "    \"%s\": {\"offered_gbps\": %.4f, \"delivered_gbps\": "
               "%.4f, \"sent\": %llu, \"delivered\": %llu, \"pps\": %.1f}%s\n",
               name, r.offered_gbps, r.delivered_gbps,
               static_cast<unsigned long long>(r.sent),
               static_cast<unsigned long long>(r.delivered), r.pps, trailer);
}

void write_json(const std::string& path, const Result& iperf_base,
                const Result& iperf_hydra, const Result& campus_base,
                const Result& campus_hydra, double delta_pct) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"throughput\",\n  \"iperf\": {\n");
  write_result(f, "baseline", iperf_base, ",");
  write_result(f, "all_checkers", iperf_hydra, ",");
  std::fprintf(f, "    \"delta_pct\": %.4f\n  },\n  \"campus\": {\n",
               delta_pct);
  write_result(f, "baseline", campus_base, ",");
  write_result(f, "all_checkers", campus_hydra, "");
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_throughput.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--obs") == 0) {
      g_obs = true;
    }
  }
  std::printf("Throughput comparison (paper §6.2: 'almost identical with "
              "around 20 Gb/s')%s\n\n",
              g_obs ? " [observability ON]" : "");

  const double dur = 0.05;
  const Result b = iperf_run(false, dur);
  const Result h = iperf_run(true, dur);
  std::printf("iperf3-style UDP load:\n");
  std::printf("  %-14s %10s %12s %12s\n", "config", "offered", "delivered",
              "loss");
  auto loss = [](const Result& r) {
    return 100.0 * (1.0 - static_cast<double>(r.delivered) /
                              static_cast<double>(r.sent));
  };
  std::printf("  %-14s %8.2f G %10.2f G %10.3f%%\n", "baseline",
              b.offered_gbps, b.delivered_gbps, loss(b));
  std::printf("  %-14s %8.2f G %10.2f G %10.3f%%\n", "all-checkers",
              h.offered_gbps, h.delivered_gbps, loss(h));
  const double delta =
      100.0 * (b.delivered_gbps - h.delivered_gbps) / b.delivered_gbps;
  std::printf("  delta: %.3f%% -> %s\n\n", delta,
              std::abs(delta) < 1.0 ? "throughput unchanged by Hydra "
                                      "(matches the paper)"
                                    : "NOTICEABLE drop (paper reports none)");

  const Result cb = campus_run(false, 0.05);
  const Result ch = campus_run(true, 0.05);
  std::printf("campus trace replay towards leaf1 (paper: ~350 Kpps):\n");
  std::printf("  %-14s %10s %12s %12s\n", "config", "pps", "offered",
              "delivered");
  std::printf("  %-14s %10.0f %10.2f G %10.2f G\n", "baseline", cb.pps,
              cb.offered_gbps, cb.delivered_gbps);
  std::printf("  %-14s %10.0f %10.2f G %10.2f G\n", "all-checkers", ch.pps,
              ch.offered_gbps, ch.delivered_gbps);

  write_json(json_path, b, h, cb, ch, delta);
  return 0;
}
