#include "net/traffic.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace hydra::net {

// ---------------------------------------------------------------------------
// PingProbe
// ---------------------------------------------------------------------------

PingProbe::PingProbe(Network& net, int src_host, int dst_host,
                     double interval_s, std::uint16_t ident)
    : net_(net),
      src_host_(src_host),
      dst_host_(dst_host),
      interval_s_(interval_s),
      ident_(ident),
      sent_times_(kSeqRing, -1.0),
      echoed_(kSeqRing, 1) {
  net_.host(src_host_).add_sink(
      [this](const p4rt::Packet& pkt, double now) {
        if (!pkt.icmp || pkt.icmp->type != 0 || pkt.icmp->ident != ident_) {
          return;
        }
        // Deduplicate by sequence number: the network may deliver the same
        // echo reply more than once (fault-injected duplication), and a
        // doubly-counted sample would both skew the RTT distribution and
        // drive lost() negative. The ring slot holds the most recent send
        // with this wire sequence; a slot with a negative send time was
        // never used.
        const std::size_t slot = pkt.icmp->seq % kSeqRing;
        if (sent_times_[slot] >= 0.0 && echoed_[slot] == 0) {
          echoed_[slot] = 1;
          samples_.push_back({sent_times_[slot], now - sent_times_[slot]});
        }
      });
}

void PingProbe::start(double t0, double duration_s) {
  deadline_ = t0 + duration_s;
  net_.events().schedule_tick_at(t0, this);
}

void PingProbe::tick(SimTime now) {
  if (now > deadline_) return;
  const std::size_t slot = static_cast<std::size_t>(next_seq_ % kSeqRing);
  const PacketHandle h = net_.alloc_packet();
  p4rt::make_icmp_echo_into(net_.packet(h), net_.host(src_host_).ip(),
                            net_.host(dst_host_).ip(), ident_,
                            static_cast<std::uint16_t>(slot));
  sent_times_[slot] = now;
  echoed_[slot] = 0;
  ++next_seq_;
  ++sent_;
  net_.send_pooled(src_host_, h);
  net_.events().schedule_tick_in(interval_s_, this);
}

std::vector<double> PingProbe::rtts() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.rtt);
  return out;
}

// ---------------------------------------------------------------------------
// UdpFlood
// ---------------------------------------------------------------------------

UdpFlood::UdpFlood(Network& net, int src_host, int dst_host,
                   double rate_gbps, int packet_bytes, std::uint16_t sport,
                   std::uint16_t dport)
    : net_(net),
      src_host_(src_host),
      dst_host_(dst_host),
      packet_bytes_(packet_bytes),
      sport_(sport),
      dport_(dport) {
  // Both guards close real foot-guns: packet_bytes < 42 underflowed the
  // payload computation in tick (42 bytes of L2-L4 overhead), and a
  // non-positive rate produced a zero or negative send interval.
  if (packet_bytes < 42) {
    throw std::invalid_argument(
        "UdpFlood: packet_bytes must be >= 42 (Ethernet+IP+UDP overhead), "
        "got " + std::to_string(packet_bytes));
  }
  if (rate_gbps <= 0.0) {
    throw std::invalid_argument("UdpFlood: rate_gbps must be positive");
  }
  const double pps = rate_gbps * 1e9 / (static_cast<double>(packet_bytes) * 8.0);
  interval_s_ = 1.0 / pps;
}

void UdpFlood::start(double t0, double duration_s) {
  deadline_ = t0 + duration_s;
  net_.events().schedule_tick_at(t0, this);
}

void UdpFlood::tick(SimTime now) {
  if (now > deadline_) return;
  // Header bytes are accounted separately by the wire model; subtract the
  // typical 42-byte Ethernet+IP+UDP overhead from the payload request.
  const PacketHandle h = net_.alloc_packet();
  p4rt::make_udp_into(net_.packet(h), net_.host(src_host_).ip(),
                      net_.host(dst_host_).ip(), sport_, dport_,
                      packet_bytes_ - 42);
  ++sent_;
  net_.send_pooled(src_host_, h);
  const double wait =
      poisson_ ? rng_.exponential(interval_s_) : interval_s_;
  net_.events().schedule_tick_in(wait, this);
}

// ---------------------------------------------------------------------------
// CampusReplay
// ---------------------------------------------------------------------------

CampusReplay::CampusReplay(Network& net, int src_host, int dst_host,
                           double pps, std::uint64_t seed)
    : net_(net),
      src_host_(src_host),
      dst_host_(dst_host),
      pps_(pps),
      rng_(seed) {
  // A fixed flow population; a Zipf-ish skew comes from quadratic index
  // sampling in synthesize_into().
  for (int i = 0; i < 512; ++i) {
    flows_.emplace_back(static_cast<std::uint16_t>(1024 + rng_.below(60000)),
                        static_cast<std::uint16_t>(rng_.chance(0.7)
                                                       ? 443
                                                       : 1024 + rng_.below(60000)));
  }
}

void CampusReplay::synthesize_into(p4rt::Packet& p) {
  // Skewed flow choice: squaring a uniform sample favours low indices.
  const double u = rng_.uniform();
  const auto idx = static_cast<std::size_t>(u * u *
                                            static_cast<double>(flows_.size()));
  const auto& [sport, dport] = flows_[std::min(idx, flows_.size() - 1)];
  // Bimodal sizes: 60% small (64-128B), 40% near-MTU (1000-1500B).
  const int size = rng_.chance(0.6)
                       ? static_cast<int>(rng_.range(64, 128))
                       : static_cast<int>(rng_.range(1000, 1500));
  const bool tcp = rng_.chance(0.85);
  const std::uint32_t src = net_.host(src_host_).ip();
  const std::uint32_t dst = net_.host(dst_host_).ip();
  if (tcp) {
    p4rt::make_tcp_into(p, src, dst, sport, dport, size);
  } else {
    p4rt::make_udp_into(p, src, dst, sport, dport, size);
  }
}

void CampusReplay::start(double t0, double duration_s) {
  deadline_ = t0 + duration_s;
  net_.events().schedule_tick_at(t0, this);
}

void CampusReplay::tick(SimTime now) {
  if (now > deadline_) return;
  const PacketHandle h = net_.alloc_packet();
  p4rt::Packet& p = net_.packet(h);
  synthesize_into(p);
  bytes_ += static_cast<std::uint64_t>(p.base_wire_bytes());
  ++sent_;
  net_.send_pooled(src_host_, h);
  net_.events().schedule_tick_in(rng_.exponential(1.0 / pps_), this);
}

}  // namespace hydra::net
