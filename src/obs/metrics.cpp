#include "obs/metrics.hpp"

#include <cstdio>
#include <stdexcept>

namespace hydra::obs {

namespace detail {

// Shortest-roundtrip float formatting; %.17g would round-trip too but
// litters exports with noise digits, so try increasing precision.
std::string format_double(double v) {
  char buf[64];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) break;
  }
  return buf;
}

}  // namespace detail

using detail::format_double;

void Histogram::observe(double v) const {
  if (data_ == nullptr) return;
  std::size_t b = 0;
  while (b < data_->bounds.size() && v > data_->bounds[b]) ++b;
  ++data_->buckets[b];
  ++data_->count;
  data_->sum += v;
}

const Registry::Meta& Registry::require(const std::string& name, Kind kind,
                                        const std::string* family,
                                        const std::vector<Label>* labels) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    if (it->second.kind != kind) {
      throw std::invalid_argument("metric '" + name +
                                  "' already registered with another kind");
    }
    return it->second;
  }
  Meta m;
  m.kind = kind;
  if (family != nullptr) m.family = *family;
  if (labels != nullptr) m.labels = *labels;
  switch (kind) {
    case Kind::kCounter:
      m.slot = counters_.size();
      counters_.emplace_back(0);  // atomics are not copyable; construct in place
      break;
    case Kind::kGauge:
      m.slot = gauges_.size();
      gauges_.push_back(0.0);
      break;
    case Kind::kHistogram:
      m.slot = histograms_.size();
      histograms_.emplace_back();
      break;
  }
  return by_name_.emplace(name, m).first->second;
}

Counter Registry::counter(const std::string& name) {
  return Counter(&counters_[require(name, Kind::kCounter).slot]);
}

Gauge Registry::gauge(const std::string& name) {
  return Gauge(&gauges_[require(name, Kind::kGauge).slot]);
}

Histogram Registry::histogram(const std::string& name,
                              std::vector<double> bounds) {
  return histogram(name, std::string(), {}, std::move(bounds));
}

Counter Registry::counter(const std::string& name, const std::string& family,
                          std::vector<Label> labels) {
  return Counter(
      &counters_[require(name, Kind::kCounter, &family, &labels).slot]);
}

Gauge Registry::gauge(const std::string& name, const std::string& family,
                      std::vector<Label> labels) {
  return Gauge(&gauges_[require(name, Kind::kGauge, &family, &labels).slot]);
}

Histogram Registry::histogram(const std::string& name,
                              const std::string& family,
                              std::vector<Label> labels,
                              std::vector<double> bounds) {
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    if (bounds[i] <= bounds[i - 1]) {
      throw std::invalid_argument("histogram '" + name +
                                  "': bounds must be ascending");
    }
  }
  const bool fresh = by_name_.find(name) == by_name_.end();
  HistogramData& h =
      histograms_[require(name, Kind::kHistogram, &family, &labels).slot];
  if (fresh) {
    h.bounds = std::move(bounds);
    h.buckets.assign(h.bounds.size() + 1, 0);
  }
  return Histogram(&h);
}

std::uint64_t Registry::counter_value(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end() || it->second.kind != Kind::kCounter) return 0;
  return counters_[it->second.slot].load(std::memory_order_relaxed);
}

double Registry::gauge_value(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end() || it->second.kind != Kind::kGauge) return 0.0;
  return gauges_[it->second.slot];
}

void Registry::absorb_counters(Registry& src) {
  for (const auto& [name, m] : src.by_name_) {
    // Fresh registrations inherit the source's Prometheus identity, so a
    // metric first seen in a shard registry exports identically to one
    // first registered in the main registry.
    switch (m.kind) {
      case Kind::kCounter: {
        auto& v = src.counters_[m.slot];
        // Register even when zero so exports list the same names regardless
        // of which shard's switches happened to see traffic. Callers merge
        // at barriers (writers quiesced), so the exchange cannot lose bumps.
        counters_[require(name, Kind::kCounter, &m.family, &m.labels).slot]
            .fetch_add(v.exchange(0, std::memory_order_relaxed),
                       std::memory_order_relaxed);
        break;
      }
      case Kind::kGauge: {
        // Max-wins: a shard gauge is a local high-water mark (e.g. items
        // per worker); summing levels across shards would be meaningless.
        double& v = src.gauges_[m.slot];
        double& dst =
            gauges_[require(name, Kind::kGauge, &m.family, &m.labels).slot];
        if (v > dst) dst = v;
        v = 0.0;
        break;
      }
      case Kind::kHistogram: {
        HistogramData& h = src.histograms_[m.slot];
        HistogramData& dst = histograms_[require(name, Kind::kHistogram,
                                                 &m.family, &m.labels)
                                             .slot];
        if (dst.bounds.empty() && !h.bounds.empty()) {
          dst.bounds = h.bounds;
          dst.buckets.assign(dst.bounds.size() + 1, 0);
        }
        if (dst.bounds != h.bounds) {
          throw std::invalid_argument(
              "absorb_counters: histogram '" + name +
              "' has mismatched bounds across registries");
        }
        for (std::size_t i = 0; i < h.buckets.size(); ++i) {
          dst.buckets[i] += h.buckets[i];
          h.buckets[i] = 0;
        }
        dst.count += h.count;
        dst.sum += h.sum;
        h.count = 0;
        h.sum = 0.0;
        break;
      }
    }
  }
}

std::string Registry::snapshot_text() const {
  std::string out;
  for (const auto& [name, m] : by_name_) {
    switch (m.kind) {
      case Kind::kCounter:
        out += "counter " + name + " " +
               std::to_string(
                   counters_[m.slot].load(std::memory_order_relaxed)) +
               "\n";
        break;
      case Kind::kGauge:
        break;  // recomputed after restart
      case Kind::kHistogram: {
        const HistogramData& h = histograms_[m.slot];
        out += "hist " + name + " " + std::to_string(h.count) + " " +
               format_double(h.sum) + " " + std::to_string(h.buckets.size());
        for (std::uint64_t b : h.buckets) out += " " + std::to_string(b);
        out += "\n";
        break;
      }
    }
  }
  return out;
}

void Registry::restore_counter(const std::string& name, std::uint64_t v) {
  counters_[require(name, Kind::kCounter).slot].fetch_add(
      v, std::memory_order_relaxed);
}

void Registry::restore_histogram(const std::string& name, std::uint64_t count,
                                 double sum,
                                 const std::vector<std::uint64_t>& buckets) {
  const auto it = by_name_.find(name);
  if (it == by_name_.end() || it->second.kind != Kind::kHistogram) return;
  HistogramData& h = histograms_[it->second.slot];
  if (h.buckets.size() != buckets.size()) {
    throw std::invalid_argument("restore_histogram: '" + name +
                                "' bucket layout changed since snapshot");
  }
  for (std::size_t i = 0; i < buckets.size(); ++i) h.buckets[i] += buckets[i];
  h.count += count;
  h.sum += sum;
}

void Registry::reset() {
  for (auto& c : counters_) c.store(0, std::memory_order_relaxed);
  for (auto& g : gauges_) g = 0.0;
  for (auto& h : histograms_) {
    h.buckets.assign(h.bounds.size() + 1, 0);
    h.count = 0;
    h.sum = 0.0;
  }
}

std::string Registry::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, m] : by_name_) {
    if (m.kind != Kind::kCounter) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": " +
           std::to_string(counters_[m.slot].load(std::memory_order_relaxed));
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, m] : by_name_) {
    if (m.kind != Kind::kGauge) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": " + format_double(gauges_[m.slot]);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, m] : by_name_) {
    if (m.kind != Kind::kHistogram) continue;
    const HistogramData& h = histograms_[m.slot];
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": {\"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ", ";
      out += format_double(h.bounds[i]);
    }
    out += "], \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(h.buckets[i]);
    }
    out += "], \"count\": " + std::to_string(h.count) +
           ", \"sum\": " + format_double(h.sum) + "}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

void Registry::visit(const std::function<void(const MetricView&)>& fn) const {
  for (const auto& [name, m] : by_name_) {
    MetricView v{name, m.family, m.labels, m.kind};
    switch (m.kind) {
      case Kind::kCounter:
        v.counter_value = counters_[m.slot].load(std::memory_order_relaxed);
        break;
      case Kind::kGauge:
        v.gauge_value = gauges_[m.slot];
        break;
      case Kind::kHistogram:
        v.hist = &histograms_[m.slot];
        break;
    }
    fn(v);
  }
}

std::string Registry::to_csv() const {
  std::string out = "kind,name,field,value\n";
  for (const auto& [name, m] : by_name_) {
    switch (m.kind) {
      case Kind::kCounter:
        out += "counter," + name + ",value," +
               std::to_string(
                   counters_[m.slot].load(std::memory_order_relaxed)) +
               "\n";
        break;
      case Kind::kGauge:
        out += "gauge," + name + ",value," + format_double(gauges_[m.slot]) +
               "\n";
        break;
      case Kind::kHistogram: {
        const HistogramData& h = histograms_[m.slot];
        out += "histogram," + name + ",count," + std::to_string(h.count) +
               "\n";
        out += "histogram," + name + ",sum," + format_double(h.sum) + "\n";
        for (std::size_t i = 0; i < h.buckets.size(); ++i) {
          const std::string label =
              i < h.bounds.size() ? "le_" + format_double(h.bounds[i])
                                  : "le_inf";
          out += "histogram," + name + "," + label + "," +
                 std::to_string(h.buckets[i]) + "\n";
        }
        break;
      }
    }
  }
  return out;
}

}  // namespace hydra::obs
