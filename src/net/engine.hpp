// Pluggable execution engines — how the event queue is drained.
//
// SerialEngine executes every event inline in (time, seq) order: the exact
// pre-engine behaviour, and the default.
//
// ParallelEngine is a conservatively-synchronized parallel discrete-event
// executor built on one structural invariant of the simulator: switch work
// (per-hop pipeline execution, the hot path) is always scheduled at least
// Network::lookahead() — the switch traversal latency — after the event
// that creates it. The drain loop therefore processes the queue in EPOCHS:
//
//   1. WINDOW   pop every pending event in [t0, t0 + lookahead), where t0
//               is the earliest pending timestamp. No event executed inside
//               this window can spawn switch work that lands in it.
//   2. COMPUTE  the window's switch-work items are sharded by switch id
//               (shard = sw % workers) and executed concurrently, one
//               worker per shard, each against its own ExecContext.
//               Per-switch items keep their (t, seq) order inside a shard,
//               and Network::compute_hop touches only switch-confined
//               state, so compute results are independent of the
//               interleaving. All effects land in per-item HopResults.
//   3. COMMIT   the main thread walks the window in (t, seq) order,
//               merging in any events the commits themselves spawn inside
//               the window (always generic closures, by the invariant
//               above), advancing the clock and applying HopResults /
//               running closures exactly as the serial engine would.
//
// Reports, metrics snapshots, traces, and final register/table state are
// therefore bit-identical to the serial engine for any worker count.
//
// Degradation rule: while report callbacks are subscribed (closed control
// loops that may mutate switch state mid-epoch), epochs are executed
// serially item by item — correctness over speed.
#pragma once

#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/event.hpp"
#include "net/network.hpp"

namespace hydra::net {

class ExecutionEngine : public EventExecutor {
 public:
  explicit ExecutionEngine(Network& net) : net_(&net) {}
  virtual const char* name() const = 0;
  virtual int workers() const = 0;

 protected:
  // Runs every event the queue holds strictly before key (`t`, `seq`) —
  // events spawned by commits into the current window — serially, exactly
  // as the serial engine would.
  void drain_spawned_before(EventQueue& q, SimTime t);

  Network* net_;
};

class SerialEngine final : public ExecutionEngine {
 public:
  explicit SerialEngine(Network& net) : ExecutionEngine(net) {}
  const char* name() const override { return "serial"; }
  int workers() const override { return 1; }
  void drain(EventQueue& q, SimTime limit) override;
};

class ParallelEngine final : public ExecutionEngine {
 public:
  ParallelEngine(Network& net, int workers);
  ~ParallelEngine() override;
  const char* name() const override { return "parallel"; }
  int workers() const override { return workers_; }
  void drain(EventQueue& q, SimTime limit) override;

  // Fewest switch-work items in a window worth waking the pool for;
  // smaller windows are computed inline (identical results either way).
  static constexpr std::size_t kDispatchThreshold = 2;

 private:
  void worker_main(int shard);
  // Computes every switch-work item of `shard` in the published window.
  void compute_shard(int shard);
  void run_window(EventQueue& q);

  const int workers_;
  std::vector<EventQueue::Item> window_;
  std::vector<HopResult> results_;  // parallel to window_
  std::vector<std::exception_ptr> errors_;  // per shard
  // Phase profiler, refreshed at drain entry while the pool is idle (the
  // epoch handshake's mutex publishes it to workers). Null unless armed.
  obs::EngineProfiler* prof_ = nullptr;

  // Epoch handshake: the main thread publishes window_/results_ under m_,
  // bumps epoch_ and waits for remaining_ to hit zero; workers wake on
  // cv_work_, compute their shard, and signal cv_done_.
  std::mutex m_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t epoch_ = 0;
  int remaining_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;  // shards 1..workers-1
};

// `spec` is "serial" or "parallel[:N]" — e.g. "parallel:4"; throws
// std::invalid_argument otherwise. Used by tools and benches.
EngineKind parse_engine_kind(const std::string& spec, int* workers_out);

const char* engine_kind_name(EngineKind kind);

}  // namespace hydra::net
