// Ablation: telemetry list capacity (DESIGN.md §5.2). Indus arrays fix
// their capacity at compile time; the capacity is the loop-unroll factor
// AND the wire/PHV footprint. This sweep quantifies the trade-off for a
// loop-detection checker with a `visited[N]` list.
//
//   $ ./ablation_list_capacity
#include <cstdio>
#include <string>

#include "compiler/compile.hpp"

namespace {

std::string loops_checker(int capacity) {
  return R"(
header bit<32> switch_id;
tele bit<32>[)" + std::to_string(capacity) + R"(] visited;
tele bool looped = false;

{ }
{
  if (switch_id in visited) {
    looped = true;
  }
  visited.push(switch_id);
}
{
  if (looped) {
    reject;
  }
}
)";
}

}  // namespace

int main() {
  using namespace hydra;
  std::printf("Ablation: telemetry list capacity (loops checker, "
              "visited[N])\n\n");
  std::printf("%10s %10s %12s %10s %10s %12s\n", "capacity", "stages",
              "PHV bits", "PHV %", "wire (B)", "P4 LoC");
  for (int n : {2, 4, 8, 16, 32, 64}) {
    const auto c =
        compiler::compile_checker(loops_checker(n), "loops_" +
                                                        std::to_string(n));
    std::printf("%10d %10d %12d %9.2f%% %10d %12d\n", n,
                c.resources.checker_stages, c.resources.phv_bits,
                c.resources.phv_percent, c.layout.wire_bytes, c.p4_loc);
  }
  std::printf("\ncapacity is a hard budget: paths longer than N hops "
              "saturate the stack and\nstop recording, so the operator "
              "sizes N to the fabric diameter (4 suffices\nfor the "
              "paper's leaf-spine; a k=8 fat tree needs 6).\n");
  return 0;
}
