#include "p4rt/tele_codec.hpp"

#include <stdexcept>

namespace hydra::p4rt {

namespace {

// Writes `width` bits of `value` at bit offset `off` (MSB-first within the
// payload, network order), after the preamble.
void put_bits(std::vector<std::uint8_t>& buf, int off, int width,
              std::uint64_t value) {
  for (int i = 0; i < width; ++i) {
    const int bit = off + i;
    const std::size_t byte =
        static_cast<std::size_t>(compiler::TelemetryLayout::kPreambleBytes) +
        static_cast<std::size_t>(bit / 8);
    const int shift = 7 - bit % 8;
    const std::uint64_t v = (value >> (width - 1 - i)) & 1;
    if (v != 0) {
      buf[byte] = static_cast<std::uint8_t>(buf[byte] | (1u << shift));
    }
  }
}

std::uint64_t get_bits(const std::vector<std::uint8_t>& buf, int off,
                       int width) {
  std::uint64_t value = 0;
  for (int i = 0; i < width; ++i) {
    const int bit = off + i;
    const std::size_t byte =
        static_cast<std::size_t>(compiler::TelemetryLayout::kPreambleBytes) +
        static_cast<std::size_t>(bit / 8);
    const int shift = 7 - bit % 8;
    value = (value << 1) | ((buf[byte] >> shift) & 1u);
  }
  return value;
}

}  // namespace

std::vector<std::uint8_t> serialize_frame(
    const compiler::TelemetryLayout& layout, const ir::CheckerIR& ir,
    const TeleFrame& frame) {
  if (frame.values.size() != ir.fields.size()) {
    throw std::invalid_argument("frame does not match checker IR");
  }
  std::vector<std::uint8_t> buf(
      static_cast<std::size_t>(layout.wire_bytes), 0);
  buf[0] = static_cast<std::uint8_t>(
      compiler::TelemetryLayout::kHydraEtherType >> 8);
  buf[1] = static_cast<std::uint8_t>(
      compiler::TelemetryLayout::kHydraEtherType & 0xff);
  for (const auto& e : layout.entries) {
    const BitVec& v = frame.values[static_cast<std::size_t>(e.field.id)];
    put_bits(buf, e.offset_bits, e.width, v.value());
  }
  return buf;
}

const char* frame_error_reason(FrameError err) {
  switch (err) {
    case FrameError::kOk: return "ok";
    case FrameError::kSizeMismatch: return "tele_size_mismatch";
    case FrameError::kBadTag: return "tele_bad_tag";
  }
  return "tele_unknown_error";
}

FrameError parse_frame_checked(const compiler::TelemetryLayout& layout,
                               const ir::CheckerIR& ir, int checker_id,
                               const std::vector<std::uint8_t>& bytes,
                               TeleFrame& out) {
  if (bytes.size() != static_cast<std::size_t>(layout.wire_bytes)) {
    return FrameError::kSizeMismatch;
  }
  // The preamble needs two bytes; wire_bytes >= kPreambleBytes by
  // construction, but a hand-built layout could lie — stay defensive.
  if (bytes.size() < compiler::TelemetryLayout::kPreambleBytes) {
    return FrameError::kSizeMismatch;
  }
  const int tag = (bytes[0] << 8) | bytes[1];
  if (tag != compiler::TelemetryLayout::kHydraEtherType) {
    return FrameError::kBadTag;
  }
  out.checker = checker_id;
  out.values.clear();
  out.values.reserve(ir.fields.size());
  for (const auto& f : ir.fields) {
    out.values.emplace_back(f.width, 0);
  }
  for (const auto& e : layout.entries) {
    out.values[static_cast<std::size_t>(e.field.id)] =
        BitVec(e.width, get_bits(bytes, e.offset_bits, e.width));
  }
  return FrameError::kOk;
}

TeleFrame parse_frame(const compiler::TelemetryLayout& layout,
                      const ir::CheckerIR& ir, int checker_id,
                      const std::vector<std::uint8_t>& bytes) {
  TeleFrame frame;
  const FrameError err =
      parse_frame_checked(layout, ir, checker_id, bytes, frame);
  if (err == FrameError::kSizeMismatch) {
    throw std::invalid_argument("telemetry frame size mismatch: got " +
                                std::to_string(bytes.size()) + ", want " +
                                std::to_string(layout.wire_bytes));
  }
  if (err != FrameError::kOk) {
    throw std::invalid_argument("bad Hydra telemetry tag");
  }
  return frame;
}

}  // namespace hydra::p4rt
