// Slab-backed typed object pools with stable 32-bit handles.
//
// The event loop at million-session scale cannot afford a malloc per
// packet, per scheduled event, or per control op: the steady-state hot
// path must run allocation-free (the same discipline obs::forensics
// applies to its flight-recorder rings). Arena<T> provides that storage
// model:
//
//   - Objects live in fixed-size slabs (arrays) that are never moved or
//     freed before the arena dies, so T* obtained from a handle stays
//     valid across any number of alloc()/free() calls — only the 32-bit
//     handle is passed around, and it survives slab growth.
//   - alloc() pops a LIFO freelist (O(1), deterministic reuse order);
//     free() pushes back. Slots are default-constructed ONCE, when their
//     slab is created, and are REUSED thereafter — an object's internal
//     buffers (vector capacity, string storage) survive recycling, which
//     is what makes the steady state allocation-free. Callers re-init
//     recycled objects themselves (e.g. Packet::reuse()).
//   - reset() returns every slot to the freelist without releasing slabs:
//     an epoch boundary, not a destructor.
//   - Every slab allocation bumps a process-wide audit counter
//     (util::arena_allocations()); benches snapshot it after warmup and
//     assert the delta stays zero to PROVE the hot path never grows.
//
// Thread-safety: none. Arenas are owned and mutated by the simulation
// main thread only. Parallel-engine workers may READ objects through
// stable pointers during the compute phase because the phase structure
// guarantees the main thread is not calling alloc()/free() concurrently
// (see DESIGN.md "Arena storage").
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace hydra::util {

// Process-wide count of arena slab allocations (each is one new[] of
// slab_capacity objects). Monotonic; never reset. The "allocation-free
// steady state" claim is `arena_allocations()` not changing over a
// measurement window.
std::uint64_t arena_allocations();

namespace detail {
void note_arena_allocation(std::uint64_t n = 1);
}  // namespace detail

template <typename T>
class Arena {
 public:
  using Handle = std::uint32_t;
  static constexpr Handle kNull = 0xffffffffu;

  // `slab_capacity` objects per slab; sized so the expected working set
  // fits in a handful of slabs without making each one enormous.
  explicit Arena(std::uint32_t slab_capacity = 1024)
      : slab_capacity_(slab_capacity < 1 ? 1 : slab_capacity) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // O(1) amortized; grows a slab only when the freelist is empty.
  Handle alloc() {
    if (free_.empty()) grow();
    const Handle h = free_.back();
    free_.pop_back();
    ++live_;
    return h;
  }

  // O(1). The object is NOT destroyed — its buffers stay warm for the
  // next alloc(). Handle must be live; double-free is caller UB (the
  // tests cover the contract via the live() accounting).
  void free(Handle h) {
    free_.push_back(h);
    --live_;
  }

  T& get(Handle h) {
    return slabs_[h / slab_capacity_][h % slab_capacity_];
  }
  const T& get(Handle h) const {
    return slabs_[h / slab_capacity_][h % slab_capacity_];
  }

  // Epoch boundary: every slot back to the freelist, slabs retained.
  // Freelist order is rebuilt descending so the next alloc() sequence is
  // deterministic and slab-0-first, independent of pre-reset history.
  void reset() {
    const std::size_t cap = capacity();
    free_.clear();
    free_.reserve(cap);
    for (std::size_t i = cap; i > 0; --i) {
      free_.push_back(static_cast<Handle>(i - 1));
    }
    live_ = 0;
  }

  std::size_t live() const { return live_; }
  std::size_t capacity() const { return slabs_.size() * slab_capacity_; }
  std::uint32_t slab_capacity() const { return slab_capacity_; }

 private:
  void grow() {
    const std::size_t base = capacity();
    slabs_.push_back(std::make_unique<T[]>(slab_capacity_));
    free_.reserve(base + slab_capacity_);
    // Descending, so alloc() hands out the slab's low indices first.
    for (std::size_t i = base + slab_capacity_; i > base; --i) {
      free_.push_back(static_cast<Handle>(i - 1));
    }
    detail::note_arena_allocation();
  }

  std::uint32_t slab_capacity_;
  std::vector<std::unique_ptr<T[]>> slabs_;
  std::vector<Handle> free_;
  std::size_t live_ = 0;
};

}  // namespace hydra::util
