#include "net/network.hpp"

#include <stdexcept>

#include "p4rt/tele_codec.hpp"

namespace hydra::net {

Network::Network(Topology topo) : topo_(std::move(topo)) {
  for (const auto& l : topo_.links()) links_.emplace_back(l);
  hosts_.resize(static_cast<std::size_t>(topo_.node_count()));
  programs_.resize(static_cast<std::size_t>(topo_.node_count()));
  for (int i = 0; i < topo_.node_count(); ++i) {
    const NodeSpec& n = topo_.node(i);
    if (n.kind == NodeKind::kHost) {
      hosts_[static_cast<std::size_t>(i)] = Host(i, n.name, n.ip, n.mac);
    }
  }
}

Host& Network::host(int node_id) {
  if (topo_.node(node_id).kind != NodeKind::kHost) {
    throw std::invalid_argument("node " + std::to_string(node_id) +
                                " is not a host");
  }
  return hosts_[static_cast<std::size_t>(node_id)];
}

void Network::set_program(int switch_id,
                          std::shared_ptr<ForwardingProgram> prog) {
  if (topo_.node(switch_id).kind != NodeKind::kSwitch) {
    throw std::invalid_argument("node " + std::to_string(switch_id) +
                                " is not a switch");
  }
  programs_[static_cast<std::size_t>(switch_id)] = std::move(prog);
}

ForwardingProgram* Network::program(int switch_id) {
  return programs_[static_cast<std::size_t>(switch_id)].get();
}

int Network::deploy(
    std::shared_ptr<const compiler::CompiledChecker> checker) {
  if (!checker) throw std::invalid_argument("deploy: null checker");
  Deployment d;
  d.checker = checker;
  d.interp = std::make_unique<p4rt::Interp>(checker->ir);
  d.tele_wire_bytes = checker->layout.wire_bytes;
  d.per_switch.resize(static_cast<std::size_t>(topo_.node_count()));
  for (int i = 0; i < topo_.node_count(); ++i) {
    if (topo_.node(i).kind == NodeKind::kSwitch) {
      d.per_switch[static_cast<std::size_t>(i)] =
          p4rt::make_checker_state(checker->ir);
    }
  }
  deployments_.push_back(std::move(d));
  return static_cast<int>(deployments_.size()) - 1;
}

const compiler::CompiledChecker& Network::checker(int deployment) const {
  return *deployments_.at(static_cast<std::size_t>(deployment)).checker;
}

p4rt::Table& Network::checker_table(int deployment, int switch_id,
                                    const std::string& var) {
  Deployment& d = deployments_.at(static_cast<std::size_t>(deployment));
  const int t = d.checker->ir.find_table(var);
  if (t < 0) {
    throw std::invalid_argument("checker '" + d.checker->name +
                                "' has no control table '" + var + "'");
  }
  return d.per_switch.at(static_cast<std::size_t>(switch_id))
      .tables[static_cast<std::size_t>(t)];
}

void Network::set_config(int deployment, int switch_id,
                         const std::string& var,
                         std::vector<BitVec> values) {
  checker_table(deployment, switch_id, var).set_default(std::move(values));
}

void Network::set_config_all(int deployment, const std::string& var,
                             std::vector<BitVec> values) {
  for (int i = 0; i < topo_.node_count(); ++i) {
    if (topo_.node(i).kind == NodeKind::kSwitch) {
      set_config(deployment, i, var, values);
    }
  }
}

void Network::dict_insert_all(int deployment, const std::string& var,
                              const std::vector<BitVec>& key,
                              std::vector<BitVec> value) {
  for (int i = 0; i < topo_.node_count(); ++i) {
    if (topo_.node(i).kind == NodeKind::kSwitch) {
      checker_table(deployment, i, var).insert_exact(key, value);
    }
  }
}

p4rt::RegisterArray& Network::checker_register(int deployment, int switch_id,
                                               const std::string& var) {
  Deployment& d = deployments_.at(static_cast<std::size_t>(deployment));
  const int r = d.checker->ir.find_register(var);
  if (r < 0) {
    throw std::invalid_argument("checker '" + d.checker->name +
                                "' has no sensor '" + var + "'");
  }
  return d.per_switch.at(static_cast<std::size_t>(switch_id))
      .registers[static_cast<std::size_t>(r)];
}

void Network::subscribe_reports(ReportCallback callback) {
  report_callbacks_.push_back(std::move(callback));
}

void Network::emit_report(ReportRecord record) {
  reports_.push_back(std::move(record));
  const ReportRecord& stored = reports_.back();
  for (const auto& cb : report_callbacks_) cb(stored);
}

int Network::pipeline_stages() const {
  int stages = baseline_.stages;
  for (const auto& d : deployments_) {
    stages = std::max(stages, d.checker->resources.checker_stages);
  }
  return stages;
}

double Network::switch_latency() const {
  return base_proc_s_ + per_stage_s_ * pipeline_stages();
}

int Network::packet_wire_bytes(const p4rt::Packet& pkt) const {
  int bytes = pkt.base_wire_bytes();
  for (const auto& f : pkt.tele) {
    if (f.checker >= 0 &&
        f.checker < static_cast<int>(deployments_.size())) {
      bytes += deployments_[static_cast<std::size_t>(f.checker)]
                   .tele_wire_bytes;
    }
  }
  return bytes;
}

void Network::send_from_host(int host_id, p4rt::Packet pkt) {
  Host& h = host(host_id);
  pkt.id = next_packet_id_++;
  pkt.created_at = events_.now();
  if (pkt.eth.src == 0) pkt.eth.src = h.mac();
  ++counters_.injected;
  transmit({host_id, 0}, std::move(pkt));
}

void Network::transmit(PortRef from, p4rt::Packet pkt) {
  const int li = topo_.link_index(from);
  if (li < 0) return;  // unconnected port: packet vanishes
  const LinkSpec& spec = topo_.links()[static_cast<std::size_t>(li)];
  const int dir = spec.a == from ? 0 : 1;
  const PortRef dest = dir == 0 ? spec.b : spec.a;
  Link& link = links_[static_cast<std::size_t>(li)];
  const auto arrival =
      link.transmit(dir, events_.now(), packet_wire_bytes(pkt));
  if (!arrival) {
    ++counters_.queue_dropped;
    return;
  }
  events_.schedule_at(*arrival,
                      [this, dest, p = std::move(pkt)]() mutable {
                        node_receive(dest.node, dest.port, std::move(p));
                      });
}

void Network::node_receive(int node, int port, p4rt::Packet pkt) {
  const NodeSpec& spec = topo_.node(node);
  if (spec.kind == NodeKind::kHost) {
    ++counters_.delivered;
    Host& h = hosts_[static_cast<std::size_t>(node)];
    auto reply = h.deliver(pkt, events_.now());
    if (reply) send_from_host(node, std::move(*reply));
    return;
  }
  // Switch: model pipeline traversal latency, then process.
  events_.schedule_in(switch_latency(),
                      [this, node, port, p = std::move(pkt)]() mutable {
                        switch_process(node, port, std::move(p));
                      });
}

void Network::switch_process(int sw, int in_port, p4rt::Packet pkt) {
  HopContext ctx;
  ctx.switch_id = sw;
  ctx.switch_tag = switch_tag(sw);
  ctx.in_port = in_port;
  ctx.first_hop = topo_.host_facing({sw, in_port});
  ctx.wire_bytes = packet_wire_bytes(pkt);

  auto resolver = [&pkt, &ctx](const std::string& ann, int width) {
    return resolve_header(pkt, ctx, ann, width);
  };

  // 1. Hydra init at the first hop: create and fill telemetry frames.
  if (ctx.first_hop) {
    for (std::size_t di = 0; di < deployments_.size(); ++di) {
      Deployment& d = deployments_[di];
      d.interp->reset_store(d.scratch_vals);
      std::vector<BitVec>& vals = d.scratch_vals;
      p4rt::ExecOutcome& out = d.scratch_out;
      out.reject = false;
      out.reports.clear();
      d.interp->run(d.checker->ir.init_block, vals,
                    d.per_switch[static_cast<std::size_t>(sw)], resolver,
                    out);
      p4rt::TeleFrame frame;
      frame.checker = static_cast<int>(di);
      d.interp->store_frame(vals, frame);
      pkt.tele.push_back(std::move(frame));
      for (auto& r : out.reports) {
        emit_report({static_cast<int>(di), d.checker->name, sw,
                     events_.now(), std::move(r)});
      }
    }
  }

  // 2. Forwarding.
  ForwardingProgram* prog = programs_[static_cast<std::size_t>(sw)].get();
  ForwardingProgram::Decision decision;
  if (prog != nullptr) {
    decision = prog->process(pkt, in_port, sw);
  } else {
    decision.drop = true;
  }
  ctx.eg_port = decision.eg_port;
  ctx.fwd_drop = decision.drop;
  // A forwarding drop ends the packet's journey: this is its last hop, so
  // the checker still gets to observe (and report) the drop decision.
  ctx.last_hop =
      decision.drop ||
      (decision.eg_port >= 0 && topo_.host_facing({sw, decision.eg_port}));
  ctx.wire_bytes = packet_wire_bytes(pkt);

  // 3./4. Telemetry at every hop; checker at the last hop (or every hop,
  // for checkers compiled with per-hop placement).
  bool rejected = false;
  for (std::size_t di = 0; di < deployments_.size(); ++di) {
    Deployment& d = deployments_[di];
    p4rt::TeleFrame* frame = pkt.frame(static_cast<int>(di));
    if (frame == nullptr) continue;  // entered before deployment; skip
    d.interp->reset_store(d.scratch_vals);
    std::vector<BitVec>& vals = d.scratch_vals;
    d.interp->load_frame(*frame, vals);
    p4rt::ExecOutcome& out = d.scratch_out;
    out.reject = false;
    out.reports.clear();
    auto& state = d.per_switch[static_cast<std::size_t>(sw)];
    d.interp->run(d.checker->ir.tele_block, vals, state, resolver, out);
    const bool run_check =
        ctx.last_hop ||
        d.checker->options.placement == compiler::CheckPlacement::kEveryHop;
    if (run_check) {
      d.interp->run(d.checker->ir.check_block, vals, state, resolver, out);
    }
    d.interp->store_frame(vals, *frame);
    if (wire_validation_) {
      const auto bytes = p4rt::serialize_frame(d.checker->layout,
                                               d.checker->ir, *frame);
      const auto back = p4rt::parse_frame(d.checker->layout, d.checker->ir,
                                          frame->checker, bytes);
      for (std::size_t i = 0; i < frame->values.size(); ++i) {
        if (d.checker->ir.fields[i].space == ir::Space::kTele &&
            !(back.values[i] == frame->values[i])) {
          throw std::logic_error(
              "telemetry wire round-trip mismatch in checker '" +
              d.checker->name + "' field '" + d.checker->ir.fields[i].name +
              "'");
        }
      }
    }
    for (auto& r : out.reports) {
      emit_report({static_cast<int>(di), d.checker->name, sw, events_.now(),
                   std::move(r)});
    }
    rejected = rejected || out.reject;
  }

  // Strip telemetry before the packet exits the network.
  if (ctx.last_hop) pkt.tele.clear();

  if (decision.drop) {
    ++counters_.fwd_dropped;
    return;
  }
  if (rejected) {
    ++counters_.rejected;
    return;
  }
  transmit({sw, decision.eg_port}, std::move(pkt));
}

}  // namespace hydra::net
