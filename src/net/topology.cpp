#include "net/topology.hpp"

#include <stdexcept>

namespace hydra::net {

int Topology::node_checked(int id) const {
  if (id < 0 || id >= node_count()) {
    throw std::out_of_range("node id " + std::to_string(id));
  }
  return id;
}

int Topology::add_switch(const std::string& name) {
  NodeSpec n;
  n.kind = NodeKind::kSwitch;
  n.name = name;
  nodes_.push_back(std::move(n));
  return node_count() - 1;
}

int Topology::add_host(const std::string& name, std::uint32_t ip) {
  NodeSpec n;
  n.kind = NodeKind::kHost;
  n.name = name;
  n.ip = ip;
  n.mac = 0x020000000000ULL + static_cast<std::uint64_t>(nodes_.size());
  nodes_.push_back(std::move(n));
  return node_count() - 1;
}

int Topology::add_link(PortRef a, PortRef b, double latency_s, double gbps,
                       double buffer_bytes) {
  node_checked(a.node);
  node_checked(b.node);
  if (link_index(a) != -1 || link_index(b) != -1) {
    throw std::invalid_argument("port already connected");
  }
  if (buffer_bytes <= 0.0) {
    throw std::invalid_argument("link buffer_bytes must be positive");
  }
  links_.push_back({a, b, latency_s, gbps, buffer_bytes});
  return static_cast<int>(links_.size()) - 1;
}

std::optional<PortRef> Topology::peer(PortRef p) const {
  for (const auto& l : links_) {
    if (l.a == p) return l.b;
    if (l.b == p) return l.a;
  }
  return std::nullopt;
}

int Topology::link_index(PortRef p) const {
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (links_[i].a == p || links_[i].b == p) return static_cast<int>(i);
  }
  return -1;
}

bool Topology::host_facing(PortRef p) const {
  const auto other = peer(p);
  return other && node(other->node).kind == NodeKind::kHost;
}

int Topology::find_node(const std::string& name) const {
  for (int i = 0; i < node_count(); ++i) {
    if (nodes_[static_cast<std::size_t>(i)].name == name) return i;
  }
  return -1;
}

int Topology::max_port(int node) const {
  int mx = -1;
  for (const auto& l : links_) {
    if (l.a.node == node) mx = std::max(mx, l.a.port);
    if (l.b.node == node) mx = std::max(mx, l.b.port);
  }
  return mx;
}

int FatTree::tier(int node) const {
  for (const auto& pod : edges) {
    for (int e : pod) {
      if (e == node) return 0;
    }
  }
  for (const auto& pod : aggs) {
    for (int a : pod) {
      if (a == node) return 1;
    }
  }
  for (int c : cores) {
    if (c == node) return 2;
  }
  return -1;
}

FatTree make_fat_tree(int k, double host_link_gbps, double fabric_link_gbps,
                      double latency_s) {
  if (k < 2 || k % 2 != 0) {
    throw std::invalid_argument("fat tree requires an even k >= 2");
  }
  FatTree ft;
  ft.k = k;
  const int half = k / 2;

  for (int c = 0; c < half * half; ++c) {
    ft.cores.push_back(ft.topo.add_switch("core" + std::to_string(c + 1)));
  }
  ft.aggs.resize(static_cast<std::size_t>(k));
  ft.edges.resize(static_cast<std::size_t>(k));
  ft.hosts.resize(static_cast<std::size_t>(k));
  for (int p = 0; p < k; ++p) {
    for (int a = 0; a < half; ++a) {
      ft.aggs[static_cast<std::size_t>(p)].push_back(ft.topo.add_switch(
          "agg" + std::to_string(p + 1) + "_" + std::to_string(a + 1)));
    }
    ft.hosts[static_cast<std::size_t>(p)].resize(
        static_cast<std::size_t>(half));
    for (int e = 0; e < half; ++e) {
      const int edge = ft.topo.add_switch(
          "edge" + std::to_string(p + 1) + "_" + std::to_string(e + 1));
      ft.edges[static_cast<std::size_t>(p)].push_back(edge);
      for (int h = 0; h < half; ++h) {
        const std::uint32_t ip =
            ft.edge_prefix(p, e) | static_cast<std::uint32_t>(h + 2);
        const int host = ft.topo.add_host(
            "h" + std::to_string(p + 1) + "_" + std::to_string(e + 1) + "_" +
                std::to_string(h + 1),
            ip);
        ft.hosts[static_cast<std::size_t>(p)][static_cast<std::size_t>(e)]
            .push_back(host);
        ft.topo.add_link({host, 0}, {edge, ft.edge_host_port(h)}, latency_s,
                         host_link_gbps);
      }
      // Edge up-links to every agg in the pod.
      for (int a = 0; a < half; ++a) {
        ft.topo.add_link(
            {edge, ft.edge_up_port(a)},
            {ft.aggs[static_cast<std::size_t>(p)][static_cast<std::size_t>(a)],
             ft.agg_down_port(e)},
            latency_s, fabric_link_gbps);
      }
    }
    // Agg up-links to its core group.
    for (int a = 0; a < half; ++a) {
      for (int j = 0; j < half; ++j) {
        const int core = ft.cores[static_cast<std::size_t>(a * half + j)];
        ft.topo.add_link(
            {ft.aggs[static_cast<std::size_t>(p)][static_cast<std::size_t>(a)],
             ft.agg_up_port(j)},
            {core, ft.core_pod_port(p)}, latency_s, fabric_link_gbps);
      }
    }
  }
  return ft;
}

LeafSpine make_leaf_spine(int num_leaves, int num_spines, int hosts_per_leaf,
                          double host_link_gbps, double fabric_link_gbps,
                          double latency_s) {
  if (num_leaves < 1 || num_spines < 1 || hosts_per_leaf < 1) {
    throw std::invalid_argument("leaf_spine: all dimensions must be >= 1");
  }
  LeafSpine ls;
  ls.hosts_per_leaf = hosts_per_leaf;
  for (int i = 0; i < num_leaves; ++i) {
    ls.leaves.push_back(ls.topo.add_switch("leaf" + std::to_string(i + 1)));
  }
  for (int j = 0; j < num_spines; ++j) {
    ls.spines.push_back(ls.topo.add_switch("spine" + std::to_string(j + 1)));
  }
  ls.hosts.resize(static_cast<std::size_t>(num_leaves));
  int host_counter = 0;
  for (int i = 0; i < num_leaves; ++i) {
    for (int h = 0; h < hosts_per_leaf; ++h) {
      ++host_counter;
      const std::uint32_t ip =
          (10u << 24) | (0u << 16) |
          (static_cast<std::uint32_t>(i + 1) << 8) |
          static_cast<std::uint32_t>(host_counter);
      const int host =
          ls.topo.add_host("h" + std::to_string(host_counter), ip);
      ls.hosts[static_cast<std::size_t>(i)].push_back(host);
      ls.topo.add_link({host, 0}, {ls.leaves[static_cast<std::size_t>(i)],
                                   ls.leaf_host_port(h)},
                       latency_s, host_link_gbps);
    }
  }
  for (int i = 0; i < num_leaves; ++i) {
    for (int j = 0; j < num_spines; ++j) {
      ls.topo.add_link({ls.leaves[static_cast<std::size_t>(i)],
                        ls.leaf_uplink_port(j)},
                       {ls.spines[static_cast<std::size_t>(j)],
                        ls.spine_down_port(i)},
                       latency_s, fabric_link_gbps);
    }
  }
  return ls;
}

}  // namespace hydra::net
