#include "indus/parser.hpp"

#include "indus/lexer.hpp"

namespace hydra::indus {

Parser::Parser(std::vector<Token> tokens, Diagnostics& diags)
    : tokens_(std::move(tokens)), diags_(diags) {
  if (tokens_.empty()) tokens_.push_back(Token{});  // guarantee an EOF token
}

const Token& Parser::peek(int ahead) const {
  const std::size_t i = idx_ + static_cast<std::size_t>(ahead);
  return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

Token Parser::take() {
  Token t = cur();
  if (idx_ + 1 < tokens_.size()) ++idx_;
  return t;
}

bool Parser::accept(Tok kind) {
  if (!at(kind)) return false;
  take();
  return true;
}

Token Parser::expect(Tok kind, const char* context) {
  if (at(kind)) return take();
  diags_.error(cur().loc, std::string("expected ") + tok_name(kind) + " " +
                              context + ", found " + cur().to_string());
  return cur();
}

void Parser::expect_rangle(const char* context) {
  if (at(Tok::kRAngle)) {
    take();
    return;
  }
  if (at(Tok::kShr)) {
    // `dict<bit<8>,bit<8>>` — the final '>>' closes two generics.
    tokens_[idx_].kind = Tok::kRAngle;
    return;
  }
  diags_.error(cur().loc, std::string("expected '>' ") + context +
                              ", found " + cur().to_string());
}

void Parser::sync_to_semi() {
  while (!at(Tok::kEof) && !at(Tok::kSemi) && !at(Tok::kRBrace)) take();
  accept(Tok::kSemi);
}

TypePtr Parser::parse_base_type() {
  const Loc loc = cur().loc;
  if (accept(Tok::kBoolKw)) return Type::boolean();
  if (accept(Tok::kBitKw)) {
    expect(Tok::kLAngle, "after 'bit'");
    const Token n = expect(Tok::kNumber, "as bit width");
    expect_rangle("after bit width");
    const int width = static_cast<int>(n.number);
    if (width < 1 || width > 64) {
      diags_.error(n.loc, "bit width must be in [1, 64]");
      return Type::bits(32);
    }
    return Type::bits(width);
  }
  if (accept(Tok::kSetKw)) {
    expect(Tok::kLAngle, "after 'set'");
    TypePtr elem = parse_type();
    expect_rangle("after set element type");
    return Type::set(std::move(elem));
  }
  if (accept(Tok::kDictKw)) {
    expect(Tok::kLAngle, "after 'dict'");
    TypePtr key = parse_type();
    expect(Tok::kComma, "between dict key and value types");
    TypePtr value = parse_type();
    expect_rangle("after dict value type");
    return Type::dict(std::move(key), std::move(value));
  }
  if (accept(Tok::kLParen)) {
    std::vector<TypePtr> members;
    members.push_back(parse_type());
    while (accept(Tok::kComma)) members.push_back(parse_type());
    expect(Tok::kRParen, "after tuple type");
    if (members.size() < 2) {
      diags_.error(loc, "tuple type needs at least two members");
      return members.empty() ? Type::bits(32) : members[0];
    }
    return Type::tuple(std::move(members));
  }
  diags_.error(loc, "expected a type, found " + cur().to_string());
  take();
  return Type::bits(32);
}

TypePtr Parser::parse_type() {
  TypePtr t = parse_base_type();
  while (at(Tok::kLBracket)) {
    take();
    const Token n = expect(Tok::kNumber, "as array size");
    expect(Tok::kRBracket, "after array size");
    const int size = static_cast<int>(n.number);
    if (size < 1 || size > 4096) {
      diags_.error(n.loc, "array size must be in [1, 4096]");
    } else {
      t = Type::array(std::move(t), size);
    }
  }
  return t;
}

Decl Parser::parse_decl() {
  Decl d;
  d.loc = cur().loc;
  switch (take().kind) {
    case Tok::kTele: d.kind = VarKind::kTele; break;
    case Tok::kSensor: d.kind = VarKind::kSensor; break;
    case Tok::kHeader: d.kind = VarKind::kHeader; break;
    case Tok::kControl: d.kind = VarKind::kControl; break;
    default:
      diags_.error(d.loc, "expected a variable kind (tele/sensor/header/"
                          "control)");
      d.kind = VarKind::kTele;
      break;
  }
  // `control thresh;` is legal — untyped control variables default to
  // bit<32> (the paper's Figure 2 uses this shorthand).
  if (at(Tok::kIdent)) {
    d.type = Type::bits(32);
  } else {
    d.type = parse_type();
  }
  d.name = expect(Tok::kIdent, "as variable name").text;
  if (accept(Tok::kAt)) {
    d.annotation = expect(Tok::kString, "as header annotation").text;
  }
  if (accept(Tok::kAssign)) {
    d.init = parse_expression();
  }
  expect(Tok::kSemi, "after declaration");
  return d;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

namespace {
// Binding power; higher binds tighter. Mirrors C operator precedence.
int precedence(Tok t) {
  switch (t) {
    case Tok::kOrOr: return 1;
    case Tok::kAndAnd: return 2;
    case Tok::kEq:
    case Tok::kNe: return 3;
    case Tok::kLAngle:
    case Tok::kRAngle:
    case Tok::kLe:
    case Tok::kGe:
    case Tok::kIn: return 4;
    case Tok::kPipe: return 5;
    case Tok::kCaret: return 6;
    case Tok::kAmp: return 7;
    case Tok::kShl:
    case Tok::kShr: return 8;
    case Tok::kPlus:
    case Tok::kMinus: return 9;
    case Tok::kStar:
    case Tok::kSlash:
    case Tok::kPercent: return 10;
    default: return 0;
  }
}

BinOp to_binop(Tok t) {
  switch (t) {
    case Tok::kOrOr: return BinOp::kOr;
    case Tok::kAndAnd: return BinOp::kAnd;
    case Tok::kEq: return BinOp::kEq;
    case Tok::kNe: return BinOp::kNe;
    case Tok::kLAngle: return BinOp::kLt;
    case Tok::kRAngle: return BinOp::kGt;
    case Tok::kLe: return BinOp::kLe;
    case Tok::kGe: return BinOp::kGe;
    case Tok::kPipe: return BinOp::kBitOr;
    case Tok::kCaret: return BinOp::kBitXor;
    case Tok::kAmp: return BinOp::kBitAnd;
    case Tok::kShl: return BinOp::kShl;
    case Tok::kShr: return BinOp::kShr;
    case Tok::kPlus: return BinOp::kAdd;
    case Tok::kMinus: return BinOp::kSub;
    case Tok::kStar: return BinOp::kMul;
    case Tok::kSlash: return BinOp::kDiv;
    case Tok::kPercent: return BinOp::kMod;
    default: return BinOp::kAdd;
  }
}
}  // namespace

ExprPtr Parser::parse_expression() { return parse_binary(1); }

ExprPtr Parser::parse_binary(int min_prec) {
  ExprPtr lhs = parse_unary();
  for (;;) {
    const Tok op_tok = cur().kind;
    const int prec = precedence(op_tok);
    if (prec < min_prec || prec == 0) return lhs;
    const Loc loc = take().loc;
    if (op_tok == Tok::kIn) {
      ExprPtr rhs = parse_binary(prec + 1);
      lhs = make_in(std::move(lhs), std::move(rhs), loc);
    } else {
      ExprPtr rhs = parse_binary(prec + 1);
      lhs = make_binary(to_binop(op_tok), std::move(lhs), std::move(rhs), loc);
    }
  }
}

ExprPtr Parser::parse_unary() {
  const Loc loc = cur().loc;
  if (accept(Tok::kBang)) return make_unary(UnOp::kNot, parse_unary(), loc);
  if (accept(Tok::kTilde)) return make_unary(UnOp::kBitNot, parse_unary(), loc);
  if (accept(Tok::kMinus)) return make_unary(UnOp::kNeg, parse_unary(), loc);
  return parse_postfix();
}

ExprPtr Parser::parse_postfix() {
  ExprPtr e = parse_primary();
  for (;;) {
    if (at(Tok::kLBracket)) {
      const Loc loc = take().loc;
      // dict keys may be tuple expressions: allowed[(a, b)]
      ExprPtr index = parse_expression();
      expect(Tok::kRBracket, "after index expression");
      e = make_index(std::move(e), std::move(index), loc);
    } else {
      return e;
    }
  }
}

ExprPtr Parser::parse_primary() {
  const Loc loc = cur().loc;
  if (at(Tok::kNumber)) return make_number(take().number, loc);
  if (accept(Tok::kTrue)) return make_bool(true, loc);
  if (accept(Tok::kFalse)) return make_bool(false, loc);
  if (at(Tok::kIdent)) {
    std::string name = take().text;
    if (at(Tok::kLParen)) {
      // Call: abs(e), length(e).
      take();
      std::vector<ExprPtr> args;
      if (!at(Tok::kRParen)) {
        args.push_back(parse_expression());
        while (accept(Tok::kComma)) args.push_back(parse_expression());
      }
      expect(Tok::kRParen, "after call arguments");
      return make_call(std::move(name), std::move(args), loc);
    }
    return make_var(std::move(name), loc);
  }
  if (accept(Tok::kLParen)) {
    std::vector<ExprPtr> elems;
    elems.push_back(parse_expression());
    while (accept(Tok::kComma)) elems.push_back(parse_expression());
    expect(Tok::kRParen, "after parenthesized expression");
    if (elems.size() == 1) return std::move(elems[0]);
    return make_tuple(std::move(elems), loc);
  }
  diags_.error(loc, "expected an expression, found " + cur().to_string());
  take();
  return make_number(0, loc);
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

StmtPtr Parser::parse_block() {
  const Loc loc = cur().loc;
  expect(Tok::kLBrace, "to open a block");
  std::vector<StmtPtr> body;
  while (!at(Tok::kRBrace) && !at(Tok::kEof)) {
    body.push_back(parse_stmt());
  }
  expect(Tok::kRBrace, "to close a block");
  return make_block(std::move(body), loc);
}

StmtPtr Parser::parse_if(Loc loc) {
  std::vector<IfArm> arms;
  expect(Tok::kLParen, "after 'if'");
  ExprPtr cond = parse_expression();
  expect(Tok::kRParen, "after if condition");
  StmtPtr then = parse_block();
  arms.push_back({std::move(cond), std::move(then)});
  StmtPtr else_body;
  for (;;) {
    if (accept(Tok::kElsif)) {
      expect(Tok::kLParen, "after 'elsif'");
      ExprPtr c = parse_expression();
      expect(Tok::kRParen, "after elsif condition");
      StmtPtr b = parse_block();
      arms.push_back({std::move(c), std::move(b)});
    } else if (accept(Tok::kElse)) {
      // `else if` chains are accepted as sugar for `elsif`.
      if (accept(Tok::kIf)) {
        expect(Tok::kLParen, "after 'else if'");
        ExprPtr c = parse_expression();
        expect(Tok::kRParen, "after else-if condition");
        StmtPtr b = parse_block();
        arms.push_back({std::move(c), std::move(b)});
        continue;
      }
      else_body = parse_block();
      break;
    } else {
      break;
    }
  }
  return make_if(std::move(arms), std::move(else_body), loc);
}

StmtPtr Parser::parse_for(Loc loc) {
  expect(Tok::kLParen, "after 'for'");
  std::vector<std::string> vars;
  vars.push_back(expect(Tok::kIdent, "as loop variable").text);
  while (accept(Tok::kComma)) {
    vars.push_back(expect(Tok::kIdent, "as loop variable").text);
  }
  expect(Tok::kIn, "in for loop");
  std::vector<ExprPtr> iters;
  iters.push_back(parse_expression());
  while (accept(Tok::kComma)) iters.push_back(parse_expression());
  expect(Tok::kRParen, "after for loop header");
  StmtPtr body = parse_block();
  if (vars.size() != iters.size()) {
    diags_.error(loc, "for loop has " + std::to_string(vars.size()) +
                          " variables but " + std::to_string(iters.size()) +
                          " iterables");
  }
  return make_for(std::move(vars), std::move(iters), std::move(body), loc);
}

StmtPtr Parser::parse_report(Loc loc) {
  std::vector<ExprPtr> args;
  if (accept(Tok::kLParen)) {
    if (!at(Tok::kRParen)) {
      // report((a, b, c)) — a single tuple payload is flattened.
      ExprPtr first = parse_expression();
      if (first->kind == ExprKind::kTuple && !at(Tok::kComma)) {
        args = std::move(first->args);
      } else {
        args.push_back(std::move(first));
        while (accept(Tok::kComma)) args.push_back(parse_expression());
      }
    }
    expect(Tok::kRParen, "after report payload");
  }
  expect(Tok::kSemi, "after 'report'");
  return make_report(std::move(args), loc);
}

StmtPtr Parser::parse_stmt() {
  const Loc loc = cur().loc;
  if (accept(Tok::kPass)) {
    expect(Tok::kSemi, "after 'pass'");
    return make_pass(loc);
  }
  if (accept(Tok::kReject)) {
    expect(Tok::kSemi, "after 'reject'");
    return make_reject(loc);
  }
  if (accept(Tok::kReport)) return parse_report(loc);
  if (accept(Tok::kIf)) return parse_if(loc);
  if (accept(Tok::kFor)) return parse_for(loc);
  if (at(Tok::kLBrace)) return parse_block();

  // Assignment or list.push().
  ExprPtr target = parse_postfix();
  if (accept(Tok::kDot)) {
    const Token method = expect(Tok::kIdent, "as method name");
    if (method.text != "push") {
      diags_.error(method.loc, "unknown method '" + method.text +
                                   "' (only 'push' is supported)");
    }
    expect(Tok::kLParen, "after '.push'");
    ExprPtr value = parse_expression();
    expect(Tok::kRParen, "after push argument");
    expect(Tok::kSemi, "after push statement");
    return make_push(std::move(target), std::move(value), loc);
  }
  AssignOp op = AssignOp::kSet;
  if (accept(Tok::kPlusAssign)) {
    op = AssignOp::kAdd;
  } else if (accept(Tok::kMinusAssign)) {
    op = AssignOp::kSub;
  } else if (!accept(Tok::kAssign)) {
    diags_.error(cur().loc,
                 "expected '=', '+=', '-=' or '.push' in statement, found " +
                     cur().to_string());
    sync_to_semi();
    return make_pass(loc);
  }
  ExprPtr value = parse_expression();
  expect(Tok::kSemi, "after assignment");
  return make_assign(std::move(target), op, std::move(value), loc);
}

Program Parser::parse_program() {
  Program p;
  while (at(Tok::kTele) || at(Tok::kSensor) || at(Tok::kHeader) ||
         at(Tok::kControl)) {
    p.decls.push_back(parse_decl());
  }
  p.init_block = parse_block();
  p.tele_block = parse_block();
  p.check_block = parse_block();
  if (!at(Tok::kEof)) {
    diags_.error(cur().loc, "unexpected input after the checker block");
  }
  return p;
}

Program parse_indus(const std::string& source, Diagnostics& diags) {
  Lexer lexer(source, diags);
  Parser parser(lexer.lex_all(), diags);
  return parser.parse_program();
}

}  // namespace hydra::indus
