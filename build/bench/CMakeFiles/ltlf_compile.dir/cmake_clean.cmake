file(REMOVE_RECURSE
  "CMakeFiles/ltlf_compile.dir/ltlf_compile.cpp.o"
  "CMakeFiles/ltlf_compile.dir/ltlf_compile.cpp.o.d"
  "ltlf_compile"
  "ltlf_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltlf_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
