// Byte-exact telemetry serialization. The simulator normally carries
// telemetry frames as typed values; this codec implements the actual
// parser/deparser the compiler generates — packing every tele field at its
// layout offset into wire bytes (plus the 2-byte Hydra EtherType tag) and
// parsing it back. Used by the wire-validation tests and by
// Network::set_wire_validation, which round-trips every frame through the
// codec at every hop to prove the layout is lossless.
#pragma once

#include <cstdint>
#include <vector>

#include "compiler/layout.hpp"
#include "p4rt/packet.hpp"

namespace hydra::p4rt {

// Serializes the tele fields of `frame` per `layout`. The result's size is
// exactly layout.wire_bytes (preamble + padded payload).
std::vector<std::uint8_t> serialize_frame(const compiler::TelemetryLayout& layout,
                                          const ir::CheckerIR& ir,
                                          const TeleFrame& frame);

// Parses bytes produced by serialize_frame back into a frame (non-tele
// fields zeroed). Throws std::invalid_argument on size or tag mismatch.
TeleFrame parse_frame(const compiler::TelemetryLayout& layout,
                      const ir::CheckerIR& ir, int checker_id,
                      const std::vector<std::uint8_t>& bytes);

}  // namespace hydra::p4rt
