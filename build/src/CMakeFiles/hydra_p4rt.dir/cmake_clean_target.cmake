file(REMOVE_RECURSE
  "libhydra_p4rt.a"
)
