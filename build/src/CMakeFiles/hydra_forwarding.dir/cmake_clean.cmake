file(REMOVE_RECURSE
  "CMakeFiles/hydra_forwarding.dir/forwarding/anonymizer.cpp.o"
  "CMakeFiles/hydra_forwarding.dir/forwarding/anonymizer.cpp.o.d"
  "CMakeFiles/hydra_forwarding.dir/forwarding/ipv4_ecmp.cpp.o"
  "CMakeFiles/hydra_forwarding.dir/forwarding/ipv4_ecmp.cpp.o.d"
  "CMakeFiles/hydra_forwarding.dir/forwarding/source_route.cpp.o"
  "CMakeFiles/hydra_forwarding.dir/forwarding/source_route.cpp.o.d"
  "CMakeFiles/hydra_forwarding.dir/forwarding/upf.cpp.o"
  "CMakeFiles/hydra_forwarding.dir/forwarding/upf.cpp.o.d"
  "CMakeFiles/hydra_forwarding.dir/forwarding/vlan_bridge.cpp.o"
  "CMakeFiles/hydra_forwarding.dir/forwarding/vlan_bridge.cpp.o.d"
  "libhydra_forwarding.a"
  "libhydra_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
