#include "obs/health.hpp"

#include <algorithm>

namespace hydra::obs {

using detail::format_double;

const char* health_status_name(HealthStatus s) {
  switch (s) {
    case HealthStatus::kOk: return "ok";
    case HealthStatus::kDegraded: return "degraded";
    case HealthStatus::kFailing: return "failing";
  }
  return "unknown";
}

namespace {

// Grades one signal, escalating `status` and appending a reason per
// breached threshold pair. Thresholds <= 0 disable their grade.
void grade(const char* signal, double value, double degraded, double failing,
           HealthStatus* status, std::vector<std::string>* reasons) {
  if (failing > 0.0 && value >= failing) {
    *status = std::max(*status, HealthStatus::kFailing);
    reasons->push_back(std::string(signal) + " " + format_double(value) +
                       " >= " + format_double(failing) + " (failing)");
  } else if (degraded > 0.0 && value >= degraded) {
    *status = std::max(*status, HealthStatus::kDegraded);
    reasons->push_back(std::string(signal) + " " + format_double(value) +
                       " >= " + format_double(degraded) + " (degraded)");
  }
}

}  // namespace

HealthVerdict evaluate_health(const std::deque<WindowSample>& windows,
                              const std::vector<double>& latency_bounds,
                              const HealthThresholds& t) {
  HealthVerdict v;
  const std::size_t span =
      std::min(t.windows == 0 ? windows.size() : t.windows, windows.size());
  v.windows_evaluated = span;
  if (span == 0) return v;  // nothing measured yet: ok by definition

  std::uint64_t injected = 0;
  std::uint64_t rejected = 0;
  std::uint64_t fault_dropped = 0;
  std::uint64_t reports = 0;
  std::uint64_t cold_suppressed = 0;
  std::vector<std::uint64_t> buckets;
  for (std::size_t i = windows.size() - span; i < windows.size(); ++i) {
    const ExportCumulative& d = windows[i].delta;
    injected += d.injected;
    rejected += d.rejected;
    fault_dropped += d.fault_dropped;
    reports += d.reports;
    cold_suppressed += d.cold_suppressed;
    if (d.latency_buckets.size() > buckets.size()) {
      buckets.resize(d.latency_buckets.size(), 0);
    }
    for (std::size_t b = 0; b < d.latency_buckets.size(); ++b) {
      buckets[b] += d.latency_buckets[b];
    }
  }

  const double inj = injected > 0 ? static_cast<double>(injected) : 1.0;
  v.reject_rate = static_cast<double>(rejected) / inj;
  v.fault_drop_rate = static_cast<double>(fault_dropped) / inj;
  const std::uint64_t report_attempts = reports + cold_suppressed;
  v.cold_suppression_rate =
      report_attempts > 0
          ? static_cast<double>(cold_suppressed) /
                static_cast<double>(report_attempts)
          : 0.0;
  v.latency_p99_s = histogram_quantile(0.99, latency_bounds, buckets);

  grade("reject_rate", v.reject_rate, t.reject_rate_degraded,
        t.reject_rate_failing, &v.status, &v.reasons);
  grade("latency_p99_s", v.latency_p99_s, t.latency_p99_degraded_s,
        t.latency_p99_failing_s, &v.status, &v.reasons);
  grade("fault_drop_rate", v.fault_drop_rate, t.fault_drop_rate_degraded,
        t.fault_drop_rate_failing, &v.status, &v.reasons);
  grade("cold_suppression_rate", v.cold_suppression_rate,
        t.cold_suppression_degraded, t.cold_suppression_failing, &v.status,
        &v.reasons);
  return v;
}

std::string HealthVerdict::to_json() const {
  std::string out = "{\n  \"status\": \"";
  out += health_status_name(status);
  out += "\",\n  \"reasons\": [";
  for (std::size_t i = 0; i < reasons.size(); ++i) {
    out += i == 0 ? "" : ", ";
    out += "\"" + reasons[i] + "\"";
  }
  out += "],\n  \"signals\": {\"windows_evaluated\": " +
         std::to_string(windows_evaluated) +
         ", \"reject_rate\": " + format_double(reject_rate) +
         ", \"latency_p99_s\": " + format_double(latency_p99_s) +
         ", \"fault_drop_rate\": " + format_double(fault_drop_rate) +
         ", \"cold_suppression_rate\": " + format_double(cold_suppression_rate) +
         "}\n}\n";
  return out;
}

}  // namespace hydra::obs
