// Expressiveness in practice (§3.3): take LTLf formulas, translate them to
// Indus with the Theorem 3.1 construction, compile them with the Hydra
// compiler, and run them against traces — showing the generated programs
// agree with the reference LTLf semantics.
//
//   $ ./ltlf_properties
#include <cstdio>

#include "ltlf/eval.hpp"
#include "ltlf/random_formula.hpp"
#include "ltlf/to_indus.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

using namespace hydra;
using F = ltlf::Formula;

int main() {
  // The paper's motivating formula: "the packet must not visit switch A
  // twice", i.e. G !(A && X F A).
  auto a = [] { return F::make_atom(0); };
  const auto no_revisit = F::make_globally(F::make_not(F::make_and(
      a(), F::make_next(F::make_eventually(a())))));

  std::printf("formula: %s\n", no_revisit->to_string().c_str());
  const auto translation = ltlf::to_indus(*no_revisit, 6);
  std::printf("translated to %d lines of Indus:\n\n%s\n",
              hydra::str::count_loc(translation.indus_source),
              translation.indus_source.c_str());

  const auto compiled =
      compiler::compile_checker(translation.indus_source, "no_revisit");
  std::printf("compiled: %d lines of P4, %d stages, +%.2f%% PHV\n\n",
              compiled.p4_loc, compiled.resources.checker_stages,
              compiled.resources.phv_percent);

  const ltlf::Trace visits_once = {{true}, {false}, {false}, {false}};
  const ltlf::Trace revisits = {{true}, {false}, {true}, {false}};
  std::printf("trace A.. .      -> checker %s (reference %s)\n",
              ltlf::run_translation(compiled, visits_once) ? "ACCEPT"
                                                           : "REJECT",
              ltlf::eval(*no_revisit, visits_once) ? "ACCEPT" : "REJECT");
  std::printf("trace A.A.       -> checker %s (reference %s)\n\n",
              ltlf::run_translation(compiled, revisits) ? "ACCEPT"
                                                        : "REJECT",
              ltlf::eval(*no_revisit, revisits) ? "ACCEPT" : "REJECT");

  // Random sweep: 200 formula/trace pairs, checker vs. reference.
  Rng rng(42);
  int agree = 0;
  int total = 0;
  for (int i = 0; i < 40; ++i) {
    const auto f = ltlf::random_formula(rng, 2, 3);
    const auto t = ltlf::to_indus(*f, 6);
    const auto c = compiler::compile_checker(t.indus_source, "sweep");
    for (int j = 0; j < 5; ++j) {
      const auto trace =
          ltlf::random_trace(rng, 2, 1 + static_cast<int>(rng.below(5)));
      const bool ref = ltlf::eval(*f, trace);
      const bool got = ltlf::run_translation(c, trace);
      agree += ref == got ? 1 : 0;
      ++total;
    }
  }
  std::printf("random sweep: %d/%d formula/trace pairs agree with the "
              "LTLf reference semantics\n",
              agree, total);
  return agree == total ? 0 : 1;
}
