file(REMOVE_RECURSE
  "CMakeFiles/source_routing_validation.dir/source_routing_validation.cpp.o"
  "CMakeFiles/source_routing_validation.dir/source_routing_validation.cpp.o.d"
  "source_routing_validation"
  "source_routing_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/source_routing_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
