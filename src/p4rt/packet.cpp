#include "p4rt/packet.hpp"

#include "util/strings.hpp"

namespace hydra::p4rt {

std::string FlowId::to_string() const {
  if (!parsed) return "<no-ipv4>";
  std::string s = str::ipv4_to_string(src_ip);
  if (src_port != 0 || dst_port != 0) {
    s += ":" + std::to_string(src_port);
  }
  s += " -> " + str::ipv4_to_string(dst_ip);
  if (src_port != 0 || dst_port != 0) {
    s += ":" + std::to_string(dst_port);
  }
  switch (proto) {
    case kProtoTcp: s += " tcp"; break;
    case kProtoUdp: s += " udp"; break;
    case kProtoIcmp: s += " icmp"; break;
    default: s += " proto=" + std::to_string(proto); break;
  }
  return s;
}

FlowId flow_of(const Packet& pkt) {
  FlowId f;
  const Ipv4H* ip = pkt.inner_ipv4 ? &*pkt.inner_ipv4
                                   : (pkt.ipv4 ? &*pkt.ipv4 : nullptr);
  if (ip == nullptr) return f;
  const L4H* l4 = pkt.inner_ipv4 ? (pkt.inner_l4 ? &*pkt.inner_l4 : nullptr)
                                 : (pkt.l4 ? &*pkt.l4 : nullptr);
  f.parsed = true;
  f.src_ip = ip->src;
  f.dst_ip = ip->dst;
  f.proto = ip->proto;
  if (l4 != nullptr) {
    f.src_port = l4->sport;
    f.dst_port = l4->dport;
  }
  return f;
}

TeleFrame* Packet::frame(int checker) {
  for (auto& f : tele) {
    if (f.checker == checker) return &f;
  }
  return nullptr;
}

const TeleFrame* Packet::frame(int checker) const {
  for (const auto& f : tele) {
    if (f.checker == checker) return &f;
  }
  return nullptr;
}

void Packet::reuse() {
  id = 0;
  created_at = 0.0;
  hops = 0;
  eth = EthernetH{};
  vlan.reset();
  sr_stack.clear();
  has_sr = false;
  ipv4.reset();
  l4.reset();
  icmp.reset();
  gtpu.reset();
  inner_ipv4.reset();
  inner_l4.reset();
  payload_bytes = 0;
  retire_frames();
  fwd_drop = false;
}

TeleFrame& Packet::add_frame(int checker) {
  for (auto& f : tele) {
    if (!f.live()) {
      f.checker = checker;
      return f;
    }
  }
  tele.emplace_back();
  tele.back().checker = checker;
  return tele.back();
}

void Packet::retire_frames() {
  for (auto& f : tele) {
    if (f.live()) f.retire();
  }
}

bool Packet::has_live_tele() const {
  for (const auto& f : tele) {
    if (f.live()) return true;
  }
  return false;
}

int Packet::base_wire_bytes() const {
  int bytes = EthernetH::kBytes;
  if (vlan) bytes += VlanH::kBytes;
  if (has_sr) bytes += 2 * static_cast<int>(sr_stack.size()) + 1;
  if (ipv4) bytes += Ipv4H::kBytes;
  if (l4) {
    bytes += ipv4 && ipv4->proto == kProtoTcp ? L4H::kTcpBytes
                                              : L4H::kUdpBytes;
  }
  if (icmp) bytes += IcmpH::kBytes;
  if (gtpu) bytes += GtpuH::kBytes;
  if (inner_ipv4) bytes += Ipv4H::kBytes;
  if (inner_l4) {
    bytes += inner_ipv4 && inner_ipv4->proto == kProtoTcp ? L4H::kTcpBytes
                                                          : L4H::kUdpBytes;
  }
  return bytes + payload_bytes;
}

int Packet::wire_bytes(const std::vector<int>& tele_bytes_per_checker) const {
  int bytes = base_wire_bytes();
  for (const auto& f : tele) {
    if (f.checker >= 0 &&
        f.checker < static_cast<int>(tele_bytes_per_checker.size())) {
      bytes += tele_bytes_per_checker[static_cast<std::size_t>(f.checker)];
    }
  }
  return bytes;
}

Packet make_udp(std::uint32_t src_ip, std::uint32_t dst_ip,
                std::uint16_t sport, std::uint16_t dport, int payload_bytes) {
  Packet p;
  p.ipv4 = Ipv4H{src_ip, dst_ip, kProtoUdp, 64, 0};
  p.l4 = L4H{sport, dport};
  p.payload_bytes = payload_bytes;
  return p;
}

Packet make_tcp(std::uint32_t src_ip, std::uint32_t dst_ip,
                std::uint16_t sport, std::uint16_t dport, int payload_bytes) {
  Packet p;
  p.ipv4 = Ipv4H{src_ip, dst_ip, kProtoTcp, 64, 0};
  p.l4 = L4H{sport, dport};
  p.payload_bytes = payload_bytes;
  return p;
}

Packet make_icmp_echo(std::uint32_t src_ip, std::uint32_t dst_ip,
                      std::uint16_t ident, std::uint16_t seq) {
  Packet p;
  p.ipv4 = Ipv4H{src_ip, dst_ip, kProtoIcmp, 64, 0};
  p.icmp = IcmpH{8, ident, seq};
  p.payload_bytes = 56;  // standard ping payload
  return p;
}

Packet gtpu_encap(const Packet& inner, std::uint32_t outer_src,
                  std::uint32_t outer_dst, std::uint32_t teid) {
  Packet p = inner;
  p.inner_ipv4 = inner.ipv4;
  p.inner_l4 = inner.l4;
  p.ipv4 = Ipv4H{outer_src, outer_dst, kProtoUdp, 64, 0};
  p.l4 = L4H{kGtpuPort, kGtpuPort};
  p.gtpu = GtpuH{teid};
  return p;
}

Packet gtpu_decap(const Packet& outer) {
  Packet p = outer;
  gtpu_decap_inplace(p);
  return p;
}

void gtpu_encap_inplace(Packet& p, std::uint32_t outer_src,
                        std::uint32_t outer_dst, std::uint32_t teid) {
  p.inner_ipv4 = p.ipv4;
  p.inner_l4 = p.l4;
  p.ipv4 = Ipv4H{outer_src, outer_dst, kProtoUdp, 64, 0};
  p.l4 = L4H{kGtpuPort, kGtpuPort};
  p.gtpu = GtpuH{teid};
}

void gtpu_decap_inplace(Packet& p) {
  p.ipv4 = p.inner_ipv4;
  p.l4 = p.inner_l4;
  p.gtpu.reset();
  p.inner_ipv4.reset();
  p.inner_l4.reset();
}

void make_udp_into(Packet& p, std::uint32_t src_ip, std::uint32_t dst_ip,
                   std::uint16_t sport, std::uint16_t dport,
                   int payload_bytes) {
  p.reuse();
  p.ipv4 = Ipv4H{src_ip, dst_ip, kProtoUdp, 64, 0};
  p.l4 = L4H{sport, dport};
  p.payload_bytes = payload_bytes;
}

void make_tcp_into(Packet& p, std::uint32_t src_ip, std::uint32_t dst_ip,
                   std::uint16_t sport, std::uint16_t dport,
                   int payload_bytes) {
  p.reuse();
  p.ipv4 = Ipv4H{src_ip, dst_ip, kProtoTcp, 64, 0};
  p.l4 = L4H{sport, dport};
  p.payload_bytes = payload_bytes;
}

void make_icmp_echo_into(Packet& p, std::uint32_t src_ip,
                         std::uint32_t dst_ip, std::uint16_t ident,
                         std::uint16_t seq) {
  p.reuse();
  p.ipv4 = Ipv4H{src_ip, dst_ip, kProtoIcmp, 64, 0};
  p.icmp = IcmpH{8, ident, seq};
  p.payload_bytes = 56;  // standard ping payload
}

void make_gtpu_udp_into(Packet& p, std::uint32_t outer_src,
                        std::uint32_t outer_dst, std::uint32_t teid,
                        std::uint32_t inner_src, std::uint32_t inner_dst,
                        std::uint16_t sport, std::uint16_t dport,
                        int payload_bytes) {
  p.reuse();
  p.inner_ipv4 = Ipv4H{inner_src, inner_dst, kProtoUdp, 64, 0};
  p.inner_l4 = L4H{sport, dport};
  p.ipv4 = Ipv4H{outer_src, outer_dst, kProtoUdp, 64, 0};
  p.l4 = L4H{kGtpuPort, kGtpuPort};
  p.gtpu = GtpuH{teid};
  p.payload_bytes = payload_bytes;
}

}  // namespace hydra::p4rt
