file(REMOVE_RECURSE
  "CMakeFiles/ablation_header_layout.dir/ablation_header_layout.cpp.o"
  "CMakeFiles/ablation_header_layout.dir/ablation_header_layout.cpp.o.d"
  "ablation_header_layout"
  "ablation_header_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_header_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
