file(REMOVE_RECURSE
  "CMakeFiles/path_validation.dir/path_validation.cpp.o"
  "CMakeFiles/path_validation.dir/path_validation.cpp.o.d"
  "path_validation"
  "path_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
