
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ltlf/eval.cpp" "src/CMakeFiles/hydra_ltlf.dir/ltlf/eval.cpp.o" "gcc" "src/CMakeFiles/hydra_ltlf.dir/ltlf/eval.cpp.o.d"
  "/root/repo/src/ltlf/formula.cpp" "src/CMakeFiles/hydra_ltlf.dir/ltlf/formula.cpp.o" "gcc" "src/CMakeFiles/hydra_ltlf.dir/ltlf/formula.cpp.o.d"
  "/root/repo/src/ltlf/random_formula.cpp" "src/CMakeFiles/hydra_ltlf.dir/ltlf/random_formula.cpp.o" "gcc" "src/CMakeFiles/hydra_ltlf.dir/ltlf/random_formula.cpp.o.d"
  "/root/repo/src/ltlf/to_indus.cpp" "src/CMakeFiles/hydra_ltlf.dir/ltlf/to_indus.cpp.o" "gcc" "src/CMakeFiles/hydra_ltlf.dir/ltlf/to_indus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hydra_p4rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_indus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
