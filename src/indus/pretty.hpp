// AST pretty-printer: renders a Program back to Indus surface syntax.
// Used for parser round-trip tests, the LTLf translator's generated
// programs, and the Table 1 LoC metric.
#pragma once

#include <string>

#include "indus/ast.hpp"

namespace hydra::indus {

std::string to_source(const Expr& expr);
std::string to_source(const Stmt& stmt, int indent = 0);
std::string to_source(const Decl& decl);
std::string to_source(const Program& program);

}  // namespace hydra::indus
