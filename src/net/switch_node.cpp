#include "net/switch_node.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace hydra::net {

namespace {

BitVec bv(int width, std::uint64_t v) { return BitVec(width, v); }
BitVec flag(bool b) { return BitVec::from_bool(b); }

// Resolves the inner-vs-outer view of IPv4/L4 fields.
const p4rt::Ipv4H* outer_ip(const p4rt::Packet& p) {
  return p.ipv4 ? &*p.ipv4 : nullptr;
}
const p4rt::L4H* outer_l4(const p4rt::Packet& p) {
  return p.l4 ? &*p.l4 : nullptr;
}

}  // namespace

BitVec resolve_header(const p4rt::Packet& pkt, const HopContext& ctx,
                      const std::string& annotation, int width) {
  const std::string& a = annotation;

  // Intrinsics.
  if (a == "std.last_hop") return flag(ctx.last_hop);
  if (a == "std.first_hop") return flag(ctx.first_hop);
  if (a == "std.packet_length") {
    return bv(32, static_cast<std::uint64_t>(ctx.wire_bytes));
  }

  // Hop / switch state.
  if (a == "in_port" || a == "ig_port" || a == "standard_metadata.ingress_port") {
    return bv(width, static_cast<std::uint64_t>(
                         ctx.in_port < 0 ? 0xff : ctx.in_port));
  }
  if (a == "eg_port" || a == "egress_port" || a == "standard_metadata.egress_port") {
    return bv(width, static_cast<std::uint64_t>(
                         ctx.eg_port < 0 ? 0xff : ctx.eg_port));
  }
  if (a == "switch_id") return bv(width, ctx.switch_tag);
  if (a == "to_be_dropped") return flag(ctx.fwd_drop);

  // Ethernet / VLAN.
  if (a == "eth_src" || a == "hdr.ethernet.src_addr") return bv(width, pkt.eth.src);
  if (a == "eth_dst" || a == "hdr.ethernet.dst_addr") return bv(width, pkt.eth.dst);
  if (a == "eth_type" || a == "hdr.ethernet.ether_type") {
    return bv(width, pkt.eth.ethertype);
  }
  if (a == "vlan_is_valid") return flag(pkt.vlan.has_value());
  if (a == "vlan_id" || a == "hdr.vlan.vid") {
    return bv(width, pkt.vlan ? pkt.vlan->vid : 0);
  }

  // Outer IPv4 (both the bare names and the explicit outer_ prefix).
  const p4rt::Ipv4H* ip = outer_ip(pkt);
  if (a == "ipv4_is_valid") return flag(ip != nullptr);
  if (a == "ipv4_src" || a == "outer_ipv4_src" || a == "hdr.ipv4.src_addr") {
    return bv(width, ip ? ip->src : 0);
  }
  if (a == "ipv4_dst" || a == "outer_ipv4_dst" || a == "hdr.ipv4.dst_addr") {
    return bv(width, ip ? ip->dst : 0);
  }
  if (a == "ipv4_proto" || a == "outer_ipv4_proto" || a == "hdr.ipv4.protocol") {
    return bv(width, ip ? ip->proto : 0);
  }
  if (a == "ipv4_ttl") return bv(width, ip ? ip->ttl : 0);
  if (a == "ipv4_dscp") return bv(width, ip ? ip->dscp : 0);

  // Outer L4.
  const p4rt::L4H* l4 = outer_l4(pkt);
  const bool outer_tcp = ip != nullptr && ip->proto == p4rt::kProtoTcp &&
                         l4 != nullptr;
  const bool outer_udp = ip != nullptr && ip->proto == p4rt::kProtoUdp &&
                         l4 != nullptr;
  if (a == "tcp_is_valid") return flag(outer_tcp);
  if (a == "udp_is_valid") return flag(outer_udp);
  if (a == "tcp_sport" || a == "outer_tcp_sport") {
    return bv(width, outer_tcp ? l4->sport : 0);
  }
  if (a == "tcp_dport" || a == "outer_tcp_dport") {
    return bv(width, outer_tcp ? l4->dport : 0);
  }
  if (a == "udp_sport" || a == "outer_udp_sport") {
    return bv(width, outer_udp ? l4->sport : 0);
  }
  if (a == "udp_dport" || a == "outer_udp_dport") {
    return bv(width, outer_udp ? l4->dport : 0);
  }
  if (a == "l4_sport") return bv(width, l4 ? l4->sport : 0);
  if (a == "l4_dport") return bv(width, l4 ? l4->dport : 0);

  // GTP-U tunnel.
  if (a == "gtpu_is_valid") return flag(pkt.gtpu.has_value());
  if (a == "gtpu_teid") return bv(width, pkt.gtpu ? pkt.gtpu->teid : 0);

  // Inner headers (Aether uplink direction).
  const p4rt::Ipv4H* iip = pkt.inner_ipv4 ? &*pkt.inner_ipv4 : nullptr;
  const p4rt::L4H* il4 = pkt.inner_l4 ? &*pkt.inner_l4 : nullptr;
  const bool inner_tcp =
      iip != nullptr && iip->proto == p4rt::kProtoTcp && il4 != nullptr;
  const bool inner_udp =
      iip != nullptr && iip->proto == p4rt::kProtoUdp && il4 != nullptr;
  if (a == "inner_ipv4_is_valid") return flag(iip != nullptr);
  if (a == "inner_ipv4_src") return bv(width, iip ? iip->src : 0);
  if (a == "inner_ipv4_dst") return bv(width, iip ? iip->dst : 0);
  if (a == "inner_ipv4_proto") return bv(width, iip ? iip->proto : 0);
  if (a == "inner_tcp_is_valid") return flag(inner_tcp);
  if (a == "inner_udp_is_valid") return flag(inner_udp);
  if (a == "inner_tcp_sport") return bv(width, inner_tcp ? il4->sport : 0);
  if (a == "inner_tcp_dport") return bv(width, inner_tcp ? il4->dport : 0);
  if (a == "inner_udp_sport") return bv(width, inner_udp ? il4->sport : 0);
  if (a == "inner_udp_dport") return bv(width, inner_udp ? il4->dport : 0);

  // Source routing. sr_port_<i> is the i-th remaining hop in travel order
  // (the stack is popped from the back); at the first hop, before any pop,
  // this is the sender's declared route.
  if (a == "sr_is_valid") return flag(pkt.has_sr);
  if (a == "sr_depth") {
    return bv(width, static_cast<std::uint64_t>(pkt.sr_stack.size()));
  }
  if (a.rfind("sr_port_", 0) == 0) {
    const auto i = static_cast<std::size_t>(std::stoi(a.substr(8)));
    if (i < pkt.sr_stack.size()) {
      return bv(width, pkt.sr_stack[pkt.sr_stack.size() - 1 - i]);
    }
    return bv(width, 0);
  }

  throw std::invalid_argument("unknown header annotation '" + a + "'");
}

}  // namespace hydra::net
