// Small string helpers shared by the compiler and the report pipeline.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hydra::str {

std::vector<std::string> split(std::string_view s, char sep);
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string trim(std::string_view s);
bool starts_with(std::string_view s, std::string_view prefix);

// Number of non-blank lines — the LoC metric used for Table 1.
int count_loc(std::string_view source);

// Dotted-quad rendering of a 32-bit IPv4 address.
std::string ipv4_to_string(std::uint32_t addr);
// Parses "a.b.c.d"; throws std::invalid_argument on malformed input.
std::uint32_t ipv4_from_string(std::string_view s);

std::string indent(std::string_view body, int spaces);

}  // namespace hydra::str
