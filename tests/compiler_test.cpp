// Unit tests for the compiler backend: lowering shapes, telemetry layout,
// resource estimation, and P4 emission — plus Table 1 sanity for every
// library checker.
#include <gtest/gtest.h>

#include "checkers/library.hpp"
#include "compiler/compile.hpp"
#include "compiler/emit_p4.hpp"
#include "compiler/lower.hpp"
#include "indus/parser.hpp"
#include "indus/typecheck.hpp"

namespace hydra::compiler {
namespace {

ir::CheckerIR lower_src(const std::string& src,
                        const std::string& name = "t") {
  indus::Diagnostics diags;
  indus::Program p = indus::parse_indus(src, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.to_string();
  const indus::SymbolTable syms = indus::typecheck(p, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.to_string();
  return lower(p, syms, name);
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

TEST(Lower, TeleScalarBecomesTeleField) {
  const auto ir = lower_src("tele bit<8> t;\n{ t = 1; } { } { }");
  const auto f = ir.find_field("tele.t");
  ASSERT_TRUE(f.valid());
  EXPECT_EQ(ir.field(f).space, ir::Space::kTele);
  EXPECT_EQ(ir.field(f).width, 8);
}

TEST(Lower, TeleTupleFlattens) {
  const auto ir =
      lower_src("tele (bit<32>,bool) pair;\n{ } { } { }");
  EXPECT_TRUE(ir.find_field("tele.pair._0").valid());
  EXPECT_TRUE(ir.find_field("tele.pair._1").valid());
}

TEST(Lower, TeleArrayBecomesListWithCounter) {
  const auto ir = lower_src("tele bit<32>[5] xs;\n{ } { xs.push(1); } { }");
  ASSERT_EQ(ir.lists.size(), 1u);
  EXPECT_EQ(ir.lists[0].capacity, 5);
  EXPECT_EQ(ir.lists[0].elem_width, 32);
  EXPECT_TRUE(ir.lists[0].count.valid());
  // 5 slots + counter, all on the wire.
  EXPECT_EQ(ir.telemetry_wire_bits(), 5 * 32 + 3);
}

TEST(Lower, SensorBecomesRegisterWithInitial) {
  const auto ir = lower_src("sensor bit<32> s = 7;\n{ } { s += 1; } { }");
  ASSERT_EQ(ir.registers.size(), 1u);
  EXPECT_EQ(ir.registers[0].width, 32);
  EXPECT_EQ(ir.registers[0].initial.value(), 7u);
}

TEST(Lower, ControlDictBecomesTable) {
  const auto ir = lower_src(
      "control dict<(bit<32>,bit<8>),bit<16>> m;\ntele bit<16> v;\n"
      "header bit<32> a;\nheader bit<8> b;\n{ v = m[(a, b)]; } { } { }");
  ASSERT_EQ(ir.tables.size(), 1u);
  EXPECT_EQ(ir.tables[0].key_widths, (std::vector<int>{32, 8}));
  EXPECT_EQ(ir.tables[0].value_widths, (std::vector<int>{16}));
  EXPECT_FALSE(ir.tables[0].config_scalar);
}

TEST(Lower, ControlScalarBecomesConfigTable) {
  const auto ir = lower_src(
      "control thresh;\ntele bool r;\n{ r = packet_length > thresh; } "
      "{ } { }");
  ASSERT_EQ(ir.tables.size(), 1u);
  EXPECT_TRUE(ir.tables[0].config_scalar);
  EXPECT_EQ(ir.tables[0].value_widths, (std::vector<int>{32}));
}

TEST(Lower, ForLoopUnrollsToCapacity) {
  const auto ir = lower_src(
      "tele bit<8>[4] xs;\ntele bit<8> sum;\n{ } { } "
      "{ for (x in xs) { sum += x; } }");
  // One guarded If per unrolled iteration.
  int ifs = 0;
  for (const auto& i : ir.check_block) {
    ifs += i->kind == ir::InstrKind::kIf ? 1 : 0;
  }
  EXPECT_EQ(ifs, 4);
}

TEST(Lower, DictLookupPlacedBeforeUse) {
  const auto ir = lower_src(
      "control dict<bit<8>,bit<8>> t;\nheader bit<8> p;\ntele bit<8> v;\n"
      "{ v = t[p]; } { } { }");
  // Init block: tele init assign(s), then the table lookup, then the
  // consuming assign.
  bool saw_lookup = false;
  bool assign_after_lookup = false;
  for (const auto& i : ir.init_block) {
    if (i->kind == ir::InstrKind::kTableLookup) saw_lookup = true;
    if (saw_lookup && i->kind == ir::InstrKind::kAssign &&
        ir.field(i->dst).name == "tele.v") {
      assign_after_lookup = true;
    }
  }
  EXPECT_TRUE(saw_lookup);
  EXPECT_TRUE(assign_after_lookup);
}

TEST(Lower, AbsOfDifferenceUsesAbsDiff) {
  const auto ir = lower_src(
      "tele bit<32> a;\ntele bit<32> b;\ntele bool r;\n"
      "{ r = abs(a - b) > 5; } { } { }");
  // Find the AbsDiff node in the computed assign to tele.r (skipping the
  // declaration-initializer constant assign).
  bool found = false;
  for (const auto& i : ir.init_block) {
    if (i->kind != ir::InstrKind::kAssign) continue;
    if (ir.field(i->dst).name != "tele.r") continue;
    if (i->value->kind != ir::RKind::kBinary) continue;
    found = i->value->args[0]->kind == ir::RKind::kAbsDiff;
  }
  EXPECT_TRUE(found);
}

TEST(Lower, RejectsNonScalarTeleArrayElements) {
  indus::Diagnostics diags;
  indus::Program p = indus::parse_indus(
      "tele (bit<8>,bit<8>)[4] xs;\n{ } { } { }", diags);
  ASSERT_FALSE(diags.has_errors());
  const auto syms = indus::typecheck(p, diags);
  EXPECT_THROW(lower(p, syms, "bad"), indus::CompileError);
}

TEST(Lower, BuiltinHeadersGetStdAnnotations) {
  const auto ir = lower_src("tele bool b;\n{ b = last_hop; } { } { }");
  const auto f = ir.find_field("hdr.last_hop");
  ASSERT_TRUE(f.valid());
  EXPECT_EQ(ir.field(f).annotation, "std.last_hop");
}

TEST(Lower, HeaderAnnotationDefaultsToName) {
  const auto ir = lower_src("header bit<8> eg_port;\ntele bit<8> t;\n"
                            "{ t = eg_port; } { } { }");
  const auto f = ir.find_field("hdr.eg_port");
  ASSERT_TRUE(f.valid());
  EXPECT_EQ(ir.field(f).annotation, "eg_port");
}

TEST(Lower, TeleInitializersRunInInitBlock) {
  const auto ir = lower_src("tele bit<8> x = 42;\n{ } { } { }");
  ASSERT_FALSE(ir.init_block.empty());
  const auto& i = *ir.init_block[0];
  EXPECT_EQ(i.kind, ir::InstrKind::kAssign);
  EXPECT_EQ(ir.field(i.dst).name, "tele.x");
  EXPECT_EQ(i.value->cval.value(), 42u);
}

// ---------------------------------------------------------------------------
// Layout
// ---------------------------------------------------------------------------

TEST(Layout, PackedLayoutIsDense) {
  const auto ir = lower_src(
      "tele bit<8> a;\ntele bool b;\ntele bit<16> c;\n{ } { } { }");
  const auto layout = layout_telemetry(ir, /*byte_aligned=*/false);
  EXPECT_EQ(layout.payload_bits, 8 + 1 + 16);
  EXPECT_EQ(layout.wire_bytes, (25 + 7) / 8 + 2);
}

TEST(Layout, ByteAlignedPadsEachField) {
  const auto ir = lower_src(
      "tele bit<8> a;\ntele bool b;\ntele bit<16> c;\n{ } { } { }");
  const auto layout = layout_telemetry(ir, /*byte_aligned=*/true);
  // a at 0, b at 8, c at 16.
  ASSERT_EQ(layout.entries.size(), 3u);
  EXPECT_EQ(layout.entries[0].offset_bits, 0);
  EXPECT_EQ(layout.entries[1].offset_bits, 8);
  EXPECT_EQ(layout.entries[2].offset_bits, 16);
}

TEST(Layout, OffsetsAreDisjointAndOrdered) {
  const auto ir = lower_src("tele bit<32>[3] xs;\ntele bit<8> y;\n"
                            "{ } { xs.push(1); } { }");
  const auto layout = layout_telemetry(ir, false);
  int prev_end = 0;
  for (const auto& e : layout.entries) {
    EXPECT_GE(e.offset_bits, prev_end);
    prev_end = e.offset_bits + e.width;
  }
  EXPECT_EQ(prev_end, layout.payload_bits);
}

// ---------------------------------------------------------------------------
// Resources
// ---------------------------------------------------------------------------

TEST(Resources, EmptyCheckerUsesNoStages) {
  const auto ir = lower_src("{ } { } { }");
  const auto r = estimate_resources(ir);
  EXPECT_EQ(r.checker_stages, 0);
}

TEST(Resources, DependentTableLookupsChainStages) {
  // Second lookup keys on the first lookup's output: must be a later stage.
  const auto ir = lower_src(R"(
    control dict<bit<8>,bit<8>> t1;
    control dict<bit<8>,bit<8>> t2;
    header bit<8> p;
    tele bit<8> v;
    { v = t2[t1[p]]; } { } { }
  )");
  const auto r = estimate_resources(ir);
  EXPECT_GE(r.init_stages, 2);
}

TEST(Resources, IndependentLookupsShareAStage) {
  const auto ir = lower_src(R"(
    control dict<bit<8>,bit<8>> t1;
    control dict<bit<8>,bit<8>> t2;
    header bit<8> p;
    header bit<8> q;
    tele bit<8> a;
    tele bit<8> b;
    { a = t1[p]; b = t2[q]; } { } { }
  )");
  const auto r = estimate_resources(ir);
  EXPECT_LE(r.init_stages, 2);  // lookups parallel; width of block small
}

TEST(Resources, LinkingTakesMaxStages) {
  ResourceReport checker;
  checker.checker_stages = 5;
  checker.phv_percent = 3.0;
  const auto linked = link_resources(fabric_upf_profile(), checker);
  EXPECT_EQ(linked.stages, 12);
  EXPECT_NEAR(linked.phv_percent, 47.53, 1e-9);
  EXPECT_TRUE(linked.fits);
}

TEST(Resources, OverBudgetDetected) {
  ResourceReport checker;
  checker.checker_stages = 25;
  checker.phv_percent = 70.0;
  const auto linked = link_resources(fabric_upf_profile(), checker);
  EXPECT_FALSE(linked.fits);
}

// ---------------------------------------------------------------------------
// P4 emission
// ---------------------------------------------------------------------------

TEST(EmitP4, ContainsExpectedSections) {
  const auto c = compile_checker(
      checkers::checker_by_name("multi_tenancy").source, "multi_tenancy");
  EXPECT_NE(c.p4_code.find("header hydra_tele_h"), std::string::npos);
  EXPECT_NE(c.p4_code.find("parser HydraParser"), std::string::npos);
  EXPECT_NE(c.p4_code.find("control HydraInit"), std::string::npos);
  EXPECT_NE(c.p4_code.find("control HydraTelemetry"), std::string::npos);
  EXPECT_NE(c.p4_code.find("control HydraChecker"), std::string::npos);
  EXPECT_NE(c.p4_code.find("table tenants"), std::string::npos);
  EXPECT_NE(c.p4_code.find("setInvalid"), std::string::npos);  // strip
}

TEST(EmitP4, RegistersEmittedForSensors) {
  const auto c = compile_checker(
      checkers::checker_by_name("dc_uplink_load_balance").source, "lb");
  EXPECT_NE(c.p4_code.find("Register<bit<32>"), std::string::npos);
  EXPECT_NE(c.p4_code.find("left_load"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Table 1 sanity for the full library
// ---------------------------------------------------------------------------

class Table1 : public ::testing::TestWithParam<int> {};

TEST_P(Table1, CompilesWithPlausibleResources) {
  const auto& spec =
      checkers::table1_checkers()[static_cast<std::size_t>(GetParam())];
  const auto c = compile_checker(spec.source, spec.name);
  // Indus programs are an order of magnitude smaller than generated P4.
  EXPECT_GT(c.indus_loc, 0);
  EXPECT_GT(c.p4_loc, 2 * c.indus_loc) << spec.name;
  // Checkers run in parallel with the 12-stage baseline: no stage increase.
  EXPECT_LE(c.resources.checker_stages, 12) << spec.name;
  EXPECT_EQ(c.linked.stages, 12) << spec.name;
  // PHV deltas are modest (the paper observes ~2-8 points).
  EXPECT_GT(c.resources.phv_percent, 0.0);
  EXPECT_LT(c.resources.phv_percent, 40.0) << spec.name;
  EXPECT_TRUE(c.linked.fits) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(AllProperties, Table1, ::testing::Range(0, 11),
                         [](const auto& info) {
                           return checkers::table1_checkers()
                               [static_cast<std::size_t>(info.param)].name;
                         });

TEST(Table1, ApplicationFilteringUsesMostPhvAmongAetherCheckers) {
  const auto app = compile_checker(
      checkers::checker_by_name("application_filtering").source, "app");
  const auto mt = compile_checker(
      checkers::checker_by_name("multi_tenancy").source, "mt");
  EXPECT_GT(app.resources.phv_bits, mt.resources.phv_bits);
}

TEST(CompileOptions, EveryHopPlacementRecorded) {
  CompileOptions opts;
  opts.placement = CheckPlacement::kEveryHop;
  const auto c = compile_checker(
      checkers::checker_by_name("valley_free").source, "vf", opts);
  EXPECT_EQ(c.options.placement, CheckPlacement::kEveryHop);
}

TEST(Compile, BadSourceThrowsCompileError) {
  EXPECT_THROW(compile_checker("{ oops } { } { }", "bad"),
               indus::CompileError);
  EXPECT_THROW(compile_checker("header bit<8> p;\n{ p = 1; } { } { }", "bad"),
               indus::CompileError);
}

}  // namespace
}  // namespace hydra::compiler
