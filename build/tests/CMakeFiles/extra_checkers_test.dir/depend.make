# Empty dependencies file for extra_checkers_test.
# This may be replaced when dependencies are built.
