# Empty compiler generated dependencies file for hydra_api.
# This may be replaced when dependencies are built.
