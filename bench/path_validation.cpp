// Regenerates the §5.1 case-study sweep: enumerate source-routed paths on
// the Figure 8 leaf-spine (legal valley-free paths plus sender-bug errant
// paths) and report Hydra's verdict counts — all legal delivered, all
// errant dropped.
//
//   $ ./path_validation
#include <cstdio>
#include <vector>

#include "forwarding/source_route.hpp"
#include "hydra/hydra.hpp"
#include "net/network.hpp"

using namespace hydra;

namespace {

struct Verdicts {
  std::uint64_t delivered = 0;
  std::uint64_t rejected = 0;
};

Verdicts sweep(int leaves, int spines, int hosts_per_leaf) {
  auto fabric = net::make_leaf_spine(leaves, spines, hosts_per_leaf);
  net::Network net(fabric.topo);
  auto sr = std::make_shared<fwd::SourceRouteProgram>();
  for (int sw : fabric.leaves) net.set_program(sw, sr);
  for (int sw : fabric.spines) net.set_program(sw, sr);
  const int dep = net.deploy(compile_library_checker("valley_free"));
  configure_valley_free(net, dep, fabric);

  std::uint64_t legal = 0;
  std::uint64_t errant = 0;
  for (std::size_t sl = 0; sl < fabric.hosts.size(); ++sl) {
    for (std::size_t dl = 0; dl < fabric.hosts.size(); ++dl) {
      for (int si = 0; si < hosts_per_leaf; ++si) {
        for (int di = 0; di < hosts_per_leaf; ++di) {
          const int src = fabric.hosts[sl][static_cast<std::size_t>(si)];
          const int dst = fabric.hosts[dl][static_cast<std::size_t>(di)];
          if (src == dst) continue;
          const int nspines = sl == dl ? 1 : spines;
          for (int sp = 0; sp < nspines; ++sp) {
            auto route = fwd::leaf_spine_route(fabric, src, dst, sp);
            p4rt::Packet p = p4rt::make_udp(1, 2, 3, 4, 64);
            fwd::set_source_route(p, route);
            net.send_from_host(src, std::move(p));
            ++legal;
            // The sender bug: append an extra up/down excursion to every
            // cross-leaf route (a valley).
            if (route.size() == 3) {
              for (int other = 0; other < spines; ++other) {
                if (other == sp) continue;
                std::vector<int> bad = {route[0], route[1],
                                        fabric.leaf_uplink_port(other),
                                        route[1], route[2]};
                p4rt::Packet q = p4rt::make_udp(1, 2, 3, 4, 64);
                fwd::set_source_route(q, bad);
                net.send_from_host(src, std::move(q));
                ++errant;
              }
            }
          }
        }
      }
    }
  }
  net.events().run();
  std::printf("  %dx%d fabric, %d hosts/leaf: %llu legal + %llu errant "
              "paths -> delivered=%llu rejected=%llu %s\n",
              leaves, spines, hosts_per_leaf,
              static_cast<unsigned long long>(legal),
              static_cast<unsigned long long>(errant),
              static_cast<unsigned long long>(net.counters().delivered),
              static_cast<unsigned long long>(net.counters().rejected),
              net.counters().delivered == legal &&
                      net.counters().rejected == errant
                  ? "[exact]"
                  : "[MISMATCH]");
  return {net.counters().delivered, net.counters().rejected};
}

}  // namespace

int main() {
  std::printf("Path validation sweep (§5.1, Figures 7/8): every valley-free "
              "path delivered, every errant path dropped\n\n");
  sweep(2, 2, 2);   // the paper's topology
  sweep(3, 2, 2);
  sweep(4, 4, 2);
  sweep(4, 4, 4);
  return 0;
}
