#include "net/faults.hpp"

#include <algorithm>

namespace hydra::net {

namespace {

// SplitMix64 step — used to derive independent per-site seeds from
// (seed, site) without correlated low bits.
std::uint64_t splitmix(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t site_seed(std::uint64_t seed, std::uint64_t site) {
  std::uint64_t x = seed ^ (site * 0xd1342543de82ef95ULL);
  return splitmix(x);
}

void json_field(std::string& out, const char* key, std::uint64_t v,
                bool last = false) {
  out += "\"";
  out += key;
  out += "\":";
  out += std::to_string(v);
  if (!last) out += ",";
}

}  // namespace

std::string FaultStats::to_json() const {
  std::string out = "{";
  json_field(out, "loss_drops", loss_drops);
  json_field(out, "link_down_drops", link_down_drops);
  json_field(out, "duplicates", duplicates);
  json_field(out, "reorders", reorders);
  json_field(out, "corruptions", corruptions);
  json_field(out, "tele_rejects", tele_rejects);
  json_field(out, "tele_recovered", tele_recovered);
  json_field(out, "cold_suppressed", cold_suppressed);
  json_field(out, "restarts", restarts);
  json_field(out, "flaps", flaps);
  json_field(out, "delayed_pushes", delayed_pushes, /*last=*/true);
  out += "}";
  return out;
}

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint64_t seed,
                             int num_links)
    : plan_(plan),
      seed_(seed),
      ctl_rng_(site_seed(seed, 0xC041701ULL)),
      down_count_(static_cast<std::size_t>(num_links), 0) {
  site_rngs_.reserve(static_cast<std::size_t>(num_links) * 2);
  for (int l = 0; l < num_links; ++l) {
    for (int dir = 0; dir < 2; ++dir) {
      site_rngs_.emplace_back(site_seed(
          seed, 1 + static_cast<std::uint64_t>(l) * 2 +
                    static_cast<std::uint64_t>(dir)));
    }
  }

  outages_ = plan_.failures;
  if (plan_.flap_rate_hz > 0.0 && plan_.horizon_s > 0.0) {
    // Poisson flap schedule per link, precomputed so no draw depends on
    // packet arrival interleaving.
    const double mean_gap = 1.0 / plan_.flap_rate_hz;
    for (int l = 0; l < num_links; ++l) {
      Rng flap_rng(site_seed(seed, 0xF1A90000ULL +
                                       static_cast<std::uint64_t>(l)));
      double t = flap_rng.exponential(mean_gap);
      while (t < plan_.horizon_s) {
        outages_.push_back({l, t, t + plan_.flap_down_s});
        t += plan_.flap_down_s + flap_rng.exponential(mean_gap);
      }
    }
  }
  std::sort(outages_.begin(), outages_.end(),
            [](const LinkFailure& a, const LinkFailure& b) {
              if (a.down_at != b.down_at) return a.down_at < b.down_at;
              return a.link < b.link;
            });
}

LinkFaultAction FaultInjector::on_transmit(int link, int dir,
                                           bool has_tele) {
  LinkFaultAction action;
  if (!link_up(link)) {
    action.drop = true;
    action.drop_reason = "link_down";
    ++stats_.link_down_drops;
    return action;
  }
  Rng& rng = site_rng(link, dir);
  if (plan_.loss > 0.0 && rng.chance(plan_.loss)) {
    action.drop = true;
    action.drop_reason = "fault_loss";
    ++stats_.loss_drops;
    return action;
  }
  if (plan_.corrupt > 0.0 && rng.chance(plan_.corrupt)) {
    // Entropy is drawn unconditionally so the stream position does not
    // depend on whether this particular packet carried telemetry.
    const std::uint64_t entropy = rng.next();
    if (has_tele) {
      action.corrupt = true;
      action.corrupt_entropy = entropy;
      ++stats_.corruptions;
    }
  }
  if (plan_.duplicate > 0.0 && rng.chance(plan_.duplicate)) {
    action.duplicate = true;
    ++stats_.duplicates;
  }
  if (plan_.reorder > 0.0 && rng.chance(plan_.reorder)) {
    action.extra_delay_s = rng.uniform() * plan_.reorder_max_s;
    if (action.extra_delay_s > 0.0) ++stats_.reorders;
  }
  return action;
}

void FaultInjector::link_down_event(int link) {
  ++down_count_[static_cast<std::size_t>(link)];
  ++stats_.flaps;
}

void FaultInjector::link_up_event(int link) {
  int& c = down_count_[static_cast<std::size_t>(link)];
  if (c > 0) --c;
}

double FaultInjector::next_push_delay() {
  double d = plan_.rule_push_delay_s;
  if (plan_.rule_push_jitter_s > 0.0) {
    d += ctl_rng_.uniform() * plan_.rule_push_jitter_s;
  }
  return d;
}

}  // namespace hydra::net
