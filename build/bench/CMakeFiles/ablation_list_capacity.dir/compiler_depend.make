# Empty compiler generated dependencies file for ablation_list_capacity.
# This may be replaced when dependencies are built.
