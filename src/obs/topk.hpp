// Deterministic top-K attribution sketches for the live observability
// plane.
//
// A Space-Saving sketch (Metwally et al.) tracks the K heaviest keys of a
// stream in O(K) memory with a per-key overcount bound (`error`): a miss
// on a full sketch evicts the current minimum and charges the newcomer
// min+w, remembering min as its maximum possible overcount. Every update
// runs on the engines' COMMIT path (main thread, canonical event order),
// so sketch contents — and everything rendered from them — are
// byte-identical across SerialEngine and ParallelEngine at any worker
// count.
//
// Allocation discipline: a sketch allocates exactly twice, at
// construction (slot vector + open-addressed index); add() never
// allocates — eviction reuses the victim's slot and repairs the index
// with backward-shift deletion. `topk_allocations()` is the arena-style
// audit counter: it moves only when a sketch (re)allocates, so a flat
// reading across a measured window proves the attribution hot path is
// allocation-free (same contract as util::arena_allocations()).
//
// TopKAttribution bundles the sketches the daemon exports: per-5-tuple
// flows, per-PFCP-session (keyed by the subscriber's UE address inside a
// configured block — the session identity that survives GTP decap), and
// per-property, each metered over delivered packets / checker rejects /
// reports. Rendered as Prometheus gauge families (`hydra_topk_*` — gauge,
// not counter: an evicted key's count is not monotone across scrapes) and
// as deterministic JSON.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/exporter.hpp"

namespace hydra::obs {

// Heap allocations performed by Space-Saving sketches since process start
// (monotone; construction only — see header comment).
std::uint64_t topk_allocations();

// 128-bit sketch key; domains pack their identity into (hi, lo).
struct TopKKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  bool operator==(const TopKKey& o) const { return hi == o.hi && lo == o.lo; }
};

class SpaceSaving {
 public:
  struct Entry {
    TopKKey key;
    std::uint64_t count = 0;
    std::uint64_t error = 0;  // max overcount inherited at insertion
    std::uint64_t stamp = 0;  // monotone (re)insertion order, tie-break
  };

  // `capacity` (K) must be positive; memory is fixed from here on.
  explicit SpaceSaving(std::size_t capacity);

  void add(const TopKKey& key, std::uint64_t w = 1);

  // Drops `key`'s entry if present (swap-with-last + index repair; no
  // allocation). `total()` is the stream weight observed and is left
  // unchanged — used when a deployment slot is reused for a different
  // property, whose attribution must start empty.
  void erase(const TopKKey& key);

  // Entries ranked heaviest-first; ties broken by (stamp, key) so the
  // order is a pure function of the committed update sequence.
  std::vector<Entry> ranked() const;

  std::uint64_t total() const { return total_; }  // total weight observed
  std::size_t capacity() const { return slots_cap_; }
  std::size_t size() const { return slots_.size(); }
  const std::vector<Entry>& slots() const { return slots_; }
  void clear();

  // Snapshot/restore: replay entries in the order `ranked()`-by-stamp
  // produced them; stamps are re-issued in replay order, preserving every
  // deterministic tie-break. `restore_total` reinstates the stream weight.
  void restore_entry(const TopKKey& key, std::uint64_t count,
                     std::uint64_t error);
  void restore_total(std::uint64_t total) { total_ = total; }

 private:
  static std::uint64_t hash(const TopKKey& key);
  std::size_t probe(const TopKKey& key) const;  // index slot or empty slot
  void index_erase(const TopKKey& key);

  std::size_t slots_cap_ = 0;
  std::size_t mask_ = 0;  // index size - 1 (power of two)
  std::uint64_t total_ = 0;
  std::uint64_t stamp_ = 0;
  std::vector<Entry> slots_;
  // Open-addressed (linear probe) key -> slot map; 0 = empty, else
  // slot index + 1. Sized 2^ceil(log2(4K)) so load factor stays <= 1/2.
  std::vector<std::uint32_t> index_;
};

// Minimal flow identity handed in by the network layer (mirrors
// p4rt::FlowId without depending on it; obs sits below p4rt).
struct TopKFlow {
  bool parsed = false;
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 0;
};

TopKKey pack_flow(const TopKFlow& f);
TopKFlow unpack_flow(const TopKKey& k);

struct TopKConfig {
  std::size_t k = 8;
  // Subscriber (UE) address block: a flow endpoint inside it identifies
  // the PFCP session the packet belongs to. mask == 0 disables session
  // attribution.
  std::uint32_t session_net = 0;
  std::uint32_t session_mask = 0;
};

class TopKAttribution {
 public:
  // `properties` maps deployment id -> property name for labels; rejects
  // and reports arriving for later deployments render as "dep<N>".
  TopKAttribution(TopKConfig cfg, std::vector<std::string> properties);

  // ---- feeders (commit path, main thread only) --------------------------
  void on_delivered(const TopKFlow& flow);
  // `dep_mask` has bit d set for every deployment whose checker rejected
  // the packet this hop (deployments >= 64 aggregate into the flow and
  // session sketches but carry no property attribution).
  void on_rejected(const TopKFlow& flow, std::uint64_t dep_mask);
  void on_report(const TopKFlow& flow, int deployment);

  // Rolling deploy into slot `deployment`: relabels the slot and purges
  // its entries from the property sketches, so a reused deployment id
  // never mixes the old and new property's attribution. Retired slots are
  // NOT purged — their frozen entries keep rendering under the old name
  // until the slot is reused. Also grows the label vector for slots
  // deployed after arming.
  void redefine_property(int deployment, std::string name);

  const TopKConfig& config() const { return cfg_; }

  // ---- export -----------------------------------------------------------
  // Appends `hydra_topk_*` gauge families (samples in sorted label order,
  // empty sketches omitted) for to_prometheus(reg, extra).
  void prom_families(std::vector<PromFamily>& out) const;
  // {"k": ..., "flow": {"packets": {...}, ...}, "session": ..., ...};
  // entries heaviest-first with count/error.
  std::string to_json() const;

  // ---- snapshot/restore -------------------------------------------------
  // Lines "topk <tag> <total>" + "tke <tag> <hi> <lo> <count> <error>"
  // (entries in stamp order). restore_line consumes both kinds; returns
  // false for lines that are not topk state.
  std::string snapshot_text() const;
  bool restore_line(const std::string& line);

  // Test hooks.
  const SpaceSaving& flow_packets() const { return flow_packets_; }
  const SpaceSaving& flow_rejects() const { return flow_rejects_; }
  const SpaceSaving& session_packets() const { return session_packets_; }
  const SpaceSaving& property_rejects() const { return property_rejects_; }

 private:
  bool session_key(const TopKFlow& flow, TopKKey* out) const;
  std::string property_label(const TopKKey& key) const;

  TopKConfig cfg_;
  std::vector<std::string> properties_;
  SpaceSaving flow_packets_;
  SpaceSaving flow_rejects_;
  SpaceSaving flow_reports_;
  SpaceSaving session_packets_;
  SpaceSaving session_rejects_;
  SpaceSaving session_reports_;
  SpaceSaving property_rejects_;
  SpaceSaving property_reports_;
};

}  // namespace hydra::obs
