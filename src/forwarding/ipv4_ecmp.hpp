// IPv4 longest-prefix-match routing with ECMP groups — the fabric's L3
// forwarding (Aether routes IPv4 over the spines with ECMP, §5.2).
//
// One program instance serves every switch: each switch id gets its own
// LPM table whose action data selects an ECMP group; the egress port is
// chosen by a 5-tuple hash, so a flow sticks to one path while flows
// spread across the fabric.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "net/switch_node.hpp"
#include "net/topology.hpp"
#include "p4rt/table.hpp"

namespace hydra::fwd {

class Ipv4EcmpProgram : public net::ForwardingProgram {
 public:
  // Adds a route on `switch_id`: dst/len -> ECMP group of egress ports.
  void add_route(int switch_id, std::uint32_t prefix, int prefix_len,
                 std::vector<int> ports);

  Decision process(p4rt::Packet& pkt, int in_port, int switch_id) override;
  std::string name() const override { return "ipv4-ecmp"; }
  // Route-table lookups are reported under fwd.ipv4_ecmp.routes.* — one
  // aggregate name however many switches this program serves. Each
  // switch's table holds its own handles targeting resolve(switch_id), so
  // the hot path never shares a counter slot across shards (see the
  // state-confinement rule in net/switch_node.hpp).
  void attach_metrics(obs::Registry* registry) override;
  void attach_metrics_sharded(MetricsResolver resolve) override;

  // Flow-affinity safe: process() mutates only the packet (ttl) and the
  // relaxed-atomic drop totals; route tables are read-only at runtime and
  // probed via lookup_shared (thread-local scratch) while concurrent.
  bool concurrent_safe() const override { return true; }
  void set_concurrent(bool on) override { concurrent_ = on; }

  void invalidate_caches() override {
    for (auto& [id, sw] : switches_) sw.routes.invalidate_cache();
  }

  // 5-tuple hash used for ECMP member selection (exposed for tests).
  static std::uint64_t flow_hash(const p4rt::Packet& pkt);

  std::uint64_t ttl_drops() const {
    return ttl_drops_.load(std::memory_order_relaxed);
  }
  std::uint64_t miss_drops() const {
    return miss_drops_.load(std::memory_order_relaxed);
  }

 private:
  struct PerSwitch {
    p4rt::Table routes{"routes",
                       {{p4rt::MatchKind::kLpm, 32}}};
    std::vector<std::vector<int>> groups;
  };
  void wire_switch(int switch_id, PerSwitch& sw);

  std::map<int, PerSwitch> switches_;
  MetricsResolver resolver_;  // empty while observability is off
  bool concurrent_ = false;   // flow-affinity windows active (see above)
  // Program-wide totals bumped from any shard; relaxed atomics keep them
  // deterministic (each switch contributes a schedule-independent count).
  std::atomic<std::uint64_t> ttl_drops_{0};
  std::atomic<std::uint64_t> miss_drops_{0};
};

// Builds and installs leaf-spine routing: each leaf owns 10.0.<leaf+1>.0/24
// with /32 host routes on host-facing ports and an ECMP default towards
// all spines; each spine routes each leaf subnet down its leaf port.
std::shared_ptr<Ipv4EcmpProgram> install_leaf_spine_routing(
    net::Network& net, const net::LeafSpine& fabric);

// Fat-tree routing: edges own /24 host routes + ECMP default up; aggs
// route pod /24s down + ECMP default up to their core group; cores route
// each pod /16 down its pod port.
std::shared_ptr<Ipv4EcmpProgram> install_fat_tree_routing(
    net::Network& net, const net::FatTree& ft);

}  // namespace hydra::fwd
