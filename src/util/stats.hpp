// Statistics helpers used by the evaluation harness: summary statistics,
// empirical CDFs (Figure 12b), and the Student/Welch t-test the paper uses
// to show that Hydra checkers add no statistically significant latency.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace hydra::stats {

// Single-pass running mean / variance (Welford's algorithm).
class Online {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  // sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

Summary summarize(std::vector<double> samples);

// Linear-interpolated percentile over a *sorted* sample vector; q in [0,1].
double percentile_sorted(const std::vector<double>& sorted, double q);

// Empirical CDF evaluated at `points` equally spaced x positions spanning
// [min, max] of the samples. Returns (x, F(x)) pairs.
std::vector<std::pair<double, double>> empirical_cdf(
    std::vector<double> samples, std::size_t points = 50);

struct TTest {
  double t = 0.0;        // test statistic
  double df = 0.0;       // degrees of freedom
  double p_value = 1.0;  // two-sided
};

// Welch's two-sample t-test (unequal variances). This is the statistically
// safe variant of the paper's t-test; for equal-size, similar-variance RTT
// samples it coincides with Student's test.
TTest welch_t_test(const std::vector<double>& a, const std::vector<double>& b);

// Student's pooled-variance two-sample t-test.
TTest student_t_test(const std::vector<double>& a,
                     const std::vector<double>& b);

// CDF of the t distribution with `df` degrees of freedom (via the regularized
// incomplete beta function).
double student_t_cdf(double t, double df);

// Regularized incomplete beta function I_x(a, b).
double incomplete_beta(double a, double b, double x);

}  // namespace hydra::stats
