// Case study 2 (§5.2): application filtering in Aether.
//
// Recreates the full production scenario around Figure 11:
//   * an Aether-like edge: UPF on leaf1 (GTP termination, Applications /
//     Sessions / Terminations tables), edge app server behind leaf2;
//   * an ONOS-like controller speaking per-client PFCP, sharing
//     Applications entries between clients of a slice;
//   * the Hydra application-filtering checker (Figure 9) compiled and
//     linked alongside the UPF.
//
// Timeline: client 1 attaches and uses UDP/81; the operator widens the
// allow rule to UDP/81-82 with a higher priority; client 2 attaches. The
// shared-entry optimization now silently drops client 1's port-81 traffic
// — and Hydra reports the exact 5-tuple and intended action.
//
//   $ ./aether_app_filtering
#include <cstdio>

#include "aether/controller.hpp"
#include "forwarding/ipv4_ecmp.hpp"
#include "forwarding/upf.hpp"
#include "hydra/hydra.hpp"
#include "net/network.hpp"
#include "util/strings.hpp"

using namespace hydra;

namespace {

constexpr std::uint32_t kUe1 = 0x0a640001;  // 10.100.0.1
constexpr std::uint32_t kUe2 = 0x0a640002;  // 10.100.0.2

struct Edge {
  net::LeafSpine fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net{fabric.topo};
  std::shared_ptr<fwd::Ipv4EcmpProgram> routing =
      fwd::install_leaf_spine_routing(net, fabric);
  std::shared_ptr<fwd::UpfProgram> upf =
      std::make_shared<fwd::UpfProgram>(routing);
  int dep;
  aether::AetherController controller;
  std::uint32_t enb_ip, n3_ip = 0x0a0001fe, app_ip;

  Edge()
      : dep(net.deploy(compile_library_checker("application_filtering"))),
        controller(net, upf, dep) {
    net.set_program(fabric.leaves[0], upf);
    enb_ip = net.topo().node(fabric.hosts[0][0]).ip;
    app_ip = net.topo().node(fabric.hosts[1][0]).ip;
  }

  void uplink(std::uint32_t ue, std::uint32_t teid, std::uint16_t port) {
    p4rt::Packet inner = p4rt::make_udp(ue, app_ip, 40000, port, 64);
    net.send_from_host(fabric.hosts[0][0],
                       p4rt::gtpu_encap(inner, enb_ip, n3_ip, teid));
    net.events().run();
  }
};

void show_rules(const aether::Slice& s) {
  for (const auto& r : s.rules) std::printf("    %s\n", r.to_string().c_str());
}

}  // namespace

int main() {
  Edge edge;
  const auto& checker = edge.net.checker(edge.dep);
  std::printf("application-filtering checker (Figure 9): %d LoC Indus -> "
              "%d LoC P4, +%.2f%% PHV\n\n",
              checker.indus_loc, checker.p4_loc,
              checker.resources.phv_percent);

  // Slice definition: deny all (prio 10), allow UDP 81 (prio 20).
  edge.controller.define_slice(aether::example_camera_slice(1));
  std::printf("camera-slice rules:\n");
  show_rules(edge.controller.slice(1));

  std::printf("\n[t0] client 1 attaches (IMSI 123450001, UE %s)\n",
              str::ipv4_to_string(kUe1).c_str());
  edge.controller.attach_client(1, {123450001, kUe1, 1001}, edge.enb_ip,
                                edge.n3_ip);
  edge.uplink(kUe1, 1001, 81);
  std::printf("     client 1 -> app:81  delivered=%llu (expected: works)\n",
              static_cast<unsigned long long>(edge.net.counters().delivered));

  std::printf("\n[t1] operator updates the rule: allow UDP 81-82, prio 30\n");
  aether::Slice updated = aether::example_camera_slice(1);
  updated.rules[1].port_hi = 82;
  updated.rules[1].priority = 30;
  edge.controller.update_slice_rules(1, updated.rules);
  show_rules(edge.controller.slice(1));

  std::printf("\n[t2] client 2 attaches -> ONOS installs a new shared "
              "Applications entry (app id 3)\n");
  edge.controller.attach_client(1, {123450002, kUe2, 1002}, edge.enb_ip,
                                edge.n3_ip);
  edge.uplink(kUe2, 1002, 81);
  std::printf("     client 2 -> app:81  delivered=%llu (new policy works "
              "for the new client)\n",
              static_cast<unsigned long long>(edge.net.counters().delivered));

  std::printf("\n[t3] client 1 sends to app:81 again -- still allowed by "
              "the operator's policy...\n");
  const auto drops_before = edge.upf->termination_drops();
  edge.uplink(kUe1, 1001, 81);
  const bool dropped = edge.upf->termination_drops() == drops_before + 1;
  std::printf("     UPF silently dropped it: %s (the Figure 11 bug)\n",
              dropped ? "YES" : "no");

  if (edge.net.reports().empty()) {
    std::printf("\nno Hydra report -- reproduction FAILED\n");
    return 1;
  }
  const auto& r = edge.net.reports().back();
  std::printf("\nHydra report from switch '%s' (checker %s):\n",
              edge.net.topo().node(r.switch_id).name.c_str(),
              r.checker.c_str());
  std::printf("  ue=%s proto=%llu app=%s port=%llu intended_action=%s\n",
              str::ipv4_to_string(
                  static_cast<std::uint32_t>(r.values[0].value())).c_str(),
              static_cast<unsigned long long>(r.values[1].value()),
              str::ipv4_to_string(
                  static_cast<std::uint32_t>(r.values[2].value())).c_str(),
              static_cast<unsigned long long>(r.values[3].value()),
              r.values[4].value() == 2 ? "allow" : "deny");
  std::printf("  flow=%s  (reported at hop %d of the packet's journey)\n",
              r.flow.to_string().c_str(), r.hop_count);
  std::printf("\nthe checker saw 'intended allow' + 'to_be_dropped' and "
              "reported the inconsistency in real time -- a bug that is\n"
              "invisible to static checking because every individual table "
              "entry is 'correct'.\n");
  return dropped ? 0 : 1;
}
