# Empty dependencies file for checkers_e2e_test.
# This may be replaced when dependencies are built.
