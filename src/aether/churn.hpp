// Streaming million-subscriber session churn for the Aether UPF (§5.2).
//
// Drives a large UE population through PFCP attach/detach churn while a
// fraction of the active sessions send GTP-U uplink traffic — the workload
// that exercises the shared-Applications-table optimization (and its
// teardown path) at scale.
//
// Memory is bounded and slot-indexed: a subscriber's imsi / UE IP / TEID
// are all DERIVED from its slot number, so per-subscriber state reduces to
// the active-set bookkeeping (two uint32 vectors) regardless of how many
// attach/detach cycles run. Packet construction is pooled and in-place, so
// steady-state generation allocates nothing on the hot path (the arena
// audit counter stays flat after warmup).
//
// The generator is one TickTarget driving a superposed Poisson process:
// each tick is a churn event (attach or detach of a random subscriber)
// with probability churn_rate / (churn_rate + packet_rate), else an uplink
// packet from a random active session. Because attach/detach mutate UPF
// and checker tables synchronously from tick(), the generator registers
// itself as a control loop with the network: the parallel engine degrades
// to serial per-event windows, keeping serial-vs-parallel runs
// byte-identical (the same rule closed-loop report callbacks use).
#pragma once

#include <cstdint>
#include <vector>

#include "aether/controller.hpp"
#include "net/event.hpp"
#include "net/network.hpp"
#include "util/rng.hpp"

namespace hydra::aether {

class SessionChurnGenerator : public net::TickTarget {
 public:
  struct Config {
    std::uint32_t sessions = 10000;  // subscriber population (slot count)
    double churn_per_s = 0.0;        // attach/detach events per second
    double packets_per_s = 1000.0;   // uplink packets per second
    std::uint32_t slice_id = 1;
    int enb_host = 0;          // host injecting GTP-U uplinks (the eNB)
    std::uint32_t enb_ip = 0;  // outer GTP-U source
    std::uint32_t n3_ip = 0;   // outer GTP-U destination (UPF N3)
    std::uint32_t app_ip = 0;  // inner destination (application server)
    std::uint16_t app_port = 81;
    int payload_bytes = 64;
    std::uint64_t seed = 1;
  };

  SessionChurnGenerator(net::Network& net, AetherController& ctl,
                        Config cfg);
  ~SessionChurnGenerator() override;

  // Attaches the whole subscriber population up front (control-plane only;
  // schedules no simulation events). Each attach is wall-clock timed into
  // attach_latencies() — the rule-push latency a PFCP establishment sees.
  void prefill();

  void start(double t0, double duration_s);
  void tick(net::SimTime now) override;

  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t attaches() const { return attaches_; }
  std::uint64_t detaches() const { return detaches_; }
  std::size_t active_sessions() const { return active_.size(); }

  // Wall-clock seconds per attach (prefill + churn). Excluded from any
  // deterministic metrics output — sim-domain results never depend on it.
  const std::vector<double>& attach_latencies() const {
    return attach_latencies_;
  }
  void set_latency_sampling(bool on) { sample_latency_ = on; }

  // Slot -> subscriber identity. Derivations, not storage: a slot that
  // detaches and later re-attaches is the same subscriber (same imsi, so
  // the controller's client-id binding is reused).
  std::uint64_t imsi_of(std::uint32_t slot) const {
    return kImsiBase + slot;
  }
  std::uint32_t ue_ip_of(std::uint32_t slot) const { return kUeBase + slot; }
  std::uint32_t teid_of(std::uint32_t slot) const { return 1 + slot; }

 private:
  // UE addresses live in 20.0.0.0/6 — disjoint from the 10.x fabric and
  // host space for populations up to tens of millions.
  static constexpr std::uint64_t kImsiBase = 123450000ULL;
  static constexpr std::uint32_t kUeBase = 0x50000001u;

  void attach_next_free();
  void detach_random();
  void send_uplink();

  net::Network& net_;
  AetherController& ctl_;
  Config cfg_;
  Rng rng_;
  double deadline_ = 0.0;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t attaches_ = 0;
  std::uint64_t detaches_ = 0;
  bool sample_latency_ = true;
  std::vector<std::uint32_t> active_;      // attached slots, unordered
  std::vector<std::uint32_t> free_slots_;  // detached slots, LIFO
  std::vector<double> attach_latencies_;
};

}  // namespace hydra::aether
