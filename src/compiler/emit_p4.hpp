// P4-16 (TNA-flavoured) code generation from CheckerIR — the textual
// artifact a switch toolchain would consume, and the source of Table 1's
// "P4 Output LoC" column. The emitted program contains the telemetry
// header and parser/deparser, one match-action table per control variable,
// registers for sensors, and three control blocks (init / telemetry /
// checker) to be linked into the forwarding pipeline per switch role
// (§4.2): init at the start of ingress on first-hop switches, telemetry in
// egress everywhere, checker at the end of egress on last-hop switches.
#pragma once

#include <string>

#include "compiler/layout.hpp"
#include "ir/ir.hpp"

namespace hydra::compiler {

// Target dialects. kTna is Tofino Native Architecture (the paper's
// hardware target); kV1Model is the BMv2 software-switch architecture,
// useful for Mininet-style functional testing.
enum class P4Dialect { kTna, kV1Model };

std::string emit_p4(const ir::CheckerIR& ir, const TelemetryLayout& layout,
                    P4Dialect dialect = P4Dialect::kTna);

}  // namespace hydra::compiler
