// The checker library: every property from the paper's Table 1 written in
// Indus, plus the valley-free source-routing checker of Figure 7. Sources
// follow the paper's figures verbatim where a figure exists (Figures 1, 2,
// 3, 7, 9), with the header-variable declarations the figures elide
// spelled out.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hydra::checkers {

struct CheckerSpec {
  std::string name;         // stable identifier, e.g. "multi_tenancy"
  std::string description;  // Table 1's description column
  std::string source;       // Indus program text
};

// The eleven Table 1 properties, in the paper's row order.
const std::vector<CheckerSpec>& table1_checkers();

// All checkers (Table 1 plus extras like "valley_free").
const std::vector<CheckerSpec>& all_checkers();

// Throws std::invalid_argument if absent.
const CheckerSpec& checker_by_name(std::string_view name);

}  // namespace hydra::checkers
