file(REMOVE_RECURSE
  "libhydra_ltlf.a"
)
