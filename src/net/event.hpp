// Discrete-event simulation core. Time is in seconds (double); events with
// equal timestamps fire in scheduling order (stable), which keeps runs
// deterministic for a fixed seed.
//
// Events are TYPED, not closures-by-default. At million-session scale a
// `std::function` per scheduled event is a malloc per packet per link
// traversal; the hot-path kinds instead carry plain data (switch id, port,
// and a 32-bit arena handle to the pooled packet — see util/arena.hpp and
// Network's packet pool):
//
//   * kPacketSend  — a packet arriving at a node after a link traversal;
//   * kSwitchWork  — a packet due for pipeline processing at a switch (or,
//                    rarely, a control op for that switch), carried as data
//                    so an execution engine can shard it across workers;
//   * kTick        — a periodic generator callback (TickTarget), replacing
//                    the self-rescheduling closures traffic sources used;
//   * kClosure     — the general-purpose escape hatch (tests, control
//                    logic, fault arming); still a std::function.
//
// The queue itself never dereferences packet/control handles — only the
// Network (which owns the arenas) and its engines do. kClosure, kTick and
// kPacketSend live in the closure heap; kSwitchWork in the switch heap;
// both heaps share one seq stream so merging the tops by (time, seq)
// reproduces the exact one-heap pop order (the PR-6 invariant the
// parallel engine's commit order is built on).
//
// Draining is delegated to an EventExecutor (see net/engine.hpp) when one
// is installed; net::Network installs a SerialEngine by default. A bare
// EventQueue with no executor drains itself one event at a time and can
// run closures and ticks; packet/switch kinds need the owning Network.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "util/bitvec.hpp"

namespace hydra::net {

using SimTime = double;

// Arena handles into the Network-owned pools (util::Arena<T>::Handle).
// 32 bits, stable across slab growth; kNullHandle means "none".
using PacketHandle = std::uint32_t;
using ControlHandle = std::uint32_t;
inline constexpr std::uint32_t kNullHandle = 0xffffffffu;

// A control-plane operation targeting ONE switch's checker state. Routed
// through the switch-work channel (not a generic closure) on purpose: a
// closure mutating switch state mid-window would race with the parallel
// engine's compute workers AND diverge from serial execution order.
// Carried as switch work, the operation is sharded to the worker that owns
// the switch and applied in (time, seq) order within that shard — so
// register wipes and delayed rule installs land between that switch's hops
// exactly as they would under the serial engine. Used by the
// fault-injection subsystem (switch restarts, delayed rule pushes).
// Instances are pooled in the Network's control arena and referenced by
// ControlHandle.
//
// kSwap flips one deployment slot's init stamping on one switch — the
// per-switch leg of a rolling deploy/undeploy. Because it rides the same
// sharded, (time, seq)-ordered channel as restarts, the flip lands between
// that switch's hops identically under every engine, and packets already
// carrying frames keep executing against the generation they were stamped
// with.
struct ControlOp {
  enum class Kind { kRestart, kDictInsert, kSwap };
  Kind kind = Kind::kRestart;
  // kDictInsert payload: an exact-match entry for one checker table.
  // kSwap payload: `deployment` is the slot, `enable` the new state.
  int deployment = -1;
  bool enable = false;
  std::string var;
  std::vector<BitVec> key;
  std::vector<BitVec> value;
};

enum class EventKind : std::uint8_t {
  kClosure = 0,
  kTick,
  kPacketSend,
  kSwitchWork,
};

// A periodic event target: traffic generators implement this instead of
// capturing themselves in per-send closures. The target reschedules itself
// from inside tick() (via schedule_tick_in), so steady-state generation
// allocates nothing.
class TickTarget {
 public:
  virtual ~TickTarget() = default;
  virtual void tick(SimTime now) = 0;
};

// The hot-path payload: one packet at one node. For kSwitchWork, `sw` is
// the switch and `in_port` its ingress port (ctl != kNullHandle marks a
// control op instead; pkt unused). For kPacketSend, `sw`/`in_port` name
// the DESTINATION node and port of the link traversal. Trivially copyable
// — 16 bytes, no heap.
struct SwitchWork {
  int sw = -1;
  int in_port = -1;
  PacketHandle pkt = kNullHandle;
  ControlHandle ctl = kNullHandle;
};

class EventQueue;

// Drains the queue up to a time limit. Implemented by the execution
// engines; installed via EventQueue::set_executor.
class EventExecutor {
 public:
  virtual ~EventExecutor() = default;
  virtual void drain(EventQueue& queue, SimTime limit) = 0;
};

class EventQueue {
 public:
  // One scheduled event. `fn` is engaged only for kClosure; `tick` only
  // for kTick; `work` for the packet/switch kinds.
  struct Item {
    SimTime t = 0.0;
    std::uint64_t seq = 0;
    EventKind kind = EventKind::kClosure;
    std::function<void()> fn;
    TickTarget* tick = nullptr;
    SwitchWork work;

    bool is_switch_work() const { return kind == EventKind::kSwitchWork; }
  };

  SimTime now() const { return now_; }

  void schedule_at(SimTime t, std::function<void()> fn);
  void schedule_in(SimTime delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }
  // Schedules target->tick(t) at time t. The target must outlive the event
  // (generators own their lifetime; see net/traffic.hpp).
  void schedule_tick_at(SimTime t, TickTarget* target);
  void schedule_tick_in(SimTime delay, TickTarget* target) {
    schedule_tick_at(now_ + delay, target);
  }
  // Schedules delivery of pooled packet `pkt` at node `dest`'s port
  // `dest_port` (a link arrival; the Network resolves host vs switch).
  void schedule_packet_at(SimTime t, int dest, int dest_port,
                          PacketHandle pkt);
  void schedule_packet_in(SimTime delay, int dest, int dest_port,
                          PacketHandle pkt) {
    schedule_packet_at(now_ + delay, dest, dest_port, pkt);
  }
  // Schedules pipeline processing of pooled packet `pkt` at switch `sw`.
  void schedule_switch_at(SimTime t, int sw, int in_port, PacketHandle pkt);
  void schedule_switch_in(SimTime delay, int sw, int in_port,
                          PacketHandle pkt) {
    schedule_switch_at(now_ + delay, sw, in_port, pkt);
  }
  // Schedules a control operation on switch `sw`'s shard (see ControlOp).
  void schedule_control_at(SimTime t, int sw, ControlHandle op);

  bool empty() const { return cl_heap_.empty() && sw_heap_.empty(); }
  std::size_t pending() const { return cl_heap_.size() + sw_heap_.size(); }

  // Runs events until the queue is empty or `t` is passed; `now()` advances
  // to at most t. Delegates to the installed executor, if any.
  void run_until(SimTime t);
  void run();  // until empty

  // ---- executor-facing primitives ---------------------------------------
  // The executor owns the clock while draining: it must advance_now() to
  // each item's timestamp before executing/committing it, in (t, seq)
  // order, so handler-visible time matches serial execution exactly.
  void set_executor(EventExecutor* executor) { executor_ = executor; }
  bool has_ready(SimTime limit) const {
    return !empty() && next_time() <= limit;
  }
  SimTime next_time() const;  // earliest pending timestamp (queue non-empty)
  // Earliest pending closure-heap / switch-work timestamp, or +infinity
  // when that kind has nothing pending. The parallel engine's adaptive
  // lookahead derives its sound window-extension bound from these: a
  // closure-heap event at time c (closure, tick, or packet arrival) can
  // spawn switch work no earlier than c + lookahead, and a switch commit
  // at time s no earlier than s + min-link-delay + lookahead (see
  // net/engine.hpp). The queue keeps the two kinds in separate heaps so
  // both reads are O(1).
  SimTime next_closure_time() const;
  SimTime next_switch_time() const;
  // Pops the earliest item without advancing now().
  Item pop_next();
  // Pops every item with t <= limit that falls in [t0, window_end), where
  // t0 is the earliest pending timestamp; the t == t0 group is always
  // included even if window_end <= t0. Appends to `out` in (t, seq) order.
  void pop_window(SimTime limit, SimTime window_end, std::vector<Item>& out);
  void advance_now(SimTime t) { now_ = t; }

 private:
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };
  using Heap = std::priority_queue<Item, std::vector<Item>, Later>;

  void run_self(SimTime t);  // executor-free drain (standalone queues)
  // True when the next merged (t, seq) pop comes from the switch heap.
  bool switch_heap_first() const;
  static Item pop_heap_top(Heap& heap);

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  // Split by kind; seq is a single shared stream, so merging the two tops
  // by (t, seq) reproduces the exact one-heap pop order. Closure heap:
  // kClosure + kTick + kPacketSend; switch heap: kSwitchWork.
  Heap cl_heap_;
  Heap sw_heap_;
  EventExecutor* executor_ = nullptr;
};

}  // namespace hydra::net
