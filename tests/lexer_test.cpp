// Unit tests for the Indus lexer.
#include <gtest/gtest.h>

#include "indus/lexer.hpp"

namespace hydra::indus {
namespace {

std::vector<Token> lex(const std::string& src, Diagnostics* diags = nullptr) {
  Diagnostics local;
  Diagnostics& d = diags != nullptr ? *diags : local;
  Lexer lexer(src, d);
  auto tokens = lexer.lex_all();
  if (diags == nullptr) {
    EXPECT_FALSE(local.has_errors()) << local.to_string();
  }
  return tokens;
}

TEST(Lexer, EmptyInputYieldsEof) {
  const auto toks = lex("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, Tok::kEof);
}

TEST(Lexer, Keywords) {
  const auto toks = lex("tele sensor header control if elsif else for in "
                        "reject report pass true false bit bool set dict");
  const Tok expected[] = {
      Tok::kTele, Tok::kSensor, Tok::kHeader, Tok::kControl, Tok::kIf,
      Tok::kElsif, Tok::kElse, Tok::kFor, Tok::kIn, Tok::kReject,
      Tok::kReport, Tok::kPass, Tok::kTrue, Tok::kFalse, Tok::kBitKw,
      Tok::kBoolKw, Tok::kSetKw, Tok::kDictKw, Tok::kEof};
  ASSERT_EQ(toks.size(), std::size(expected));
  for (std::size_t i = 0; i < toks.size(); ++i) {
    EXPECT_EQ(toks[i].kind, expected[i]) << "token " << i;
  }
}

TEST(Lexer, IdentifiersMayContainKeywordPrefixes) {
  const auto toks = lex("telemetry reporter iff in_port");
  EXPECT_EQ(toks[0].kind, Tok::kIdent);
  EXPECT_EQ(toks[0].text, "telemetry");
  EXPECT_EQ(toks[1].text, "reporter");
  EXPECT_EQ(toks[2].text, "iff");
  EXPECT_EQ(toks[3].text, "in_port");
}

TEST(Lexer, DecimalHexBinaryLiterals) {
  const auto toks = lex("42 0x2A 0b101010");
  EXPECT_EQ(toks[0].number, 42u);
  EXPECT_EQ(toks[1].number, 42u);
  EXPECT_EQ(toks[2].number, 42u);
}

TEST(Lexer, CompoundOperators) {
  const auto toks = lex("== != <= >= && || << >> += -=");
  const Tok expected[] = {Tok::kEq, Tok::kNe, Tok::kLe, Tok::kGe,
                          Tok::kAndAnd, Tok::kOrOr, Tok::kShl, Tok::kShr,
                          Tok::kPlusAssign, Tok::kMinusAssign, Tok::kEof};
  ASSERT_EQ(toks.size(), std::size(expected));
  for (std::size_t i = 0; i < toks.size(); ++i) {
    EXPECT_EQ(toks[i].kind, expected[i]) << "token " << i;
  }
}

TEST(Lexer, LineAndBlockComments) {
  const auto toks = lex("a // comment with * tokens\nb /* multi\nline */ c");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[2].text, "c");
}

TEST(Lexer, UnterminatedBlockCommentIsError) {
  Diagnostics diags;
  lex("a /* never closed", &diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Lexer, AnnotationString) {
  const auto toks = lex("@\"hdr.ipv4.src_addr\"");
  ASSERT_GE(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, Tok::kAt);
  EXPECT_EQ(toks[1].kind, Tok::kString);
  EXPECT_EQ(toks[1].text, "hdr.ipv4.src_addr");
}

TEST(Lexer, UnterminatedStringIsError) {
  Diagnostics diags;
  lex("@\"oops", &diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Lexer, UnknownCharacterIsErrorButLexingContinues) {
  Diagnostics diags;
  const auto toks = lex("a $ b", &diags);
  EXPECT_TRUE(diags.has_errors());
  ASSERT_EQ(toks.size(), 3u);  // a, b, eof
  EXPECT_EQ(toks[1].text, "b");
}

TEST(Lexer, TracksLineAndColumn) {
  const auto toks = lex("a\n  b");
  EXPECT_EQ(toks[0].loc.line, 1);
  EXPECT_EQ(toks[0].loc.col, 1);
  EXPECT_EQ(toks[1].loc.line, 2);
  EXPECT_EQ(toks[1].loc.col, 3);
}

TEST(Lexer, NestedGenericsProduceShiftToken) {
  // The raw lexer sees '>>'; the parser splits it in type context.
  const auto toks = lex("dict<bit<8>,bit<8>>");
  bool saw_shr = false;
  for (const auto& t : toks) saw_shr = saw_shr || t.kind == Tok::kShr;
  EXPECT_TRUE(saw_shr);
}

}  // namespace
}  // namespace hydra::indus
