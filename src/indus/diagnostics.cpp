#include "indus/diagnostics.hpp"

namespace hydra::indus {

std::string Diagnostic::to_string() const {
  const char* tag = severity == Severity::kError ? "error" : "warning";
  return loc.to_string() + ": " + tag + ": " + message;
}

void Diagnostics::error(Loc loc, std::string message) {
  items_.push_back({Severity::kError, loc, std::move(message)});
  ++error_count_;
}

void Diagnostics::warning(Loc loc, std::string message) {
  items_.push_back({Severity::kWarning, loc, std::move(message)});
}

std::string Diagnostics::to_string() const {
  std::string out;
  for (const auto& d : items_) {
    out += d.to_string();
    out += '\n';
  }
  return out;
}

void Diagnostics::throw_if_errors(const std::string& phase) const {
  if (has_errors()) {
    throw CompileError(phase + " failed:\n" + to_string());
  }
}

}  // namespace hydra::indus
