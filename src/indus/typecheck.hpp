// Indus type checker (§3.2). Enforces:
//   * every variable is declared exactly once, every use is declared;
//   * header/control variables are read-only (the non-interference property:
//     a checker cannot alter forwarding behaviour except by reject);
//   * tele/sensor variables are read-write; only tele arrays can be pushed;
//   * reject may appear only in the checker block; report in any block;
//   * dictionary lookups are keyed with the declared key type;
//   * for loops iterate typed fixed-size arrays, guaranteeing termination;
//   * strong typing across operators (bits with bits, bool with bool).
//
// Bit widths convert implicitly (values are masked on assignment) — the
// paper's examples freely mix widths, e.g. `left_load += packet_length`.
#pragma once

#include <map>
#include <string>

#include "indus/ast.hpp"
#include "indus/diagnostics.hpp"

namespace hydra::indus {

// Built-in read-only variables every program may reference without
// declaring: `last_hop`/`first_hop` (bool) and `packet_length` (bit<32>).
struct BuiltinVar {
  const char* name;
  TypeKind kind;
  int width;
};

struct VarInfo {
  VarKind kind = VarKind::kTele;
  TypePtr type;
  std::string annotation;  // header binding in the forwarding program
  bool builtin = false;
  const Expr* init = nullptr;  // declaration initializer, may be null
};

class SymbolTable {
 public:
  // Returns false if the name already exists.
  bool declare(const std::string& name, VarInfo info);
  const VarInfo* lookup(const std::string& name) const;
  const std::map<std::string, VarInfo>& all() const { return vars_; }

 private:
  std::map<std::string, VarInfo> vars_;
};

enum class BlockRole { kInit, kTelemetry, kChecker };

// Type checks `program` in place (filling Expr::type) and returns the symbol
// table. All problems are reported into `diags`.
SymbolTable typecheck(Program& program, Diagnostics& diags);

// Parses and type checks; throws CompileError on any diagnostic error.
Program parse_and_check(const std::string& source);

}  // namespace hydra::indus
