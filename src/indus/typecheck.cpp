#include "indus/typecheck.hpp"

#include "indus/parser.hpp"

namespace hydra::indus {

bool SymbolTable::declare(const std::string& name, VarInfo info) {
  return vars_.emplace(name, std::move(info)).second;
}

const VarInfo* SymbolTable::lookup(const std::string& name) const {
  const auto it = vars_.find(name);
  return it == vars_.end() ? nullptr : &it->second;
}

namespace {

// bit widths convert implicitly; everything else must match structurally.
bool compatible(const TypePtr& a, const TypePtr& b) {
  if (!a || !b) return false;
  if (a->is_bits() && b->is_bits()) return true;
  if (a->is_bool() && b->is_bool()) return true;
  if (a->is_tuple() && b->is_tuple()) {
    if (a->members().size() != b->members().size()) return false;
    for (std::size_t i = 0; i < a->members().size(); ++i) {
      if (!compatible(a->members()[i], b->members()[i])) return false;
    }
    return true;
  }
  return a->equals(*b);
}

class Checker {
 public:
  Checker(Program& program, Diagnostics& diags)
      : program_(program), diags_(diags) {}

  SymbolTable run() {
    declare_builtins();
    for (auto& d : program_.decls) check_decl(d);
    check_block_ptr(program_.init_block, BlockRole::kInit);
    check_block_ptr(program_.tele_block, BlockRole::kTelemetry);
    check_block_ptr(program_.check_block, BlockRole::kChecker);
    return std::move(symtab_);
  }

 private:
  void declare_builtins() {
    VarInfo last_hop{VarKind::kHeader, Type::boolean(), "std.last_hop", true,
                     nullptr};
    VarInfo first_hop{VarKind::kHeader, Type::boolean(), "std.first_hop",
                      true, nullptr};
    VarInfo pkt_len{VarKind::kHeader, Type::bits(32), "std.packet_length",
                    true, nullptr};
    symtab_.declare("last_hop", std::move(last_hop));
    symtab_.declare("first_hop", std::move(first_hop));
    symtab_.declare("packet_length", std::move(pkt_len));
  }

  void check_decl(Decl& d) {
    if (symtab_.lookup(d.name) != nullptr) {
      diags_.error(d.loc, "duplicate declaration of '" + d.name + "'");
      return;
    }
    if (d.init) {
      if (d.kind == VarKind::kHeader || d.kind == VarKind::kControl) {
        diags_.error(d.loc, var_kind_name(d.kind) +
                                std::string(" variable '") + d.name +
                                "' is read-only and cannot be initialized "
                                "in the program");
      } else {
        const TypePtr t = check_expr(*d.init, BlockRole::kInit);
        if (t && !compatible(d.type, t)) {
          diags_.error(d.init->loc,
                       "initializer type " + t->to_string() +
                           " does not match declared type " +
                           d.type->to_string());
        }
        if (!is_constant(*d.init)) {
          diags_.error(d.init->loc,
                       "declaration initializers must be constant; compute "
                       "dynamic values in the init block instead");
        }
      }
    }
    if (d.kind == VarKind::kSensor && !d.type->is_scalar()) {
      diags_.error(d.loc, "sensor variables must be scalar (registers): '" +
                              d.name + "' has type " + d.type->to_string());
    }
    if (d.kind == VarKind::kHeader && !d.type->is_scalar()) {
      diags_.error(d.loc, "header variables must be scalar: '" + d.name +
                              "' has type " + d.type->to_string());
    }
    if (d.kind == VarKind::kTele && (d.type->is_dict() || d.type->is_set())) {
      diags_.error(d.loc,
                   "tele variables travel on the packet and cannot be "
                   "dicts or sets: '" +
                       d.name + "'");
    }
    VarInfo info{d.kind, d.type, d.annotation, false, d.init.get()};
    symtab_.declare(d.name, std::move(info));
  }

  bool is_constant(const Expr& e) const {
    switch (e.kind) {
      case ExprKind::kNumber:
      case ExprKind::kBoolLit:
        return true;
      case ExprKind::kUnary:
        return is_constant(*e.args[0]);
      case ExprKind::kBinary:
        return is_constant(*e.args[0]) && is_constant(*e.args[1]);
      case ExprKind::kTuple: {
        for (const auto& a : e.args) {
          if (!is_constant(*a)) return false;
        }
        return true;
      }
      default:
        return false;
    }
  }

  void check_block_ptr(StmtPtr& block, BlockRole role) {
    if (!block) {
      diags_.error({}, "missing program block");
      return;
    }
    check_stmt(*block, role);
  }

  void check_stmt(Stmt& s, BlockRole role) {
    switch (s.kind) {
      case StmtKind::kPass:
        return;
      case StmtKind::kBlock:
        for (auto& child : s.body) check_stmt(*child, role);
        return;
      case StmtKind::kAssign:
        check_assign(s, role);
        return;
      case StmtKind::kIf: {
        for (auto& arm : s.arms) {
          const TypePtr t = check_expr(*arm.cond, role);
          if (t && !t->is_bool()) {
            diags_.error(arm.cond->loc, "if condition must be bool, got " +
                                            t->to_string());
          }
          check_stmt(*arm.body, role);
        }
        if (s.else_body) check_stmt(*s.else_body, role);
        return;
      }
      case StmtKind::kFor:
        check_for(s, role);
        return;
      case StmtKind::kPush:
        check_push(s, role);
        return;
      case StmtKind::kReport:
        for (auto& a : s.report_args) check_expr(*a, role);
        return;
      case StmtKind::kReject:
        if (role != BlockRole::kChecker) {
          diags_.error(s.loc,
                       "'reject' is only allowed in the checker block; use a "
                       "tele flag and reject at the last hop");
        }
        return;
    }
  }

  // Returns the variable at the root of an lvalue path, or nullptr.
  const Expr* lvalue_root(const Expr& e) const {
    if (e.kind == ExprKind::kVar) return &e;
    if (e.kind == ExprKind::kIndex) return lvalue_root(*e.args[0]);
    return nullptr;
  }

  void check_assign(Stmt& s, BlockRole role) {
    const Expr* root = lvalue_root(*s.target);
    if (root == nullptr) {
      diags_.error(s.target->loc, "assignment target must be a variable or "
                                  "array element");
      check_expr(*s.value, role);
      return;
    }
    if (loop_vars_.count(root->name) != 0U) {
      diags_.error(s.target->loc,
                   "loop variable '" + root->name + "' is read-only");
    }
    const VarInfo* info = symtab_.lookup(root->name);
    if (info != nullptr && (info->kind == VarKind::kHeader ||
                            info->kind == VarKind::kControl)) {
      diags_.error(s.target->loc,
                   std::string(var_kind_name(info->kind)) + " variable '" +
                       root->name +
                       "' is read-only; Indus checkers must not interfere "
                       "with forwarding state");
    }
    const TypePtr target_t = check_expr(*s.target, role);
    const TypePtr value_t = check_expr(*s.value, role);
    if (target_t && value_t && !compatible(target_t, value_t)) {
      diags_.error(s.loc, "cannot assign " + value_t->to_string() + " to " +
                              target_t->to_string());
    }
    if (s.assign_op != AssignOp::kSet && target_t && !target_t->is_bits()) {
      diags_.error(s.loc, "compound assignment requires a bit<n> target");
    }
  }

  void check_for(Stmt& s, BlockRole role) {
    if (s.loop_vars.size() != s.iterables.size()) return;  // parser reported
    std::vector<std::pair<std::string, TypePtr>> bindings;
    int common_size = -1;
    for (std::size_t i = 0; i < s.iterables.size(); ++i) {
      const TypePtr t = check_expr(*s.iterables[i], role);
      if (!t) continue;
      if (!t->is_array()) {
        diags_.error(s.iterables[i]->loc,
                     "for loops iterate over fixed-size arrays, got " +
                         t->to_string());
        continue;
      }
      if (common_size == -1) {
        common_size = t->array_size();
      } else if (common_size != t->array_size()) {
        diags_.error(s.iterables[i]->loc,
                     "parallel iteration requires equal array sizes (" +
                         std::to_string(common_size) + " vs " +
                         std::to_string(t->array_size()) + ")");
      }
      bindings.emplace_back(s.loop_vars[i], t->element());
    }
    std::vector<std::pair<std::string, TypePtr>> saved;
    for (const auto& [name, type] : bindings) {
      // Shadowing an existing variable is allowed — the paper's Figure 2
      // iterates `for (left_load, right_load in ...)` over arrays while
      // sensors of the same names exist. The loop variable wins inside
      // the body.
      const auto prev = loop_vars_.find(name);
      if (prev != loop_vars_.end()) saved.emplace_back(name, prev->second);
      if (symtab_.lookup(name) != nullptr) {
        diags_.warning(s.loc, "loop variable '" + name +
                                  "' shadows an existing variable");
      }
      loop_vars_[name] = type;
    }
    check_stmt(*s.body[0], role);
    for (const auto& [name, type] : bindings) loop_vars_.erase(name);
    for (auto& [name, type] : saved) loop_vars_[name] = type;
  }

  void check_push(Stmt& s, BlockRole role) {
    const TypePtr list_t = check_expr(*s.push_list, role);
    const TypePtr value_t = check_expr(*s.push_value, role);
    const Expr* root = lvalue_root(*s.push_list);
    if (root != nullptr) {
      const VarInfo* info = symtab_.lookup(root->name);
      if (info != nullptr && info->kind != VarKind::kTele) {
        diags_.error(s.loc, "push is only supported on tele arrays; '" +
                                root->name + "' is " +
                                var_kind_name(info->kind));
      }
    }
    if (list_t && !list_t->is_array()) {
      diags_.error(s.push_list->loc,
                   "push target must be an array, got " + list_t->to_string());
      return;
    }
    if (list_t && value_t && !compatible(list_t->element(), value_t)) {
      diags_.error(s.push_value->loc,
                   "cannot push " + value_t->to_string() + " onto " +
                       list_t->to_string());
    }
  }

  TypePtr check_expr(Expr& e, BlockRole role) {
    const TypePtr t = infer_expr(e, role);
    e.type = t;
    return t;
  }

  TypePtr infer_expr(Expr& e, BlockRole role) {
    switch (e.kind) {
      case ExprKind::kNumber:
        // Literals are width-polymorphic; the backend narrows as needed.
        return Type::bits(64);
      case ExprKind::kBoolLit:
        return Type::boolean();
      case ExprKind::kVar: {
        const auto loop_it = loop_vars_.find(e.name);
        if (loop_it != loop_vars_.end()) return loop_it->second;
        const VarInfo* info = symtab_.lookup(e.name);
        if (info == nullptr) {
          diags_.error(e.loc, "use of undeclared variable '" + e.name + "'");
          return nullptr;
        }
        return info->type;
      }
      case ExprKind::kUnary: {
        const TypePtr t = check_expr(*e.args[0], role);
        if (!t) return nullptr;
        switch (e.unop) {
          case UnOp::kNot:
            if (!t->is_bool()) {
              diags_.error(e.loc, "'!' requires bool, got " + t->to_string());
              return Type::boolean();
            }
            return Type::boolean();
          case UnOp::kBitNot:
          case UnOp::kNeg:
            if (!t->is_bits()) {
              diags_.error(e.loc, std::string("'") + unop_name(e.unop) +
                                      "' requires bit<n>, got " +
                                      t->to_string());
            }
            return t;
        }
        return t;
      }
      case ExprKind::kBinary:
        return infer_binary(e, role);
      case ExprKind::kIndex:
        return infer_index(e, role);
      case ExprKind::kTuple: {
        std::vector<TypePtr> members;
        bool ok = true;
        for (auto& a : e.args) {
          const TypePtr t = check_expr(*a, role);
          if (!t) ok = false;
          members.push_back(t ? t : Type::bits(32));
        }
        return ok ? Type::tuple(std::move(members)) : nullptr;
      }
      case ExprKind::kCall:
        return infer_call(e, role);
      case ExprKind::kIn: {
        const TypePtr needle = check_expr(*e.args[0], role);
        const TypePtr hay = check_expr(*e.args[1], role);
        if (hay && !hay->is_array() && !hay->is_set()) {
          diags_.error(e.loc, "'in' requires an array or set on the right, "
                              "got " + hay->to_string());
          return Type::boolean();
        }
        if (hay && needle && !compatible(hay->element(), needle)) {
          diags_.error(e.loc, "'in' element type mismatch: " +
                                  needle->to_string() + " vs " +
                                  hay->element()->to_string());
        }
        return Type::boolean();
      }
    }
    return nullptr;
  }

  TypePtr infer_binary(Expr& e, BlockRole role) {
    const TypePtr lhs = check_expr(*e.args[0], role);
    const TypePtr rhs = check_expr(*e.args[1], role);
    if (!lhs || !rhs) return result_of(e.binop, lhs, rhs);
    switch (e.binop) {
      case BinOp::kAdd: case BinOp::kSub: case BinOp::kMul:
      case BinOp::kDiv: case BinOp::kMod: case BinOp::kBitAnd:
      case BinOp::kBitOr: case BinOp::kBitXor: case BinOp::kShl:
      case BinOp::kShr:
        if (!lhs->is_bits() || !rhs->is_bits()) {
          diags_.error(e.loc, std::string("'") + binop_name(e.binop) +
                                  "' requires bit<n> operands, got " +
                                  lhs->to_string() + " and " +
                                  rhs->to_string());
        }
        break;
      case BinOp::kLt: case BinOp::kLe: case BinOp::kGt: case BinOp::kGe:
        if (!lhs->is_bits() || !rhs->is_bits()) {
          diags_.error(e.loc, std::string("'") + binop_name(e.binop) +
                                  "' requires bit<n> operands, got " +
                                  lhs->to_string() + " and " +
                                  rhs->to_string());
        }
        break;
      case BinOp::kEq: case BinOp::kNe:
        if (!compatible(lhs, rhs)) {
          diags_.error(e.loc, "cannot compare " + lhs->to_string() + " with " +
                                  rhs->to_string());
        }
        break;
      case BinOp::kAnd: case BinOp::kOr:
        if (!lhs->is_bool() || !rhs->is_bool()) {
          diags_.error(e.loc, std::string("'") + binop_name(e.binop) +
                                  "' requires bool operands, got " +
                                  lhs->to_string() + " and " +
                                  rhs->to_string());
        }
        break;
    }
    return result_of(e.binop, lhs, rhs);
  }

  static TypePtr result_of(BinOp op, const TypePtr& lhs, const TypePtr& rhs) {
    switch (op) {
      case BinOp::kEq: case BinOp::kNe: case BinOp::kLt: case BinOp::kLe:
      case BinOp::kGt: case BinOp::kGe: case BinOp::kAnd: case BinOp::kOr:
        return Type::boolean();
      default: {
        const int lw = lhs && lhs->is_bits() ? lhs->bit_width() : 32;
        const int rw = rhs && rhs->is_bits() ? rhs->bit_width() : 32;
        return Type::bits(std::max(lw, rw));
      }
    }
  }

  TypePtr infer_index(Expr& e, BlockRole role) {
    const TypePtr base = check_expr(*e.args[0], role);
    const TypePtr index = check_expr(*e.args[1], role);
    if (!base) return nullptr;
    if (base->is_array()) {
      if (index && !index->is_bits()) {
        diags_.error(e.args[1]->loc,
                     "array index must be bit<n>, got " + index->to_string());
      }
      return base->element();
    }
    if (base->is_dict()) {
      if (index && !compatible(base->key(), index)) {
        diags_.error(e.args[1]->loc, "dict key type mismatch: expected " +
                                         base->key()->to_string() + ", got " +
                                         index->to_string());
      }
      return base->value();
    }
    diags_.error(e.loc,
                 "only arrays and dicts can be indexed, got " +
                     base->to_string());
    return nullptr;
  }

  TypePtr infer_call(Expr& e, BlockRole role) {
    if (e.name == "abs") {
      if (e.args.size() != 1) {
        diags_.error(e.loc, "abs() takes exactly one argument");
        return Type::bits(32);
      }
      const TypePtr t = check_expr(*e.args[0], role);
      if (t && !t->is_bits()) {
        diags_.error(e.loc, "abs() requires bit<n>, got " + t->to_string());
      }
      return t ? t : Type::bits(32);
    }
    if (e.name == "length") {
      if (e.args.size() != 1) {
        diags_.error(e.loc, "length() takes exactly one argument");
        return Type::bits(32);
      }
      const TypePtr t = check_expr(*e.args[0], role);
      if (t && !t->is_array()) {
        diags_.error(e.loc,
                     "length() requires an array, got " + t->to_string());
      }
      return Type::bits(32);
    }
    diags_.error(e.loc, "unknown function '" + e.name + "'");
    for (auto& a : e.args) check_expr(*a, role);
    return nullptr;
  }

  Program& program_;
  Diagnostics& diags_;
  SymbolTable symtab_;
  std::map<std::string, TypePtr> loop_vars_;
};

}  // namespace

SymbolTable typecheck(Program& program, Diagnostics& diags) {
  Checker checker(program, diags);
  return checker.run();
}

Program parse_and_check(const std::string& source) {
  Diagnostics diags;
  Program p = parse_indus(source, diags);
  diags.throw_if_errors("parse");
  typecheck(p, diags);
  diags.throw_if_errors("typecheck");
  return p;
}

}  // namespace hydra::indus
