// Random LTLf formulas and traces for the Theorem 3.1 property tests.
#pragma once

#include "ltlf/formula.hpp"
#include "util/rng.hpp"

namespace hydra::ltlf {

// A random formula over `num_atoms` atoms with operator depth <= max_depth.
FormulaPtr random_formula(Rng& rng, int num_atoms, int max_depth);

// A random trace of `length` events over `num_atoms` atoms.
Trace random_trace(Rng& rng, int num_atoms, int length);

}  // namespace hydra::ltlf
