#include "obs/httpd.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace hydra::obs {

void SnapshotPublisher::publish(LiveSnapshot snap) {
  auto next = std::make_shared<const LiveSnapshot>(std::move(snap));
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = next;
  }
  epoch_.fetch_add(1, std::memory_order_release);
  if (hook_) hook_(*next);
}

std::shared_ptr<const LiveSnapshot> SnapshotPublisher::acquire() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

namespace {

// Serving is intentionally synchronous per connection: bodies are a few
// hundred KB at most and clients are local scrapers, so bounded blocking
// I/O (SO_RCVTIMEO/SO_SNDTIMEO below) keeps the server a single loop with
// no per-connection state machine.
constexpr int kIoTimeoutMs = 2000;

void set_io_timeouts(int fd) {
  timeval tv{};
  tv.tv_sec = kIoTimeoutMs / 1000;
  tv.tv_usec = (kIoTimeoutMs % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string make_response(int code, const char* reason,
                          const std::string& content_type,
                          const std::string& body, std::uint64_t tick,
                          bool has_tick) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " + reason +
                    "\r\n"
                    "Content-Type: " +
                    content_type +
                    "\r\n"
                    "Content-Length: " +
                    std::to_string(body.size()) + "\r\n";
  if (has_tick) out += "X-Hydra-Tick: " + std::to_string(tick) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

HttpServer::HttpServer(SnapshotPublisher& publisher, std::uint16_t port)
    : publisher_(publisher) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("httpd: socket() failed");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    throw std::runtime_error("httpd: cannot bind 127.0.0.1:" +
                             std::to_string(port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::pipe(wake_fds_) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("httpd: pipe() failed");
  }
  thread_ = std::thread([this] { serve(); });
}

HttpServer::~HttpServer() { stop(); }

std::vector<HttpServer::Command> HttpServer::drain_commands() {
  std::vector<Command> out;
  std::lock_guard<std::mutex> lock(cmd_mu_);
  out.swap(commands_);
  return out;
}

void HttpServer::stop() {
  if (stopping_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  const char wake = 'x';
  [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &wake, 1);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
  listen_fd_ = -1;
}

void HttpServer::serve() {
  pollfd fds[2];
  fds[0].fd = listen_fd_;
  fds[0].events = POLLIN;
  fds[1].fd = wake_fds_[0];
  fds[1].events = POLLIN;
  while (!stopping_.load(std::memory_order_relaxed)) {
    fds[0].revents = 0;
    fds[1].revents = 0;
    const int rc = ::poll(fds, 2, 500);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents & POLLIN) break;  // stop() wrote the wake byte
    if (fds[0].revents & POLLIN) {
      const int conn = ::accept(listen_fd_, nullptr, nullptr);
      if (conn >= 0) {
        set_io_timeouts(conn);
        handle_connection(conn);
        ::close(conn);
      }
    }
  }
}

void HttpServer::handle_connection(int fd) {
  // Read until the end of the request head; scrape requests are tiny and
  // bodies are ignored, so cap the head at 8 KB.
  std::string req;
  char buf[1024];
  while (req.size() < 8192 && req.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    req.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t sp1 = req.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                   : req.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return;  // malformed; just close
  const std::string method = req.substr(0, sp1);
  std::string path = req.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string query_str;
  const std::size_t query = path.find('?');
  if (query != std::string::npos) {
    query_str = path.substr(query + 1);
    path.resize(query);
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  if (method != "GET") {
    send_all(fd, make_response(405, "Method Not Allowed", "text/plain",
                               "only GET is supported\n", 0, false));
    return;
  }
  if (path == "/deploy" || path == "/undeploy") {
    // Control routes work before the first publication too — the sim is
    // untouched here; the command is applied by the main loop later.
    Command cmd;
    bool ok = false;
    if (path == "/deploy") {
      cmd.kind = Command::Kind::kDeploy;
      if (query_str.compare(0, 8, "checker=") == 0) {
        cmd.checker = query_str.substr(8);
        const std::size_t amp = cmd.checker.find('&');
        if (amp != std::string::npos) cmd.checker.resize(amp);
        ok = !cmd.checker.empty();
      }
    } else {
      cmd.kind = Command::Kind::kUndeploy;
      if (query_str.compare(0, 4, "dep=") == 0) {
        errno = 0;
        char* end = nullptr;
        const long v = std::strtol(query_str.c_str() + 4, &end, 10);
        ok = errno == 0 && end != query_str.c_str() + 4 &&
             (*end == '\0' || *end == '&') && v >= 0 && v < 1 << 16;
        cmd.deployment = static_cast<int>(v);
      }
    }
    if (!ok) {
      send_all(fd, make_response(400, "Bad Request", "text/plain",
                                 "expected /deploy?checker=<name> or "
                                 "/undeploy?dep=<id>\n",
                                 0, false));
      return;
    }
    {
      std::lock_guard<std::mutex> lock(cmd_mu_);
      commands_.push_back(std::move(cmd));
    }
    send_all(fd, make_response(202, "Accepted", "text/plain", "accepted\n",
                               0, false));
    return;
  }
  const std::shared_ptr<const LiveSnapshot> snap = publisher_.acquire();
  if (snap == nullptr) {
    send_all(fd, make_response(503, "Service Unavailable", "text/plain",
                               "no snapshot published yet\n", 0, false));
    return;
  }
  const std::string* body = nullptr;
  std::string content_type = "application/json";
  if (path == "/metrics") {
    body = &snap->metrics_text;
    // The Prometheus text-format version identifier; scrapers key their
    // parser off this exact string.
    content_type = "text/plain; version=0.0.4; charset=utf-8";
  } else if (path == "/healthz") {
    // Always 200: the verdict lives in the body so orchestration probes
    // and CI can read a failing SLO without conflating it with a dead
    // endpoint.
    body = &snap->health_json;
  } else if (path == "/series") {
    body = &snap->series_json;
  } else if (path == "/violations") {
    body = &snap->violations_json;
  } else if (path == "/topk") {
    body = &snap->topk_json;
  } else if (path == "/snapshot") {
    body = &snap->snapshot_text;
    content_type = "text/plain; charset=utf-8";
  }
  if (body == nullptr) {
    send_all(fd, make_response(404, "Not Found", "text/plain",
                               "unknown path\n", 0, false));
    return;
  }
  send_all(fd,
           make_response(200, "OK", content_type, *body, snap->tick_index,
                         true));
}

bool http_get(std::uint16_t port, const std::string& path, std::string* body,
              int* status) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  set_io_timeouts(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return false;
  }
  const std::string req = "GET " + path +
                          " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                          "Connection: close\r\n\r\n";
  if (!send_all(fd, req)) {
    ::close(fd);
    return false;
  }
  std::string resp;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t head_end = resp.find("\r\n\r\n");
  if (head_end == std::string::npos || resp.compare(0, 5, "HTTP/") != 0) {
    return false;
  }
  const std::size_t sp = resp.find(' ');
  if (sp == std::string::npos || sp + 4 > resp.size()) return false;
  if (status != nullptr) {
    *status = std::atoi(resp.c_str() + sp + 1);
  }
  if (body != nullptr) *body = resp.substr(head_end + 4);
  return true;
}

}  // namespace hydra::obs
