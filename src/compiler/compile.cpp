#include "compiler/compile.hpp"

#include "compiler/emit_p4.hpp"
#include "compiler/lower.hpp"
#include "compiler/relocate.hpp"
#include "indus/parser.hpp"
#include "indus/typecheck.hpp"
#include "util/strings.hpp"

namespace hydra::compiler {

CompiledChecker compile_checker(const std::string& source,
                                const std::string& name,
                                const CompileOptions& options) {
  CompiledChecker out;
  out.name = name;
  out.source = source;
  out.options = options;

  indus::Diagnostics diags;
  indus::Program program = indus::parse_indus(source, diags);
  diags.throw_if_errors("parse of checker '" + name + "'");
  const indus::SymbolTable symbols = indus::typecheck(program, diags);
  diags.throw_if_errors("typecheck of checker '" + name + "'");

  out.ir = lower(program, symbols, name);
  const RelocationAnalysis relocation = analyze_relocation(out.ir);
  out.relocatable = relocation.relocatable;
  out.relocation_reason = relocation.reason;
  if (out.options.placement == CheckPlacement::kAuto) {
    out.options.placement = relocation.relocatable
                                ? CheckPlacement::kEveryHop
                                : CheckPlacement::kLastHop;
  }
  out.layout = layout_telemetry(out.ir, options.byte_aligned_layout);
  out.resources = estimate_resources(out.ir);
  out.linked = link_resources(options.baseline, out.resources);
  out.p4_code = emit_p4(out.ir, out.layout, options.dialect);
  out.indus_loc = str::count_loc(source);
  out.p4_loc = str::count_loc(out.p4_code);
  return out;
}

}  // namespace hydra::compiler
