#!/usr/bin/env python3
"""Validates Prometheus text-exposition files produced by the hydra tools.

Self-contained (standard library only). Checks, per file:

  * every line is a `# TYPE` comment or a well-formed sample;
  * each family is declared by exactly one `# TYPE` line before its samples;
  * families appear in sorted order and each family's samples are
    contiguous (the deterministic-exposition contract, stricter than the
    Prometheus spec);
  * label bodies are well quoted (escapes limited to \\\\, \\", \\n),
    keys are sorted and unique within a sample;
  * sample values parse as integers/floats (+Inf allowed on buckets);
  * histogram series carry `_bucket`/`_sum`/`_count`, buckets are
    cumulative (non-decreasing in `le` order), end at `le="+Inf"`, and the
    +Inf count equals the `_count` sample for the same label set.

Exit status 0 with a one-line summary on success; 1 with a diagnostic
naming the offending line otherwise.

  $ python3 tools/promlint.py metrics.prom [more.prom ...]
"""

import re
import sys

TYPE_RE = re.compile(
    r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$")
NAME_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)")
KEY_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class LintError(Exception):
    pass


def parse_labels(body, where):
    """Parses the inside of a `{...}` label body; returns [(key, value)]."""
    pairs = []
    i = 0
    while i < len(body):
        m = re.match(r"([a-zA-Z_][a-zA-Z0-9_]*)=\"", body[i:])
        if not m:
            raise LintError(f"{where}: malformed label at ...{body[i:]!r}")
        key = m.group(1)
        i += m.end()
        value = []
        while True:
            if i >= len(body):
                raise LintError(f"{where}: unterminated label value")
            c = body[i]
            if c == "\\":
                if i + 1 >= len(body) or body[i + 1] not in '\\"n':
                    raise LintError(f"{where}: bad escape in label value")
                value.append({"\\": "\\", '"': '"', "n": "\n"}[body[i + 1]])
                i += 2
            elif c == '"':
                i += 1
                break
            elif c == "\n":
                raise LintError(f"{where}: raw newline in label value")
            else:
                value.append(c)
                i += 1
        pairs.append((key, "".join(value)))
        if i < len(body):
            if body[i] != ",":
                raise LintError(f"{where}: expected ',' between labels")
            i += 1
    keys = [k for k, _ in pairs]
    if len(set(keys)) != len(keys):
        raise LintError(f"{where}: duplicate label key")
    if keys != sorted(keys):
        raise LintError(f"{where}: label keys not sorted: {keys}")
    return pairs


def parse_value(text, where, allow_inf=False):
    if text == "+Inf":
        if not allow_inf:
            raise LintError(f"{where}: +Inf only valid as a bucket bound")
        return float("inf")
    try:
        return float(text)
    except ValueError:
        raise LintError(f"{where}: unparseable value {text!r}")


def base_family(name, declared):
    """Maps a sample name to its declared family (histogram suffixes)."""
    if name in declared:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in declared:
            return name[: -len(suffix)]
    return None


def lint(path):
    with open(path, encoding="utf-8") as f:
        raw = f.read()
    if raw and not raw.endswith("\n"):
        raise LintError(f"{path}: missing trailing newline")

    declared = {}  # family -> kind
    order = []  # families in declaration order
    current = None  # family whose block we are inside
    finished = set()  # families whose block has ended
    # histogram state: family -> {labelset: {"buckets": [(le, v)],
    #                                        "sum": v, "count": v}}
    hist = {}
    samples = 0

    for lineno, line in enumerate(raw.splitlines(), 1):
        where = f"{path}:{lineno}"
        if not line:
            raise LintError(f"{where}: blank line")
        if line.startswith("#"):
            m = TYPE_RE.match(line)
            if not m:
                raise LintError(f"{where}: malformed comment {line!r}")
            fam, kind = m.group(1), m.group(2)
            if fam in declared:
                raise LintError(f"{where}: duplicate TYPE for {fam}")
            declared[fam] = kind
            order.append(fam)
            if current is not None:
                finished.add(current)
            current = fam
            if kind == "histogram":
                hist[fam] = {}
            continue

        m = NAME_RE.match(line)
        if not m:
            raise LintError(f"{where}: unparseable sample {line!r}")
        name = m.group(1)
        rest = line[m.end():]
        fam = base_family(name, declared)
        if fam is None:
            raise LintError(f"{where}: sample {name!r} has no TYPE line")
        if fam != current:
            raise LintError(
                f"{where}: sample for {fam!r} outside its family block "
                "(families must be contiguous)")
        kind = declared[fam]
        if kind != "histogram" and name != fam:
            raise LintError(f"{where}: suffix {name!r} on non-histogram")
        if kind == "histogram" and name == fam:
            raise LintError(f"{where}: bare sample name on histogram {fam!r}")

        labels = []
        if rest.startswith("{"):
            close = rest.rfind("}")
            if close < 0:
                raise LintError(f"{where}: unterminated label body")
            labels = parse_labels(rest[1:close], where)
            rest = rest[close + 1:]
        if not rest.startswith(" ") or " " in rest[1:]:
            raise LintError(f"{where}: expected single space before value")
        value_text = rest[1:]
        samples += 1

        if kind == "histogram":
            le = [v for k, v in labels if k == "le"]
            others = tuple((k, v) for k, v in labels if k != "le")
            series = hist[fam].setdefault(
                others, {"buckets": [], "sum": None, "count": None})
            if name.endswith("_bucket"):
                if len(le) != 1:
                    raise LintError(f"{where}: bucket needs exactly one le")
                bound = parse_value(le[0], where, allow_inf=True)
                val = parse_value(value_text, where)
                series["buckets"].append((bound, val, where))
            else:
                if le:
                    raise LintError(f"{where}: le label on {name!r}")
                val = parse_value(value_text, where)
                series["sum" if name.endswith("_sum") else "count"] = (
                    val, where)
        else:
            val = parse_value(value_text, where)
            if kind == "counter" and (val < 0 or val != int(val)):
                raise LintError(
                    f"{where}: counter value {value_text!r} not a "
                    "non-negative integer")

    if order != sorted(order):
        raise LintError(f"{path}: families not in sorted order: {order}")

    for fam, by_labels in hist.items():
        for labels, series in by_labels.items():
            desc = f"{path}: {fam}{dict(labels)}"
            buckets = series["buckets"]
            if not buckets:
                raise LintError(f"{desc}: histogram without buckets")
            bounds = [b for b, _, _ in buckets]
            if bounds != sorted(bounds):
                raise LintError(f"{desc}: bucket bounds not ascending")
            counts = [v for _, v, _ in buckets]
            if counts != sorted(counts):
                raise LintError(f"{desc}: bucket counts not cumulative")
            if bounds[-1] != float("inf"):
                raise LintError(f"{desc}: missing le=\"+Inf\" bucket")
            if series["sum"] is None or series["count"] is None:
                raise LintError(f"{desc}: missing _sum or _count")
            if counts[-1] != series["count"][0]:
                raise LintError(
                    f"{desc}: +Inf bucket {counts[-1]} != _count "
                    f"{series['count'][0]}")

    return len(order), samples


def main(argv):
    if len(argv) < 2:
        print("usage: promlint.py FILE [FILE ...]", file=sys.stderr)
        return 2
    for path in argv[1:]:
        try:
            families, samples = lint(path)
        except LintError as e:
            print(f"promlint: {e}", file=sys.stderr)
            return 1
        except OSError as e:
            print(f"promlint: {e}", file=sys.stderr)
            return 1
        print(f"{path}: OK ({families} families, {samples} samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
