#include "net/traffic.hpp"

#include <stdexcept>
#include <string>

namespace hydra::net {

// ---------------------------------------------------------------------------
// PingProbe
// ---------------------------------------------------------------------------

PingProbe::PingProbe(Network& net, int src_host, int dst_host,
                     double interval_s, std::uint16_t ident)
    : net_(net),
      src_host_(src_host),
      dst_host_(dst_host),
      interval_s_(interval_s),
      ident_(ident) {
  net_.host(src_host_).add_sink(
      [this](const p4rt::Packet& pkt, double now) {
        if (!pkt.icmp || pkt.icmp->type != 0 || pkt.icmp->ident != ident_) {
          return;
        }
        // Deduplicate by sequence number: the network may deliver the same
        // echo reply more than once (fault-injected duplication), and a
        // doubly-counted sample would both skew the RTT distribution and
        // drive lost() negative.
        const std::size_t seq = pkt.icmp->seq;
        if (seq < sent_times_.size() && !echoed_[seq]) {
          echoed_[seq] = true;
          samples_.push_back({sent_times_[seq], now - sent_times_[seq]});
        }
      });
}

void PingProbe::start(double t0, double duration_s) {
  deadline_ = t0 + duration_s;
  net_.events().schedule_at(t0, [this] { send_next(); });
}

void PingProbe::send_next() {
  const double now = net_.events().now();
  if (now > deadline_) return;
  p4rt::Packet p = p4rt::make_icmp_echo(net_.host(src_host_).ip(),
                                        net_.host(dst_host_).ip(), ident_,
                                        next_seq_);
  sent_times_.push_back(now);
  echoed_.push_back(false);
  ++next_seq_;
  ++sent_;
  net_.send_from_host(src_host_, std::move(p));
  net_.events().schedule_in(interval_s_, [this] { send_next(); });
}

std::vector<double> PingProbe::rtts() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.rtt);
  return out;
}

// ---------------------------------------------------------------------------
// UdpFlood
// ---------------------------------------------------------------------------

UdpFlood::UdpFlood(Network& net, int src_host, int dst_host,
                   double rate_gbps, int packet_bytes, std::uint16_t sport,
                   std::uint16_t dport)
    : net_(net),
      src_host_(src_host),
      dst_host_(dst_host),
      packet_bytes_(packet_bytes),
      sport_(sport),
      dport_(dport) {
  // Both guards close real foot-guns: packet_bytes < 42 underflowed the
  // payload computation in send_next (42 bytes of L2-L4 overhead), and a
  // non-positive rate produced a zero or negative send interval.
  if (packet_bytes < 42) {
    throw std::invalid_argument(
        "UdpFlood: packet_bytes must be >= 42 (Ethernet+IP+UDP overhead), "
        "got " + std::to_string(packet_bytes));
  }
  if (rate_gbps <= 0.0) {
    throw std::invalid_argument("UdpFlood: rate_gbps must be positive");
  }
  const double pps = rate_gbps * 1e9 / (static_cast<double>(packet_bytes) * 8.0);
  interval_s_ = 1.0 / pps;
}

void UdpFlood::start(double t0, double duration_s) {
  deadline_ = t0 + duration_s;
  net_.events().schedule_at(t0, [this] { send_next(); });
}

void UdpFlood::send_next() {
  const double now = net_.events().now();
  if (now > deadline_) return;
  // Header bytes are accounted separately by the wire model; subtract the
  // typical 42-byte Ethernet+IP+UDP overhead from the payload request.
  p4rt::Packet p = p4rt::make_udp(net_.host(src_host_).ip(),
                                  net_.host(dst_host_).ip(), sport_, dport_,
                                  packet_bytes_ - 42);
  ++sent_;
  net_.send_from_host(src_host_, std::move(p));
  const double wait =
      poisson_ ? rng_.exponential(interval_s_) : interval_s_;
  net_.events().schedule_in(wait, [this] { send_next(); });
}

// ---------------------------------------------------------------------------
// CampusReplay
// ---------------------------------------------------------------------------

CampusReplay::CampusReplay(Network& net, int src_host, int dst_host,
                           double pps, std::uint64_t seed)
    : net_(net),
      src_host_(src_host),
      dst_host_(dst_host),
      pps_(pps),
      rng_(seed) {
  // A fixed flow population; a Zipf-ish skew comes from quadratic index
  // sampling in synthesize().
  for (int i = 0; i < 512; ++i) {
    flows_.emplace_back(static_cast<std::uint16_t>(1024 + rng_.below(60000)),
                        static_cast<std::uint16_t>(rng_.chance(0.7)
                                                       ? 443
                                                       : 1024 + rng_.below(60000)));
  }
}

p4rt::Packet CampusReplay::synthesize() {
  // Skewed flow choice: squaring a uniform sample favours low indices.
  const double u = rng_.uniform();
  const auto idx = static_cast<std::size_t>(u * u *
                                            static_cast<double>(flows_.size()));
  const auto& [sport, dport] = flows_[std::min(idx, flows_.size() - 1)];
  // Bimodal sizes: 60% small (64-128B), 40% near-MTU (1000-1500B).
  const int size = rng_.chance(0.6)
                       ? static_cast<int>(rng_.range(64, 128))
                       : static_cast<int>(rng_.range(1000, 1500));
  const bool tcp = rng_.chance(0.85);
  const std::uint32_t src = net_.host(src_host_).ip();
  const std::uint32_t dst = net_.host(dst_host_).ip();
  return tcp ? p4rt::make_tcp(src, dst, sport, dport, size)
             : p4rt::make_udp(src, dst, sport, dport, size);
}

void CampusReplay::start(double t0, double duration_s) {
  deadline_ = t0 + duration_s;
  net_.events().schedule_at(t0, [this] { send_next(); });
}

void CampusReplay::send_next() {
  const double now = net_.events().now();
  if (now > deadline_) return;
  p4rt::Packet p = synthesize();
  bytes_ += static_cast<std::uint64_t>(p.base_wire_bytes());
  ++sent_;
  net_.send_from_host(src_host_, std::move(p));
  net_.events().schedule_in(rng_.exponential(1.0 / pps_),
                            [this] { send_next(); });
}

}  // namespace hydra::net
