# Empty dependencies file for relocate_test.
# This may be replaced when dependencies are built.
