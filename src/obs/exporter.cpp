#include "obs/exporter.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <stdexcept>
#include <utility>

namespace hydra::obs {

using detail::format_double;

std::string prom_escape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prom_family_from_name(const std::string& name, MetricKind kind) {
  std::string fam = "hydra_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    fam += ok ? c : '_';
  }
  const std::string total = "_total";
  if (kind == MetricKind::kCounter &&
      (fam.size() < total.size() ||
       fam.compare(fam.size() - total.size(), total.size(), total) != 0)) {
    fam += total;
  }
  return fam;
}

namespace {

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

// Renders `key="value"` pairs sorted by key, comma-joined, no braces.
std::string label_body(const std::vector<Label>& labels) {
  std::vector<const Label*> sorted;
  sorted.reserve(labels.size());
  for (const Label& l : labels) sorted.push_back(&l);
  std::sort(sorted.begin(), sorted.end(),
            [](const Label* a, const Label* b) { return a->key < b->key; });
  std::string body;
  for (const Label* l : sorted) {
    if (!body.empty()) body += ',';
    body += l->key + "=\"" + prom_escape(l->value) + "\"";
  }
  return body;
}

std::string braced(const std::string& body) {
  return body.empty() ? std::string() : "{" + body + "}";
}

}  // namespace

namespace {

// Renders every registry family into its own text block, keyed by family
// name; concatenating the (sorted) map values reproduces the classic
// single-argument exposition byte for byte.
std::map<std::string, std::string> registry_family_blocks(const Registry& reg) {
  struct Sample {
    std::string body;
    std::uint64_t counter = 0;
    double gauge = 0.0;
    const HistogramData* hist = nullptr;
  };
  // map => families come out sorted regardless of registration order.
  std::map<std::string, std::pair<MetricKind, std::vector<Sample>>> families;
  reg.visit([&families](const Registry::MetricView& v) {
    const std::string fam =
        v.family.empty() ? prom_family_from_name(v.name, v.kind) : v.family;
    auto [it, fresh] =
        families.try_emplace(fam, v.kind, std::vector<Sample>{});
    if (!fresh && it->second.first != v.kind) {
      throw std::invalid_argument("to_prometheus: family '" + fam +
                                  "' maps to metrics of different kinds");
    }
    Sample s;
    s.body = label_body(v.labels);
    s.counter = v.counter_value;
    s.gauge = v.gauge_value;
    s.hist = v.hist;
    it->second.second.push_back(std::move(s));
  });

  std::map<std::string, std::string> blocks;
  for (auto& [fam, entry] : families) {
    auto& [kind, samples] = entry;
    std::sort(samples.begin(), samples.end(),
              [](const Sample& a, const Sample& b) { return a.body < b.body; });
    std::string out = "# TYPE " + fam + " " + kind_name(kind) + "\n";
    for (const Sample& s : samples) {
      switch (kind) {
        case MetricKind::kCounter:
          out += fam + braced(s.body) + " " + std::to_string(s.counter) + "\n";
          break;
        case MetricKind::kGauge:
          out += fam + braced(s.body) + " " + format_double(s.gauge) + "\n";
          break;
        case MetricKind::kHistogram: {
          const HistogramData& h = *s.hist;
          std::uint64_t cum = 0;
          for (std::size_t i = 0; i < h.buckets.size(); ++i) {
            cum += h.buckets[i];
            const std::string le =
                i < h.bounds.size() ? format_double(h.bounds[i]) : "+Inf";
            std::string body = s.body;
            if (!body.empty()) body += ',';
            body += "le=\"" + le + "\"";
            out += fam + "_bucket{" + body + "} " + std::to_string(cum) + "\n";
          }
          out += fam + "_sum" + braced(s.body) + " " + format_double(h.sum) +
                 "\n";
          out += fam + "_count" + braced(s.body) + " " +
                 std::to_string(h.count) + "\n";
          break;
        }
      }
    }
    blocks.emplace(fam, std::move(out));
  }
  return blocks;
}

}  // namespace

std::string to_prometheus(const Registry& reg) {
  return to_prometheus(reg, {});
}

std::string to_prometheus(const Registry& reg,
                          const std::vector<PromFamily>& extra) {
  std::map<std::string, std::string> blocks = registry_family_blocks(reg);
  for (const PromFamily& f : extra) {
    if (f.samples.empty()) continue;
    std::vector<const PromFamily::Sample*> sorted;
    sorted.reserve(f.samples.size());
    for (const auto& s : f.samples) sorted.push_back(&s);
    std::sort(sorted.begin(), sorted.end(),
              [](const PromFamily::Sample* a, const PromFamily::Sample* b) {
                return a->label_body < b->label_body;
              });
    std::string out = "# TYPE " + f.name + " " + kind_name(f.kind) + "\n";
    for (const PromFamily::Sample* s : sorted) {
      out += f.name + braced(s->label_body) + " " + s->value + "\n";
    }
    auto [it, fresh] = blocks.emplace(f.name, std::move(out));
    if (!fresh) {
      throw std::invalid_argument("to_prometheus: extra family '" + f.name +
                                  "' collides with a registry family");
    }
  }
  std::string out;
  for (const auto& [fam, block] : blocks) out += block;
  return out;
}

double histogram_quantile(double q, const std::vector<double>& bounds,
                          const std::vector<std::uint64_t>& buckets) {
  // Quiet-interval hardening: a window with no observations (or no bucket
  // layout yet) must read as 0, never NaN/Inf, and a hostile q must not
  // walk off either end of the distribution.
  if (!(q >= 0.0)) q = 0.0;  // also catches NaN
  if (q > 1.0) q = 1.0;
  std::uint64_t total = 0;
  for (std::uint64_t b : buckets) total += b;
  if (total == 0 || bounds.empty() || buckets.empty()) return 0.0;
  const double rank = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) >= rank) {
      // Values past the last finite bound clamp to it (the overflow bucket
      // has no upper edge to interpolate toward).
      if (i >= bounds.size()) return bounds.back();
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double upper = bounds[i];
      const double frac =
          (rank - static_cast<double>(cum)) / static_cast<double>(in_bucket);
      return lower + (upper - lower) * (frac < 0.0 ? 0.0 : frac);
    }
    cum += in_bucket;
  }
  return bounds.back();
}

ExportScheduler::ExportScheduler(double interval_s, double first_tick,
                                 std::vector<double> latency_bounds,
                                 std::size_t ring_capacity)
    : interval_(interval_s),
      first_tick_(first_tick),
      latency_bounds_(std::move(latency_bounds)),
      ring_capacity_(ring_capacity) {
  if (interval_s <= 0.0) {
    throw std::invalid_argument("ExportScheduler: interval must be positive");
  }
  if (ring_capacity == 0) {
    throw std::invalid_argument(
        "ExportScheduler: ring capacity must be positive");
  }
}

namespace {

// Elementwise cur - prev; `prev` may be shorter (histogram registered
// after the baseline was taken), in which case missing entries are zero.
std::vector<std::uint64_t> diff_buckets(const std::vector<std::uint64_t>& cur,
                                        const std::vector<std::uint64_t>& prev) {
  std::vector<std::uint64_t> out(cur.size(), 0);
  for (std::size_t i = 0; i < cur.size(); ++i) {
    out[i] = cur[i] - (i < prev.size() ? prev[i] : 0);
  }
  return out;
}

}  // namespace

void ExportScheduler::tick(const ExportCumulative& cum) {
  WindowSample w;
  w.index = captured_;
  w.t1 = next_tick();
  // The previous boundary, recomputed the same multiplicative way so
  // adjacent windows share exact edge values.
  w.t0 = ticks_ == 0 ? first_tick_ - interval_
                     : first_tick_ + interval_ * static_cast<double>(ticks_ - 1);
  w.delta.injected = cum.injected - prev_.injected;
  w.delta.delivered = cum.delivered - prev_.delivered;
  w.delta.rejected = cum.rejected - prev_.rejected;
  w.delta.fwd_dropped = cum.fwd_dropped - prev_.fwd_dropped;
  w.delta.queue_dropped = cum.queue_dropped - prev_.queue_dropped;
  w.delta.fault_dropped = cum.fault_dropped - prev_.fault_dropped;
  w.delta.reports = cum.reports - prev_.reports;
  w.delta.decode_rejects = cum.decode_rejects - prev_.decode_rejects;
  w.delta.cold_suppressed = cum.cold_suppressed - prev_.cold_suppressed;
  w.delta.properties.reserve(cum.properties.size());
  for (const auto& p : cum.properties) {
    ExportCumulative::Property d;
    d.name = p.name;
    // Properties deployed after the previous tick simply have no baseline.
    for (const auto& q : prev_.properties) {
      if (q.name == p.name) {
        d.rejects = q.rejects;
        d.reports = q.reports;
        d.check_runs = q.check_runs;
        d.tele_runs = q.tele_runs;
        break;
      }
    }
    d.rejects = p.rejects - d.rejects;
    d.reports = p.reports - d.reports;
    d.check_runs = p.check_runs - d.check_runs;
    d.tele_runs = p.tele_runs - d.tele_runs;
    w.delta.properties.push_back(std::move(d));
  }
  w.delta.latency_buckets = diff_buckets(cum.latency_buckets,
                                         prev_.latency_buckets);
  w.delta.latency_count = cum.latency_count - prev_.latency_count;
  w.delta.latency_sum = cum.latency_sum - prev_.latency_sum;
  w.pps = static_cast<double>(w.delta.delivered) / interval_;
  w.rejects_per_s = static_cast<double>(w.delta.rejected) / interval_;
  w.latency_p50 = histogram_quantile(0.50, latency_bounds_,
                                     w.delta.latency_buckets);
  w.latency_p90 = histogram_quantile(0.90, latency_bounds_,
                                     w.delta.latency_buckets);
  w.latency_p99 = histogram_quantile(0.99, latency_bounds_,
                                     w.delta.latency_buckets);

  prev_ = cum;
  ring_.push_back(std::move(w));
  if (ring_.size() > ring_capacity_) ring_.pop_front();
  ++captured_;
  ++ticks_;
  if (on_tick_) on_tick_(ring_.back());
}

void ExportScheduler::rebaseline(const ExportCumulative& cum) {
  prev_ = cum;
  ring_.clear();
  captured_ = 0;
}

void ExportScheduler::restore_series(std::uint64_t captured,
                                     std::deque<WindowSample> windows) {
  while (windows.size() > ring_capacity_) windows.pop_front();
  ring_ = std::move(windows);
  captured_ = captured;
}

std::string ExportScheduler::series_json() const {
  std::string out = "{\n";
  out += "  \"interval_s\": " + format_double(interval_) + ",\n";
  out += "  \"ring_capacity\": " + std::to_string(ring_capacity_) + ",\n";
  out += "  \"captured\": " + std::to_string(captured_) + ",\n";
  out += "  \"windows\": [";
  bool first = true;
  for (const WindowSample& w : ring_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"index\": " + std::to_string(w.index) +
           ", \"t0\": " + format_double(w.t0) +
           ", \"t1\": " + format_double(w.t1) +
           ", \"injected\": " + std::to_string(w.delta.injected) +
           ", \"delivered\": " + std::to_string(w.delta.delivered) +
           ", \"rejected\": " + std::to_string(w.delta.rejected) +
           ", \"fwd_dropped\": " + std::to_string(w.delta.fwd_dropped) +
           ", \"queue_dropped\": " + std::to_string(w.delta.queue_dropped) +
           ", \"fault_dropped\": " + std::to_string(w.delta.fault_dropped) +
           ", \"reports\": " + std::to_string(w.delta.reports) +
           ", \"decode_rejects\": " + std::to_string(w.delta.decode_rejects) +
           ", \"cold_suppressed\": " + std::to_string(w.delta.cold_suppressed) +
           ", \"pps\": " + format_double(w.pps) +
           ", \"rejects_per_s\": " + format_double(w.rejects_per_s) + ",\n";
    out += "     \"latency\": {\"count\": " +
           std::to_string(w.delta.latency_count) +
           ", \"sum\": " + format_double(w.delta.latency_sum) +
           ", \"p50\": " + format_double(w.latency_p50) +
           ", \"p90\": " + format_double(w.latency_p90) +
           ", \"p99\": " + format_double(w.latency_p99) + "},\n";
    out += "     \"properties\": [";
    bool pfirst = true;
    for (const auto& p : w.delta.properties) {
      out += pfirst ? "" : ", ";
      pfirst = false;
      out += "{\"property\": \"" + p.name +
             "\", \"rejects\": " + std::to_string(p.rejects) +
             ", \"reports\": " + std::to_string(p.reports) +
             ", \"check_runs\": " + std::to_string(p.check_runs) +
             ", \"tele_runs\": " + std::to_string(p.tele_runs) + "}";
    }
    out += "]}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace hydra::obs
