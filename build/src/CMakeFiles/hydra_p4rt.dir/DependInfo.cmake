
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/p4rt/interp.cpp" "src/CMakeFiles/hydra_p4rt.dir/p4rt/interp.cpp.o" "gcc" "src/CMakeFiles/hydra_p4rt.dir/p4rt/interp.cpp.o.d"
  "/root/repo/src/p4rt/packet.cpp" "src/CMakeFiles/hydra_p4rt.dir/p4rt/packet.cpp.o" "gcc" "src/CMakeFiles/hydra_p4rt.dir/p4rt/packet.cpp.o.d"
  "/root/repo/src/p4rt/register.cpp" "src/CMakeFiles/hydra_p4rt.dir/p4rt/register.cpp.o" "gcc" "src/CMakeFiles/hydra_p4rt.dir/p4rt/register.cpp.o.d"
  "/root/repo/src/p4rt/table.cpp" "src/CMakeFiles/hydra_p4rt.dir/p4rt/table.cpp.o" "gcc" "src/CMakeFiles/hydra_p4rt.dir/p4rt/table.cpp.o.d"
  "/root/repo/src/p4rt/tele_codec.cpp" "src/CMakeFiles/hydra_p4rt.dir/p4rt/tele_codec.cpp.o" "gcc" "src/CMakeFiles/hydra_p4rt.dir/p4rt/tele_codec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hydra_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_indus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
