// Differential testing of the compiler: for randomly generated well-typed
// Indus programs, random control-plane contents, and random header traces,
// the REFERENCE AST interpreter (src/indus/eval_ref) and the COMPILED
// pipeline (lowering -> IR -> p4rt interpreter) must agree on
//   * the reject verdict,
//   * every report payload (order and values),
//   * the final telemetry state (scalars, array slots, fill counts).
// Any divergence is a compiler bug.
#include <gtest/gtest.h>

#include <map>

#include "compiler/compile.hpp"
#include "indus/eval_ref.hpp"
#include "indus/parser.hpp"
#include "indus/pretty.hpp"
#include "indus_gen.hpp"
#include "p4rt/interp.hpp"
#include "util/rng.hpp"

namespace hydra {
namespace {

using indus::RefEvaluator;
using indus::RefOutcome;
using indus::RefState;

struct HopHeaders {
  std::map<std::string, BitVec> values;

  BitVec get(const std::string& ann, int width) const {
    const auto it = values.find(ann);
    if (it == values.end()) return BitVec(width, 0);
    return it->second.resize(width);
  }
};

// Random control-plane contents, installed identically on both sides.
struct ControlPlane {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> dict1;  // k -> v
  std::vector<std::pair<std::pair<std::uint64_t, std::uint64_t>, bool>>
      dict2;
  std::vector<std::uint64_t> set1;
  std::uint64_t cfg = 0;
  std::uint64_t carr[3] = {0, 0, 0};

  static ControlPlane random(Rng& rng) {
    ControlPlane cp;
    for (int i = 0; i < 5; ++i) {
      cp.dict1.emplace_back(rng.below(256), rng.below(1 << 16));
      cp.dict2.push_back({{rng.below(256), rng.below(256)},
                          rng.chance(0.5)});
      cp.set1.push_back(rng.below(256));
    }
    cp.cfg = rng.below(1000);
    for (auto& c : cp.carr) c = rng.below(256);
    return cp;
  }
};

struct Differential {
  compiler::CompiledChecker compiled;
  indus::Program program;
  indus::SymbolTable symbols;

  explicit Differential(const std::string& src)
      : compiled(compiler::compile_checker(src, "diff")) {
    indus::Diagnostics diags;
    program = indus::parse_indus(src, diags);
    symbols = indus::typecheck(program, diags);
    EXPECT_FALSE(diags.has_errors()) << diags.to_string();
  }

  void install(const ControlPlane& cp, p4rt::CheckerState& istate,
               RefState& rstate) const {
    auto table = [&](const std::string& name) -> p4rt::Table& {
      const int t = compiled.ir.find_table(name);
      EXPECT_GE(t, 0) << name;
      return istate.tables[static_cast<std::size_t>(t)];
    };
    const auto& d1w = compiled.ir.tables[static_cast<std::size_t>(
                          compiled.ir.find_table("dict1"))].value_widths;
    for (const auto& [k, v] : cp.dict1) {
      table("dict1").insert_exact({BitVec(8, k)}, {BitVec(d1w[0], v)});
      rstate.dicts["dict1"][{k}] = {BitVec(d1w[0], v)};
    }
    for (const auto& [kk, v] : cp.dict2) {
      table("dict2").insert_exact({BitVec(8, kk.first), BitVec(8, kk.second)},
                                  {BitVec::from_bool(v)});
      rstate.dicts["dict2"][{kk.first, kk.second}] = {BitVec::from_bool(v)};
    }
    for (const auto k : cp.set1) {
      table("set1").insert_exact({BitVec(8, k)}, {});
      rstate.sets["set1"].insert({k});
    }
    table("cfg").set_default({BitVec(32, cp.cfg)});
    rstate.configs["cfg"] = {BitVec(32, cp.cfg)};
    std::vector<BitVec> carr_vals;
    for (const auto c : cp.carr) carr_vals.emplace_back(8, c);
    table("carr").set_default(carr_vals);
    rstate.configs["carr"] = carr_vals;
  }

  // Runs both interpreters over `hops` and compares everything.
  void check(const ControlPlane& cp, const std::vector<HopHeaders>& hops) {
    // --- compiled side ---
    p4rt::Interp interp(compiled.ir);
    p4rt::CheckerState istate = p4rt::make_checker_state(compiled.ir);
    // --- reference side ---
    RefEvaluator ref(program, symbols);
    RefState rstate;
    ref.init_packet_state(rstate);
    ref.init_switch_state(rstate);
    install(cp, istate, rstate);

    auto vals = interp.fresh_store();
    p4rt::ExecOutcome iout;
    RefOutcome rout;

    const HopHeaders* hop = &hops.front();
    auto resolver = [&hop](const std::string& ann, int w) {
      return hop->get(ann, w);
    };

    interp.run(compiled.ir.init_block, vals, istate, resolver, iout);
    ref.run_init(rstate, resolver, rout);
    for (const auto& h : hops) {
      hop = &h;
      interp.run(compiled.ir.tele_block, vals, istate, resolver, iout);
      ref.run_tele(rstate, resolver, rout);
    }
    hop = &hops.back();
    interp.run(compiled.ir.check_block, vals, istate, resolver, iout);
    ref.run_check(rstate, resolver, rout);

    // Verdict + reports.
    ASSERT_EQ(iout.reject, rout.reject) << context();
    ASSERT_EQ(iout.reports.size(), rout.reports.size()) << context();
    for (std::size_t r = 0; r < iout.reports.size(); ++r) {
      ASSERT_EQ(iout.reports[r].size(), rout.reports[r].size()) << context();
      for (std::size_t i = 0; i < iout.reports[r].size(); ++i) {
        EXPECT_EQ(iout.reports[r][i].value(), rout.reports[r][i].value())
            << "report " << r << " part " << i << context();
      }
    }

    // Final telemetry state.
    auto field_val = [&](const std::string& name) {
      const auto f = compiled.ir.find_field(name);
      EXPECT_TRUE(f.valid()) << name;
      return vals[static_cast<std::size_t>(f.id)];
    };
    for (const auto& [name, v] : rstate.scalars) {
      if (v.size() == 1) {
        EXPECT_EQ(field_val("tele." + name).value(), v[0].value())
            << name << context();
      }
    }
    for (const auto& [name, arr] : rstate.arrays) {
      EXPECT_EQ(field_val("tele." + name + ".cnt").value(),
                static_cast<std::uint64_t>(arr.count))
          << name << context();
      for (std::size_t i = 0; i < arr.slots.size(); ++i) {
        EXPECT_EQ(field_val("tele." + name + "[" + std::to_string(i) + "]")
                      .value(),
                  arr.slots[i].value())
            << name << "[" << i << "]" << context();
      }
    }
    // Sensors.
    for (const auto& [name, v] : rstate.sensors) {
      const int r = compiled.ir.find_register(name);
      ASSERT_GE(r, 0) << name;
      EXPECT_EQ(istate.registers[static_cast<std::size_t>(r)].read(0).value(),
                v.value())
          << name << context();
    }
  }

  std::string context() const { return "\nprogram:\n" + compiled.source; }
};

HopHeaders random_hop(Rng& rng, bool first, bool last) {
  HopHeaders h;
  h.values.emplace("h0", BitVec(8, rng.below(256)));
  h.values.emplace("h1", BitVec(16, rng.below(1 << 16)));
  h.values.emplace("hb", BitVec::from_bool(rng.chance(0.5)));
  h.values.emplace("std.packet_length", BitVec(32, rng.range(64, 1500)));
  h.values.emplace("std.first_hop", BitVec::from_bool(first));
  h.values.emplace("std.last_hop", BitVec::from_bool(last));
  return h;
}

class CompilerDifferential : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CompilerDifferential, ReferenceAndCompiledAgree) {
  Rng rng(GetParam());
  testgen::ProgramGen gen(rng);
  const std::string src = gen.generate();
  SCOPED_TRACE(src);
  Differential diff(src);
  for (int run = 0; run < 3; ++run) {
    const ControlPlane cp = ControlPlane::random(rng);
    const int hops = 1 + static_cast<int>(rng.below(5));
    std::vector<HopHeaders> trace;
    for (int i = 0; i < hops; ++i) {
      trace.push_back(random_hop(rng, i == 0, i == hops - 1));
    }
    diff.check(cp, trace);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompilerDifferential,
                         ::testing::Range<std::uint64_t>(1, 61));

// The generator's output must always parse, typecheck, and round-trip
// through the pretty printer.
class GeneratorSanity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSanity, GeneratedProgramsCompileAndRoundTrip) {
  Rng rng(GetParam() + 1000);
  testgen::ProgramGen gen(rng);
  const std::string src = gen.generate();
  SCOPED_TRACE(src);
  indus::Diagnostics d1;
  indus::Program p1 = indus::parse_indus(src, d1);
  ASSERT_FALSE(d1.has_errors()) << d1.to_string();
  indus::typecheck(p1, d1);
  ASSERT_FALSE(d1.has_errors()) << d1.to_string();
  const std::string printed = indus::to_source(p1);
  indus::Diagnostics d2;
  indus::Program p2 = indus::parse_indus(printed, d2);
  ASSERT_FALSE(d2.has_errors()) << printed << "\n" << d2.to_string();
  EXPECT_EQ(printed, indus::to_source(p2));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSanity,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace hydra
