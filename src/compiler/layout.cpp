#include "compiler/layout.hpp"

namespace hydra::compiler {

TelemetryLayout layout_telemetry(const ir::CheckerIR& ir, bool byte_aligned) {
  TelemetryLayout layout;
  layout.byte_aligned = byte_aligned;
  int offset = 0;
  for (std::size_t i = 0; i < ir.fields.size(); ++i) {
    const ir::Field& f = ir.fields[i];
    if (f.space != ir::Space::kTele) continue;
    if (byte_aligned && offset % 8 != 0) offset += 8 - offset % 8;
    layout.entries.push_back(
        {ir::FieldId{static_cast<int>(i)}, offset, f.width});
    offset += f.width;
  }
  layout.payload_bits = offset;
  layout.wire_bytes = (offset + 7) / 8 + TelemetryLayout::kPreambleBytes;
  return layout;
}

}  // namespace hydra::compiler
