// Tests for the prefix-preserving anonymizer (the Figure 13 P4Campus
// infrastructure): determinism, prefix preservation, identity hiding, and
// integration at a mirror switch.
#include <gtest/gtest.h>

#include "forwarding/anonymizer.hpp"
#include "forwarding/ipv4_ecmp.hpp"
#include "net/network.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace hydra::fwd {
namespace {

int common_prefix_len(std::uint32_t a, std::uint32_t b) {
  for (int i = 31; i >= 0; --i) {
    if (((a >> i) & 1) != ((b >> i) & 1)) return 31 - i;
  }
  return 32;
}

TEST(Anonymizer, Deterministic) {
  const std::uint32_t a = str::ipv4_from_string("128.112.7.33");
  EXPECT_EQ(anonymize_ipv4(a, 42), anonymize_ipv4(a, 42));
  EXPECT_NE(anonymize_ipv4(a, 42), anonymize_ipv4(a, 43));  // salt matters
}

TEST(Anonymizer, HidesIdentity) {
  Rng rng(1);
  int unchanged = 0;
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.next());
    if (anonymize_ipv4(a, 7) == a) ++unchanged;
  }
  EXPECT_LE(unchanged, 2);  // fixed points are chance-level only
}

TEST(Anonymizer, PreservesExactCommonPrefixLength) {
  Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = static_cast<std::uint32_t>(rng.next());
    // Derive b sharing exactly k bits with a.
    const int k = static_cast<int>(rng.below(32));
    const std::uint32_t flip = 1u << (31 - k);
    std::uint32_t b = a ^ flip;  // differs at bit k, equal above
    b ^= static_cast<std::uint32_t>(rng.next()) & (flip - 1);  // noise below
    ASSERT_EQ(common_prefix_len(a, b), k);
    const std::uint32_t ea = anonymize_ipv4(a, 99);
    const std::uint32_t eb = anonymize_ipv4(b, 99);
    EXPECT_EQ(common_prefix_len(ea, eb), k)
        << str::ipv4_to_string(a) << " / " << str::ipv4_to_string(b);
  }
}

TEST(Anonymizer, MacAnonymizationIndependentOfIpv4) {
  const std::uint64_t mac = 0x0a1b2c3d4e5fULL;
  const auto anon = anonymize_mac(mac, 5);
  EXPECT_NE(anon, mac);
  EXPECT_EQ(anon >> 48, 0u);  // stays 48 bits
  EXPECT_EQ(anonymize_mac(mac, 5), anon);
}

TEST(Anonymizer, ProgramRewritesAndForwards) {
  // The anonymizer wraps routing at leaf1 (the broker switch). Routing is
  // given a route for the ANONYMIZED destination so traffic still flows —
  // as in the real deployment where anonymized traffic is delivered to
  // the cellular testbed.
  auto fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net(fabric.topo);
  auto routing = install_leaf_spine_routing(net, fabric);
  auto anon = std::make_shared<AnonymizerProgram>(routing, /*salt=*/77);
  net.set_program(fabric.leaves[0], anon);

  const std::uint32_t src = net.topo().node(fabric.hosts[0][0]).ip;
  const std::uint32_t dst = net.topo().node(fabric.hosts[1][0]).ip;
  const std::uint32_t anon_dst = anonymize_ipv4(dst, 77);
  // Steer the anonymized destination out of leaf1's uplink 0 and down to
  // a collector host (h3's port at leaf2).
  routing->add_route(fabric.leaves[0], anon_dst, 32,
                     {fabric.leaf_uplink_port(0)});
  routing->add_route(fabric.spines[0], anon_dst, 32,
                     {fabric.spine_down_port(1)});
  routing->add_route(fabric.leaves[1], anon_dst, 32,
                     {fabric.leaf_host_port(0)});

  std::uint32_t seen_src = 0;
  std::uint32_t seen_dst = 0;
  net.host(fabric.hosts[1][0]).add_sink(
      [&](const p4rt::Packet& p, double) {
        seen_src = p.ipv4->src;
        seen_dst = p.ipv4->dst;
      });
  net.send_from_host(fabric.hosts[0][0],
                     p4rt::make_udp(src, dst, 1000, 2000, 64));
  net.events().run();

  EXPECT_EQ(anon->packets_anonymized(), 1u);
  EXPECT_EQ(net.counters().delivered, 1u);
  EXPECT_EQ(seen_src, anonymize_ipv4(src, 77));
  EXPECT_EQ(seen_dst, anon_dst);
  EXPECT_NE(seen_src, src);  // identity gone
}

TEST(Anonymizer, SameSubnetStaysSameSubnet) {
  // Operationally important: /24 neighbours remain /24 neighbours, so
  // routing and per-subnet analyses still work on anonymized traces.
  const std::uint32_t a = str::ipv4_from_string("128.112.7.33");
  const std::uint32_t b = str::ipv4_from_string("128.112.7.200");
  const std::uint32_t ea = anonymize_ipv4(a, 123);
  const std::uint32_t eb = anonymize_ipv4(b, 123);
  EXPECT_EQ(ea >> 8, eb >> 8);
  EXPECT_NE(ea & 0xff, a & 0xff);
}

}  // namespace
}  // namespace hydra::fwd
