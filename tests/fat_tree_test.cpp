// Fat-tree substrate tests: topology shape, routing, ECMP spreading across
// tiers, and the generalized up/down (valley-free) checker on a 3-tier
// fabric.
#include <gtest/gtest.h>

#include "forwarding/ipv4_ecmp.hpp"
#include "forwarding/source_route.hpp"
#include "hydra/hydra.hpp"
#include "net/network.hpp"

namespace hydra {
namespace {

TEST(FatTree, K4Shape) {
  const auto ft = net::make_fat_tree(4);
  EXPECT_EQ(ft.cores.size(), 4u);       // (k/2)^2
  EXPECT_EQ(ft.aggs.size(), 4u);        // pods
  EXPECT_EQ(ft.aggs[0].size(), 2u);     // k/2 per pod
  EXPECT_EQ(ft.edges[0].size(), 2u);
  EXPECT_EQ(ft.hosts[0][0].size(), 2u); // k/2 hosts per edge
  // Total: 4 cores + 8 aggs + 8 edges + 16 hosts = 36 nodes.
  EXPECT_EQ(ft.topo.node_count(), 36);
  // Links: 16 host + 16 edge-agg + 16 agg-core = 48.
  EXPECT_EQ(ft.topo.links().size(), 48u);
}

TEST(FatTree, RejectsOddK) {
  EXPECT_THROW(net::make_fat_tree(3), std::invalid_argument);
  EXPECT_THROW(net::make_fat_tree(0), std::invalid_argument);
}

TEST(FatTree, TierClassification) {
  const auto ft = net::make_fat_tree(4);
  EXPECT_EQ(ft.tier(ft.edges[0][0]), 0);
  EXPECT_EQ(ft.tier(ft.aggs[1][1]), 1);
  EXPECT_EQ(ft.tier(ft.cores[3]), 2);
  EXPECT_EQ(ft.tier(ft.hosts[0][0][0]), -1);
}

TEST(FatTree, Addressing) {
  const auto ft = net::make_fat_tree(4);
  // 10.<pod+1>.<edge+1>.<host+2>
  EXPECT_EQ(ft.topo.node(ft.hosts[0][0][0]).ip, 0x0a010102u);
  EXPECT_EQ(ft.topo.node(ft.hosts[2][1][1]).ip, 0x0a030203u);
}

TEST(FatTree, WiringMatchesPortConventions) {
  const auto ft = net::make_fat_tree(4);
  // Edge up-port 0 reaches agg 0 of the same pod.
  const auto agg = ft.topo.peer({ft.edges[1][0], ft.edge_up_port(0)});
  ASSERT_TRUE(agg.has_value());
  EXPECT_EQ(agg->node, ft.aggs[1][0]);
  // Agg 1's core group is cores 2 and 3.
  const auto core = ft.topo.peer({ft.aggs[1][1], ft.agg_up_port(1)});
  ASSERT_TRUE(core.has_value());
  EXPECT_EQ(core->node, ft.cores[3]);
  // Core's pod port goes back to the owning agg of that pod.
  const auto back = ft.topo.peer({ft.cores[3], ft.core_pod_port(1)});
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->node, ft.aggs[1][1]);
}

struct FtFixture {
  net::FatTree ft = net::make_fat_tree(4);
  net::Network net{ft.topo};
  std::shared_ptr<fwd::Ipv4EcmpProgram> routing =
      fwd::install_fat_tree_routing(net, ft);

  void send(int src, int dst, std::uint16_t sport = 1000) {
    net.send_from_host(src, p4rt::make_udp(net.topo().node(src).ip,
                                           net.topo().node(dst).ip, sport,
                                           2000, 100));
  }
};

TEST(FatTree, AllPairsDelivery) {
  FtFixture f;
  std::vector<int> all;
  for (const auto& pod : f.ft.hosts) {
    for (const auto& edge : pod) {
      for (int h : edge) all.push_back(h);
    }
  }
  int sent = 0;
  for (int a : all) {
    for (int b : all) {
      if (a == b) continue;
      f.send(a, b, static_cast<std::uint16_t>(1000 + sent % 100));
      ++sent;
    }
  }
  f.net.events().run();
  EXPECT_EQ(f.net.counters().delivered, static_cast<std::uint64_t>(sent));
  EXPECT_EQ(f.net.counters().fwd_dropped, 0u);
}

TEST(FatTree, IntraPodTrafficStaysOffCores) {
  FtFixture f;
  // Different edges, same pod: must transit an agg but never a core.
  for (int i = 0; i < 32; ++i) {
    f.send(f.ft.hosts[0][0][0], f.ft.hosts[0][1][0],
           static_cast<std::uint16_t>(2000 + i));
  }
  f.net.events().run();
  EXPECT_EQ(f.net.counters().delivered, 32u);
  for (int core : f.ft.cores) {
    for (std::size_t li = 0; li < f.net.link_count(); ++li) {
      const auto& spec = f.net.link(static_cast<int>(li)).spec();
      if (spec.a.node == core || spec.b.node == core) {
        EXPECT_EQ(f.net.link(static_cast<int>(li)).stats(0).packets, 0u);
        EXPECT_EQ(f.net.link(static_cast<int>(li)).stats(1).packets, 0u);
      }
    }
  }
}

TEST(FatTree, CrossPodFlowsSpreadOverCores) {
  FtFixture f;
  for (int i = 0; i < 128; ++i) {
    f.send(f.ft.hosts[0][0][0], f.ft.hosts[2][0][0],
           static_cast<std::uint16_t>(3000 + i));
  }
  f.net.events().run();
  EXPECT_EQ(f.net.counters().delivered, 128u);
  int cores_used = 0;
  for (int core : f.ft.cores) {
    std::uint64_t pkts = 0;
    for (std::size_t li = 0; li < f.net.link_count(); ++li) {
      const auto& spec = f.net.link(static_cast<int>(li)).spec();
      if (spec.a.node == core || spec.b.node == core) {
        pkts += f.net.link(static_cast<int>(li)).stats(0).packets +
                f.net.link(static_cast<int>(li)).stats(1).packets;
      }
    }
    cores_used += pkts > 0 ? 1 : 0;
  }
  // ECMP at edge and agg: at least half the core group sees traffic.
  EXPECT_GE(cores_used, 2);
}

TEST(FatTree, UpDownCheckerPassesEcmpTraffic) {
  FtFixture f;
  const int dep = f.net.deploy(compile_library_checker("up_down_routing"));
  configure_up_down(f.net, dep, f.ft);
  f.net.set_wire_validation(true);
  for (int i = 0; i < 16; ++i) {
    f.send(f.ft.hosts[0][0][0], f.ft.hosts[3][1][1],
           static_cast<std::uint16_t>(4000 + i));
    f.send(f.ft.hosts[1][0][1], f.ft.hosts[1][1][0],
           static_cast<std::uint16_t>(5000 + i));
  }
  f.net.events().run();
  EXPECT_EQ(f.net.counters().delivered, 32u);
  EXPECT_EQ(f.net.counters().rejected, 0u);
}

TEST(FatTree, UpDownCheckerRejectsAggValley) {
  // Source-route a valley inside a pod: edge -> agg -> edge -> agg -> edge.
  net::FatTree ft = net::make_fat_tree(4);
  net::Network net(ft.topo);
  auto sr = std::make_shared<fwd::SourceRouteProgram>();
  for (int sw = 0; sw < ft.topo.node_count(); ++sw) {
    if (ft.topo.node(sw).kind == net::NodeKind::kSwitch) {
      net.set_program(sw, sr);
    }
  }
  const int dep = net.deploy(compile_library_checker("up_down_routing"));
  configure_up_down(net, dep, ft);

  p4rt::Packet p = p4rt::make_udp(1, 2, 3, 4, 64);
  fwd::set_source_route(p, {ft.edge_up_port(0),    // edge0 -> agg0 (up)
                            ft.agg_down_port(1),   // agg0 -> edge1 (down)
                            ft.edge_up_port(1),    // edge1 -> agg1 (UP: valley)
                            ft.agg_down_port(0),   // agg1 -> edge0
                            ft.edge_host_port(0)});
  net.send_from_host(ft.hosts[0][0][0], std::move(p));
  net.events().run();
  EXPECT_EQ(net.counters().rejected, 1u);
  EXPECT_EQ(net.counters().delivered, 0u);
}

TEST(FatTree, UpDownCheckerIsRelocatable) {
  compiler::CompileOptions opts;
  opts.placement = compiler::CheckPlacement::kAuto;
  const auto c = compile_library_checker("up_down_routing", opts);
  EXPECT_TRUE(c->relocatable) << c->relocation_reason;
  EXPECT_EQ(c->options.placement, compiler::CheckPlacement::kEveryHop);
}

TEST(FatTree, LargerFabricsBuildAndRoute) {
  for (int k : {6, 8}) {
    net::FatTree ft = net::make_fat_tree(k);
    net::Network net(ft.topo);
    fwd::install_fat_tree_routing(net, ft);
    net.send_from_host(
        ft.hosts[0][0][0],
        p4rt::make_udp(net.topo().node(ft.hosts[0][0][0]).ip,
                       net.topo().node(ft.hosts[k - 1][0][0]).ip, 1, 2, 64));
    net.events().run();
    EXPECT_EQ(net.counters().delivered, 1u) << "k=" << k;
  }
}

}  // namespace
}  // namespace hydra
