# Empty compiler generated dependencies file for hydra_forwarding.
# This may be replaced when dependencies are built.
