// Serial-vs-parallel engine differential tests: the parallel engine must be
// observationally identical to the serial engine — same reports in the same
// order, same metrics snapshot, same final checker register/table state —
// for any worker count, on randomized traffic over both reference fabrics.
#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <string>

#include "aether/churn.hpp"
#include "aether/controller.hpp"
#include "aether/slice.hpp"
#include "forwarding/ipv4_ecmp.hpp"
#include "forwarding/upf.hpp"
#include "hydra/apps.hpp"
#include "hydra/hydra.hpp"
#include "net/engine.hpp"
#include "net/network.hpp"
#include "net/traffic.hpp"
#include "obs/httpd.hpp"

namespace hydra {
namespace {

// Canonical end-of-run observation of a network: everything the engine
// contract promises is bit-identical across engines and worker counts.
struct Snapshot {
  std::string counters;
  std::string reports;
  std::string metrics;
  std::string state;      // per-switch checker registers + table entries
  std::string forensics;  // assembled ViolationReports as canonical JSON
  std::string faults;     // FaultStats JSON when a fault plan is armed
  std::string prom;       // Prometheus exposition when export is armed
  std::string series;     // windowed series JSON when export is armed
  std::string live_metrics;  // per-tick published /metrics bodies (live plane)
  std::string live_series;   // per-tick published /series bodies (live plane)
};

std::string dump_counters(const net::Network::Counters& c) {
  std::ostringstream os;
  os << "inj=" << c.injected << " del=" << c.delivered
     << " rej=" << c.rejected << " fwd_drop=" << c.fwd_dropped
     << " q_drop=" << c.queue_dropped << " f_drop=" << c.fault_dropped;
  return os.str();
}

std::string dump_reports(const net::Network& net) {
  std::ostringstream os;
  for (const auto& r : net.reports()) {
    os << r.deployment << '|' << r.checker << '|' << r.switch_id << '|'
       << r.time << '|' << r.hop_count << '|' << r.flow.to_string();
    for (const auto& v : r.values) os << '|' << v.to_string();
    os << '\n';
  }
  return os.str();
}

std::string dump_state(net::Network& net) {
  std::ostringstream os;
  for (int dep = 0; dep < net.deployment_count(); ++dep) {
    const ir::CheckerIR& ir = net.checker(dep).ir;
    for (int sw = 0; sw < net.topo().node_count(); ++sw) {
      if (net.topo().node(sw).kind != net::NodeKind::kSwitch) continue;
      for (const auto& reg : ir.registers) {
        auto& ra = net.checker_register(dep, sw, reg.name);
        os << dep << '/' << sw << "/reg " << reg.name << ':';
        for (std::size_t i = 0; i < ra.size(); ++i) {
          os << ' ' << ra.read(i).value();
        }
        os << '\n';
      }
      for (const auto& table : ir.tables) {
        auto& t = net.checker_table(dep, sw, table.name);
        os << dep << '/' << sw << "/table " << table.name << ':';
        for (const auto& e : t.entries()) {
          os << " [p" << e.priority;
          for (const auto& pat : e.patterns) {
            os << ' ' << pat.value.to_string() << '&'
               << pat.mask.to_string() << '/' << pat.prefix_len;
          }
          os << " ->";
          for (const auto& v : e.action_data) os << ' ' << v.to_string();
          os << ']';
        }
        os << '\n';
      }
    }
  }
  return os.str();
}

Snapshot snapshot(net::Network& net) {
  Snapshot s;
  s.counters = dump_counters(net.counters());
  s.reports = dump_reports(net);
  // Metrics and forensics only exist while observability is on; obs-off
  // scenarios (the flow-sharding fast path) still compare everything else.
  if (net.observability_enabled()) {
    s.metrics = net.metrics_json();
    s.forensics = net.violation_reports_json();
  }
  s.state = dump_state(net);
  if (net.faults_armed()) s.faults = net.fault_stats().to_json();
  if (net.export_armed()) {
    s.prom = net.export_prometheus();
    s.series = net.window_series_json();
  }
  return s;
}

void expect_identical(const Snapshot& a, const Snapshot& b,
                      const std::string& label) {
  EXPECT_EQ(a.counters, b.counters) << label;
  EXPECT_EQ(a.reports, b.reports) << label;
  EXPECT_EQ(a.metrics, b.metrics) << label;
  EXPECT_EQ(a.state, b.state) << label;
  EXPECT_EQ(a.forensics, b.forensics) << label;
  EXPECT_EQ(a.faults, b.faults) << label;
  EXPECT_EQ(a.prom, b.prom) << label;
  EXPECT_EQ(a.series, b.series) << label;
  EXPECT_EQ(a.live_metrics, b.live_metrics) << label;
  EXPECT_EQ(a.live_series, b.live_series) << label;
}

// Runs `scenario` once per engine configuration (fresh network each time)
// and checks every parallel run against the serial baseline.
void run_differential(
    const std::function<Snapshot(net::EngineKind, int)>& scenario) {
  const Snapshot base = scenario(net::EngineKind::kSerial, 0);
  ASSERT_FALSE(base.counters.empty());
  for (const int workers : {1, 2, 8}) {
    const Snapshot par = scenario(net::EngineKind::kParallel, workers);
    expect_identical(base, par,
                     "parallel:" + std::to_string(workers) + " vs serial");
  }
}

// Same-timestamp burst: many packets injected at one simulation instant,
// exercising the engine's same-t event grouping.
void burst(net::Network& net, int src, int dst, double at, int n) {
  const std::uint32_t sip = net.topo().node(src).ip;
  const std::uint32_t dip = net.topo().node(dst).ip;
  net.events().schedule_at(at, [&net, src, sip, dip, n] {
    for (int i = 0; i < n; ++i) {
      net.send_from_host(
          src, p4rt::make_udp(sip, dip,
                              static_cast<std::uint16_t>(7000 + i), 2000,
                              200 + 16 * i));
    }
  });
}

TEST(EngineDifferential, LeafSpineRandomTraffic) {
  run_differential([](net::EngineKind kind, int workers) {
    auto fabric = net::make_leaf_spine(4, 4, 2);
    net::Network net(fabric.topo);
    net.set_engine(kind, workers);
    auto routing = fwd::install_leaf_spine_routing(net, fabric);
    net.set_observability(true);
    net.set_forensics(true);

    const int lb = net.deploy(compile_library_checker("dc_uplink_load_balance"));
    configure_load_balance(net, lb, fabric, 4000);
    const int ud = net.deploy(compile_library_checker("up_down_routing"));
    configure_up_down(net, ud, fabric);

    // Randomized cross-leaf UDP flows (Poisson arrivals, fixed seeds).
    net::UdpFlood f1(net, fabric.hosts[0][0], fabric.hosts[3][1], 0.7, 900);
    f1.set_poisson(11);
    net::UdpFlood f2(net, fabric.hosts[1][1], fabric.hosts[2][0], 0.5, 300);
    f2.set_poisson(23);
    net::CampusReplay replay(net, fabric.hosts[2][1], fabric.hosts[0][1],
                             60000.0, 7);
    f1.start(0.0, 2e-3);
    f2.start(0.0, 2e-3);
    replay.start(0.0, 2e-3);
    burst(net, fabric.hosts[0][1], fabric.hosts[3][0], 1e-3, 24);
    net.events().run();
    return snapshot(net);
  });
}

TEST(EngineDifferential, FatTreeRandomTraffic) {
  run_differential([](net::EngineKind kind, int workers) {
    auto ft = net::make_fat_tree(4);
    net::Network net(ft.topo);
    net.set_engine(kind, workers);
    auto routing = fwd::install_fat_tree_routing(net, ft);
    net.set_observability(true);
    net.set_forensics(true);

    const int ud = net.deploy(compile_library_checker("up_down_routing"));
    configure_up_down(net, ud, ft);

    // Cross-pod and intra-pod mixes from every pod.
    net::CampusReplay replay(net, ft.hosts[0][0][0], ft.hosts[3][1][1],
                             80000.0, 99);
    net::UdpFlood f1(net, ft.hosts[1][0][1], ft.hosts[2][1][0], 0.8, 1200);
    f1.set_poisson(5);
    net::UdpFlood f2(net, ft.hosts[2][0][0], ft.hosts[2][1][1], 0.6, 256);
    f2.set_poisson(17);
    replay.start(0.0, 1.5e-3);
    f1.start(0.0, 1.5e-3);
    f2.start(0.0, 1.5e-3);
    burst(net, ft.hosts[3][0][0], ft.hosts[0][1][0], 8e-4, 32);
    net.events().run();
    return snapshot(net);
  });
}

// Flow-affinity fast path: observability and forensics OFF, register-free
// checkers, concurrent-safe forwarding — Network::flow_sharding_allowed()
// holds, so parallel windows shard by flow hash and hops of the SAME switch
// execute concurrently through the cache-bypassing table probe. Runs must
// still be bit-identical in everything observable without the metrics
// layer: counters, reports, and final checker state.
TEST(EngineDifferential, FlowShardingObsOffRandomTraffic) {
  run_differential([](net::EngineKind kind, int workers) {
    auto fabric = net::make_leaf_spine(4, 4, 2);
    net::Network net(fabric.topo);
    net.set_engine(kind, workers);
    auto routing = fwd::install_leaf_spine_routing(net, fabric);
    // No set_observability / set_forensics: exactly the configuration the
    // flow-affinity plan requires.
    const int vf = net.deploy(compile_library_checker("valley_free"));
    configure_valley_free(net, vf, fabric);
    net.deploy(compile_library_checker("loops"));
    EXPECT_TRUE(net.flow_sharding_allowed());

    net::UdpFlood f1(net, fabric.hosts[0][0], fabric.hosts[3][1], 0.9, 700);
    f1.set_poisson(41);
    net::UdpFlood f2(net, fabric.hosts[1][0], fabric.hosts[2][1], 0.7, 450);
    f2.set_poisson(57);
    net::UdpFlood f3(net, fabric.hosts[2][0], fabric.hosts[0][1], 0.5, 300);
    f3.set_poisson(73);
    f1.start(0.0, 2e-3);
    f2.start(0.0, 2e-3);
    f3.start(0.0, 2e-3);
    burst(net, fabric.hosts[3][0], fabric.hosts[1][1], 1e-3, 32);
    net.events().run();
    EXPECT_GT(net.counters().delivered, 0u);
    return snapshot(net);
  });
}

// Every flow converges on one leaf: a single hot switch dominates every
// window, stressing the LPT switch-group planner's balance and the
// one-switch-one-worker rule that keeps per-table cache behaviour (and
// thus the metrics snapshot) exact with observability ON.
TEST(EngineDifferential, HotSwitchSkewedLoadSwitchGroups) {
  run_differential([](net::EngineKind kind, int workers) {
    auto fabric = net::make_leaf_spine(4, 4, 2);
    net::Network net(fabric.topo);
    net.set_engine(kind, workers);
    auto routing = fwd::install_leaf_spine_routing(net, fabric);
    net.set_observability(true);
    net.set_forensics(true);
    EXPECT_FALSE(net.flow_sharding_allowed());  // obs forces switch groups

    const int ud = net.deploy(compile_library_checker("up_down_routing"));
    configure_up_down(net, ud, fabric);
    // All traffic lands on leaf 0's hosts.
    net::UdpFlood f1(net, fabric.hosts[1][0], fabric.hosts[0][0], 1.0, 600);
    f1.set_poisson(7);
    net::UdpFlood f2(net, fabric.hosts[2][1], fabric.hosts[0][1], 0.8, 500);
    f2.set_poisson(19);
    net::UdpFlood f3(net, fabric.hosts[3][0], fabric.hosts[0][0], 0.6, 400);
    f3.set_poisson(31);
    f1.start(0.0, 2e-3);
    f2.start(0.0, 2e-3);
    f3.start(0.0, 2e-3);
    burst(net, fabric.hosts[3][1], fabric.hosts[0][1], 9e-4, 40);
    net.events().run();
    return snapshot(net);
  });
}

// Closed control loop (report callback installs table entries): the
// parallel engine must degrade to serial per-event execution and still
// match the serial engine exactly, including mid-simulation rule installs.
TEST(EngineDifferential, FirewallControlLoopDegradesDeterministically) {
  run_differential([](net::EngineKind kind, int workers) {
    auto fabric = net::make_leaf_spine(2, 2, 2);
    net::Network net(fabric.topo);
    net.set_engine(kind, workers);
    auto routing = fwd::install_leaf_spine_routing(net, fabric);
    net.set_observability(true);
    net.set_forensics(true);

    const int dep = net.deploy(compile_library_checker("stateful_firewall"));
    apps::FirewallAgent agent(net, dep);
    const auto ip = [&](int h) { return net.topo().node(h).ip; };
    net.dict_insert_all(dep, "allowed",
                        {BitVec(32, ip(fabric.hosts[0][0])),
                         BitVec(32, ip(fabric.hosts[1][0]))},
                        {BitVec::from_bool(true)});
    net.send_from_host(fabric.hosts[0][0],
                       p4rt::make_udp(ip(fabric.hosts[0][0]),
                                      ip(fabric.hosts[1][0]), 1000, 2000,
                                      64));
    net.events().run();
    // Reverse traffic now flows thanks to the agent's installs.
    net.send_from_host(fabric.hosts[1][0],
                       p4rt::make_udp(ip(fabric.hosts[1][0]),
                                      ip(fabric.hosts[0][0]), 2000, 1000,
                                      64));
    net.events().run();
    EXPECT_EQ(agent.rules_installed(), 1u);
    EXPECT_EQ(net.counters().rejected, 0u);
    return snapshot(net);
  });
}

// The full fault plan armed — loss, corruption, duplication, reordering,
// scheduled + random link outages, a mid-run switch restart, and delayed
// rule pushes — must produce bit-identical outcomes (reports, metrics,
// forensics JSON, fault stats) at any worker count: every fault die is
// rolled on the main thread in canonical commit order.
TEST(EngineDifferential, ChaosFaultPlanDeterministicAcrossEngines) {
  run_differential([](net::EngineKind kind, int workers) {
    auto fabric = net::make_leaf_spine(2, 2, 2);
    net::Network net(fabric.topo);
    net.set_engine(kind, workers);
    fwd::install_leaf_spine_routing(net, fabric);
    net.set_observability(true);
    net.set_forensics(true);
    const int dep = net.deploy(compile_library_checker("stateful_firewall"));

    net::FaultPlan plan;
    plan.loss = 0.03;
    plan.corrupt = 0.1;
    plan.duplicate = 0.04;
    plan.reorder = 0.06;
    plan.reorder_max_s = 40e-6;
    plan.flap_rate_hz = 2000.0;
    plan.flap_down_s = 120e-6;
    plan.horizon_s = 2.5e-3;
    plan.failures.push_back(
        {net.topo().link_index({fabric.leaves[0], fabric.leaf_uplink_port(0)}),
         5e-4, 9e-4});
    plan.restarts.push_back({fabric.leaves[1], 1.2e-3});
    plan.restart_warmup_s = 300e-6;
    plan.rule_push_delay_s = 70e-6;
    plan.rule_push_jitter_s = 50e-6;
    net.arm_faults(plan, 1234);

    const auto ip = [&](int h) { return net.topo().node(h).ip; };
    const int client = fabric.hosts[0][0];
    const int server = fabric.hosts[1][0];
    const int intruder = fabric.hosts[0][1];
    net.dict_insert_all_delayed(dep, "allowed",
                                {BitVec(32, ip(client)),
                                 BitVec(32, ip(server))},
                                {BitVec::from_bool(true)});
    net.dict_insert_all_delayed(dep, "allowed",
                                {BitVec(32, ip(server)),
                                 BitVec(32, ip(client))},
                                {BitVec::from_bool(true)});
    for (int i = 0; i < 160; ++i) {
      const double t = 12e-6 * (i + 1);
      const int src = i % 4 == 3 ? intruder : client;
      const std::uint32_t sip = ip(src);
      const std::uint32_t dip = ip(server);
      const auto sport = static_cast<std::uint16_t>(6000 + i % 16);
      net.events().schedule_at(t, [&net, src, sip, dip, sport] {
        net.send_from_host(src, p4rt::make_udp(sip, dip, sport, 80, 64));
      });
    }
    net.events().run();
    return snapshot(net);
  });
}

// Streaming export armed: windows tick at virtual-time boundaries inside
// both engines' commit phases, so the Prometheus exposition AND the
// windowed series (deltas, rates, latency percentiles per window) must be
// byte-identical across engines and worker counts — not just the final
// totals.
TEST(EngineDifferential, StreamingExportByteIdenticalAcrossEngines) {
  run_differential([](net::EngineKind kind, int workers) {
    auto fabric = net::make_leaf_spine(4, 4, 2);
    net::Network net(fabric.topo);
    net.set_engine(kind, workers);
    auto routing = fwd::install_leaf_spine_routing(net, fabric);
    net.set_forensics(true);

    const int lb = net.deploy(compile_library_checker("dc_uplink_load_balance"));
    configure_load_balance(net, lb, fabric, 4000);
    const int ud = net.deploy(compile_library_checker("up_down_routing"));
    configure_up_down(net, ud, fabric);
    // 40 windows over the 2 ms run; implies observability.
    net.set_export_interval(5e-5);
    EXPECT_TRUE(net.export_armed());

    net::UdpFlood f1(net, fabric.hosts[0][0], fabric.hosts[3][1], 0.7, 900);
    f1.set_poisson(11);
    net::UdpFlood f2(net, fabric.hosts[1][1], fabric.hosts[2][0], 0.5, 300);
    f2.set_poisson(23);
    f1.start(0.0, 2e-3);
    f2.start(0.0, 2e-3);
    burst(net, fabric.hosts[0][1], fabric.hosts[3][0], 1e-3, 24);
    net.events().run();

    EXPECT_GT(net.export_scheduler_ptr()->captured(), 10u);
    return snapshot(net);
  });
}

// Aether session churn: the generator attaches/detaches subscribers and
// streams GTP-U uplinks from tick(), mutating UPF and checker tables
// mid-run. Registering as a control loop degrades the parallel engine to
// serial per-event windows, so every observation — including the final
// table state after incremental removals — must stay byte-identical at
// any worker count.
TEST(EngineDifferential, AetherSessionChurnDeterministicAcrossEngines) {
  run_differential([](net::EngineKind kind, int workers) {
    auto fabric = net::make_leaf_spine(2, 2, 2);
    net::Network net(fabric.topo);
    net.set_engine(kind, workers);
    auto routing = fwd::install_leaf_spine_routing(net, fabric);
    auto upf = std::make_shared<fwd::UpfProgram>(routing);
    net.set_program(fabric.leaves[0], upf);
    const int dep =
        net.deploy(compile_library_checker("application_filtering"));
    net.set_observability(true);

    aether::AetherController ctl(net, upf, dep);
    ctl.define_slice(aether::example_camera_slice(1));

    aether::SessionChurnGenerator::Config gc;
    gc.sessions = 200;
    gc.churn_per_s = 20000.0;
    gc.packets_per_s = 200000.0;
    gc.enb_host = fabric.hosts[0][0];
    gc.enb_ip = net.topo().node(fabric.hosts[0][0]).ip;
    gc.n3_ip = 0x0a0001fe;
    gc.app_ip = net.topo().node(fabric.hosts[1][0]).ip;
    gc.seed = 99;
    aether::SessionChurnGenerator gen(net, ctl, gc);
    gen.set_latency_sampling(false);
    gen.prefill();
    gen.start(0.0, 2e-3);
    net.events().run();
    return snapshot(net);
  });
}

// Live observability plane: every committed export tick publishes an
// immutable scrape snapshot from the commit path (workers quiesced), so
// the /metrics and /series bodies at EVERY tick — not just end of run —
// must be byte-identical across engines and worker counts. This is the
// determinism contract a scraper observes through hydrad.
TEST(EngineDifferential, LiveScrapeBodiesByteIdenticalAcrossEngines) {
  run_differential([](net::EngineKind kind, int workers) {
    auto fabric = net::make_leaf_spine(2, 2, 2);
    net::Network net(fabric.topo);
    net.set_engine(kind, workers);
    auto routing = fwd::install_leaf_spine_routing(net, fabric);
    auto upf = std::make_shared<fwd::UpfProgram>(routing);
    net.set_program(fabric.leaves[0], upf);
    const int dep =
        net.deploy(compile_library_checker("application_filtering"));
    net.set_observability(true);
    net.set_export_interval(1e-4);
    net::Network::LiveObsOptions opts;
    opts.topk_k = 4;
    opts.session_net = 0x50000000u;   // SessionChurnGenerator UE block
    opts.session_mask = 0xFC000000u;
    net.arm_live_obs(opts);

    obs::SnapshotPublisher pub;
    std::string live_metrics;
    std::string live_series;
    pub.set_on_publish([&](const obs::LiveSnapshot& s) {
      live_metrics += "tick " + std::to_string(s.tick_index) + "\n";
      live_metrics += s.metrics_text;
      live_series += s.series_json;
      live_series += '\n';
    });
    net.set_live_publisher(&pub);

    aether::AetherController ctl(net, upf, dep);
    ctl.define_slice(aether::example_camera_slice(1));
    aether::SessionChurnGenerator::Config gc;
    gc.sessions = 100;
    gc.churn_per_s = 20000.0;
    gc.packets_per_s = 200000.0;
    gc.enb_host = fabric.hosts[0][0];
    gc.enb_ip = net.topo().node(fabric.hosts[0][0]).ip;
    gc.n3_ip = 0x0a0001fe;
    gc.app_ip = net.topo().node(fabric.hosts[1][0]).ip;
    gc.seed = 7;
    aether::SessionChurnGenerator gen(net, ctl, gc);
    gen.set_latency_sampling(false);
    gen.prefill();
    gen.start(0.0, 2e-3);
    net.events().run();

    EXPECT_GT(net.export_scheduler_ptr()->captured(), 5u);
    Snapshot s = snapshot(net);
    s.live_metrics = std::move(live_metrics);
    s.live_series = std::move(live_series);
    return s;
  });
}

// Rolling deploy → undeploy → redeploy under live traffic: the staged
// per-switch swaps ride the control channel ((t, seq)-ordered like switch
// restarts), and frames stamped by the retired generation reject
// fail-closed mid-flight. The whole lifecycle — stale-reject counters,
// forensics, Prometheus bodies, and the v2 full-state snapshot — must be
// byte-identical across engines and worker counts.
TEST(EngineDifferential, RollingDeployUndeployRedeployUnderLiveTraffic) {
  run_differential([](net::EngineKind kind, int workers) {
    auto fabric = net::make_leaf_spine(2, 2, 2);
    net::Network net(fabric.topo);
    net.set_engine(kind, workers);
    auto routing = fwd::install_leaf_spine_routing(net, fabric);
    net.set_observability(true);
    net.set_forensics(true);
    net.set_export_interval(5e-5);

    const int ud = net.deploy(compile_library_checker("up_down_routing"));
    configure_up_down(net, ud, fabric);

    net::UdpFlood f1(net, fabric.hosts[0][0], fabric.hosts[1][1], 0.6, 700);
    f1.set_poisson(29);
    net::UdpFlood f2(net, fabric.hosts[1][0], fabric.hosts[0][1], 0.4, 300);
    f2.set_poisson(37);
    f1.start(0.0, 2e-3);
    f2.start(0.0, 2e-3);
    // Bursts 3 µs before each lifecycle pause: stamped at the ingress leaf
    // before the swap sweep lands, mid-path when it does.
    burst(net, fabric.hosts[0][1], fabric.hosts[1][0], 0.497e-3, 24);
    burst(net, fabric.hosts[1][1], fabric.hosts[0][0], 0.997e-3, 24);
    burst(net, fabric.hosts[0][0], fabric.hosts[1][0], 1.497e-3, 24);

    net.events().run_until(0.5e-3);
    const int lp = net.deploy_rolling(compile_library_checker("loops"));
    net.events().run_until(1.0e-3);
    net.undeploy_rolling(lp);
    net.events().run_until(1.5e-3);
    EXPECT_FALSE(net.deployment_live(lp));
    EXPECT_EQ(net.deploy_rolling(compile_library_checker("loops")), lp);
    net.events().run();
    EXPECT_FALSE(net.swap_in_progress());
    EXPECT_TRUE(net.deployment_live(lp));

    Snapshot s = snapshot(net);
    s.state += net.full_snapshot();
    return s;
  });
}

// Switching engines mid-lifetime (between drains) preserves behaviour.
TEST(EngineDifferential, EngineSwapBetweenRuns) {
  auto run = [](bool swap) {
    auto fabric = net::make_leaf_spine(2, 2, 2);
    net::Network net(fabric.topo);
    auto routing = fwd::install_leaf_spine_routing(net, fabric);
    net.set_observability(true);
    net.set_forensics(true);
    const int ud = net.deploy(compile_library_checker("up_down_routing"));
    configure_up_down(net, ud, fabric);
    net::UdpFlood f(net, fabric.hosts[0][0], fabric.hosts[1][1], 0.4, 700);
    f.set_poisson(3);
    f.start(0.0, 5e-4);
    net.events().run_until(2.5e-4);
    if (swap) net.set_engine(net::EngineKind::kParallel, 4);
    net.events().run();
    return snapshot(net);
  };
  const Snapshot serial = run(false);
  const Snapshot swapped = run(true);
  expect_identical(serial, swapped, "mid-run engine swap");
}

TEST(EngineSpec, ParseAndName) {
  int workers = -1;
  EXPECT_EQ(net::parse_engine_kind("serial", &workers),
            net::EngineKind::kSerial);
  EXPECT_EQ(workers, 0);
  EXPECT_EQ(net::parse_engine_kind("parallel", &workers),
            net::EngineKind::kParallel);
  EXPECT_EQ(workers, 0);
  EXPECT_EQ(net::parse_engine_kind("parallel:6", &workers),
            net::EngineKind::kParallel);
  EXPECT_EQ(workers, 6);
  EXPECT_THROW(net::parse_engine_kind("turbo", nullptr),
               std::invalid_argument);
  EXPECT_STREQ(net::engine_kind_name(net::EngineKind::kSerial), "serial");
  EXPECT_STREQ(net::engine_kind_name(net::EngineKind::kParallel),
               "parallel");
}

// Under sustained load the profiler must span every engine phase —
// pop_window, epoch, compute, commit, barrier — with dispatched-parallel
// epochs present, and the per-mode epoch counters plus the lookahead-
// multiplier histogram must surface in the metrics snapshot.
TEST(EngineProfiler, CoversEveryPhaseOnLoadedFabric) {
  auto fabric = net::make_leaf_spine(4, 4, 2);
  net::Network net(fabric.topo);
  net.set_engine(net::EngineKind::kParallel, 4);
  auto routing = fwd::install_leaf_spine_routing(net, fabric);
  net.set_observability(true);
  net.set_engine_profiling(true);
  const int ud = net.deploy(compile_library_checker("up_down_routing"));
  configure_up_down(net, ud, fabric);

  net::UdpFlood f1(net, fabric.hosts[0][0], fabric.hosts[3][1], 2.0, 600);
  f1.set_poisson(11);
  net::UdpFlood f2(net, fabric.hosts[1][1], fabric.hosts[2][0], 2.0, 600);
  f2.set_poisson(23);
  f1.start(0.0, 2e-3);
  f2.start(0.0, 2e-3);
  burst(net, fabric.hosts[0][1], fabric.hosts[3][0], 1e-3, 48);
  net.events().run();

  const std::string trace = net.engine_profiler().to_chrome_trace_json();
  for (const char* phase :
       {"pop_window", "epoch", "compute", "commit", "barrier"}) {
    EXPECT_NE(trace.find(phase), std::string::npos) << phase;
  }
  EXPECT_NE(trace.find("\"mode\": \"parallel\""), std::string::npos);
  EXPECT_NE(trace.find("lookahead_mult"), std::string::npos);

  const std::string metrics = net.metrics_json();
  for (const char* name :
       {"engine.epochs.parallel", "engine.epochs.flow",
        "engine.epochs.callbacks", "engine.epochs.one_worker",
        "engine.epochs.small_window", "engine.epoch.lookahead_mult"}) {
    EXPECT_NE(metrics.find(name), std::string::npos) << name;
  }
}

// Malformed worker counts must be rejected loudly — not parsed as zero,
// silently clamped, or treated as a different engine name.
TEST(EngineSpec, RejectsBadWorkerCounts) {
  for (const char* spec :
       {"parallel:0", "parallel:-2", "parallel:abc", "parallel:",
        "parallel:2x", "parallel:99999", "parallel: 4"}) {
    EXPECT_THROW(net::parse_engine_kind(spec, nullptr),
                 std::invalid_argument)
        << spec;
  }
  try {
    net::parse_engine_kind("parallel:0", nullptr);
    FAIL() << "parallel:0 accepted";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("parallel:0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("worker count"), std::string::npos) << msg;
  }
  int workers = -1;
  EXPECT_EQ(net::parse_engine_kind("parallel:1024", &workers),
            net::EngineKind::kParallel);
  EXPECT_EQ(workers, 1024);
}

TEST(EngineSpec, NetworkReportsEngineSelection) {
  auto fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net(fabric.topo);
  EXPECT_EQ(net.engine_kind(), net::EngineKind::kSerial);
  EXPECT_EQ(net.engine_workers(), 1);
  net.set_engine(net::EngineKind::kParallel, 3);
  EXPECT_EQ(net.engine_kind(), net::EngineKind::kParallel);
  EXPECT_EQ(net.engine_workers(), 3);
  net.set_engine(net::EngineKind::kSerial);
  EXPECT_EQ(net.engine_workers(), 1);
}

}  // namespace
}  // namespace hydra
