#include "compiler/link_p4.hpp"

#include "util/strings.hpp"

namespace hydra::compiler {

ForwardingSkeleton ForwardingSkeleton::fabric_upf() {
  ForwardingSkeleton s;
  s.name = "fabric-upf";
  s.headers = R"(// fabric-upf forwarding state (abridged)
header ethernet_h { bit<48> dst; bit<48> src; bit<16> ether_type; }
header vlan_h { bit<12> vid; bit<16> ether_type; }
header ipv4_h { bit<32> src_addr; bit<32> dst_addr; bit<8> protocol;
                bit<8> ttl; bit<6> dscp; }
header gtpu_h { bit<32> teid; }
table bridging { key = { hdr.vlan.vid: exact; hdr.ethernet.dst: exact; }
                 actions = { set_output; drop; } }
table sessions_uplink { key = { hdr.gtpu.teid: exact; }
                        actions = { set_session; drop; } }
table sessions_downlink { key = { hdr.ipv4.dst_addr: exact; }
                          actions = { set_tunnel; drop; } }
table applications { key = { meta.slice_id: exact;
                             hdr.ipv4.dst_addr: ternary;
                             meta.l4_port: range;
                             hdr.ipv4.protocol: ternary; }
                     actions = { set_app_id; } }
table terminations { key = { meta.client_id: exact; meta.app_id: exact; }
                     actions = { fwd; drop; } }
table acl { key = { hdr.ipv4.src_addr: ternary; hdr.ipv4.dst_addr: ternary; }
            actions = { permit; deny; } }
table routing_v4 { key = { hdr.ipv4.dst_addr: lpm; }
                   actions = { set_ecmp_group; drop; } })";
  s.ingress_body = R"(bridging.apply();
if (hdr.gtpu.isValid()) { sessions_uplink.apply(); }
else { sessions_downlink.apply(); }
applications.apply();
terminations.apply();
acl.apply();
routing_v4.apply();)";
  s.egress_body = R"(// egress: VLAN tagging + counters
vlan_rewrite.apply();
port_counters.count(eg_intr_md.egress_port);)";
  return s;
}

ForwardingSkeleton ForwardingSkeleton::simple_router() {
  ForwardingSkeleton s;
  s.name = "simple-router";
  s.headers = R"(header ethernet_h { bit<48> dst; bit<48> src; bit<16> ether_type; }
header ipv4_h { bit<32> src_addr; bit<32> dst_addr; bit<8> ttl; }
table routing_v4 { key = { hdr.ipv4.dst_addr: lpm; }
                   actions = { set_next_hop; drop; } })";
  s.ingress_body = "routing_v4.apply();\nhdr.ipv4.ttl = hdr.ipv4.ttl - 1;";
  s.egress_body = "// no egress processing";
  return s;
}

LinkedProgram link_p4(const CompiledChecker& checker,
                      const ForwardingSkeleton& forwarding, SwitchRole role) {
  LinkedProgram out;
  out.role = role;
  out.runs_init = role == SwitchRole::kEdge;
  out.runs_checker = role == SwitchRole::kEdge ||
                     checker.options.placement == CheckPlacement::kEveryHop;

  std::string& p = out.p4_code;
  p += "// Linked pipeline: forwarding '" + forwarding.name +
       "' + hydra checker '" + checker.name + "'\n";
  p += "// role: ";
  p += role == SwitchRole::kEdge ? "edge" : "core";
  p += "\n\n";
  p += forwarding.headers;
  p += "\n\n// ---- Hydra generated code "
       "(headers, parser, tables, blocks) ----\n";
  p += checker.p4_code;
  p += "\n// ---- linked pipeline ----\n";
  p += "control Ingress(inout headers_t hdr, inout metadata_t meta) {\n";
  p += "    apply {\n";
  if (out.runs_init) {
    p += "        // Hydra init runs BEFORE forwarding can rewrite "
         "headers\n";
    p += "        if (meta.hydra_first_hop) {\n";
    p += "            HydraInit.apply(hdr.hydra_tag, hdr.hydra, meta);\n";
    p += "        }\n";
  }
  p += str::indent(forwarding.ingress_body, 8);
  p += "\n    }\n}\n";
  p += "control Egress(inout headers_t hdr, inout metadata_t meta) {\n";
  p += "    apply {\n";
  p += str::indent(forwarding.egress_body, 8);
  p += "\n        HydraTelemetry.apply(hdr.hydra_tag, hdr.hydra, meta);\n";
  if (out.runs_checker) {
    if (checker.options.placement == CheckPlacement::kEveryHop) {
      p += "        // per-hop placement: the checker runs here on every "
           "switch\n";
      p += "        HydraChecker.apply(hdr.hydra_tag, hdr.hydra, meta);\n";
    } else {
      p += "        if (meta.hydra_last_hop) {\n";
      p += "            HydraChecker.apply(hdr.hydra_tag, hdr.hydra, "
           "meta);\n";
      p += "        }\n";
    }
  }
  p += "    }\n}\n";
  out.p4_loc = str::count_loc(p);
  return out;
}

}  // namespace hydra::compiler
