// Additional frontend unit coverage: the Type API, pretty printer output,
// diagnostics rendering, token formatting, and AST cloning.
#include <gtest/gtest.h>

#include "indus/ast.hpp"
#include "indus/diagnostics.hpp"
#include "indus/parser.hpp"
#include "indus/pretty.hpp"
#include "indus/token.hpp"
#include "indus/types.hpp"

namespace hydra::indus {
namespace {

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

TEST(Types, ToStringForms) {
  EXPECT_EQ(Type::bits(8)->to_string(), "bit<8>");
  EXPECT_EQ(Type::boolean()->to_string(), "bool");
  EXPECT_EQ(Type::array(Type::bits(32), 15)->to_string(), "bit<32>[15]");
  EXPECT_EQ(Type::set(Type::bits(8))->to_string(), "set<bit<8>>");
  EXPECT_EQ(Type::dict(Type::bits(8), Type::boolean())->to_string(),
            "dict<bit<8>,bool>");
  EXPECT_EQ(
      Type::tuple({Type::bits(32), Type::boolean()})->to_string(),
      "(bit<32>,bool)");
}

TEST(Types, StructuralEquality) {
  EXPECT_TRUE(Type::bits(8)->equals(*Type::bits(8)));
  EXPECT_FALSE(Type::bits(8)->equals(*Type::bits(9)));
  EXPECT_FALSE(Type::bits(1)->equals(*Type::boolean()));
  const auto d1 = Type::dict(Type::tuple({Type::bits(32), Type::bits(32)}),
                             Type::boolean());
  const auto d2 = Type::dict(Type::tuple({Type::bits(32), Type::bits(32)}),
                             Type::boolean());
  EXPECT_TRUE(d1->equals(*d2));
  EXPECT_FALSE(d1->equals(*Type::dict(Type::bits(32), Type::boolean())));
}

TEST(Types, FlatBitsAccountsForArrayCounter) {
  // 4 x 8-bit slots + a 3-bit counter (counts 0..4).
  EXPECT_EQ(Type::array(Type::bits(8), 4)->flat_bits(), 4 * 8 + 3);
  EXPECT_EQ(Type::bits(13)->flat_bits(), 13);
  EXPECT_EQ(Type::boolean()->flat_bits(), 1);
  EXPECT_EQ(Type::tuple({Type::bits(8), Type::boolean()})->flat_bits(), 9);
  // Sets/dicts live in tables, not on the wire.
  EXPECT_EQ(Type::set(Type::bits(8))->flat_bits(), 0);
}

TEST(Types, FlattenWidths) {
  EXPECT_EQ(Type::bits(13)->flatten_widths(), (std::vector<int>{13}));
  EXPECT_EQ(Type::tuple({Type::bits(32), Type::boolean(), Type::bits(16)})
                ->flatten_widths(),
            (std::vector<int>{32, 1, 16}));
  EXPECT_EQ(Type::array(Type::bits(8), 3)->flatten_widths(),
            (std::vector<int>{8, 8, 8}));
}

TEST(Types, InvalidConstructionsThrow) {
  EXPECT_THROW(Type::bits(0), std::invalid_argument);
  EXPECT_THROW(Type::bits(65), std::invalid_argument);
  EXPECT_THROW(Type::array(Type::bits(8), 0), std::invalid_argument);
  EXPECT_THROW(Type::tuple({Type::bits(8)}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Pretty printer specifics
// ---------------------------------------------------------------------------

std::string reprint(const std::string& src) {
  Diagnostics d;
  const Program p = parse_indus(src, d);
  EXPECT_FALSE(d.has_errors()) << d.to_string();
  return to_source(p);
}

TEST(Pretty, MinimalParenthesization) {
  const std::string out = reprint(
      "tele bool r;\ntele bit<8> a;\n{ r = a + 1 > 2 && a < 3; } { } { }");
  // Precedence makes most parens redundant.
  EXPECT_NE(out.find("r = a + 1 > 2 && a < 3;"), std::string::npos) << out;
}

TEST(Pretty, ParenthesizesWhenNeeded) {
  const std::string out = reprint(
      "tele bit<8> a;\n{ a = (a + 1) * 2; } { } { }");
  EXPECT_NE(out.find("a = (a + 1) * 2;"), std::string::npos) << out;
}

TEST(Pretty, ElsifChainsStayFlat) {
  const std::string out = reprint(R"(
    tele bit<8> x;
    { if (x == 1) { pass; } elsif (x == 2) { pass; } else { pass; } }
    { } { }
  )");
  EXPECT_NE(out.find("elsif (x == 2)"), std::string::npos) << out;
  // Not nested as `else { if ... }`.
  EXPECT_EQ(out.find("else {\n    if"), std::string::npos) << out;
}

TEST(Pretty, DeclRendering) {
  const std::string out = reprint(
      "header bit<16> p @\"hdr.udp.dst_port\";\n"
      "sensor bit<32> s = 7;\n{ } { } { }");
  EXPECT_NE(out.find("header bit<16> p @\"hdr.udp.dst_port\";"),
            std::string::npos);
  EXPECT_NE(out.find("sensor bit<32> s = 7;"), std::string::npos);
}

TEST(Pretty, ReportForms) {
  const std::string out = reprint(
      "header bit<8> a;\n{ report; report((a, a)); } { } { }");
  EXPECT_NE(out.find("report;"), std::string::npos);
  EXPECT_NE(out.find("report((a, a));"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

TEST(Diagnostics, RendersLocationAndSeverity) {
  Diagnostics d;
  d.error({3, 7}, "boom");
  d.warning({1, 1}, "meh");
  EXPECT_TRUE(d.has_errors());
  EXPECT_EQ(d.error_count(), 1);
  const std::string s = d.to_string();
  EXPECT_NE(s.find("3:7: error: boom"), std::string::npos) << s;
  EXPECT_NE(s.find("1:1: warning: meh"), std::string::npos) << s;
}

TEST(Diagnostics, ThrowIfErrorsCarriesPhase) {
  Diagnostics d;
  d.error({2, 2}, "bad");
  try {
    d.throw_if_errors("typecheck");
    FAIL() << "expected CompileError";
  } catch (const CompileError& e) {
    EXPECT_NE(std::string(e.what()).find("typecheck failed"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bad"), std::string::npos);
  }
}

TEST(Diagnostics, WarningsAloneDoNotThrow) {
  Diagnostics d;
  d.warning({1, 1}, "just a warning");
  EXPECT_NO_THROW(d.throw_if_errors("parse"));
}

// ---------------------------------------------------------------------------
// Tokens
// ---------------------------------------------------------------------------

TEST(Tokens, ToStringShowsPayloads) {
  Token ident;
  ident.kind = Tok::kIdent;
  ident.text = "foo";
  EXPECT_EQ(ident.to_string(), "ident(foo)");
  Token num;
  num.kind = Tok::kNumber;
  num.number = 42;
  EXPECT_EQ(num.to_string(), "num(42)");
  Token str;
  str.kind = Tok::kString;
  str.text = "x.y";
  EXPECT_EQ(str.to_string(), "str(\"x.y\")");
  Token op;
  op.kind = Tok::kShl;
  EXPECT_EQ(op.to_string(), "'<<'");
}

// ---------------------------------------------------------------------------
// AST cloning
// ---------------------------------------------------------------------------

TEST(Ast, ExprCloneIsDeep) {
  ExprPtr e = make_binary(BinOp::kAdd, make_var("a"), make_number(1));
  ExprPtr c = e->clone();
  EXPECT_EQ(to_source(*e), to_source(*c));
  // Mutating the clone must not affect the original.
  c->args[1]->number = 99;
  EXPECT_EQ(to_source(*e), "a + 1");
  EXPECT_EQ(to_source(*c), "a + 99");
}

TEST(Ast, StmtCloneIsDeep) {
  Diagnostics d;
  const Program p = parse_indus(R"(
    tele bit<8> x;
    tele bit<8>[4] xs;
    { if (x == 1) { xs.push(x); report((x)); } else { x += 2; } }
    { for (v in xs) { x = v; } } { }
  )", d);
  ASSERT_FALSE(d.has_errors());
  const StmtPtr clone = p.init_block->clone();
  EXPECT_EQ(to_source(*p.init_block), to_source(*clone));
  const StmtPtr loop_clone = p.tele_block->clone();
  EXPECT_EQ(to_source(*p.tele_block), to_source(*loop_clone));
}

TEST(Ast, FindDecl) {
  Diagnostics d;
  const Program p =
      parse_indus("tele bit<8> x;\nheader bit<8> y;\n{ } { } { }", d);
  ASSERT_FALSE(d.has_errors());
  ASSERT_NE(p.find_decl("x"), nullptr);
  EXPECT_EQ(p.find_decl("x")->kind, VarKind::kTele);
  EXPECT_EQ(p.find_decl("z"), nullptr);
}

}  // namespace
}  // namespace hydra::indus
