#include "indus/pretty.hpp"

namespace hydra::indus {

namespace {

int binop_prec(BinOp op) {
  switch (op) {
    case BinOp::kOr: return 1;
    case BinOp::kAnd: return 2;
    case BinOp::kEq: case BinOp::kNe: return 3;
    case BinOp::kLt: case BinOp::kLe: case BinOp::kGt: case BinOp::kGe:
      return 4;
    case BinOp::kBitOr: return 5;
    case BinOp::kBitXor: return 6;
    case BinOp::kBitAnd: return 7;
    case BinOp::kShl: case BinOp::kShr: return 8;
    case BinOp::kAdd: case BinOp::kSub: return 9;
    case BinOp::kMul: case BinOp::kDiv: case BinOp::kMod: return 10;
  }
  return 0;
}

std::string expr_src(const Expr& e, int parent_prec);

std::string args_src(const std::vector<ExprPtr>& args) {
  std::string out;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i) out += ", ";
    out += expr_src(*args[i], 0);
  }
  return out;
}

std::string expr_src(const Expr& e, int parent_prec) {
  switch (e.kind) {
    case ExprKind::kVar:
      return e.name;
    case ExprKind::kNumber:
      return std::to_string(e.number);
    case ExprKind::kBoolLit:
      return e.bool_value ? "true" : "false";
    case ExprKind::kUnary:
      return std::string(unop_name(e.unop)) + expr_src(*e.args[0], 100);
    case ExprKind::kBinary: {
      const int prec = binop_prec(e.binop);
      std::string out = expr_src(*e.args[0], prec) + " " +
                        binop_name(e.binop) + " " +
                        expr_src(*e.args[1], prec + 1);
      if (prec < parent_prec) return "(" + out + ")";
      return out;
    }
    case ExprKind::kIndex:
      return expr_src(*e.args[0], 100) + "[" + expr_src(*e.args[1], 0) + "]";
    case ExprKind::kTuple:
      return "(" + args_src(e.args) + ")";
    case ExprKind::kCall:
      return e.name + "(" + args_src(e.args) + ")";
    case ExprKind::kIn: {
      std::string out =
          expr_src(*e.args[0], 5) + " in " + expr_src(*e.args[1], 5);
      if (parent_prec > 4) return "(" + out + ")";
      return out;
    }
  }
  return "?";
}

std::string pad(int indent) {
  return std::string(static_cast<std::size_t>(indent) * 2, ' ');
}

void stmt_src(const Stmt& s, int indent, std::string& out) {
  const std::string p = pad(indent);
  switch (s.kind) {
    case StmtKind::kPass:
      out += p + "pass;\n";
      return;
    case StmtKind::kBlock:
      out += p + "{\n";
      for (const auto& child : s.body) stmt_src(*child, indent + 1, out);
      out += p + "}\n";
      return;
    case StmtKind::kAssign: {
      const char* op = s.assign_op == AssignOp::kSet   ? " = "
                       : s.assign_op == AssignOp::kAdd ? " += "
                                                       : " -= ";
      out += p + expr_src(*s.target, 0) + op + expr_src(*s.value, 0) + ";\n";
      return;
    }
    case StmtKind::kIf: {
      for (std::size_t i = 0; i < s.arms.size(); ++i) {
        out += p + (i == 0 ? "if (" : "elsif (") +
               expr_src(*s.arms[i].cond, 0) + ") ";
        // Arm bodies are blocks; print inline from the brace.
        std::string body;
        stmt_src(*s.arms[i].body, indent, body);
        // Drop leading indent so the brace follows the condition.
        out += body.substr(p.size());
        if (i + 1 < s.arms.size() || s.else_body) {
          out.pop_back();  // replace trailing newline with a space
          out += "\n";
        }
      }
      if (s.else_body) {
        out += p + "else ";
        std::string body;
        stmt_src(*s.else_body, indent, body);
        out += body.substr(p.size());
      }
      return;
    }
    case StmtKind::kFor: {
      out += p + "for (";
      for (std::size_t i = 0; i < s.loop_vars.size(); ++i) {
        if (i) out += ", ";
        out += s.loop_vars[i];
      }
      out += " in ";
      for (std::size_t i = 0; i < s.iterables.size(); ++i) {
        if (i) out += ", ";
        out += expr_src(*s.iterables[i], 0);
      }
      out += ") ";
      std::string body;
      stmt_src(*s.body[0], indent, body);
      out += body.substr(p.size());
      return;
    }
    case StmtKind::kPush:
      out += p + expr_src(*s.push_list, 100) + ".push(" +
             expr_src(*s.push_value, 0) + ");\n";
      return;
    case StmtKind::kReport:
      if (s.report_args.empty()) {
        out += p + "report;\n";
      } else {
        out += p + "report((" + args_src(s.report_args) + "));\n";
      }
      return;
    case StmtKind::kReject:
      out += p + "reject;\n";
      return;
  }
}

}  // namespace

std::string to_source(const Expr& expr) { return expr_src(expr, 0); }

std::string to_source(const Stmt& stmt, int indent) {
  std::string out;
  stmt_src(stmt, indent, out);
  return out;
}

std::string to_source(const Decl& decl) {
  std::string out = var_kind_name(decl.kind);
  out += " ";
  out += decl.type->to_string();
  out += " " + decl.name;
  if (!decl.annotation.empty()) out += " @\"" + decl.annotation + "\"";
  if (decl.init) out += " = " + to_source(*decl.init);
  out += ";";
  return out;
}

std::string to_source(const Program& program) {
  std::string out;
  for (const auto& d : program.decls) {
    out += to_source(d);
    out += '\n';
  }
  if (!program.decls.empty()) out += '\n';
  if (program.init_block) out += to_source(*program.init_block);
  if (program.tele_block) out += to_source(*program.tele_block);
  if (program.check_block) out += to_source(*program.check_block);
  return out;
}

}  // namespace hydra::indus
