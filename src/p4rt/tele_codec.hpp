// Byte-exact telemetry serialization. The simulator normally carries
// telemetry frames as typed values; this codec implements the actual
// parser/deparser the compiler generates — packing every tele field at its
// layout offset into wire bytes (plus the 2-byte Hydra EtherType tag) and
// parsing it back. Used by the wire-validation tests, by
// Network::set_wire_validation (which round-trips every frame through the
// codec at every hop to prove the layout is lossless), and by the
// fault-injection subsystem, which damages real wire bytes and re-parses
// them at the next hop.
//
// Malformed input is an expected runtime condition, not a programming
// error: a flaky link can truncate or corrupt any frame. The checked entry
// point (parse_frame_checked) therefore NEVER throws — it returns a
// FrameError that callers turn into a counted, fail-closed checker reject.
// The throwing parse_frame wrapper remains for validation paths where a
// malformed frame really is a bug (wire round-trip proofs).
#pragma once

#include <cstdint>
#include <vector>

#include "compiler/layout.hpp"
#include "p4rt/packet.hpp"

namespace hydra::p4rt {

// Serializes the tele fields of `frame` per `layout`. The result's size is
// exactly layout.wire_bytes (preamble + padded payload).
std::vector<std::uint8_t> serialize_frame(const compiler::TelemetryLayout& layout,
                                          const ir::CheckerIR& ir,
                                          const TeleFrame& frame);

// Why a frame failed to parse. Kept coarse on purpose: the reasons become
// static forensics annotations, and a dataplane cannot distinguish "lost
// tail bytes" from "never had them".
enum class FrameError {
  kOk = 0,
  kSizeMismatch,  // truncated or padded frame (wrong byte count)
  kBadTag,        // Hydra EtherType preamble missing or clobbered
};

// Static string for forensics/metrics annotation ("tele_size_mismatch",
// "tele_bad_tag", "ok"). Never allocates; safe to store in HopRecords.
const char* frame_error_reason(FrameError err);

// Non-throwing parser: on kOk, `out` holds the parsed frame (non-tele
// fields zeroed, checker set to `checker_id`); on failure `out` is left
// untouched. This is the fail-closed decode path the network uses for
// frames that crossed a faulty link.
FrameError parse_frame_checked(const compiler::TelemetryLayout& layout,
                               const ir::CheckerIR& ir, int checker_id,
                               const std::vector<std::uint8_t>& bytes,
                               TeleFrame& out);

// Parses bytes produced by serialize_frame back into a frame (non-tele
// fields zeroed). Throws std::invalid_argument on size or tag mismatch —
// use parse_frame_checked anywhere malformed input is survivable.
TeleFrame parse_frame(const compiler::TelemetryLayout& layout,
                      const ir::CheckerIR& ir, int checker_id,
                      const std::vector<std::uint8_t>& bytes);

}  // namespace hydra::p4rt
