// Unit tests for the Indus type checker: the non-interference rules
// (read-only header/control state), block placement of reject, typing of
// operators, and termination-friendly loop typing.
#include <gtest/gtest.h>

#include "checkers/library.hpp"
#include "indus/parser.hpp"
#include "indus/typecheck.hpp"

namespace hydra::indus {
namespace {

Diagnostics check(const std::string& src) {
  Diagnostics diags;
  Program p = parse_indus(src, diags);
  EXPECT_FALSE(diags.has_errors()) << "parse failed: " << diags.to_string();
  typecheck(p, diags);
  return diags;
}

void expect_ok(const std::string& src) {
  const Diagnostics d = check(src);
  EXPECT_FALSE(d.has_errors()) << d.to_string();
}

void expect_error(const std::string& src, const std::string& needle) {
  const Diagnostics d = check(src);
  ASSERT_TRUE(d.has_errors()) << "expected error containing '" << needle
                              << "'";
  EXPECT_NE(d.to_string().find(needle), std::string::npos)
      << "diagnostics were:\n" << d.to_string();
}

TEST(Typecheck, MinimalProgramOk) { expect_ok("{ } { } { }"); }

TEST(Typecheck, HeaderVariablesAreReadOnly) {
  expect_error("header bit<8> p;\n{ p = 1; } { } { }", "read-only");
}

TEST(Typecheck, ControlVariablesAreReadOnly) {
  expect_error("control bit<8> c;\n{ c = 1; } { } { }", "read-only");
}

TEST(Typecheck, HeaderCannotBeInitialized) {
  expect_error("header bit<8> p = 3;\n{ } { } { }", "read-only");
}

TEST(Typecheck, TeleAndSensorAreWritable) {
  expect_ok(R"(
    tele bit<8> t;
    sensor bit<32> s = 0;
    { t = 1; } { s += 2; } { }
  )");
}

TEST(Typecheck, RejectOnlyInCheckerBlock) {
  expect_error("{ reject; } { } { }", "reject");
  expect_error("{ } { reject; } { }", "reject");
  expect_ok("{ } { } { reject; }");
}

TEST(Typecheck, ReportAllowedEverywhere) {
  expect_ok("{ report; } { report; } { report; }");
}

TEST(Typecheck, UndeclaredVariable) {
  expect_error("{ x = 1; } { } { }", "undeclared");
}

TEST(Typecheck, DuplicateDeclaration) {
  expect_error("tele bit<8> x;\ntele bit<8> x;\n{ } { } { }", "duplicate");
}

TEST(Typecheck, BuiltinsAvailable) {
  expect_ok(R"(
    tele bool b;
    tele bit<32> n;
    { b = last_hop && first_hop; n = packet_length; } { } { }
  )");
}

TEST(Typecheck, BuiltinsAreReadOnly) {
  expect_error("{ last_hop = true; } { } { }", "read-only");
}

TEST(Typecheck, IfConditionMustBeBool) {
  expect_error("tele bit<8> x;\n{ if (x) { pass; } } { } { }", "bool");
}

TEST(Typecheck, ArithRequiresBits) {
  expect_error("tele bool b;\n{ b = b + b; } { } { }", "bit<n>");
}

TEST(Typecheck, LogicRequiresBool) {
  expect_error("tele bit<8> x;\ntele bool b;\n{ b = x && x; } { } { }",
               "bool");
}

TEST(Typecheck, MixedWidthBitsAreCompatible) {
  expect_ok("tele bit<8> a;\ntele bit<32> b;\n{ a = b; b = a + 1; } { } { }");
}

TEST(Typecheck, CannotCompareBoolWithBits) {
  expect_error("tele bool b;\ntele bit<8> x;\n{ b = b == x; } { } { }",
               "compare");
}

TEST(Typecheck, DictKeyTypeMismatch) {
  expect_error(R"(
    control dict<(bit<32>,bit<32>),bool> allowed;
    tele bool r;
    header bit<32> s;
    { r = allowed[s]; } { } { }
  )", "key type mismatch");
}

TEST(Typecheck, DictTupleKeyOk) {
  expect_ok(R"(
    control dict<(bit<32>,bit<32>),bool> allowed;
    tele bool r;
    header bit<32> s;
    header bit<32> d;
    { r = allowed[(s, d)]; } { } { }
  )");
}

TEST(Typecheck, ForRequiresArrays) {
  expect_error("tele bit<8> x;\n{ } { } { for (v in x) { pass; } }",
               "fixed-size arrays");
}

TEST(Typecheck, ParallelForRequiresEqualSizes) {
  expect_error(R"(
    tele bit<8>[4] a;
    tele bit<8>[5] b;
    { } { } { for (x, y in a, b) { pass; } }
  )", "equal array sizes");
}

TEST(Typecheck, LoopVariableIsReadOnly) {
  expect_error(R"(
    tele bit<8>[4] a;
    { } { } { for (x in a) { x = 1; } }
  )", "read-only");
}

TEST(Typecheck, LoopVariableShadowingIsAllowedWithWarning) {
  const Diagnostics d = check(R"(
    sensor bit<32> load = 0;
    tele bit<32>[4] loads;
    { } { } { for (load in loads) { report; } }
  )");
  EXPECT_FALSE(d.has_errors()) << d.to_string();
  EXPECT_FALSE(d.all().empty());  // the shadowing warning
}

TEST(Typecheck, PushOnlyOnTeleArrays) {
  expect_error(R"(
    tele bit<8>[4] a;
    tele bit<8> x;
    { x.push(1); } { } { }
  )", "array");
}

TEST(Typecheck, PushElementTypeChecked) {
  expect_error(R"(
    tele bool[4] flags;
    tele bit<8> x;
    { flags.push(x); } { } { }
  )", "push");
}

TEST(Typecheck, SensorMustBeScalar) {
  expect_error("sensor bit<8>[4] s;\n{ } { } { }", "scalar");
}

TEST(Typecheck, TeleCannotBeDict) {
  expect_error("tele dict<bit<8>,bit<8>> d;\n{ } { } { }", "tele");
}

TEST(Typecheck, InitializerMustBeConstant) {
  expect_error("header bit<8> p;\ntele bit<8> x = p;\n{ } { } { }",
               "constant");
}

TEST(Typecheck, ConstantFoldedInitializerOk) {
  expect_ok("tele bit<8> x = 2 + 3 * 4;\n{ } { } { }");
}

TEST(Typecheck, AbsRequiresBits) {
  expect_error("tele bool b;\n{ b = abs(b) == b; } { } { }", "abs");
}

TEST(Typecheck, LengthRequiresArray) {
  expect_error("tele bit<8> x;\n{ x = length(x); } { } { }", "length");
}

TEST(Typecheck, UnknownFunction) {
  expect_error("tele bit<8> x;\n{ x = foo(x); } { } { }", "unknown function");
}

TEST(Typecheck, InElementTypeChecked) {
  expect_error(R"(
    tele bool[4] flags;
    tele bit<8> x;
    tele bool r;
    { r = x in flags; } { } { }
  )", "element type mismatch");
}

TEST(Typecheck, CompoundAssignRequiresBits) {
  expect_error("tele bool b;\n{ b += true; } { } { }", "bit<n>");
}

// All library checkers must typecheck cleanly.
class LibraryTypecheck : public ::testing::TestWithParam<int> {};

TEST_P(LibraryTypecheck, Clean) {
  const auto& spec =
      checkers::all_checkers()[static_cast<std::size_t>(GetParam())];
  Diagnostics diags;
  Program p = parse_indus(spec.source, diags);
  ASSERT_FALSE(diags.has_errors()) << diags.to_string();
  typecheck(p, diags);
  EXPECT_FALSE(diags.has_errors()) << spec.name << ":\n" << diags.to_string();
}

INSTANTIATE_TEST_SUITE_P(AllCheckers, LibraryTypecheck,
                         ::testing::Range(0, static_cast<int>(checkers::all_checkers().size())),
                         [](const auto& info) {
                           return checkers::all_checkers()
                               [static_cast<std::size_t>(info.param)].name;
                         });

}  // namespace
}  // namespace hydra::indus
