// hydrascope — violation forensics and engine-profile dump tool.
//
// Replays a canonical scenario with the forensics flight recorder armed
// and, for every checker reject/report, prints a §5.2-style narrative of
// the violating packet's full journey (per-hop telemetry evolution,
// matched table entries, register deltas, the forwarding verdicts) and
// dumps the assembled ViolationReports as deterministic JSON.
//
//   $ ./hydrascope --forensics                     # aether, narrative+JSON
//   $ ./hydrascope --forensics --out forensics.json
//   $ ./hydrascope --forensics --engine parallel --workers 8
//       # byte-identical forensics JSON (engine contract; cmp-able in CI)
//   $ ./hydrascope --forensics --trace engine_trace.json
//       # also dump the engine phase profile as Chrome trace-event JSON —
//       # load in https://ui.perfetto.dev or chrome://tracing
//   $ ./hydrascope --forensics --min-violations 1  # exit 1 if fewer
//
// Scenarios (same fabrics as hydrastat):
//   aether    — the §5.2 application-filtering bug: after the buggy shared
//               Applications-table update, the pre-update client's retry is
//               silently dropped by the UPF; the checker reports it, and
//               the forensics show no_termination at the UPF leaf.
//   leafspine — stateful_firewall on a 2x2 leaf-spine: an unsolicited flow
//               is rejected at its last hop.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cli_parse.hpp"

#include "aether/controller.hpp"
#include "forwarding/ipv4_ecmp.hpp"
#include "forwarding/upf.hpp"
#include "hydra/hydra.hpp"
#include "net/engine.hpp"
#include "net/network.hpp"

using namespace hydra;

namespace {

void aether_scenario(net::Network& net, const net::LeafSpine& fabric) {
  auto routing = fwd::install_leaf_spine_routing(net, fabric);
  auto upf = std::make_shared<fwd::UpfProgram>(routing);
  net.set_program(fabric.leaves[0], upf);
  const int dep = net.deploy(compile_library_checker("application_filtering"));

  aether::AetherController ctl(net, upf, dep);
  ctl.define_slice(aether::example_camera_slice(1));

  const std::uint32_t enb = net.topo().node(fabric.hosts[0][0]).ip;
  const std::uint32_t n3 = 0x0a0001fe;
  const std::uint32_t app = net.topo().node(fabric.hosts[1][0]).ip;
  const std::uint32_t ue = 0x0a640001;
  const std::uint32_t teid = 1001;

  auto uplink = [&]() {
    p4rt::Packet inner = p4rt::make_udp(ue, app, 40000, 81, 64);
    net.send_from_host(fabric.hosts[0][0],
                       p4rt::gtpu_encap(inner, enb, n3, teid));
    net.events().run();
  };

  // Attach, verify the flow works, then apply the buggy rule update (see
  // tools/hydrastat.cpp). The old client's retry after the update hits the
  // fresh shared Applications entry it has no termination for — the UPF
  // drops silently, and the checker's report triggers forensics assembly.
  ctl.attach_client(1, {123450001ULL, ue, teid}, enb, n3);
  uplink();
  aether::Slice updated = aether::example_camera_slice(1);
  updated.rules[1].port_hi = 82;
  updated.rules[1].priority = 30;
  ctl.update_slice_rules(1, updated.rules);
  ctl.attach_client(1, {123459999ULL, 0x0a6400f0, 2001}, enb, n3);
  uplink();
}

// Chaos mode: the same leaf-spine + stateful_firewall setup, but with the
// full fault plan armed — loss, corruption, duplication, reordering, link
// flaps, a mid-run switch restart, and delayed controller rule pushes —
// all driven by one seed. The run must never throw (damaged telemetry is
// rejected fail-closed), and the emitted JSON carries no engine name,
// worker count, or wall clock, so CI byte-compares serial vs parallel.
void chaos_scenario(net::Network& net, const net::LeafSpine& fabric,
                    std::uint64_t seed) {
  fwd::install_leaf_spine_routing(net, fabric);
  const int dep = net.deploy(compile_library_checker("stateful_firewall"));

  net::FaultPlan plan;
  plan.loss = 0.02;
  plan.corrupt = 0.08;
  plan.duplicate = 0.03;
  plan.reorder = 0.05;
  plan.reorder_max_s = 40e-6;
  plan.flap_rate_hz = 1500.0;
  plan.flap_down_s = 150e-6;
  plan.horizon_s = 4e-3;
  plan.restarts.push_back({fabric.leaves[1], 1.2e-3});
  plan.restart_warmup_s = 400e-6;
  plan.rule_push_delay_s = 80e-6;
  plan.rule_push_jitter_s = 80e-6;
  net.arm_faults(plan, seed);

  const std::uint32_t client = net.topo().node(fabric.hosts[0][0]).ip;
  const std::uint32_t server = net.topo().node(fabric.hosts[1][0]).ip;
  const std::uint32_t intruder = net.topo().node(fabric.hosts[0][1]).ip;
  // The allow entries land late (push delay + jitter): the client's first
  // packets are rejected until the rules arrive — a transient violation
  // window the forensics annotate.
  net.dict_insert_all_delayed(dep, "allowed",
                              {BitVec(32, client), BitVec(32, server)},
                              {BitVec::from_bool(true)});
  net.dict_insert_all_delayed(dep, "allowed",
                              {BitVec(32, server), BitVec(32, client)},
                              {BitVec::from_bool(true)});

  // Deterministic traffic spread over the fault horizon: mostly the
  // allowed client flow, every fourth packet the unsolicited intruder.
  for (int i = 0; i < 240; ++i) {
    const double t = 8e-6 * (i + 1);
    const bool bad = i % 4 == 3;
    const int src_host = bad ? fabric.hosts[0][1] : fabric.hosts[0][0];
    const std::uint32_t src_ip = bad ? intruder : client;
    const auto sport = static_cast<std::uint16_t>(40000 + i % 16);
    net.events().schedule_at(t, [&net, src_host, src_ip, server, sport]() {
      net.send_from_host(src_host,
                         p4rt::make_udp(src_ip, server, sport, 80, 64));
    });
  }
  net.events().run();
}

void leafspine_scenario(net::Network& net, const net::LeafSpine& fabric) {
  fwd::install_leaf_spine_routing(net, fabric);
  const int dep = net.deploy(compile_library_checker("stateful_firewall"));

  const std::uint32_t client = net.topo().node(fabric.hosts[0][0]).ip;
  const std::uint32_t server = net.topo().node(fabric.hosts[1][0]).ip;
  net.dict_insert_all(dep, "allowed", {BitVec(32, client), BitVec(32, server)},
                      {BitVec::from_bool(true)});
  net.dict_insert_all(dep, "allowed", {BitVec(32, server), BitVec(32, client)},
                      {BitVec::from_bool(true)});

  // Allowed flow: delivered end to end (no violation).
  net.send_from_host(fabric.hosts[0][0],
                     p4rt::make_udp(client, server, 40000, 80, 64));
  net.events().run();
  // Unsolicited flow from a host with no allow entry: rejected at last hop.
  const std::uint32_t intruder = net.topo().node(fabric.hosts[0][1]).ip;
  net.send_from_host(fabric.hosts[0][1],
                     p4rt::make_udp(intruder, server, 40001, 80, 64));
  net.events().run();
}

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--scenario aether|leafspine] [--forensics]\n"
               "          [--chaos SEED]\n"
               "          [--engine serial|parallel[:N]] [--workers N]\n"
               "          [--ring N] [--out FILE] [--trace FILE]\n"
               "          [--min-violations N]\n"
               "          [--prom FILE] [--series FILE] [--interval SEC]\n"
               "          [--watch]\n",
               prog);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario = "aether";
  std::string out_path;
  std::string trace_path;
  std::string prom_path;
  std::string series_path;
  net::EngineKind engine = net::EngineKind::kSerial;
  int workers = 0;
  long ring = 512;
  long min_violations = 0;
  double interval_s = 0.0;  // 0 = derive a default when export is requested
  bool forensics = false;
  bool chaos = false;
  bool watch = false;
  std::uint64_t chaos_seed = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scenario") == 0 && i + 1 < argc) {
      scenario = argv[++i];
    } else if (std::strcmp(argv[i], "--chaos") == 0 && i + 1 < argc) {
      chaos = true;
      if (!tools::parse_u64_arg(argv[0], "--chaos", argv[++i], &chaos_seed)) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--prom") == 0 && i + 1 < argc) {
      prom_path = argv[++i];
    } else if (std::strcmp(argv[i], "--series") == 0 && i + 1 < argc) {
      series_path = argv[++i];
    } else if (std::strcmp(argv[i], "--interval") == 0 && i + 1 < argc) {
      if (!tools::parse_positive_double_arg(argv[0], "--interval", argv[++i],
                                            &interval_s)) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--watch") == 0) {
      watch = true;
    } else if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
      engine = net::parse_engine_kind(argv[++i], &workers);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      long w = 0;
      if (!tools::parse_long_arg(argv[0], "--workers", argv[++i], 0, 1024,
                                 &w)) {
        return usage(argv[0]);
      }
      workers = static_cast<int>(w);
    } else if (std::strcmp(argv[i], "--ring") == 0 && i + 1 < argc) {
      if (!tools::parse_long_arg(argv[0], "--ring", argv[++i], 1, 1 << 20,
                                 &ring)) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--min-violations") == 0 && i + 1 < argc) {
      if (!tools::parse_long_arg(argv[0], "--min-violations", argv[++i], 0,
                                 1000000000L, &min_violations)) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--forensics") == 0) {
      forensics = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (watch && prom_path.empty()) {
    std::fprintf(stderr, "%s: --watch requires --prom FILE\n", argv[0]);
    return usage(argv[0]);
  }

  auto fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net(fabric.topo);
  // Engine choice never changes what the forensics observe: ring contents
  // and assembled reports are byte-identical by the engine contract.
  net.set_engine(engine, workers);
  // Chaos mode always records forensics — the annotated reports are the
  // point of the exercise.
  if (forensics || chaos) {
    net.set_forensics(true, static_cast<std::size_t>(ring));
  }
  // The engine-phase profile is wall-clock (not deterministic), so it is
  // only armed when the caller asks for the trace file.
  if (!trace_path.empty()) net.set_engine_profiling(true);
  // Streaming export: armed before any traffic so the window series spans
  // the whole run. Ticks fire on the virtual-time axis in commit order, so
  // both the exposition and the series are byte-identical across engines.
  const bool exporting =
      !prom_path.empty() || !series_path.empty() || interval_s > 0.0;
  if (exporting) {
    if (interval_s <= 0.0) interval_s = chaos ? 2e-4 : 5e-6;
    net.set_export_interval(interval_s);
    if (watch) {
      // --watch: rewrite the exposition file at every captured window (the
      // long-running service loop a scraper would poll).
      net.set_export_callback([&net, prom_path](const obs::WindowSample&) {
        tools::write_text_file(prom_path, net.export_prometheus());
      });
    }
  }

  if (chaos) {
    scenario = "chaos";
    chaos_scenario(net, fabric, chaos_seed);
  } else if (scenario == "aether") {
    aether_scenario(net, fabric);
  } else if (scenario == "leafspine") {
    leafspine_scenario(net, fabric);
  } else {
    std::fprintf(stderr, "unknown scenario '%s'\n", scenario.c_str());
    return 2;
  }

  const auto& violations = net.violation_reports();
  if (!chaos) {
    for (const auto& v : violations) {
      std::printf("%s\n", obs::violation_narrative(v).c_str());
    }
  }
  std::printf("violations: %zu (rejected=%llu reported=%zu)\n",
              violations.size(),
              static_cast<unsigned long long>(net.counters().rejected),
              net.reports().size());
  if (chaos) {
    std::printf("fault stats: %s\n", net.fault_stats().to_json().c_str());
  }

  // The JSON document holds only the scenario name and the assembled
  // reports — no engine name, worker count, or wall clock — so CI can
  // byte-compare serial and parallel runs. Chaos mode adds the seed, the
  // fault stats, the simulation counters, and the full (deterministic)
  // metrics snapshot, all of which the engine contract covers too.
  std::string doc = "{\n\"scenario\": \"" + scenario + "\"";
  if (chaos) {
    const auto& c = net.counters();
    doc += ",\n\"seed\": " + std::to_string(chaos_seed);
    doc += ",\n\"fault_stats\": " + net.fault_stats().to_json();
    doc += ",\n\"counters\": {\"injected\": " + std::to_string(c.injected) +
           ", \"delivered\": " + std::to_string(c.delivered) +
           ", \"rejected\": " + std::to_string(c.rejected) +
           ", \"fwd_dropped\": " + std::to_string(c.fwd_dropped) +
           ", \"queue_dropped\": " + std::to_string(c.queue_dropped) +
           ", \"fault_dropped\": " + std::to_string(c.fault_dropped) + "}";
    doc += ",\n\"metrics\": " + net.metrics_json();
  }
  doc += ",\n\"violations\": " + obs::violations_json(violations) + "}\n";
  if (out_path.empty()) {
    std::printf("%s", doc.c_str());
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (!trace_path.empty()) {
    const std::string trace = net.engine_profiler().to_chrome_trace_json();
    std::FILE* f = std::fopen(trace_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    std::fwrite(trace.data(), 1, trace.size(), f);
    std::fclose(f);
    std::printf("wrote %s (load in https://ui.perfetto.dev)\n",
                trace_path.c_str());
  }

  // Final scrape + window series. Written after the run regardless of
  // --watch, so the file always reflects the terminal state. The .prom
  // body is Prometheus text format 0.0.4 (serve as `text/plain;
  // version=0.0.4`) and ends with exactly one trailing newline.
  if (!prom_path.empty()) {
    if (!tools::write_text_file(prom_path, net.export_prometheus())) return 1;
    std::printf("wrote %s\n", prom_path.c_str());
  }
  if (!series_path.empty()) {
    if (!tools::write_text_file(series_path, net.window_series_json())) {
      return 1;
    }
    std::printf("wrote %s\n", series_path.c_str());
  }

  if (static_cast<long>(violations.size()) < min_violations) {
    std::fprintf(stderr, "expected >= %ld violations, got %zu\n",
                 min_violations, violations.size());
    return 1;
  }
  return 0;
}
