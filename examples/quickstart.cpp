// Quickstart: write a property in Indus, compile it, deploy it on a
// simulated leaf-spine fabric, and watch it reject a violating packet.
//
// The property is the paper's Figure 1 (bare-metal multi-tenancy): every
// packet must enter and exit the network at ports that belong to the same
// tenant.
//
//   $ ./quickstart
#include <cstdio>
#include <map>

#include "forwarding/ipv4_ecmp.hpp"
#include "hydra/hydra.hpp"
#include "net/network.hpp"

int main() {
  using namespace hydra;

  // 1. The property, in Indus (Figure 1 of the paper).
  const std::string property = R"(
    control dict<bit<8>,bit<8>> tenants;
    tele bit<8> tenant;
    header bit<8> in_port;
    header bit<8> eg_port;

    { /* first hop */  tenant = tenants[in_port]; }
    { /* every hop */ }
    { /* last hop  */  if (tenant != tenants[eg_port]) { reject; } }
  )";

  // 2. Compile it. The result carries the generated P4, the telemetry
  //    layout, and the hardware resource estimate.
  auto checker = compile_shared(property, "multi_tenancy");
  std::printf("compiled '%s': %d lines of Indus -> %d lines of P4\n",
              checker->name.c_str(), checker->indus_loc, checker->p4_loc);
  std::printf("  pipeline stages: %d (baseline %d -> linked %d)\n",
              checker->resources.checker_stages, 12, checker->linked.stages);
  std::printf("  PHV: +%.2f%% (baseline %.2f%% -> %.2f%%)\n",
              checker->resources.phv_percent, 44.53,
              checker->linked.phv_percent);
  std::printf("  telemetry on the wire: %d bytes/packet\n\n",
              checker->layout.wire_bytes);

  // 3. Build the Figure 8 fabric (2 leaves x 2 spines, 2 hosts per leaf)
  //    with ordinary ECMP routing, and deploy the checker.
  auto fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net(fabric.topo);
  fwd::install_leaf_spine_routing(net, fabric);
  const int dep = net.deploy(checker);

  // 4. Control plane: leaf1's server ports belong to tenant 1, leaf2's to
  //    tenant 2.
  std::map<std::pair<int, int>, std::uint8_t> tenants;
  for (int i = 0; i < 2; ++i) {
    tenants[{fabric.leaves[0], fabric.leaf_host_port(i)}] = 1;
    tenants[{fabric.leaves[1], fabric.leaf_host_port(i)}] = 2;
  }
  configure_multi_tenancy(net, dep, tenants);

  // 5. Traffic. h1 -> h2 stays inside tenant 1; h1 -> h3 crosses tenants.
  auto ip = [&](int host) { return net.topo().node(host).ip; };
  const int h1 = fabric.hosts[0][0];
  const int h2 = fabric.hosts[0][1];
  const int h3 = fabric.hosts[1][0];

  net.send_from_host(h1, p4rt::make_udp(ip(h1), ip(h2), 1000, 2000, 100));
  net.send_from_host(h1, p4rt::make_udp(ip(h1), ip(h3), 1000, 2000, 100));
  net.events().run();

  const auto& c = net.counters();
  std::printf("sent 2 packets: delivered=%llu rejected=%llu\n",
              static_cast<unsigned long long>(c.delivered),
              static_cast<unsigned long long>(c.rejected));
  std::printf(
      "the intra-tenant packet was delivered; the cross-tenant packet was\n"
      "rejected by the checker at the last hop -- isolation enforced on\n"
      "every packet, at line rate, with no central server.\n");
  return c.delivered == 1 && c.rejected == 1 ? 0 : 1;
}
