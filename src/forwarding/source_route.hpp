// Source routing (§5.1, generalizing the P4 tutorial program): the sender
// pushes the full list of egress ports; each switch pops the next port off
// the stack and forwards. No routing tables, no routing protocol — exactly
// the scheme whose lack of operator control motivates the valley-free
// Hydra checker.
#pragma once

#include <atomic>
#include <vector>

#include "net/network.hpp"
#include "net/switch_node.hpp"

namespace hydra::fwd {

class SourceRouteProgram : public net::ForwardingProgram {
 public:
  Decision process(p4rt::Packet& pkt, int in_port, int switch_id) override;
  std::string name() const override { return "source-route"; }

  std::uint64_t underflow_drops() const {
    return underflow_drops_.load(std::memory_order_relaxed);
  }

 private:
  // Stateless apart from this total; relaxed atomic so one instance may
  // serve switches on different engine shards.
  std::atomic<std::uint64_t> underflow_drops_{0};
};

// Pushes a hop list onto a packet. `ports` is in travel order: ports[0] is
// the egress port at the first switch. (The stack is stored reversed so
// switches pop from the back.)
void set_source_route(p4rt::Packet& pkt, const std::vector<int>& ports);

// Computes the port list for a leaf-spine path h_src -> leaf -> (spine ->
// leaf)? -> h_dst. Returns travel-order egress ports.
std::vector<int> leaf_spine_route(const net::LeafSpine& fabric, int src_host,
                                  int dst_host, int via_spine_index);

}  // namespace hydra::fwd
