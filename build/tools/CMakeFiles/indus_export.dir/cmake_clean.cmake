file(REMOVE_RECURSE
  "CMakeFiles/indus_export.dir/indus_export.cpp.o"
  "CMakeFiles/indus_export.dir/indus_export.cpp.o.d"
  "indus_export"
  "indus_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indus_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
