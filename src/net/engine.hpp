// Pluggable execution engines — how the event queue is drained.
//
// SerialEngine executes every event inline in (time, seq) order: the exact
// pre-engine behaviour, and the default.
//
// ParallelEngine is a conservatively-synchronized parallel discrete-event
// executor built on one structural invariant of the simulator: switch work
// (per-hop pipeline execution, the hot path) is always scheduled at least
// Network::lookahead() — the switch traversal latency L — after the event
// that creates it. The drain loop processes the queue in EPOCHS:
//
//   1. WINDOW   pop every pending event in [t0, W), where t0 is the
//               earliest pending timestamp and W is the adaptive window
//               end (below). No event executed inside the window can
//               spawn switch work that lands in it.
//   2. PLAN     assign every switch-work item to a worker slice, at pop
//               time, in one pass:
//                 * flow-affinity mode (the fast path; see below): shard
//                   by a stable hash of the packet's flow id, so hops of
//                   one flow stay on one worker while hops of one hot
//                   switch spread across all of them;
//                 * switch-group mode: greedy LPT bin-packing of the
//                   window's switches onto workers (heaviest switch
//                   first, least-loaded worker, deterministic
//                   tie-breaks), so a switch is still owned by exactly
//                   one worker per window but load balances far better
//                   than a static sw % workers split.
//               Each worker receives a contiguous, pre-bucketed slice of
//               window indices in (t, seq) order — compute never scans or
//               filters the window.
//   3. COMPUTE  workers execute their slices concurrently against their
//               own ExecContexts; all effects land in per-item
//               HopResults. The epoch handshake is two atomic words
//               (publish: epoch counter release-increment + notify;
//               finish: remaining-counter release-decrement), with a
//               short spin before parking — no mutex or condvar on the
//               per-epoch path.
//   4. COMMIT   the main thread walks the window in (t, seq) order,
//               merging in any events the commits themselves spawn inside
//               the window, advancing the clock and applying HopResults /
//               running closures exactly as the serial engine would. The
//               merge check is batched: the queue head is cached and
//               re-read only when a commit actually scheduled something,
//               so windows whose commits cannot interleave skip the
//               per-item queue probe.
//
// Adaptive lookahead: the window nominally ends at t0 + L * mult, where
// mult (a power of two in [1, 64]) grows while windows arrive with too few
// switch items to feed the pool and shrinks when windows are huge. Any
// extension beyond the base t0 + L is clamped to the sound bound
//
//     W  <=  min(c_min + L,  s_min + D + L)
//
// where c_min / s_min are the earliest pending closure / switch-work
// timestamps (EventQueue::next_closure_time / next_switch_time) and D is
// the smallest link propagation delay (Network::min_spawn_delay): a
// closure can spawn switch work no earlier than its own time + L (the only
// runtime spawn site, node_receive, adds the switch latency), and a switch
// commit must cross a link first, adding at least D before that. Extension
// is disabled entirely while faults are armed — delayed rule pushes may
// schedule control work closer than L ahead.
//
// Flow-affinity mode runs only when the configuration provably allows hops
// of the SAME switch to execute concurrently (Network::
// flow_sharding_allowed — observability off, faults disarmed, register-
// free checkers, concurrent-safe forwarding programs) and the window
// carries no control op. Table probes then route through the cache-
// bypassing p4rt::Table::lookup_shared (Network::set_concurrent_tables).
// Every other configuration uses switch-group mode, which preserves the
// one-switch-one-worker-per-window rule (and thus exact per-table cache
// behaviour and single-writer forensics rings).
//
// Reports, metrics snapshots, traces, and final register/table state are
// bit-identical to the serial engine for any worker count in every mode.
//
// Degradation rule: while report callbacks are subscribed (closed control
// loops that may mutate switch state mid-epoch), epochs are executed
// serially item by item — correctness over speed. Ditto for one-worker
// pools and windows too small to be worth a dispatch.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/event.hpp"
#include "net/network.hpp"

namespace hydra::net {

class ExecutionEngine : public EventExecutor {
 public:
  explicit ExecutionEngine(Network& net) : net_(&net) {}
  virtual const char* name() const = 0;
  virtual int workers() const = 0;

 protected:
  // Runs every event the queue holds strictly before key (`t`, `seq`) —
  // events spawned by commits into the current window — serially, exactly
  // as the serial engine would.
  void drain_spawned_before(EventQueue& q, SimTime t);

  // Executes a non-switch-work item inline: closures run, tick targets
  // tick, packet arrivals resolve through the network's pools.
  void exec_inline(EventQueue::Item& item);

  Network* net_;
};

class SerialEngine final : public ExecutionEngine {
 public:
  explicit SerialEngine(Network& net) : ExecutionEngine(net) {}
  const char* name() const override { return "serial"; }
  int workers() const override { return 1; }
  void drain(EventQueue& q, SimTime limit) override;
};

class ParallelEngine final : public ExecutionEngine {
 public:
  ParallelEngine(Network& net, int workers);
  ~ParallelEngine() override;
  const char* name() const override { return "parallel"; }
  int workers() const override { return workers_; }
  void drain(EventQueue& q, SimTime limit) override;

  // Fewest switch-work items in a window worth waking the pool for;
  // smaller windows are computed inline (identical results either way).
  static constexpr std::size_t kDispatchThreshold = 2;
  // Adaptive lookahead policy: the multiplier doubles while a window's
  // switch items fall short of workers * kTargetItemsPerWorker and halves
  // above 4x that, clamped to [1, kMaxLookaheadMult].
  static constexpr std::size_t kMaxLookaheadMult = 64;
  static constexpr std::size_t kTargetItemsPerWorker = 32;

 private:
  // Sentinel shard for non-switch-work window entries.
  static constexpr std::uint32_t kNoShard = ~0u;

  void worker_main(int worker);
  // Computes every switch-work item in `worker`'s pre-bucketed slice.
  void compute_slice(int worker);
  void run_window(EventQueue& q);
  // The serial degradation path: the window in order, exactly as the
  // serial engine would run it.
  void run_window_serial(EventQueue& q);
  // Batched canonical-order commit (see COMMIT above).
  void commit_window(EventQueue& q);
  // Shard planning (PLAN above): fill item_shard_ per window index...
  void plan_switch_groups();
  void plan_flow_affinity();
  // ...then bucket the indices into per-worker contiguous slices
  // (counting sort — stable, so slices stay in (t, seq) order).
  void bucket_slices();
  // Flips the network's table-lookup path when entering/leaving
  // flow-affinity windows; idempotent via shared_tables_on_.
  void set_flow_tables(bool on);

  const int workers_;

  // Per-drain cached model constants.
  SimTime lookahead_ = 0.0;
  SimTime min_spawn_delay_ = 0.0;
  bool extension_allowed_ = false;
  // Adaptive lookahead multiplier (persists across drains; power of two).
  std::size_t mult_ = 1;
  bool shared_tables_on_ = false;

  std::vector<EventQueue::Item> window_;
  std::vector<HopResult> results_;  // parallel to window_
  std::vector<std::exception_ptr> errors_;  // per worker
  // Phase profiler, refreshed at drain entry while the pool is idle (the
  // epoch handshake publishes it to workers). Null unless armed.
  obs::EngineProfiler* prof_ = nullptr;
  // Export scheduler, same discipline: refreshed at drain entry (arming
  // requires an idle queue), consulted only on the main thread. Null
  // unless streaming export is armed — the zero-overhead branch.
  obs::ExportScheduler* sched_ = nullptr;

  // ---- pop-time shard plan (capacity reused across windows) -------------
  std::vector<std::uint32_t> item_shard_;   // per window index; kNoShard
  std::vector<std::uint32_t> slice_items_;  // window indices, by worker
  std::vector<std::uint32_t> slice_begin_;  // workers_ + 1 offsets
  std::vector<std::uint32_t> slice_fill_;   // counting-sort cursor scratch
  std::vector<std::uint32_t> sw_count_;     // per switch id, zeroed after use
  std::vector<int> sw_touched_;             // switch ids seen this window
  std::vector<int> sw_shard_;               // per switch id, this window
  std::vector<std::uint64_t> shard_load_;   // LPT accumulator

  // ---- epoch handshake ---------------------------------------------------
  // Main publishes window_/results_/slices (plain writes), then bumps
  // epoch_ with release; workers acquire it (spin, then futex-park via
  // std::atomic::wait) and see everything published before it. Each worker
  // finishes with a release decrement of remaining_; the main thread's
  // acquire of remaining_ == 0 sees every result. stop_ rides the same
  // epoch bump.
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<int> remaining_{0};
  std::atomic<bool> stop_{false};
  std::vector<std::thread> threads_;  // workers 1..workers_-1
};

// `spec` is "serial" or "parallel[:N]" with N in [1, 1024] — e.g.
// "parallel:4"; throws std::invalid_argument otherwise (including
// malformed or non-positive worker counts such as "parallel:0" or
// "parallel:abc"). Used by tools and benches.
EngineKind parse_engine_kind(const std::string& spec, int* workers_out);

const char* engine_kind_name(EngineKind kind);

}  // namespace hydra::net
