#include "compiler/layout.hpp"

#include <stdexcept>
#include <string>

namespace hydra::compiler {

TelemetryLayout layout_telemetry(const ir::CheckerIR& ir, bool byte_aligned) {
  TelemetryLayout layout;
  layout.byte_aligned = byte_aligned;
  int offset = 0;
  for (std::size_t i = 0; i < ir.fields.size(); ++i) {
    const ir::Field& f = ir.fields[i];
    if (f.space != ir::Space::kTele) continue;
    // The wire codec packs each entry through 64-bit shifts; a width of 64
    // is the widest it can carry, and a shift by >= 64 is UB. Reject bad
    // widths here, at layout-build time, so the codec never sees them.
    if (f.width < 1 || f.width > 64) {
      throw std::invalid_argument(
          "telemetry layout: field '" + f.name + "' has width " +
          std::to_string(f.width) +
          " bits; wire-carried tele fields must be 1..64 bits");
    }
    if (byte_aligned && offset % 8 != 0) offset += 8 - offset % 8;
    layout.entries.push_back(
        {ir::FieldId{static_cast<int>(i)}, offset, f.width});
    offset += f.width;
  }
  layout.payload_bits = offset;
  layout.wire_bytes = (offset + 7) / 8 + TelemetryLayout::kPreambleBytes;
  return layout;
}

}  // namespace hydra::compiler
