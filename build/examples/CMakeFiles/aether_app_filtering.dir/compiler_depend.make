# Empty compiler generated dependencies file for aether_app_filtering.
# This may be replaced when dependencies are built.
