// Linear Temporal Logic over finite traces (LTLf), as used in §3.3 to
// establish Indus's expressiveness lower bound. Core connectives are
// atom / not / and / next / until (Figure 5); or / eventually / globally /
// implies are provided as standard abbreviations.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace hydra::ltlf {

enum class Op {
  kAtom,
  kNot,
  kAnd,
  kOr,
  kNext,        // X phi: phi holds at the following event
  kUntil,       // phi U psi
  kEventually,  // F phi  ==  true U phi
  kGlobally,    // G phi  ==  not F not phi
};

struct Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

struct Formula {
  Op op = Op::kAtom;
  int atom = 0;  // kAtom only
  std::vector<FormulaPtr> kids;

  static FormulaPtr make_atom(int index);
  static FormulaPtr make_not(FormulaPtr a);
  static FormulaPtr make_and(FormulaPtr a, FormulaPtr b);
  static FormulaPtr make_or(FormulaPtr a, FormulaPtr b);
  static FormulaPtr make_next(FormulaPtr a);
  static FormulaPtr make_until(FormulaPtr a, FormulaPtr b);
  static FormulaPtr make_eventually(FormulaPtr a);
  static FormulaPtr make_globally(FormulaPtr a);

  int max_atom() const;  // highest atom index used (-1 if none)
  int depth() const;
  std::string to_string() const;
};

// A finite trace: trace[t][i] is the truth of atom i at event t. Every
// event row must cover the formula's atoms.
using Trace = std::vector<std::vector<bool>>;

}  // namespace hydra::ltlf
