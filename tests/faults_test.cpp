// Tests for the fault-injection subsystem and the fail-closed telemetry
// handling it exercises:
//   * layout-build guard against wire field widths the codec cannot carry;
//   * the non-throwing checked frame parser and its static reason strings;
//   * FaultInjector determinism (per-site streams, precomputed flaps);
//   * end-to-end fail-closed decode: corrupted / truncated telemetry is a
//     counted checker reject with an annotated ViolationReport, never a
//     throw (the seed codec threw std::invalid_argument out of the event
//     loop);
//   * switch restarts: sensor registers wiped, verdicts suppressed while
//     the switch runs cold;
//   * delayed controller rule pushes;
//   * traffic-generator hardening (PingProbe dedup, UdpFlood validation);
//   * configurable per-link buffer capacity and per-direction tail drops.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "compiler/layout.hpp"
#include "forwarding/ipv4_ecmp.hpp"
#include "hydra/hydra.hpp"
#include "net/faults.hpp"
#include "net/link.hpp"
#include "net/network.hpp"
#include "net/traffic.hpp"
#include "p4rt/tele_codec.hpp"

namespace hydra {
namespace {

// ---------------------------------------------------------------------------
// Layout guard: widths the 64-bit packing codec cannot carry are rejected
// at layout-build time (a shift by >= 64 is UB downstream).
// ---------------------------------------------------------------------------

TEST(LayoutGuard, RejectsWireFieldWiderThan64Bits) {
  ir::CheckerIR ir;
  ir.fields.push_back({"tele.wide", ir::Space::kTele, 65, false, ""});
  EXPECT_THROW(compiler::layout_telemetry(ir), std::invalid_argument);

  ir.fields[0].width = 64;  // widest legal width still lays out
  const auto layout = compiler::layout_telemetry(ir);
  ASSERT_EQ(layout.entries.size(), 1u);
  EXPECT_EQ(layout.entries[0].width, 64);

  ir.fields[0].width = 0;
  EXPECT_THROW(compiler::layout_telemetry(ir), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Checked (non-throwing) frame parsing.
// ---------------------------------------------------------------------------

TEST(CheckedParse, DetectsTruncationAndBadTagWithoutThrowing) {
  const auto c = compiler::compile_checker(
      "tele bit<8> a;\ntele bit<13> b;\n{ } { } { }", "chk");
  p4rt::TeleFrame f;
  f.checker = 0;
  for (const auto& field : c.ir.fields) {
    f.values.emplace_back(field.width,
                          field.space == ir::Space::kTele ? 0x5a5aULL : 0);
  }
  const auto bytes = p4rt::serialize_frame(c.layout, c.ir, f);

  p4rt::TeleFrame out;
  EXPECT_EQ(p4rt::parse_frame_checked(c.layout, c.ir, 0, bytes, out),
            p4rt::FrameError::kOk);

  // Mid-path truncation: any wrong byte count is a size mismatch.
  auto truncated = bytes;
  truncated.pop_back();
  EXPECT_EQ(p4rt::parse_frame_checked(c.layout, c.ir, 0, truncated, out),
            p4rt::FrameError::kSizeMismatch);
  EXPECT_EQ(p4rt::parse_frame_checked(c.layout, c.ir, 0, {}, out),
            p4rt::FrameError::kSizeMismatch);

  // Clobbered Hydra EtherType preamble.
  auto bad_tag = bytes;
  bad_tag[0] ^= 0xff;
  EXPECT_EQ(p4rt::parse_frame_checked(c.layout, c.ir, 0, bad_tag, out),
            p4rt::FrameError::kBadTag);
}

TEST(CheckedParse, ReasonStringsAreStatic) {
  EXPECT_STREQ(p4rt::frame_error_reason(p4rt::FrameError::kOk), "ok");
  EXPECT_STREQ(p4rt::frame_error_reason(p4rt::FrameError::kSizeMismatch),
               "tele_size_mismatch");
  EXPECT_STREQ(p4rt::frame_error_reason(p4rt::FrameError::kBadTag),
               "tele_bad_tag");
}

// ---------------------------------------------------------------------------
// FaultInjector unit behaviour.
// ---------------------------------------------------------------------------

TEST(FaultInjector, SameSeedSameDecisions) {
  net::FaultPlan plan;
  plan.loss = 0.1;
  plan.corrupt = 0.2;
  plan.duplicate = 0.1;
  plan.reorder = 0.3;
  net::FaultInjector a(plan, 99, 4);
  net::FaultInjector b(plan, 99, 4);
  for (int i = 0; i < 500; ++i) {
    const int link = i % 4;
    const int dir = (i / 4) % 2;
    const auto x = a.on_transmit(link, dir, true);
    const auto y = b.on_transmit(link, dir, true);
    EXPECT_EQ(x.drop, y.drop);
    EXPECT_EQ(x.corrupt, y.corrupt);
    EXPECT_EQ(x.corrupt_entropy, y.corrupt_entropy);
    EXPECT_EQ(x.duplicate, y.duplicate);
    EXPECT_DOUBLE_EQ(x.extra_delay_s, y.extra_delay_s);
  }
}

TEST(FaultInjector, SitesAreIndependentStreams) {
  // Extra draws on one (link, dir) site must not shift another site's
  // stream — this is what makes outcomes independent of traffic mix on
  // other links.
  net::FaultPlan plan;
  plan.loss = 0.5;
  net::FaultInjector a(plan, 7, 2);
  net::FaultInjector b(plan, 7, 2);
  std::vector<bool> a0, b0;
  for (int i = 0; i < 200; ++i) {
    a.on_transmit(1, 0, false);  // interleaved noise on another site
    a.on_transmit(1, 1, false);
    a0.push_back(a.on_transmit(0, 0, false).drop);
    b0.push_back(b.on_transmit(0, 0, false).drop);
  }
  EXPECT_EQ(a0, b0);
}

TEST(FaultInjector, FlapScheduleIsPrecomputedWithinHorizon) {
  net::FaultPlan plan;
  plan.flap_rate_hz = 5000.0;
  plan.flap_down_s = 1e-4;
  plan.horizon_s = 2e-3;
  net::FaultInjector inj(plan, 3, 3);
  ASSERT_FALSE(inj.outages().empty());
  double prev = -1.0;
  for (const auto& o : inj.outages()) {
    EXPECT_GE(o.link, 0);
    EXPECT_LT(o.link, 3);
    EXPECT_GE(o.down_at, 0.0);
    EXPECT_LT(o.down_at, plan.horizon_s);
    EXPECT_DOUBLE_EQ(o.up_at, o.down_at + plan.flap_down_s);
    EXPECT_GE(o.down_at, prev);  // merged schedule is sorted
    prev = o.down_at;
  }
  // Same plan + seed reproduces the schedule exactly.
  net::FaultInjector again(plan, 3, 3);
  ASSERT_EQ(again.outages().size(), inj.outages().size());
  for (std::size_t i = 0; i < inj.outages().size(); ++i) {
    EXPECT_DOUBLE_EQ(again.outages()[i].down_at, inj.outages()[i].down_at);
  }
}

TEST(FaultInjector, OverlappingOutagesRefcount) {
  net::FaultPlan plan;
  net::FaultInjector inj(plan, 1, 1);
  EXPECT_TRUE(inj.link_up(0));
  inj.link_down_event(0);
  inj.link_down_event(0);  // overlapping outage
  inj.link_up_event(0);
  EXPECT_FALSE(inj.link_up(0));  // still inside the second outage
  inj.link_up_event(0);
  EXPECT_TRUE(inj.link_up(0));
}

// ---------------------------------------------------------------------------
// End-to-end rig: 2x2 leaf-spine with the stateful firewall deployed.
// ---------------------------------------------------------------------------

struct Rig {
  net::LeafSpine fabric;
  std::unique_ptr<net::Network> net;
  int dep = -1;

  Rig() : fabric(net::make_leaf_spine(2, 2, 2)) {
    net = std::make_unique<net::Network>(fabric.topo);
    fwd::install_leaf_spine_routing(*net, fabric);
    dep = net->deploy(compile_library_checker("stateful_firewall"));
  }

  std::uint32_t ip(int host) const { return net->topo().node(host).ip; }

  // Installs both directions of an allow entry immediately.
  void allow(int host_a, int host_b) {
    net->dict_insert_all(dep, "allowed",
                         {BitVec(32, ip(host_a)), BitVec(32, ip(host_b))},
                         {BitVec::from_bool(true)});
    net->dict_insert_all(dep, "allowed",
                         {BitVec(32, ip(host_b)), BitVec(32, ip(host_a))},
                         {BitVec::from_bool(true)});
  }

  void send_at(double t, int src_host, int dst_host, std::uint16_t sport) {
    const std::uint32_t sip = ip(src_host);
    const std::uint32_t dip = ip(dst_host);
    net->events().schedule_at(t, [this, src_host, sip, dip, sport] {
      net->send_from_host(src_host, p4rt::make_udp(sip, dip, sport, 80, 64));
    });
  }
};

// ---------------------------------------------------------------------------
// Fail-closed decode: damaged telemetry becomes a counted reject with an
// annotated report — never a throw.
// ---------------------------------------------------------------------------

TEST(FailClosed, CorruptedTagIsCountedRejectNotThrow) {
  Rig r;
  r.net->set_forensics(true, 256);
  r.allow(r.fabric.hosts[0][0], r.fabric.hosts[1][0]);
  net::FaultPlan plan;
  plan.corrupt = 1.0;  // every transmit damages the frame
  plan.corrupt_mode = net::CorruptMode::kBadTag;
  r.net->arm_faults(plan, 5);
  for (int i = 0; i < 20; ++i) {
    r.send_at(1e-6 * (i + 1), r.fabric.hosts[0][0], r.fabric.hosts[1][0],
              static_cast<std::uint16_t>(4000 + i));
  }
  ASSERT_NO_THROW(r.net->events().run());
  const net::FaultStats& fs = r.net->fault_stats();
  EXPECT_GT(fs.corruptions, 0u);
  EXPECT_GT(fs.tele_rejects, 0u);
  EXPECT_EQ(fs.tele_recovered, 0u);  // a clobbered tag never re-parses
  EXPECT_GT(r.net->counters().rejected, 0u);
  // The assembled reports carry the static decode reason.
  EXPECT_NE(r.net->violation_reports_json().find(
                "\"reason\": \"tele_bad_tag\""),
            std::string::npos);
}

TEST(FailClosed, MidPathTruncationIsCountedRejectNotThrow) {
  Rig r;
  r.net->set_forensics(true, 256);
  r.allow(r.fabric.hosts[0][0], r.fabric.hosts[1][0]);
  net::FaultPlan plan;
  plan.corrupt = 1.0;
  plan.corrupt_mode = net::CorruptMode::kTruncate;
  r.net->arm_faults(plan, 6);
  for (int i = 0; i < 20; ++i) {
    r.send_at(1e-6 * (i + 1), r.fabric.hosts[0][0], r.fabric.hosts[1][0],
              static_cast<std::uint16_t>(4100 + i));
  }
  ASSERT_NO_THROW(r.net->events().run());
  const net::FaultStats& fs = r.net->fault_stats();
  EXPECT_GT(fs.tele_rejects, 0u);
  EXPECT_EQ(fs.tele_recovered, 0u);  // truncation is always strictly shorter
  EXPECT_NE(r.net->violation_reports_json().find(
                "\"reason\": \"tele_size_mismatch\""),
            std::string::npos);
}

TEST(FailClosed, PayloadBitFlipIsUndetectableAndRecovers) {
  // A flipped payload bit re-parses cleanly (the dataplane codec has no
  // checksum) — the frame is counted as recovered, not rejected. This is
  // the documented realism limit of the fail-closed path.
  Rig r;
  r.allow(r.fabric.hosts[0][0], r.fabric.hosts[1][0]);
  net::FaultPlan plan;
  plan.corrupt = 1.0;
  plan.corrupt_mode = net::CorruptMode::kBitFlip;
  r.net->arm_faults(plan, 7);
  for (int i = 0; i < 20; ++i) {
    r.send_at(1e-6 * (i + 1), r.fabric.hosts[0][0], r.fabric.hosts[1][0],
              static_cast<std::uint16_t>(4200 + i));
  }
  ASSERT_NO_THROW(r.net->events().run());
  const net::FaultStats& fs = r.net->fault_stats();
  EXPECT_GT(fs.corruptions, 0u);
  EXPECT_GT(fs.tele_recovered, 0u);
  EXPECT_EQ(fs.tele_rejects, 0u);
}

// ---------------------------------------------------------------------------
// Switch restarts: sensors wiped, verdicts suppressed while cold.
// ---------------------------------------------------------------------------

TEST(ColdRestart, WipesSensorRegisters) {
  auto chk = compile_shared(
      "sensor bit<8> s = 0;\ntele bool x;\n{ } { } { }", "cold_sensor");
  auto fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net(fabric.topo);
  fwd::install_leaf_spine_routing(net, fabric);
  const int dep = net.deploy(chk);
  net.checker_register(dep, fabric.leaves[0], "s").write(0, BitVec(8, 55));
  net.checker_register(dep, fabric.leaves[1], "s").write(0, BitVec(8, 77));

  net::FaultPlan plan;
  plan.restarts.push_back({fabric.leaves[1], 50e-6});
  net.arm_faults(plan, 1);
  net.events().run();

  EXPECT_EQ(net.fault_stats().restarts, 1u);
  // Only the restarted switch lost its sensor state.
  EXPECT_EQ(net.checker_register(dep, fabric.leaves[1], "s").read(0).value(),
            0u);
  EXPECT_EQ(net.checker_register(dep, fabric.leaves[0], "s").read(0).value(),
            55u);
}

TEST(ColdRestart, SuppressesVerdictsDuringWarmupThenResumes) {
  Rig r;  // no allow entries: every flow is a violation at its last hop
  r.net->set_forensics(true, 256);
  net::FaultPlan plan;
  plan.restarts.push_back({r.fabric.leaves[1], 100e-6});
  plan.restart_warmup_s = 400e-6;  // cold until t = 500us
  r.net->arm_faults(plan, 2);
  // During warmup: the zeroed sensors must not produce a false verdict.
  r.send_at(150e-6, r.fabric.hosts[0][1], r.fabric.hosts[1][0], 4300);
  // Well after warmup: the same flow is rejected again.
  r.send_at(900e-6, r.fabric.hosts[0][1], r.fabric.hosts[1][0], 4301);
  ASSERT_NO_THROW(r.net->events().run());

  const net::FaultStats& fs = r.net->fault_stats();
  EXPECT_EQ(fs.restarts, 1u);
  EXPECT_GE(fs.cold_suppressed, 1u);
  EXPECT_EQ(r.net->counters().rejected, 1u);  // only the post-warmup packet
  // The surviving report is annotated as a plain checker verdict.
  EXPECT_NE(r.net->violation_reports_json().find("\"checker_reject\""),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Delayed controller rule pushes.
// ---------------------------------------------------------------------------

TEST(DelayedRulePush, RulesLandAfterConfiguredDelay) {
  Rig r;
  net::FaultPlan plan;
  plan.rule_push_delay_s = 200e-6;  // no jitter: lands at exactly 200us
  r.net->arm_faults(plan, 3);
  const int client = r.fabric.hosts[0][0];
  const int server = r.fabric.hosts[1][0];
  r.net->dict_insert_all_delayed(
      r.dep, "allowed", {BitVec(32, r.ip(client)), BitVec(32, r.ip(server))},
      {BitVec::from_bool(true)});
  r.net->dict_insert_all_delayed(
      r.dep, "allowed", {BitVec(32, r.ip(server)), BitVec(32, r.ip(client))},
      {BitVec::from_bool(true)});
  r.send_at(20e-6, client, server, 4400);   // before the rules land
  r.send_at(800e-6, client, server, 4401);  // after
  ASSERT_NO_THROW(r.net->events().run());

  // One push per switch per entry (4 switches x 2 entries).
  EXPECT_EQ(r.net->fault_stats().delayed_pushes, 8u);
  EXPECT_EQ(r.net->counters().rejected, 1u);
  // Unknown control var is still rejected eagerly, at schedule time.
  EXPECT_THROW(r.net->dict_insert_all_delayed(r.dep, "no_such_dict", {}, {}),
               std::invalid_argument);
}

TEST(DelayedRulePush, FallsBackToImmediateWhenDisarmed) {
  Rig r;
  const int client = r.fabric.hosts[0][0];
  const int server = r.fabric.hosts[1][0];
  r.net->dict_insert_all_delayed(
      r.dep, "allowed", {BitVec(32, r.ip(client)), BitVec(32, r.ip(server))},
      {BitVec::from_bool(true)});
  r.net->dict_insert_all_delayed(
      r.dep, "allowed", {BitVec(32, r.ip(server)), BitVec(32, r.ip(client))},
      {BitVec::from_bool(true)});
  r.send_at(20e-6, client, server, 4500);
  r.net->events().run();
  EXPECT_EQ(r.net->counters().rejected, 0u);
  EXPECT_EQ(r.net->counters().delivered, 1u);
}

// ---------------------------------------------------------------------------
// Arm/disarm lifecycle.
// ---------------------------------------------------------------------------

TEST(FaultInjection, ArmRequiresIdleEventQueue) {
  Rig r;
  r.net->events().schedule_at(1e-6, [] {});
  EXPECT_THROW(r.net->arm_faults({}, 1), std::logic_error);
  r.net->events().run();
  EXPECT_FALSE(r.net->faults_armed());
  r.net->arm_faults({}, 1);
  EXPECT_TRUE(r.net->faults_armed());
  r.net->disarm_faults();
  EXPECT_FALSE(r.net->faults_armed());
}

// ---------------------------------------------------------------------------
// Traffic-generator hardening.
// ---------------------------------------------------------------------------

TEST(Traffic, UdpFloodValidatesConstructorArgs) {
  Rig r;
  const int a = r.fabric.hosts[0][0];
  const int b = r.fabric.hosts[1][0];
  // 42 bytes of Ethernet+IP+UDP overhead: anything smaller underflowed the
  // payload computation in the seed.
  EXPECT_THROW(net::UdpFlood(*r.net, a, b, 1.0, 41), std::invalid_argument);
  EXPECT_THROW(net::UdpFlood(*r.net, a, b, 0.0, 1400),
               std::invalid_argument);
  EXPECT_THROW(net::UdpFlood(*r.net, a, b, -1.0, 1400),
               std::invalid_argument);
  EXPECT_NO_THROW(net::UdpFlood(*r.net, a, b, 1.0, 42));
}

TEST(Traffic, PingProbeDeduplicatesDuplicatedEchoes) {
  auto fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net(fabric.topo);
  fwd::install_leaf_spine_routing(net, fabric);
  net::FaultPlan plan;
  plan.duplicate = 1.0;  // every transmit duplicates: 2^hops copies arrive
  net.arm_faults(plan, 4);
  net::PingProbe probe(net, fabric.hosts[0][0], fabric.hosts[1][0], 20e-6);
  probe.start(0.0, 1e-3);
  net.events().run();

  EXPECT_GT(probe.sent(), 0);
  EXPECT_GT(net.fault_stats().duplicates, 0u);
  // Without dedup the duplicated replies would push samples far above
  // sent and lost() negative.
  EXPECT_LE(static_cast<int>(probe.samples().size()), probe.sent());
  EXPECT_GE(probe.lost(), 0);
}

// ---------------------------------------------------------------------------
// Link buffer capacity and per-direction tail drops.
// ---------------------------------------------------------------------------

TEST(LinkBuffer, CapacityConfigurableViaSpecWithPerDirectionDrops) {
  net::LinkSpec spec;
  spec.a = {0, 0};
  spec.b = {1, 0};
  spec.latency_s = 0.0;
  spec.gbps = 8e-6;  // 8000 bps: a 1000-byte packet serializes in 1s
  spec.buffer_bytes = 1500.0;
  net::Link link(spec);
  EXPECT_DOUBLE_EQ(link.buffer_bytes(), 1500.0);
  EXPECT_TRUE(link.transmit(0, 0.0, 1000).has_value());
  // 1000 bytes already queued + 1000 new > 1500: tail drop.
  EXPECT_FALSE(link.transmit(0, 0.0, 1000).has_value());
  EXPECT_EQ(link.stats(0).drops, 1u);
  // The reverse direction has its own buffer and counter.
  EXPECT_TRUE(link.transmit(1, 0.0, 1000).has_value());
  EXPECT_EQ(link.stats(1).drops, 0u);
}

TEST(LinkBuffer, TopologyValidatesBufferAndForwardsSpec) {
  net::Topology topo;
  const int s = topo.add_switch("s0");
  const int h = topo.add_host("h0", 0x0a000001);
  EXPECT_THROW(topo.add_link({s, 1}, {h, 0}, 2e-6, 10.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(topo.add_link({s, 1}, {h, 0}, 2e-6, 10.0, -5.0),
               std::invalid_argument);
  topo.add_link({s, 1}, {h, 0}, 2e-6, 10.0, 256.0);
  ASSERT_EQ(topo.links().size(), 1u);
  EXPECT_DOUBLE_EQ(topo.links()[0].buffer_bytes, 256.0);
}

TEST(LinkBuffer, PerDirectionDropGaugesExported) {
  Rig r;
  r.net->set_observability(true);
  const std::string metrics = r.net->metrics_json();
  EXPECT_NE(metrics.find("net.link."), std::string::npos);
  EXPECT_NE(metrics.find(".drops"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Whole-run determinism: one seed, identical outcomes.
// ---------------------------------------------------------------------------

TEST(Determinism, SameSeedSameChaosOutcome) {
  const auto once = [](std::uint64_t seed) {
    Rig r;
    r.net->set_forensics(true, 256);
    net::FaultPlan plan;
    plan.loss = 0.05;
    plan.corrupt = 0.1;
    plan.duplicate = 0.05;
    plan.reorder = 0.1;
    plan.flap_rate_hz = 2000.0;
    plan.flap_down_s = 100e-6;
    plan.horizon_s = 2e-3;
    plan.restarts.push_back({r.fabric.leaves[0], 1e-3});
    plan.rule_push_delay_s = 80e-6;
    plan.rule_push_jitter_s = 40e-6;
    r.net->arm_faults(plan, seed);
    const int client = r.fabric.hosts[0][0];
    const int server = r.fabric.hosts[1][0];
    r.net->dict_insert_all_delayed(
        r.dep, "allowed",
        {BitVec(32, r.ip(client)), BitVec(32, r.ip(server))},
        {BitVec::from_bool(true)});
    for (int i = 0; i < 100; ++i) {
      const int src = i % 3 == 2 ? r.fabric.hosts[0][1] : client;
      r.send_at(10e-6 * (i + 1), src, server,
                static_cast<std::uint16_t>(5000 + i % 8));
    }
    r.net->events().run();
    std::ostringstream os;
    const auto& c = r.net->counters();
    os << r.net->fault_stats().to_json() << '|' << c.injected << ','
       << c.delivered << ',' << c.rejected << ',' << c.fault_dropped << '|'
       << r.net->violation_reports_json();
    return os.str();
  };
  EXPECT_EQ(once(11), once(11));
}

}  // namespace
}  // namespace hydra
