// Table lookup scaling microbench: ns/op for the reference linear scan vs.
// the indexed lookup engine at 10 .. 100k entries, for the two table shapes
// the data plane leans on (exact-match session tables, LPM route tables).
// Emits machine-readable results for cross-PR perf tracking.
//
//   $ ./table_scale [--json BENCH_table_scale.json]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "p4rt/table.hpp"
#include "util/rng.hpp"

using namespace hydra;
using p4rt::MatchKind;
using p4rt::Table;

namespace {

using Clock = std::chrono::steady_clock;

struct Row {
  std::string shape;
  std::size_t entries = 0;
  double linear_ns = 0;
  double indexed_ns = 0;
  double speedup() const {
    return indexed_ns > 0 ? linear_ns / indexed_ns : 0;
  }
};

// Measures average ns per lookup over a pre-generated random key sequence.
// The key order is shuffled so the last-hit cache does not flatter the
// indexed path; this measures the steady-state hash/scan cost.
template <typename LookupFn>
double measure_ns(const std::vector<std::vector<BitVec>>& keys,
                  std::uint64_t iters, LookupFn&& fn) {
  std::uint64_t sink = 0;
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    const auto* e = fn(keys[i % keys.size()]);
    sink += reinterpret_cast<std::uintptr_t>(e);
  }
  const auto stop = Clock::now();
  // Keep the lookups observable so the loop is not optimized away.
  if (sink == 0x5eed) std::fputc(' ', stderr);
  const double total_ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              stop - start)
                              .count());
  return total_ns / static_cast<double>(iters);
}

Row bench_exact(std::size_t n, Rng& rng) {
  Table t("sessions", {{MatchKind::kExact, 32}});
  std::vector<std::uint32_t> installed;
  installed.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Distinct keys: mix a counter so collisions cannot shrink the table.
    const auto k = static_cast<std::uint32_t>((i << 8) ^ rng.below(256));
    installed.push_back(k);
    t.insert_exact({BitVec(32, k)}, {BitVec(32, static_cast<std::uint64_t>(i))});
  }
  std::vector<std::vector<BitVec>> keys;
  for (int i = 0; i < 1024; ++i) {
    // 7/8 present keys, 1/8 misses — both paths matter at line rate.
    if (rng.chance(0.875)) {
      keys.push_back({BitVec(32, rng.pick(installed))});
    } else {
      keys.push_back({BitVec(32, rng.next())});
    }
  }
  Row r;
  r.shape = "exact";
  r.entries = t.size();
  const std::uint64_t fast_iters = 2'000'000;
  const std::uint64_t slow_iters =
      std::max<std::uint64_t>(2000, 40'000'000 / std::max<std::size_t>(n, 1));
  r.indexed_ns = measure_ns(keys, fast_iters,
                            [&](const auto& k) { return t.lookup(k); });
  r.linear_ns = measure_ns(keys, slow_iters, [&](const auto& k) {
    return t.lookup_linear_reference(k);
  });
  return r;
}

Row bench_lpm(std::size_t n, Rng& rng) {
  Table t("routes", {{MatchKind::kLpm, 32}});
  std::vector<std::uint32_t> bases;
  bases.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int len = static_cast<int>(8 + rng.below(25));  // /8 .. /32
    const auto base = static_cast<std::uint32_t>(rng.next());
    p4rt::TableEntry e;
    e.priority = len;  // longest prefix wins, as the router installs them
    e.patterns.push_back(p4rt::KeyPattern::lpm(BitVec(32, base), len));
    e.action_data.push_back(BitVec(32, static_cast<std::uint64_t>(i)));
    bases.push_back(base);
    t.insert(std::move(e));
  }
  std::vector<std::vector<BitVec>> keys;
  for (int i = 0; i < 1024; ++i) {
    // Addresses near installed prefixes so most lookups hit.
    const std::uint32_t jitter = static_cast<std::uint32_t>(rng.below(256));
    keys.push_back({BitVec(32, (rng.pick(bases) & 0xffffff00u) | jitter)});
  }
  Row r;
  r.shape = "lpm";
  r.entries = t.size();
  const std::uint64_t fast_iters = 1'000'000;
  const std::uint64_t slow_iters =
      std::max<std::uint64_t>(2000, 40'000'000 / std::max<std::size_t>(n, 1));
  r.indexed_ns = measure_ns(keys, fast_iters,
                            [&](const auto& k) { return t.lookup(k); });
  r.linear_ns = measure_ns(keys, slow_iters, [&](const auto& k) {
    return t.lookup_linear_reference(k);
  });
  return r;
}

void write_json(const std::string& path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"table_scale\",\n  \"unit\": \"ns/op\",\n"
                  "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"shape\": \"%s\", \"entries\": %zu, "
                 "\"linear_ns\": %.2f, \"indexed_ns\": %.2f, "
                 "\"speedup\": %.2f}%s\n",
                 r.shape.c_str(), r.entries, r.linear_ns, r.indexed_ns,
                 r.speedup(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_table_scale.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  Rng rng(2023);
  const std::vector<std::size_t> sizes = {10, 100, 1000, 10000, 100000};
  std::vector<Row> rows;

  std::printf("table lookup scaling (ns/op, random keys, cache-adverse)\n");
  std::printf("%-8s %10s %12s %12s %10s\n", "shape", "entries", "linear",
              "indexed", "speedup");
  for (const std::size_t n : sizes) {
    Row r = bench_exact(n, rng);
    std::printf("%-8s %10zu %10.1f %12.1f %9.1fx\n", r.shape.c_str(),
                r.entries, r.linear_ns, r.indexed_ns, r.speedup());
    rows.push_back(r);
  }
  for (const std::size_t n : sizes) {
    Row r = bench_lpm(n, rng);
    std::printf("%-8s %10zu %10.1f %12.1f %9.1fx\n", r.shape.c_str(),
                r.entries, r.linear_ns, r.indexed_ns, r.speedup());
    rows.push_back(r);
  }

  write_json(json_path, rows);

  // The acceptance bar for this PR: >= 10x at 10k exact entries.
  for (const Row& r : rows) {
    if (r.shape == "exact" && r.entries >= 10000 && r.speedup() < 10.0) {
      std::printf("FAIL: exact @%zu speedup %.1fx < 10x\n", r.entries,
                  r.speedup());
      return 1;
    }
  }
  return 0;
}
