#include "ltlf/random_formula.hpp"

namespace hydra::ltlf {

FormulaPtr random_formula(Rng& rng, int num_atoms, int max_depth) {
  if (max_depth <= 1 || rng.chance(0.3)) {
    return Formula::make_atom(
        static_cast<int>(rng.below(static_cast<std::uint64_t>(num_atoms))));
  }
  switch (rng.below(7)) {
    case 0:
      return Formula::make_not(random_formula(rng, num_atoms, max_depth - 1));
    case 1:
      return Formula::make_and(random_formula(rng, num_atoms, max_depth - 1),
                               random_formula(rng, num_atoms, max_depth - 1));
    case 2:
      return Formula::make_or(random_formula(rng, num_atoms, max_depth - 1),
                              random_formula(rng, num_atoms, max_depth - 1));
    case 3:
      return Formula::make_next(random_formula(rng, num_atoms, max_depth - 1));
    case 4:
      return Formula::make_until(
          random_formula(rng, num_atoms, max_depth - 1),
          random_formula(rng, num_atoms, max_depth - 1));
    case 5:
      return Formula::make_eventually(
          random_formula(rng, num_atoms, max_depth - 1));
    default:
      return Formula::make_globally(
          random_formula(rng, num_atoms, max_depth - 1));
  }
}

Trace random_trace(Rng& rng, int num_atoms, int length) {
  Trace t;
  t.reserve(static_cast<std::size_t>(length));
  for (int i = 0; i < length; ++i) {
    std::vector<bool> event;
    event.reserve(static_cast<std::size_t>(num_atoms));
    for (int a = 0; a < num_atoms; ++a) event.push_back(rng.chance(0.5));
    t.push_back(std::move(event));
  }
  return t;
}

}  // namespace hydra::ltlf
