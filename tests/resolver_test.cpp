// Unit tests for the header-variable resolver — the "foreign function
// interface" between Indus checkers and the data plane (§3.3) — and for
// the P4 emitter's dialect support.
#include <gtest/gtest.h>

#include "compiler/compile.hpp"
#include "checkers/library.hpp"
#include "net/switch_node.hpp"

namespace hydra::net {
namespace {

struct Ctx {
  p4rt::Packet pkt;
  HopContext hop;

  BitVec get(const std::string& ann, int width = 32) const {
    return resolve_header(pkt, hop, ann, width);
  }
};

TEST(Resolver, Intrinsics) {
  Ctx c;
  c.hop.first_hop = true;
  c.hop.last_hop = false;
  c.hop.wire_bytes = 123;
  EXPECT_TRUE(c.get("std.first_hop", 1).as_bool());
  EXPECT_FALSE(c.get("std.last_hop", 1).as_bool());
  EXPECT_EQ(c.get("std.packet_length").value(), 123u);
}

TEST(Resolver, Ports) {
  Ctx c;
  c.hop.in_port = 3;
  c.hop.eg_port = 7;
  EXPECT_EQ(c.get("in_port", 8).value(), 3u);
  EXPECT_EQ(c.get("eg_port", 8).value(), 7u);
  // Unset egress port reads as 0xff (invalid sentinel).
  c.hop.eg_port = -1;
  EXPECT_EQ(c.get("eg_port", 8).value(), 0xffu);
}

TEST(Resolver, SwitchIdentityAndDropFlag) {
  Ctx c;
  c.hop.switch_tag = 42;
  c.hop.fwd_drop = true;
  EXPECT_EQ(c.get("switch_id").value(), 42u);
  EXPECT_TRUE(c.get("to_be_dropped", 1).as_bool());
}

TEST(Resolver, Ipv4FieldsAndValidity) {
  Ctx c;
  EXPECT_FALSE(c.get("ipv4_is_valid", 1).as_bool());
  EXPECT_EQ(c.get("ipv4_src").value(), 0u);
  c.pkt = p4rt::make_udp(0x0a000001, 0x0a000002, 10, 20, 64);
  c.pkt.ipv4->dscp = 46;
  EXPECT_TRUE(c.get("ipv4_is_valid", 1).as_bool());
  EXPECT_EQ(c.get("ipv4_src").value(), 0x0a000001u);
  EXPECT_EQ(c.get("ipv4_dst").value(), 0x0a000002u);
  EXPECT_EQ(c.get("ipv4_proto", 8).value(), 17u);
  EXPECT_EQ(c.get("ipv4_dscp", 8).value(), 46u);
}

TEST(Resolver, L4ValidityTracksProto) {
  Ctx udp;
  udp.pkt = p4rt::make_udp(1, 2, 10, 20, 0);
  EXPECT_TRUE(udp.get("udp_is_valid", 1).as_bool());
  EXPECT_FALSE(udp.get("tcp_is_valid", 1).as_bool());
  EXPECT_EQ(udp.get("udp_dport", 16).value(), 20u);
  EXPECT_EQ(udp.get("tcp_dport", 16).value(), 0u);  // invalid -> 0

  Ctx tcp;
  tcp.pkt = p4rt::make_tcp(1, 2, 10, 20, 0);
  EXPECT_TRUE(tcp.get("tcp_is_valid", 1).as_bool());
  EXPECT_FALSE(tcp.get("udp_is_valid", 1).as_bool());
  EXPECT_EQ(tcp.get("tcp_sport", 16).value(), 10u);
  EXPECT_EQ(tcp.get("l4_dport", 16).value(), 20u);
}

TEST(Resolver, GtpuAndInnerHeaders) {
  Ctx c;
  const p4rt::Packet inner = p4rt::make_udp(0x0a640001, 0x0a000203, 999, 81, 64);
  c.pkt = p4rt::gtpu_encap(inner, 0xc0a80001, 0xc0a80002, 777);
  EXPECT_TRUE(c.get("gtpu_is_valid", 1).as_bool());
  EXPECT_EQ(c.get("gtpu_teid").value(), 777u);
  EXPECT_TRUE(c.get("inner_ipv4_is_valid", 1).as_bool());
  EXPECT_EQ(c.get("inner_ipv4_src").value(), 0x0a640001u);
  EXPECT_EQ(c.get("inner_ipv4_dst").value(), 0x0a000203u);
  EXPECT_TRUE(c.get("inner_udp_is_valid", 1).as_bool());
  EXPECT_FALSE(c.get("inner_tcp_is_valid", 1).as_bool());
  EXPECT_EQ(c.get("inner_udp_dport", 16).value(), 81u);
  // Outer view.
  EXPECT_EQ(c.get("outer_ipv4_dst").value(), 0xc0a80002u);
  EXPECT_EQ(c.get("outer_udp_dport", 16).value(),
            static_cast<std::uint64_t>(p4rt::kGtpuPort));
}

TEST(Resolver, VlanFields) {
  Ctx c;
  EXPECT_FALSE(c.get("vlan_is_valid", 1).as_bool());
  c.pkt.vlan = p4rt::VlanH{123};
  EXPECT_TRUE(c.get("vlan_is_valid", 1).as_bool());
  EXPECT_EQ(c.get("vlan_id", 16).value(), 123u);
}

TEST(Resolver, SourceRouteStackInTravelOrder) {
  Ctx c;
  c.pkt.sr_stack = {5, 3, 7};  // back is next hop
  c.pkt.has_sr = true;
  EXPECT_TRUE(c.get("sr_is_valid", 1).as_bool());
  EXPECT_EQ(c.get("sr_depth", 8).value(), 3u);
  EXPECT_EQ(c.get("sr_port_0", 8).value(), 7u);
  EXPECT_EQ(c.get("sr_port_1", 8).value(), 3u);
  EXPECT_EQ(c.get("sr_port_2", 8).value(), 5u);
  EXPECT_EQ(c.get("sr_port_3", 8).value(), 0u);  // past the end
}

TEST(Resolver, EthernetFields) {
  Ctx c;
  c.pkt.eth.src = 0xaabbccddeeffULL;
  c.pkt.eth.dst = 0x112233445566ULL;
  EXPECT_EQ(c.get("eth_src", 48).value(), 0xaabbccddeeffULL);
  EXPECT_EQ(c.get("hdr.ethernet.dst_addr", 48).value(), 0x112233445566ULL);
}

TEST(Resolver, UnknownAnnotationThrows) {
  Ctx c;
  EXPECT_THROW(c.get("no_such_field"), std::invalid_argument);
}

TEST(Resolver, ValueTruncatedToRequestedWidth) {
  Ctx c;
  c.hop.switch_tag = 0x1234;
  EXPECT_EQ(c.get("switch_id", 8).value(), 0x34u);
}

// ---------------------------------------------------------------------------
// Emitter dialects
// ---------------------------------------------------------------------------

TEST(Dialects, TnaUsesTofinoConstructs) {
  compiler::CompileOptions opts;
  opts.dialect = compiler::P4Dialect::kTna;
  const auto c = compiler::compile_checker(
      checkers::checker_by_name("dc_uplink_load_balance").source, "lb",
      opts);
  EXPECT_NE(c.p4_code.find("#include <tna.p4>"), std::string::npos);
  EXPECT_NE(c.p4_code.find("RegisterAction<"), std::string::npos);
  EXPECT_EQ(c.p4_code.find("v1model"), std::string::npos);
}

TEST(Dialects, V1ModelUsesBmv2Constructs) {
  compiler::CompileOptions opts;
  opts.dialect = compiler::P4Dialect::kV1Model;
  const auto c = compiler::compile_checker(
      checkers::checker_by_name("dc_uplink_load_balance").source, "lb",
      opts);
  EXPECT_NE(c.p4_code.find("#include <v1model.p4>"), std::string::npos);
  EXPECT_NE(c.p4_code.find("register<bit<32>>(1)"), std::string::npos);
  EXPECT_NE(c.p4_code.find("_reg.read("), std::string::npos);
  EXPECT_NE(c.p4_code.find("standard_metadata.packet_length"),
            std::string::npos);
  EXPECT_EQ(c.p4_code.find("tna.p4"), std::string::npos);
}

TEST(Dialects, V1ModelDropAndDigest) {
  compiler::CompileOptions opts;
  opts.dialect = compiler::P4Dialect::kV1Model;
  const auto c = compiler::compile_checker(
      checkers::checker_by_name("stateful_firewall").source, "fw", opts);
  EXPECT_NE(c.p4_code.find("mark_to_drop(standard_metadata)"),
            std::string::npos);
  EXPECT_NE(c.p4_code.find("digest(HYDRA_REPORT_RECEIVER"),
            std::string::npos);
}

TEST(Dialects, BothDialectsCompileEveryLibraryChecker) {
  for (const auto& spec : checkers::all_checkers()) {
    for (auto dialect :
         {compiler::P4Dialect::kTna, compiler::P4Dialect::kV1Model}) {
      compiler::CompileOptions opts;
      opts.dialect = dialect;
      EXPECT_NO_THROW({
        const auto c =
            compiler::compile_checker(spec.source, spec.name, opts);
        EXPECT_GT(c.p4_loc, 0);
      }) << spec.name;
    }
  }
}

}  // namespace
}  // namespace hydra::net
