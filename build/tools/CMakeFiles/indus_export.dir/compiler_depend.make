# Empty compiler generated dependencies file for indus_export.
# This may be replaced when dependencies are built.
