// Metrics registry — the measurement substrate for the runtime.
//
// Designed around one constraint: the packet hot path must not pay for
// observability it did not ask for. Instrumented components hold *handles*
// (Counter / Gauge / Histogram), which are a single raw pointer into
// registry-owned storage. A default-constructed handle is detached
// (nullptr) and every operation on it is one predictable branch — that is
// the entire disabled-path cost. When a Registry hands out a handle, the
// increment is a direct pointer write with no lock, no lookup, and no
// allocation.
//
// Counter slots are relaxed atomics: the parallel engine's dynamic
// sharding may hand two switches that share one aggregate counter (same
// (checker, table) name) to two workers in the same epoch, so the bump
// must be a race-free fetch_add. Relaxed ordering is enough — each event
// contributes a schedule-independent amount, so the TOTAL a snapshot
// reads (taken at a barrier, after workers quiesce) is identical under
// any interleaving, which keeps exports byte-identical across engines.
// On the serial path an uncontended fetch_add costs the same as the old
// plain add on mainstream hardware. Gauges and histograms keep plain
// slots: they are only ever written single-threaded (snapshot pulls on
// the main thread; per-shard histograms have exactly one writer).
//
// Slots live in deques so handles stay valid as more metrics register.
// Registration is idempotent: asking for the same name (and kind) again
// returns a handle to the same slot, so independently-wired components can
// share an aggregate counter. Snapshots iterate names in sorted order, so
// exports are deterministic regardless of registration order.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace hydra::obs {

class Registry;

enum class MetricKind { kCounter, kGauge, kHistogram };

// One structured dimension of a metric (e.g. {"property", "waypoint"}).
// Labels are export-side metadata: the registry stays keyed on the flat
// compatibility name, so JSON/CSV snapshots are unaffected, while the
// Prometheus exporter groups same-family metrics into labeled samples.
struct Label {
  std::string key;
  std::string value;
};

namespace detail {
// Shortest-roundtrip float formatting shared by every obs serializer.
std::string format_double(double v);
}  // namespace detail

// Monotonic event count (table hits, packets forwarded, rejects...).
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) const {
    if (slot_ != nullptr) slot_->fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return slot_ != nullptr ? slot_->load(std::memory_order_relaxed) : 0;
  }
  bool attached() const { return slot_ != nullptr; }

 private:
  friend class Registry;
  explicit Counter(std::atomic<std::uint64_t>* slot) : slot_(slot) {}
  std::atomic<std::uint64_t>* slot_ = nullptr;
};

// Point-in-time level (entry counts, utilization). Set, not accumulated.
class Gauge {
 public:
  Gauge() = default;
  void set(double v) const {
    if (slot_ != nullptr) *slot_ = v;
  }
  void add(double v) const {
    if (slot_ != nullptr) *slot_ += v;
  }
  double value() const { return slot_ != nullptr ? *slot_ : 0.0; }
  bool attached() const { return slot_ != nullptr; }

 private:
  friend class Registry;
  explicit Gauge(double* slot) : slot_(slot) {}
  double* slot_ = nullptr;
};

// Fixed-bucket histogram: `bounds` are inclusive upper bounds in ascending
// order; one overflow bucket is implicit. No rebinning ever happens, so
// observe() is a linear probe over a handful of bounds.
struct HistogramData {
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1
  std::uint64_t count = 0;
  double sum = 0.0;
};

class Histogram {
 public:
  Histogram() = default;
  void observe(double v) const;
  std::uint64_t count() const { return data_ != nullptr ? data_->count : 0; }
  double sum() const { return data_ != nullptr ? data_->sum : 0.0; }
  const HistogramData* data() const { return data_; }
  bool attached() const { return data_ != nullptr; }

 private:
  friend class Registry;
  explicit Histogram(HistogramData* data) : data_(data) {}
  HistogramData* data_ = nullptr;
};

class Registry {
 public:
  // Registering an existing name returns a handle to the existing slot;
  // registering it as a different kind throws std::invalid_argument.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  // `bounds` must be ascending; ignored if `name` is already registered.
  Histogram histogram(const std::string& name, std::vector<double> bounds);

  // Labeled registration: `name` remains the snapshot key (JSON/CSV output
  // is byte-for-byte what the unlabeled overload produces), while
  // `family` + `labels` describe the Prometheus identity of the same slot
  // (e.g. hydra_checker_rejects_total{property="waypoint"}). Family and
  // labels are fixed by the first registration of `name`.
  Counter counter(const std::string& name, const std::string& family,
                  std::vector<Label> labels);
  Gauge gauge(const std::string& name, const std::string& family,
              std::vector<Label> labels);
  Histogram histogram(const std::string& name, const std::string& family,
                      std::vector<Label> labels, std::vector<double> bounds);

  std::size_t size() const { return by_name_.size(); }
  // Point reads by name for tests and tools; 0 when absent.
  std::uint64_t counter_value(const std::string& name) const;
  double gauge_value(const std::string& name) const;

  // Zeroes every value but keeps all registrations (handles stay valid).
  void reset();

  // ---- snapshot/restore (obs persistence) -------------------------------
  // Deterministic line-oriented dump of every counter and histogram, names
  // sorted: `counter <name> <value>` / `hist <name> <count> <sum> <n>
  // <bucket>...`. Gauges are derived levels and are recomputed after a
  // restart, so they are not persisted.
  std::string snapshot_text() const;
  // Adds `v` into `name`'s slot, registering a plain counter if absent
  // (Prometheus identity attaches when the owning component re-registers
  // it). Additive, so restoring on top of freshly re-registered metrics
  // resumes the pre-restart totals.
  void restore_counter(const std::string& name, std::uint64_t v);
  // Bucket-wise add into an EXISTING histogram (the bounds live with the
  // registration, not the snapshot); unknown names are ignored and a
  // bucket-count mismatch throws std::invalid_argument.
  void restore_histogram(const std::string& name, std::uint64_t count,
                         double sum, const std::vector<std::uint64_t>& buckets);

  // Folds every metric held by `src` into the same-named metric here
  // (registering it if absent), then zeroes `src`. The merge primitive for
  // shard-local accumulator registries: workers record into a private
  // registry and the owner folds it into the main one at an epoch barrier.
  // Merge semantics per kind: counters add; histograms add bucket-wise
  // (bounds must match, else std::invalid_argument); gauges take the max —
  // a shard gauge is a local high-water mark, not a summable level.
  void absorb_counters(Registry& src);

  // Deterministic exports: names sorted, stable float formatting.
  // JSON: {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string to_json() const;
  // CSV: kind,name,field,value — histograms expand to one row per bucket.
  std::string to_csv() const;

  // Read-only walk over every metric in name order (so visitors inherit
  // the registry's deterministic iteration). `family` is empty for metrics
  // registered without Prometheus identity; exporters derive one.
  struct MetricView {
    const std::string& name;
    const std::string& family;
    const std::vector<Label>& labels;
    MetricKind kind;
    std::uint64_t counter_value = 0;
    double gauge_value = 0.0;
    const HistogramData* hist = nullptr;  // non-null iff kind == kHistogram
  };
  void visit(const std::function<void(const MetricView&)>& fn) const;

 private:
  using Kind = MetricKind;
  struct Meta {
    Kind kind = Kind::kCounter;
    std::size_t slot = 0;
    // Prometheus identity; empty family => exporter derives one from name.
    std::string family;
    std::vector<Label> labels;
  };

  const Meta& require(const std::string& name, Kind kind,
                      const std::string* family = nullptr,
                      const std::vector<Label>* labels = nullptr);

  std::map<std::string, Meta> by_name_;  // ordered => deterministic export
  // deque: slots never relocate, so handles (and atomicity) survive growth.
  std::deque<std::atomic<std::uint64_t>> counters_;
  std::deque<double> gauges_;
  std::deque<HistogramData> histograms_;
};

}  // namespace hydra::obs
