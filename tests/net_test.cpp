// Unit and integration tests for the network simulator: event queue,
// topology builders, link model, end-to-end delivery, ECMP spreading, and
// the Hydra per-hop pipeline mechanics.
#include <gtest/gtest.h>

#include "forwarding/ipv4_ecmp.hpp"
#include "hydra/hydra.hpp"
#include "net/event.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "net/traffic.hpp"

namespace hydra::net {
namespace {

// ---------------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------------

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, StableForEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(5.0, [&] { ++fired; });
  q.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, HandlersMayScheduleMore) {
  EventQueue q;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) q.schedule_in(1.0, tick);
  };
  q.schedule_at(0.0, tick);
  q.run();
  EXPECT_EQ(count, 5);
}

TEST(EventQueue, PastSchedulingRejected) {
  EventQueue q;
  q.schedule_at(5.0, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(1.0, [] {}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------------

TEST(Topology, LeafSpineShape) {
  const auto fabric = make_leaf_spine(2, 2, 2);
  EXPECT_EQ(fabric.leaves.size(), 2u);
  EXPECT_EQ(fabric.spines.size(), 2u);
  // 4 hosts + 4 switches.
  EXPECT_EQ(fabric.topo.node_count(), 8);
  // 4 host links + 4 fabric links.
  EXPECT_EQ(fabric.topo.links().size(), 8u);
}

TEST(Topology, LeafSpinePortConventions) {
  const auto fabric = make_leaf_spine(2, 2, 2);
  const int leaf0 = fabric.leaves[0];
  // Host 0 of leaf 0 is on port 1.
  const auto peer = fabric.topo.peer({leaf0, fabric.leaf_host_port(0)});
  ASSERT_TRUE(peer.has_value());
  EXPECT_EQ(peer->node, fabric.hosts[0][0]);
  // Uplink 0 goes to spine 0.
  const auto up = fabric.topo.peer({leaf0, fabric.leaf_uplink_port(0)});
  ASSERT_TRUE(up.has_value());
  EXPECT_EQ(up->node, fabric.spines[0]);
}

TEST(Topology, HostAddressing) {
  const auto fabric = make_leaf_spine(2, 2, 2);
  // 10.0.<leaf+1>.<counter>.
  EXPECT_EQ(fabric.topo.node(fabric.hosts[0][0]).ip, 0x0a000101u);
  EXPECT_EQ(fabric.topo.node(fabric.hosts[1][0]).ip, 0x0a000203u);
}

TEST(Topology, HostFacingDetection) {
  const auto fabric = make_leaf_spine(2, 2, 2);
  EXPECT_TRUE(fabric.topo.host_facing({fabric.leaves[0], 1}));
  EXPECT_FALSE(
      fabric.topo.host_facing({fabric.leaves[0], fabric.leaf_uplink_port(0)}));
}

TEST(Topology, DoubleConnectRejected) {
  Topology t;
  const int a = t.add_switch("a");
  const int b = t.add_switch("b");
  const int c = t.add_switch("c");
  t.add_link({a, 1}, {b, 1});
  EXPECT_THROW(t.add_link({a, 1}, {c, 1}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Link
// ---------------------------------------------------------------------------

TEST(Link, SerializationPlusPropagation) {
  Link link(LinkSpec{{0, 0}, {1, 0}, 1e-6, 10.0});  // 10 Gb/s, 1 us
  const auto arrival = link.transmit(0, 0.0, 1250);  // 1250B = 1 us at 10G
  ASSERT_TRUE(arrival.has_value());
  EXPECT_NEAR(*arrival, 2e-6, 1e-12);
}

TEST(Link, QueueingDelaysSubsequentPackets) {
  Link link(LinkSpec{{0, 0}, {1, 0}, 0.0, 10.0});
  const auto a1 = link.transmit(0, 0.0, 1250);
  const auto a2 = link.transmit(0, 0.0, 1250);
  ASSERT_TRUE(a1 && a2);
  EXPECT_NEAR(*a2 - *a1, 1e-6, 1e-12);
}

TEST(Link, BufferOverflowDrops) {
  Link link(LinkSpec{{0, 0}, {1, 0}, 0.0, 0.001});  // 1 Mb/s: slow
  link.set_buffer_bytes(3000);
  int delivered = 0;
  for (int i = 0; i < 10; ++i) {
    if (link.transmit(0, 0.0, 1500)) ++delivered;
  }
  EXPECT_LT(delivered, 10);
  EXPECT_GT(link.stats(0).drops, 0u);
}

TEST(Link, DirectionsAreIndependent) {
  Link link(LinkSpec{{0, 0}, {1, 0}, 0.0, 10.0});
  link.transmit(0, 0.0, 1250);
  const auto rev = link.transmit(1, 0.0, 1250);
  ASSERT_TRUE(rev.has_value());
  EXPECT_NEAR(*rev, 1e-6, 1e-12);  // no queueing from the other direction
}

// ---------------------------------------------------------------------------
// Network end-to-end
// ---------------------------------------------------------------------------

struct Fixture {
  LeafSpine fabric = make_leaf_spine(2, 2, 2);
  Network net{fabric.topo};
  std::shared_ptr<fwd::Ipv4EcmpProgram> routing =
      fwd::install_leaf_spine_routing(net, fabric);

  int h(int leaf, int i) const {
    return fabric.hosts[static_cast<std::size_t>(leaf)]
                       [static_cast<std::size_t>(i)];
  }
  std::uint32_t ip(int host) const { return net.topo().node(host).ip; }
};

TEST(Network, DeliversAcrossFabric) {
  Fixture f;
  int got = 0;
  f.net.host(f.h(1, 0)).add_sink([&](const p4rt::Packet&, double) { ++got; });
  f.net.send_from_host(f.h(0, 0),
                       p4rt::make_udp(f.ip(f.h(0, 0)), f.ip(f.h(1, 0)),
                                      1000, 2000, 100));
  f.net.events().run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(f.net.counters().delivered, 1u);
}

TEST(Network, DeliversWithinLeaf) {
  Fixture f;
  int got = 0;
  f.net.host(f.h(0, 1)).add_sink([&](const p4rt::Packet&, double) { ++got; });
  f.net.send_from_host(f.h(0, 0),
                       p4rt::make_udp(f.ip(f.h(0, 0)), f.ip(f.h(0, 1)),
                                      1000, 2000, 100));
  f.net.events().run();
  EXPECT_EQ(got, 1);
}

TEST(Network, PingGetsEchoReply) {
  Fixture f;
  PingProbe ping(f.net, f.h(0, 0), f.h(1, 1), 0.01);
  ping.start(0.0, 0.1);
  f.net.events().run();
  EXPECT_GT(ping.samples().size(), 5u);
  for (const auto& s : ping.samples()) {
    EXPECT_GT(s.rtt, 0.0);
    EXPECT_LT(s.rtt, 1e-3);
  }
}

TEST(Network, EcmpSpreadsFlowsAcrossSpines) {
  Fixture f;
  // Many distinct flows; both uplinks should carry traffic.
  for (int i = 0; i < 64; ++i) {
    f.net.send_from_host(
        f.h(0, 0),
        p4rt::make_udp(f.ip(f.h(0, 0)), f.ip(f.h(1, 0)),
                       static_cast<std::uint16_t>(1000 + i), 2000, 100));
  }
  f.net.events().run();
  std::uint64_t spine_pkts[2] = {0, 0};
  for (std::size_t li = 0; li < f.net.link_count(); ++li) {
    const auto& spec = f.net.link(static_cast<int>(li)).spec();
    for (int j = 0; j < 2; ++j) {
      const int sp = f.fabric.spines[static_cast<std::size_t>(j)];
      if (spec.a.node == sp || spec.b.node == sp) {
        spine_pkts[j] += f.net.link(static_cast<int>(li)).stats(0).packets +
                         f.net.link(static_cast<int>(li)).stats(1).packets;
      }
    }
  }
  EXPECT_GT(spine_pkts[0], 0u);
  EXPECT_GT(spine_pkts[1], 0u);
}

TEST(Network, SameFlowSticksToOnePath) {
  Fixture f;
  const auto p = p4rt::make_udp(1, 2, 3, 4, 0);
  const auto h1 = fwd::Ipv4EcmpProgram::flow_hash(p);
  const auto h2 = fwd::Ipv4EcmpProgram::flow_hash(p);
  EXPECT_EQ(h1, h2);
}

TEST(Network, CountersTrackDrops) {
  Fixture f;
  // No route for this destination: 10.9.9.9 falls to the leaf default
  // route, reaches a spine, misses there, and is dropped.
  f.net.send_from_host(f.h(0, 0),
                       p4rt::make_udp(f.ip(f.h(0, 0)), 0x0a090909, 1, 2, 10));
  f.net.events().run();
  EXPECT_EQ(f.net.counters().fwd_dropped, 1u);
  EXPECT_EQ(f.net.counters().delivered, 0u);
}

TEST(Network, SwitchLatencyGrowsWithStages) {
  Fixture f;
  f.net.set_latency_model(1e-6, 50e-9);
  const double base = f.net.switch_latency();
  // Deploying a checker never lowers it; stages are max(baseline, checker).
  auto checker = compile_library_checker("valley_free");
  f.net.deploy(checker);
  EXPECT_GE(f.net.switch_latency(), base);
}

// ---------------------------------------------------------------------------
// Hydra pipeline mechanics
// ---------------------------------------------------------------------------

TEST(HydraPipeline, TelemetryInjectedAndStripped) {
  Fixture f;
  auto checker = compile_library_checker("valley_free");
  const int dep = f.net.deploy(checker);
  configure_valley_free(f.net, dep, f.fabric);
  bool host_saw_telemetry = false;
  f.net.host(f.h(1, 0)).add_sink([&](const p4rt::Packet& p, double) {
    host_saw_telemetry = host_saw_telemetry || p.has_live_tele();
  });
  f.net.send_from_host(f.h(0, 0),
                       p4rt::make_udp(f.ip(f.h(0, 0)), f.ip(f.h(1, 0)),
                                      1000, 2000, 100));
  f.net.events().run();
  EXPECT_EQ(f.net.counters().delivered, 1u);
  // The last hop strips telemetry before the packet exits the network.
  EXPECT_FALSE(host_saw_telemetry);
}

TEST(HydraPipeline, MultipleCheckersCoexist) {
  Fixture f;
  const int d1 = f.net.deploy(compile_library_checker("valley_free"));
  const int d2 = f.net.deploy(compile_library_checker("loops"));
  configure_valley_free(f.net, d1, f.fabric);
  (void)d2;  // loops needs no configuration
  f.net.send_from_host(f.h(0, 0),
                       p4rt::make_udp(f.ip(f.h(0, 0)), f.ip(f.h(1, 0)),
                                      1000, 2000, 100));
  f.net.events().run();
  EXPECT_EQ(f.net.counters().delivered, 1u);
  EXPECT_EQ(f.net.counters().rejected, 0u);
}

TEST(HydraPipeline, TelemetryBytesExtendWireSize) {
  Fixture f;
  const auto no_dep_bytes =
      p4rt::make_udp(1, 2, 3, 4, 100).base_wire_bytes();
  auto checker = compile_library_checker("loops");
  f.net.deploy(checker);
  EXPECT_GT(checker->layout.wire_bytes, 0);
  // 4 visited entries of 32b + 3b counter + preamble.
  EXPECT_EQ(checker->layout.wire_bytes, (4 * 32 + 3 + 7) / 8 + 2);
  (void)no_dep_bytes;
}

TEST(HydraPipeline, UdpFloodLoadsLinks) {
  Fixture f;
  UdpFlood flood(f.net, f.h(0, 0), f.h(1, 0), 1.0, 1250);
  flood.start(0.0, 0.001);
  f.net.events().run();
  EXPECT_GT(flood.packets_sent(), 50u);
  EXPECT_EQ(f.net.counters().delivered, flood.packets_sent());
}

TEST(HydraPipeline, CampusReplayGeneratesMix) {
  Fixture f;
  CampusReplay replay(f.net, f.h(0, 0), f.h(1, 0), 100000.0);
  replay.start(0.0, 0.01);
  f.net.events().run();
  EXPECT_GT(replay.packets_sent(), 500u);
  EXPECT_GT(replay.bytes_sent(), replay.packets_sent() * 60);
}

}  // namespace
}  // namespace hydra::net
