#include "compiler/lower.hpp"

#include <map>
#include <set>
#include <stdexcept>

namespace hydra::compiler {

using indus::AssignOp;
using indus::BinOp;
using indus::BlockRole;
using indus::CompileError;
using indus::Decl;
using indus::Expr;
using indus::ExprKind;
using indus::Program;
using indus::Stmt;
using indus::StmtKind;
using indus::SymbolTable;
using indus::Type;
using indus::TypePtr;
using indus::UnOp;
using indus::VarInfo;
using indus::VarKind;
using ir::CheckerIR;
using ir::Field;
using ir::FieldId;
using ir::InstrPtr;
using ir::RValuePtr;
using ir::Space;

namespace {

int count_bits_for(int capacity) {
  int bits = 1;
  while ((1 << bits) <= capacity) ++bits;
  return bits;
}

// How a declared name maps onto IR storage.
struct Binding {
  enum class Kind {
    kScalar,       // one or more fields (tuples flatten)
    kList,         // tele array
    kTable,        // control dict or set
    kConfig,       // control scalar(s): keyless table + cached locals
    kRegister,     // sensor
  };
  Kind kind = Kind::kScalar;
  std::vector<FieldId> fields;  // kScalar: flattened fields
  int list = -1;
  int table = -1;
  int reg = -1;
  TypePtr type;
  // kConfig: number of scalar values (1, or N for control arrays).
  int config_values = 1;
};

class Lowerer {
 public:
  Lowerer(const Program& program, const SymbolTable& symbols,
          std::string name)
      : prog_(program), syms_(symbols) {
    ir_.name = std::move(name);
  }

  CheckerIR run() {
    bind_builtins();
    for (const auto& d : prog_.decls) bind_decl(d);
    // Telemetry initializers run when the header is created at the first
    // hop, i.e. at the top of the init block.
    emit_tele_initializers(ir_.init_block);
    lower_block(*prog_.init_block, ir_.init_block);
    lower_block(*prog_.tele_block, ir_.tele_block);
    lower_block(*prog_.check_block, ir_.check_block);
    return std::move(ir_);
  }

 private:
  // -------------------------------------------------------------------------
  // Declaration binding
  // -------------------------------------------------------------------------

  FieldId add_field(const std::string& name, Space space, int width,
                    bool is_bool, const std::string& annotation = "") {
    Field f;
    f.name = name;
    f.space = space;
    f.width = width;
    f.is_bool = is_bool;
    f.annotation = annotation;
    ir_.fields.push_back(std::move(f));
    return FieldId{static_cast<int>(ir_.fields.size()) - 1};
  }

  FieldId new_local(int width, bool is_bool = false) {
    return add_field("tmp" + std::to_string(next_tmp_++), Space::kLocal,
                     width, is_bool);
  }

  void bind_builtins() {
    bind_header_scalar("last_hop", Type::boolean(), "std.last_hop");
    bind_header_scalar("first_hop", Type::boolean(), "std.first_hop");
    bind_header_scalar("packet_length", Type::bits(32), "std.packet_length");
  }

  void bind_header_scalar(const std::string& name, TypePtr type,
                          const std::string& annotation) {
    Binding b;
    b.kind = Binding::Kind::kScalar;
    b.type = type;
    const int width = type->is_bool() ? 1 : type->bit_width();
    b.fields.push_back(add_field("hdr." + name, Space::kHeader, width,
                                 type->is_bool(), annotation));
    bindings_.emplace(name, std::move(b));
  }

  void bind_decl(const Decl& d) {
    Binding b;
    b.type = d.type;
    switch (d.kind) {
      case VarKind::kHeader: {
        const std::string ann = d.annotation.empty() ? d.name : d.annotation;
        bind_header_scalar(d.name, d.type, ann);
        return;
      }
      case VarKind::kSensor: {
        b.kind = Binding::Kind::kRegister;
        ir::Register r;
        r.name = d.name;
        r.width = d.type->is_bool() ? 1 : d.type->bit_width();
        r.initial = d.init ? eval_const(*d.init).resize(r.width)
                           : BitVec(r.width, 0);
        ir_.registers.push_back(std::move(r));
        b.reg = static_cast<int>(ir_.registers.size()) - 1;
        break;
      }
      case VarKind::kTele: {
        if (d.type->is_array()) {
          bind_tele_list(d);
          return;
        }
        b.kind = Binding::Kind::kScalar;
        const auto widths = d.type->flatten_widths();
        for (std::size_t i = 0; i < widths.size(); ++i) {
          const std::string suffix =
              widths.size() > 1 ? "._" + std::to_string(i) : "";
          const bool is_bool =
              d.type->is_bool() ||
              (d.type->is_tuple() && d.type->members()[i]->is_bool());
          b.fields.push_back(add_field("tele." + d.name + suffix,
                                       Space::kTele, widths[i], is_bool));
        }
        break;
      }
      case VarKind::kControl: {
        if (d.type->is_dict() || d.type->is_set()) {
          b.kind = Binding::Kind::kTable;
          ir::Table t;
          t.name = d.name;
          if (d.type->is_dict()) {
            t.key_widths = d.type->key()->flatten_widths();
            t.value_widths = d.type->value()->flatten_widths();
          } else {
            t.key_widths = d.type->element()->flatten_widths();
            t.from_set = true;
          }
          ir_.tables.push_back(std::move(t));
          b.table = static_cast<int>(ir_.tables.size()) - 1;
        } else {
          // Scalar (or array-of-scalar) configuration value supplied by the
          // control plane via a keyless table's default action.
          b.kind = Binding::Kind::kConfig;
          ir::Table t;
          t.name = d.name;
          t.config_scalar = true;
          t.value_widths = d.type->flatten_widths();
          if (t.value_widths.empty()) {
            throw CompileError("control variable '" + d.name +
                               "' has no scalar representation");
          }
          ir_.tables.push_back(std::move(t));
          b.table = static_cast<int>(ir_.tables.size()) - 1;
          b.config_values = static_cast<int>(
              ir_.tables.back().value_widths.size());
        }
        break;
      }
    }
    bindings_.emplace(d.name, std::move(b));
  }

  void bind_tele_list(const Decl& d) {
    const TypePtr elem = d.type->element();
    if (!elem->is_scalar()) {
      throw CompileError("tele array '" + d.name +
                         "' must have scalar elements to compile to a "
                         "header stack");
    }
    ir::TeleList list;
    list.name = d.name;
    list.capacity = d.type->array_size();
    list.elem_width = elem->is_bool() ? 1 : elem->bit_width();
    list.elem_is_bool = elem->is_bool();
    for (int i = 0; i < list.capacity; ++i) {
      list.slots.push_back(add_field(
          "tele." + d.name + "[" + std::to_string(i) + "]", Space::kTele,
          list.elem_width, list.elem_is_bool));
    }
    list.count = add_field("tele." + d.name + ".cnt", Space::kTele,
                           count_bits_for(list.capacity), false);
    ir_.lists.push_back(std::move(list));

    Binding b;
    b.kind = Binding::Kind::kList;
    b.type = d.type;
    b.list = static_cast<int>(ir_.lists.size()) - 1;
    bindings_.emplace(d.name, std::move(b));
  }

  BitVec eval_const(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kNumber:
        return BitVec(64, e.number);
      case ExprKind::kBoolLit:
        return BitVec::from_bool(e.bool_value);
      case ExprKind::kUnary: {
        const BitVec a = eval_const(*e.args[0]);
        switch (e.unop) {
          case UnOp::kNot: return BitVec::from_bool(!a.as_bool());
          case UnOp::kBitNot: return a.bnot();
          case UnOp::kNeg: return BitVec(a.width(), 0).sub(a);
        }
        return a;
      }
      case ExprKind::kBinary: {
        const BitVec a = eval_const(*e.args[0]);
        const BitVec b = eval_const(*e.args[1]);
        switch (e.binop) {
          case BinOp::kAdd: return a.add(b);
          case BinOp::kSub: return a.sub(b);
          case BinOp::kMul: return a.mul(b);
          case BinOp::kDiv: return a.div(b);
          case BinOp::kMod: return a.mod(b);
          case BinOp::kBitAnd: return a.band(b);
          case BinOp::kBitOr: return a.bor(b);
          case BinOp::kBitXor: return a.bxor(b);
          case BinOp::kShl: return a.shl(b);
          case BinOp::kShr: return a.shr(b);
          case BinOp::kEq: return BitVec::from_bool(a == b);
          case BinOp::kNe: return BitVec::from_bool(!(a == b));
          case BinOp::kLt: return BitVec::from_bool(a < b);
          case BinOp::kLe: return BitVec::from_bool(a <= b);
          case BinOp::kGt: return BitVec::from_bool(a > b);
          case BinOp::kGe: return BitVec::from_bool(a >= b);
          case BinOp::kAnd: return BitVec::from_bool(a.as_bool() && b.as_bool());
          case BinOp::kOr: return BitVec::from_bool(a.as_bool() || b.as_bool());
        }
        return a;
      }
      default:
        throw CompileError("expected a constant expression");
    }
  }

  void emit_tele_initializers(std::vector<InstrPtr>& out) {
    for (const auto& d : prog_.decls) {
      if (d.kind != VarKind::kTele) continue;
      const Binding& b = bindings_.at(d.name);
      if (b.kind == Binding::Kind::kList) {
        // The fill counter starts at zero when the header is injected.
        out.push_back(ir::in_assign(
            ir_.lists[static_cast<std::size_t>(b.list)].count,
            ir::rv_const(BitVec(1, 0))));
        continue;
      }
      if (!d.init) {
        // Uninitialized tele scalars start at zero for determinism.
        for (FieldId f : b.fields) {
          out.push_back(ir::in_assign(f, ir::rv_const(BitVec(1, 0))));
        }
        continue;
      }
      const BitVec v = eval_const(*d.init);
      for (FieldId f : b.fields) {
        out.push_back(ir::in_assign(f, ir::rv_const(v)));
      }
    }
  }

  // -------------------------------------------------------------------------
  // Expression lowering
  // -------------------------------------------------------------------------

  // Lowers to a single scalar rvalue; pre-statement instructions (table
  // lookups, register reads) are appended to `out`.
  RValuePtr lower_expr(const Expr& e, std::vector<InstrPtr>& out) {
    auto parts = lower_expr_multi(e, out);
    if (parts.size() != 1) {
      throw CompileError("expected a scalar expression at " +
                         e.loc.to_string());
    }
    return std::move(parts[0]);
  }

  // Lowers to one rvalue per flattened scalar (tuples yield several).
  std::vector<RValuePtr> lower_expr_multi(const Expr& e,
                                          std::vector<InstrPtr>& out) {
    switch (e.kind) {
      case ExprKind::kNumber: {
        std::vector<RValuePtr> v;
        v.push_back(ir::rv_const(BitVec(64, e.number)));
        return v;
      }
      case ExprKind::kBoolLit: {
        std::vector<RValuePtr> v;
        v.push_back(ir::rv_bool(e.bool_value));
        return v;
      }
      case ExprKind::kVar:
        return lower_var(e, out);
      case ExprKind::kUnary: {
        std::vector<RValuePtr> v;
        v.push_back(ir::rv_unary(e.unop, lower_expr(*e.args[0], out)));
        return v;
      }
      case ExprKind::kBinary:
        return lower_binary(e, out);
      case ExprKind::kIndex:
        return lower_index(e, out);
      case ExprKind::kTuple: {
        std::vector<RValuePtr> v;
        for (const auto& a : e.args) {
          auto parts = lower_expr_multi(*a, out);
          for (auto& p : parts) v.push_back(std::move(p));
        }
        return v;
      }
      case ExprKind::kCall:
        return lower_call(e, out);
      case ExprKind::kIn:
        return lower_in(e, out);
    }
    throw CompileError("unsupported expression");
  }

  std::vector<RValuePtr> lower_var(const Expr& e,
                                   std::vector<InstrPtr>& out) {
    const auto loop_it = loop_bindings_.find(e.name);
    if (loop_it != loop_bindings_.end()) {
      std::vector<RValuePtr> v;
      v.push_back(ir::rv_field(loop_it->second));
      return v;
    }
    const Binding& b = binding(e.name, e);
    switch (b.kind) {
      case Binding::Kind::kScalar: {
        std::vector<RValuePtr> v;
        for (FieldId f : b.fields) v.push_back(ir::rv_field(f));
        return v;
      }
      case Binding::Kind::kRegister: {
        const FieldId tmp = new_local(
            ir_.registers[static_cast<std::size_t>(b.reg)].width,
            b.type->is_bool());
        out.push_back(ir::in_reg_read(b.reg, tmp));
        std::vector<RValuePtr> v;
        v.push_back(ir::rv_field(tmp));
        return v;
      }
      case Binding::Kind::kConfig: {
        const auto& fields = config_fields(e.name, b, out);
        std::vector<RValuePtr> v;
        for (FieldId f : fields) v.push_back(ir::rv_field(f));
        return v;
      }
      case Binding::Kind::kList:
        throw CompileError("array '" + e.name +
                           "' used where a scalar is required at " +
                           e.loc.to_string());
      case Binding::Kind::kTable:
        throw CompileError("control dict/set '" + e.name +
                           "' used without a lookup at " + e.loc.to_string());
    }
    throw CompileError("unbound variable '" + e.name + "'");
  }

  std::vector<RValuePtr> lower_binary(const Expr& e,
                                      std::vector<InstrPtr>& out) {
    // Tuple (in)equality lowers to a conjunction over the flattened parts.
    if (e.binop == BinOp::kEq || e.binop == BinOp::kNe) {
      auto lhs = lower_expr_multi(*e.args[0], out);
      auto rhs = lower_expr_multi(*e.args[1], out);
      if (lhs.size() != rhs.size()) {
        throw CompileError("comparison arity mismatch at " +
                           e.loc.to_string());
      }
      if (lhs.size() > 1) {
        RValuePtr acc;
        for (std::size_t i = 0; i < lhs.size(); ++i) {
          auto eq = ir::rv_binary(BinOp::kEq, std::move(lhs[i]),
                                  std::move(rhs[i]));
          acc = acc ? ir::rv_binary(BinOp::kAnd, std::move(acc), std::move(eq))
                    : std::move(eq);
        }
        if (e.binop == BinOp::kNe) acc = ir::rv_unary(UnOp::kNot, std::move(acc));
        std::vector<RValuePtr> v;
        v.push_back(std::move(acc));
        return v;
      }
      std::vector<RValuePtr> v;
      v.push_back(ir::rv_binary(e.binop, std::move(lhs[0]), std::move(rhs[0])));
      return v;
    }
    std::vector<RValuePtr> v;
    v.push_back(ir::rv_binary(e.binop, lower_expr(*e.args[0], out),
                              lower_expr(*e.args[1], out)));
    return v;
  }

  std::vector<RValuePtr> lower_index(const Expr& e,
                                     std::vector<InstrPtr>& out) {
    const Expr& base = *e.args[0];
    const Expr& index = *e.args[1];
    // Dict lookup: emit a table apply right before the current statement.
    if (base.kind == ExprKind::kVar) {
      const Binding* b = find_binding(base.name);
      if (b != nullptr && b->kind == Binding::Kind::kTable) {
        return lower_dict_lookup(*b, base.name, index, out);
      }
      if (b != nullptr && b->kind == Binding::Kind::kList) {
        return lower_list_index(*b, index, out);
      }
      if (b != nullptr && b->kind == Binding::Kind::kConfig &&
          b->config_values > 1) {
        return lower_config_index(base.name, *b, index, out);
      }
    }
    throw CompileError("unsupported index base at " + e.loc.to_string());
  }

  std::vector<RValuePtr> lower_dict_lookup(const Binding& b,
                                           const std::string& name,
                                           const Expr& key,
                                           std::vector<InstrPtr>& out) {
    const ir::Table& table = ir_.tables[static_cast<std::size_t>(b.table)];
    if (table.from_set) {
      throw CompileError("sets support only the 'in' operator: " + name);
    }
    auto keys = lower_expr_multi(key, out);
    if (keys.size() != table.key_widths.size()) {
      throw CompileError("dict key arity mismatch for '" + name + "'");
    }
    std::vector<FieldId> dsts;
    const TypePtr value_t = b.type->value();
    for (std::size_t i = 0; i < table.value_widths.size(); ++i) {
      const bool vb =
          value_t->is_bool() ||
          (value_t->is_tuple() && value_t->members()[i]->is_bool());
      dsts.push_back(new_local(table.value_widths[i], vb));
    }
    const FieldId hit = new_local(1, true);
    out.push_back(ir::in_table(b.table, std::move(keys), dsts, hit));
    std::vector<RValuePtr> v;
    for (FieldId d : dsts) v.push_back(ir::rv_field(d));
    return v;
  }

  std::vector<RValuePtr> lower_list_index(const Binding& b, const Expr& index,
                                          std::vector<InstrPtr>& out) {
    const ir::TeleList& list = ir_.lists[static_cast<std::size_t>(b.list)];
    if (index.kind == ExprKind::kNumber) {
      const int i = static_cast<int>(index.number);
      if (i < 0 || i >= list.capacity) {
        throw CompileError("constant index " + std::to_string(i) +
                           " out of bounds for '" + list.name + "'");
      }
      std::vector<RValuePtr> v;
      v.push_back(ir::rv_field(list.slots[static_cast<std::size_t>(i)]));
      return v;
    }
    // Dynamic index: P4 header stacks cannot be indexed dynamically, so the
    // compiler emits a select chain. Out-of-range reads yield zero.
    RValuePtr idx = lower_expr(index, out);
    const FieldId tmp = new_local(list.elem_width, list.elem_is_bool);
    out.push_back(ir::in_assign(tmp, ir::rv_const(BitVec(1, 0))));
    for (int i = 0; i < list.capacity; ++i) {
      auto cond = ir::rv_binary(
          BinOp::kEq, idx->clone(),
          ir::rv_const(BitVec(32, static_cast<std::uint64_t>(i))));
      std::vector<InstrPtr> then;
      then.push_back(ir::in_assign(
          tmp, ir::rv_field(list.slots[static_cast<std::size_t>(i)])));
      out.push_back(ir::in_if(std::move(cond), std::move(then)));
    }
    std::vector<RValuePtr> v;
    v.push_back(ir::rv_field(tmp));
    return v;
  }

  std::vector<RValuePtr> lower_config_index(const std::string& name,
                                            const Binding& b,
                                            const Expr& index,
                                            std::vector<InstrPtr>& out) {
    const auto& fields = config_fields(name, b, out);
    if (index.kind == ExprKind::kNumber) {
      const std::size_t i = static_cast<std::size_t>(index.number);
      if (i >= fields.size()) {
        throw CompileError("constant index out of bounds for '" + name + "'");
      }
      std::vector<RValuePtr> v;
      v.push_back(ir::rv_field(fields[i]));
      return v;
    }
    RValuePtr idx = lower_expr(index, out);
    const ir::Table& t = ir_.tables[static_cast<std::size_t>(b.table)];
    const FieldId tmp = new_local(t.value_widths[0], false);
    out.push_back(ir::in_assign(tmp, ir::rv_const(BitVec(1, 0))));
    for (std::size_t i = 0; i < fields.size(); ++i) {
      auto cond = ir::rv_binary(
          BinOp::kEq, idx->clone(),
          ir::rv_const(BitVec(32, static_cast<std::uint64_t>(i))));
      std::vector<InstrPtr> then;
      then.push_back(ir::in_assign(tmp, ir::rv_field(fields[i])));
      out.push_back(ir::in_if(std::move(cond), std::move(then)));
    }
    std::vector<RValuePtr> v;
    v.push_back(ir::rv_field(tmp));
    return v;
  }

  std::vector<RValuePtr> lower_call(const Expr& e,
                                    std::vector<InstrPtr>& out) {
    if (e.name == "abs") {
      const Expr& arg = *e.args[0];
      std::vector<RValuePtr> v;
      if (arg.kind == ExprKind::kBinary && arg.binop == BinOp::kSub) {
        // abs(a - b) over unsigned bit vectors means |a - b|; lowering to
        // an absolute-difference primitive avoids wraparound.
        v.push_back(ir::rv_absdiff(lower_expr(*arg.args[0], out),
                                   lower_expr(*arg.args[1], out)));
      } else {
        v.push_back(lower_expr(arg, out));  // unsigned: abs(x) == x
      }
      return v;
    }
    if (e.name == "length") {
      const Expr& arg = *e.args[0];
      if (arg.kind != ExprKind::kVar) {
        throw CompileError("length() requires an array variable");
      }
      const Binding& b = binding(arg.name, arg);
      std::vector<RValuePtr> v;
      if (b.kind == Binding::Kind::kList) {
        v.push_back(ir::rv_field(
            ir_.lists[static_cast<std::size_t>(b.list)].count));
      } else if (b.kind == Binding::Kind::kConfig) {
        v.push_back(ir::rv_const(BitVec(
            32, static_cast<std::uint64_t>(b.config_values))));
      } else {
        throw CompileError("length() requires an array variable");
      }
      return v;
    }
    throw CompileError("unknown function '" + e.name + "'");
  }

  std::vector<RValuePtr> lower_in(const Expr& e, std::vector<InstrPtr>& out) {
    const Expr& hay = *e.args[1];
    if (hay.kind != ExprKind::kVar) {
      throw CompileError("'in' requires a named array or set at " +
                         e.loc.to_string());
    }
    const Binding& b = binding(hay.name, hay);
    if (b.kind == Binding::Kind::kTable &&
        ir_.tables[static_cast<std::size_t>(b.table)].from_set) {
      // Set membership is a table lookup; hit flag is the result.
      auto keys = lower_expr_multi(*e.args[0], out);
      const FieldId hit = new_local(1, true);
      out.push_back(ir::in_table(b.table, std::move(keys), {}, hit));
      std::vector<RValuePtr> v;
      v.push_back(ir::rv_field(hit));
      return v;
    }
    if (b.kind == Binding::Kind::kList) {
      const ir::TeleList& list = ir_.lists[static_cast<std::size_t>(b.list)];
      RValuePtr needle = lower_expr(*e.args[0], out);
      RValuePtr acc = ir::rv_bool(false);
      for (int i = 0; i < list.capacity; ++i) {
        auto in_range = ir::rv_binary(
            BinOp::kLt,
            ir::rv_const(BitVec(32, static_cast<std::uint64_t>(i))),
            ir::rv_field(list.count));
        auto eq = ir::rv_binary(
            BinOp::kEq,
            ir::rv_field(list.slots[static_cast<std::size_t>(i)]),
            needle->clone());
        auto hit = ir::rv_binary(BinOp::kAnd, std::move(in_range),
                                 std::move(eq));
        acc = ir::rv_binary(BinOp::kOr, std::move(acc), std::move(hit));
      }
      std::vector<RValuePtr> v;
      v.push_back(std::move(acc));
      return v;
    }
    if (b.kind == Binding::Kind::kConfig && b.config_values > 1) {
      const auto& fields = config_fields(hay.name, b, out);
      RValuePtr needle = lower_expr(*e.args[0], out);
      RValuePtr acc = ir::rv_bool(false);
      for (FieldId f : fields) {
        auto eq = ir::rv_binary(BinOp::kEq, ir::rv_field(f), needle->clone());
        acc = ir::rv_binary(BinOp::kOr, std::move(acc), std::move(eq));
      }
      std::vector<RValuePtr> v;
      v.push_back(std::move(acc));
      return v;
    }
    throw CompileError("'in' requires an array or set at " +
                       e.loc.to_string());
  }

  // -------------------------------------------------------------------------
  // Statement lowering
  // -------------------------------------------------------------------------

  void lower_block(const Stmt& block, std::vector<InstrPtr>& out) {
    // Config tables apply once, at the start of the pipeline block (the
    // paper realizes non-dict control variables as a default action in a
    // single table executed at the start of the pipeline). Pre-loading here
    // also guarantees the cached locals dominate every use.
    config_cache_.clear();
    std::set<std::string> used;
    collect_vars(block, used);
    for (const auto& name : used) {
      const Binding* b = find_binding(name);
      if (b != nullptr && b->kind == Binding::Kind::kConfig) {
        config_fields(name, *b, out);
      }
    }
    lower_stmt(block, out);
  }

  static void collect_vars(const Expr& e, std::set<std::string>& out) {
    if (e.kind == ExprKind::kVar) out.insert(e.name);
    for (const auto& a : e.args) collect_vars(*a, out);
  }

  static void collect_vars(const Stmt& s, std::set<std::string>& out) {
    for (const auto& child : s.body) collect_vars(*child, out);
    if (s.target) collect_vars(*s.target, out);
    if (s.value) collect_vars(*s.value, out);
    for (const auto& arm : s.arms) {
      collect_vars(*arm.cond, out);
      collect_vars(*arm.body, out);
    }
    if (s.else_body) collect_vars(*s.else_body, out);
    for (const auto& it : s.iterables) collect_vars(*it, out);
    if (s.push_list) collect_vars(*s.push_list, out);
    if (s.push_value) collect_vars(*s.push_value, out);
    for (const auto& r : s.report_args) collect_vars(*r, out);
  }

  void lower_stmt(const Stmt& s, std::vector<InstrPtr>& out) {
    switch (s.kind) {
      case StmtKind::kPass:
        return;
      case StmtKind::kBlock:
        for (const auto& child : s.body) lower_stmt(*child, out);
        return;
      case StmtKind::kAssign:
        lower_assign(s, out);
        return;
      case StmtKind::kIf:
        lower_if(s, 0, out);
        return;
      case StmtKind::kFor:
        lower_for(s, out);
        return;
      case StmtKind::kPush: {
        const Expr& list_expr = *s.push_list;
        if (list_expr.kind != ExprKind::kVar) {
          throw CompileError("push target must be a tele array");
        }
        const Binding& b = binding(list_expr.name, list_expr);
        if (b.kind != Binding::Kind::kList) {
          throw CompileError("push target must be a tele array");
        }
        RValuePtr value = lower_expr(*s.push_value, out);
        out.push_back(ir::in_push(b.list, std::move(value)));
        return;
      }
      case StmtKind::kReport: {
        std::vector<RValuePtr> payload;
        for (const auto& a : s.report_args) {
          auto parts = lower_expr_multi(*a, out);
          for (auto& p : parts) payload.push_back(std::move(p));
        }
        out.push_back(ir::in_report(std::move(payload)));
        return;
      }
      case StmtKind::kReject:
        out.push_back(ir::in_reject());
        return;
    }
  }

  void lower_assign(const Stmt& s, std::vector<InstrPtr>& out) {
    const Expr& target = *s.target;
    // Simple variable target.
    if (target.kind == ExprKind::kVar) {
      const Binding& b = binding(target.name, target);
      if (b.kind == Binding::Kind::kRegister) {
        RValuePtr value = lower_expr(*s.value, out);
        if (s.assign_op != AssignOp::kSet) {
          const FieldId cur = new_local(
              ir_.registers[static_cast<std::size_t>(b.reg)].width);
          out.push_back(ir::in_reg_read(b.reg, cur));
          const BinOp op =
              s.assign_op == AssignOp::kAdd ? BinOp::kAdd : BinOp::kSub;
          value = ir::rv_binary(op, ir::rv_field(cur), std::move(value));
        }
        out.push_back(ir::in_reg_write(b.reg, std::move(value)));
        return;
      }
      if (b.kind == Binding::Kind::kScalar) {
        auto values = lower_expr_multi(*s.value, out);
        if (values.size() != b.fields.size()) {
          throw CompileError("assignment arity mismatch at " +
                             s.loc.to_string());
        }
        for (std::size_t i = 0; i < values.size(); ++i) {
          RValuePtr v = std::move(values[i]);
          if (s.assign_op != AssignOp::kSet) {
            const BinOp op =
                s.assign_op == AssignOp::kAdd ? BinOp::kAdd : BinOp::kSub;
            v = ir::rv_binary(op, ir::rv_field(b.fields[i]), std::move(v));
          }
          out.push_back(ir::in_assign(b.fields[i], std::move(v)));
        }
        return;
      }
      throw CompileError("cannot assign to '" + target.name + "' at " +
                         s.loc.to_string());
    }
    // Array element target: xs[i] = v.
    if (target.kind == ExprKind::kIndex &&
        target.args[0]->kind == ExprKind::kVar) {
      const Binding& b = binding(target.args[0]->name, *target.args[0]);
      if (b.kind != Binding::Kind::kList) {
        throw CompileError("indexed assignment requires a tele array at " +
                           s.loc.to_string());
      }
      const ir::TeleList& list = ir_.lists[static_cast<std::size_t>(b.list)];
      RValuePtr value = lower_expr(*s.value, out);
      const Expr& index = *target.args[1];
      auto make_value = [&](FieldId slot) {
        RValuePtr v = value->clone();
        if (s.assign_op != AssignOp::kSet) {
          const BinOp op =
              s.assign_op == AssignOp::kAdd ? BinOp::kAdd : BinOp::kSub;
          v = ir::rv_binary(op, ir::rv_field(slot), std::move(v));
        }
        return v;
      };
      if (index.kind == ExprKind::kNumber) {
        const std::size_t i = static_cast<std::size_t>(index.number);
        if (i >= list.slots.size()) {
          throw CompileError("constant index out of bounds at " +
                             s.loc.to_string());
        }
        out.push_back(ir::in_assign(list.slots[i], make_value(list.slots[i])));
        return;
      }
      RValuePtr idx = lower_expr(index, out);
      for (std::size_t i = 0; i < list.slots.size(); ++i) {
        auto cond = ir::rv_binary(
            BinOp::kEq, idx->clone(),
            ir::rv_const(BitVec(32, static_cast<std::uint64_t>(i))));
        std::vector<InstrPtr> then;
        then.push_back(
            ir::in_assign(list.slots[i], make_value(list.slots[i])));
        out.push_back(ir::in_if(std::move(cond), std::move(then)));
      }
      return;
    }
    throw CompileError("unsupported assignment target at " +
                       s.loc.to_string());
  }

  void lower_if(const Stmt& s, std::size_t arm, std::vector<InstrPtr>& out) {
    const auto& a = s.arms[arm];
    RValuePtr cond = lower_expr(*a.cond, out);
    std::vector<InstrPtr> then_body;
    lower_stmt(*a.body, then_body);
    std::vector<InstrPtr> else_body;
    if (arm + 1 < s.arms.size()) {
      lower_if(s, arm + 1, else_body);
    } else if (s.else_body) {
      lower_stmt(*s.else_body, else_body);
    }
    out.push_back(
        ir::in_if(std::move(cond), std::move(then_body), std::move(else_body)));
  }

  void lower_for(const Stmt& s, std::vector<InstrPtr>& out) {
    // Gather the iterated containers.
    struct Iter {
      const ir::TeleList* list = nullptr;          // tele array
      const std::vector<FieldId>* config = nullptr;  // control array
    };
    std::vector<Iter> iters;
    int capacity = -1;
    for (const auto& it_expr : s.iterables) {
      if (it_expr->kind != ExprKind::kVar) {
        throw CompileError("for loops iterate named arrays at " +
                           s.loc.to_string());
      }
      const Binding& b = binding(it_expr->name, *it_expr);
      Iter it;
      if (b.kind == Binding::Kind::kList) {
        it.list = &ir_.lists[static_cast<std::size_t>(b.list)];
        capacity = capacity < 0 ? it.list->capacity
                                : std::min(capacity, it.list->capacity);
      } else if (b.kind == Binding::Kind::kConfig && b.config_values > 1) {
        it.config = &config_fields(it_expr->name, b, out);
        capacity = capacity < 0 ? b.config_values
                                : std::min(capacity, b.config_values);
      } else {
        throw CompileError("for loops iterate arrays at " +
                           s.loc.to_string());
      }
      iters.push_back(it);
    }
    if (capacity <= 0) return;

    // Unroll: iteration i executes when every list has more than i elements.
    for (int i = 0; i < capacity; ++i) {
      RValuePtr guard;
      for (const auto& it : iters) {
        if (it.list == nullptr) continue;  // config arrays are always full
        auto cond = ir::rv_binary(
            BinOp::kLt,
            ir::rv_const(BitVec(32, static_cast<std::uint64_t>(i))),
            ir::rv_field(it.list->count));
        guard = guard ? ir::rv_binary(BinOp::kAnd, std::move(guard),
                                      std::move(cond))
                      : std::move(cond);
      }
      // Bind loop variables to this iteration's slots.
      std::vector<std::string> bound;
      for (std::size_t v = 0; v < s.loop_vars.size(); ++v) {
        const auto& it = iters[v];
        const FieldId slot =
            it.list != nullptr
                ? it.list->slots[static_cast<std::size_t>(i)]
                : (*it.config)[static_cast<std::size_t>(i)];
        loop_bindings_[s.loop_vars[v]] = slot;
        bound.push_back(s.loop_vars[v]);
      }
      std::vector<InstrPtr> body;
      lower_stmt(*s.body[0], body);
      for (const auto& name : bound) loop_bindings_.erase(name);
      if (guard) {
        out.push_back(ir::in_if(std::move(guard), std::move(body)));
      } else {
        for (auto& instr : body) out.push_back(std::move(instr));
      }
    }
  }

  // -------------------------------------------------------------------------
  // Helpers
  // -------------------------------------------------------------------------

  const Binding* find_binding(const std::string& name) const {
    const auto it = bindings_.find(name);
    return it == bindings_.end() ? nullptr : &it->second;
  }

  const Binding& binding(const std::string& name, const Expr& at) const {
    const Binding* b = find_binding(name);
    if (b == nullptr) {
      throw CompileError("unbound variable '" + name + "' at " +
                         at.loc.to_string());
    }
    return *b;
  }

  // Loads a config table's values into cached locals (once per block).
  const std::vector<FieldId>& config_fields(const std::string& name,
                                            const Binding& b,
                                            std::vector<InstrPtr>& out) {
    auto it = config_cache_.find(name);
    if (it != config_cache_.end()) return it->second;
    const ir::Table& t = ir_.tables[static_cast<std::size_t>(b.table)];
    std::vector<FieldId> fields;
    for (std::size_t i = 0; i < t.value_widths.size(); ++i) {
      const bool is_bool = b.type->is_bool();
      fields.push_back(new_local(t.value_widths[i], is_bool));
    }
    out.push_back(ir::in_table(b.table, {}, fields, FieldId{}));
    return config_cache_.emplace(name, std::move(fields)).first->second;
  }

  const Program& prog_;
  const SymbolTable& syms_;
  CheckerIR ir_;
  std::map<std::string, Binding> bindings_;
  std::map<std::string, FieldId> loop_bindings_;
  std::map<std::string, std::vector<FieldId>> config_cache_;
  int next_tmp_ = 0;
};

}  // namespace

ir::CheckerIR lower(const Program& program, const SymbolTable& symbols,
                    const std::string& checker_name) {
  Lowerer lowerer(program, symbols, checker_name);
  return lowerer.run();
}

}  // namespace hydra::compiler
