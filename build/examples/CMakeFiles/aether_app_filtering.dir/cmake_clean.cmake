file(REMOVE_RECURSE
  "CMakeFiles/aether_app_filtering.dir/aether_app_filtering.cpp.o"
  "CMakeFiles/aether_app_filtering.dir/aether_app_filtering.cpp.o.d"
  "aether_app_filtering"
  "aether_app_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aether_app_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
