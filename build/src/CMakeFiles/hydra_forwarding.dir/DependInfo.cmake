
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/forwarding/anonymizer.cpp" "src/CMakeFiles/hydra_forwarding.dir/forwarding/anonymizer.cpp.o" "gcc" "src/CMakeFiles/hydra_forwarding.dir/forwarding/anonymizer.cpp.o.d"
  "/root/repo/src/forwarding/ipv4_ecmp.cpp" "src/CMakeFiles/hydra_forwarding.dir/forwarding/ipv4_ecmp.cpp.o" "gcc" "src/CMakeFiles/hydra_forwarding.dir/forwarding/ipv4_ecmp.cpp.o.d"
  "/root/repo/src/forwarding/source_route.cpp" "src/CMakeFiles/hydra_forwarding.dir/forwarding/source_route.cpp.o" "gcc" "src/CMakeFiles/hydra_forwarding.dir/forwarding/source_route.cpp.o.d"
  "/root/repo/src/forwarding/upf.cpp" "src/CMakeFiles/hydra_forwarding.dir/forwarding/upf.cpp.o" "gcc" "src/CMakeFiles/hydra_forwarding.dir/forwarding/upf.cpp.o.d"
  "/root/repo/src/forwarding/vlan_bridge.cpp" "src/CMakeFiles/hydra_forwarding.dir/forwarding/vlan_bridge.cpp.o" "gcc" "src/CMakeFiles/hydra_forwarding.dir/forwarding/vlan_bridge.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hydra_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_p4rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_indus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
