// LTLf tests: the reference evaluator, the LTLf -> Indus translation, and
// the Theorem 3.1 equivalence property (random formulas x random traces,
// the compiled Indus checker agrees with the reference semantics).
#include <gtest/gtest.h>

#include "ltlf/eval.hpp"
#include "ltlf/random_formula.hpp"
#include "ltlf/to_indus.hpp"

namespace hydra::ltlf {
namespace {

using F = Formula;

Trace make_trace(std::initializer_list<std::initializer_list<bool>> rows) {
  Trace t;
  for (const auto& r : rows) t.emplace_back(r);
  return t;
}

// ---------------------------------------------------------------------------
// Reference evaluator
// ---------------------------------------------------------------------------

TEST(LtlfEval, Atom) {
  const auto f = F::make_atom(0);
  EXPECT_TRUE(eval(*f, make_trace({{true}})));
  EXPECT_FALSE(eval(*f, make_trace({{false}})));
}

TEST(LtlfEval, BooleanConnectives) {
  const auto a = F::make_atom(0);
  const auto b = F::make_atom(1);
  const Trace t = make_trace({{true, false}});
  EXPECT_FALSE(eval(*F::make_and(a, b), t));
  EXPECT_TRUE(eval(*F::make_or(a, b), t));
  EXPECT_TRUE(eval(*F::make_not(b), t));
}

TEST(LtlfEval, NextRequiresSuccessor) {
  const auto f = F::make_next(F::make_atom(0));
  EXPECT_TRUE(eval(*f, make_trace({{false}, {true}})));
  EXPECT_FALSE(eval(*f, make_trace({{false}, {false}})));
  // No successor at the last event: X phi is false (finite-trace rule).
  EXPECT_FALSE(eval(*f, make_trace({{true}})));
}

TEST(LtlfEval, UntilSemantics) {
  const auto f = F::make_until(F::make_atom(0), F::make_atom(1));
  // a holds until b at index 2.
  EXPECT_TRUE(eval(*f, make_trace({{true, false},
                                   {true, false},
                                   {false, true}})));
  // b immediately: true regardless of a.
  EXPECT_TRUE(eval(*f, make_trace({{false, true}})));
  // a fails before b appears.
  EXPECT_FALSE(eval(*f, make_trace({{true, false},
                                    {false, false},
                                    {false, true}})));
  // b never appears.
  EXPECT_FALSE(eval(*f, make_trace({{true, false}, {true, false}})));
}

TEST(LtlfEval, GloballyAndEventually) {
  const auto g = F::make_globally(F::make_atom(0));
  const auto e = F::make_eventually(F::make_atom(0));
  EXPECT_TRUE(eval(*g, make_trace({{true}, {true}, {true}})));
  EXPECT_FALSE(eval(*g, make_trace({{true}, {false}, {true}})));
  EXPECT_TRUE(eval(*e, make_trace({{false}, {false}, {true}})));
  EXPECT_FALSE(eval(*e, make_trace({{false}, {false}})));
}

TEST(LtlfEval, PaperLoopFormula) {
  // The paper's "no revisit of A": G !(A && X F A).
  const auto a = [] { return F::make_atom(0); };
  const auto f = F::make_globally(F::make_not(F::make_and(
      a(), F::make_next(F::make_eventually(a())))));
  EXPECT_TRUE(eval(*f, make_trace({{true}, {false}, {false}})));
  EXPECT_TRUE(eval(*f, make_trace({{false}, {true}, {false}})));
  EXPECT_FALSE(eval(*f, make_trace({{true}, {false}, {true}})));
}

TEST(LtlfFormula, Metadata) {
  const auto f = F::make_until(F::make_atom(2), F::make_next(F::make_atom(0)));
  EXPECT_EQ(f->max_atom(), 2);
  EXPECT_EQ(f->depth(), 3);
  EXPECT_EQ(f->to_string(), "(a2 U Xa0)");
}

// ---------------------------------------------------------------------------
// Translation
// ---------------------------------------------------------------------------

TEST(LtlfTranslate, ProducesCompilableIndus) {
  const auto f = F::make_globally(
      F::make_or(F::make_atom(0), F::make_next(F::make_atom(1))));
  const Translation t = to_indus(*f, 6);
  EXPECT_EQ(t.num_atoms, 2);
  // Must compile cleanly.
  const auto compiled = compiler::compile_checker(t.indus_source, "ltlf");
  EXPECT_GT(compiled.p4_loc, 0);
}

TEST(LtlfTranslate, AtomAgreesWithEval) {
  const auto f = F::make_atom(0);
  EXPECT_TRUE(check_trace(*f, make_trace({{true}, {false}})));
  EXPECT_FALSE(check_trace(*f, make_trace({{false}, {true}})));
}

TEST(LtlfTranslate, NextAgreesWithEval) {
  const auto f = F::make_next(F::make_atom(0));
  EXPECT_TRUE(check_trace(*f, make_trace({{false}, {true}})));
  EXPECT_FALSE(check_trace(*f, make_trace({{true}})));
}

TEST(LtlfTranslate, UntilAgreesWithEval) {
  const auto f = F::make_until(F::make_atom(0), F::make_atom(1));
  EXPECT_TRUE(check_trace(*f, make_trace({{true, false},
                                          {true, false},
                                          {false, true}})));
  EXPECT_FALSE(check_trace(*f, make_trace({{true, false},
                                           {false, false},
                                           {false, true}})));
}

TEST(LtlfTranslate, NestedTemporalOperators) {
  // F(a && X b): somewhere, a is immediately followed by b.
  const auto f = F::make_eventually(
      F::make_and(F::make_atom(0), F::make_next(F::make_atom(1))));
  EXPECT_TRUE(check_trace(*f, make_trace({{false, false},
                                          {true, false},
                                          {false, true}})));
  EXPECT_FALSE(check_trace(*f, make_trace({{true, false},
                                           {false, false},
                                           {true, false}})));
}

// ---------------------------------------------------------------------------
// Theorem 3.1 property: reference evaluator == compiled Indus checker.
// ---------------------------------------------------------------------------

struct PropertyCase {
  std::uint64_t seed;
};

class Theorem31 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem31, EvalAndCompiledCheckerAgree) {
  Rng rng(GetParam());
  const int num_atoms = 2;
  const auto f = random_formula(rng, num_atoms, 3);
  const Translation t = to_indus(*f, 6);
  const auto compiled =
      compiler::compile_checker(t.indus_source, "ltlf-prop");
  for (int len = 1; len <= 5; ++len) {
    const Trace trace = random_trace(rng, num_atoms, len);
    const bool expected = eval(*f, trace);
    const bool actual = run_translation(compiled, trace);
    ASSERT_EQ(actual, expected)
        << "formula " << f->to_string() << " trace length " << len
        << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomFormulas, Theorem31,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(Theorem31, DeeperFormulasAgreeOnFixedSeeds) {
  for (std::uint64_t seed : {100u, 200u, 300u, 400u, 500u}) {
    Rng rng(seed);
    const auto f = random_formula(rng, 3, 4);
    const Translation t = to_indus(*f, 5);
    const auto compiled =
        compiler::compile_checker(t.indus_source, "ltlf-deep");
    for (int rep = 0; rep < 3; ++rep) {
      const Trace trace = random_trace(rng, 3, 4);
      ASSERT_EQ(run_translation(compiled, trace), eval(*f, trace))
          << f->to_string() << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace hydra::ltlf
