// Measures the cost of the streaming-export path on the 16-switch fabric
// workload (the same shape as throughput's fabric section): obs off,
// obs on, obs on with the export scheduler armed, and export plus the
// live scrape plane (publisher + HTTP server + a client thread scraping
// /metrics). The export config must stay within a few percent of plain
// observability — the scheduler only fires at virtual-time boundaries
// and the engines hold a single branch per event when it is disarmed.
// The scrape config pays per-tick snapshot publication (full exposition,
// series JSON, and restart snapshot rendered on the commit path) plus the
// HTTP traffic itself; the bench scrapes every 10 ms of wall time against
// sub-millisecond tick cadence, a deliberate upper bound far above the
// 1 Hz production scrape rate.
//
//   $ ./obs_export [--json BENCH_obs_export.json] [--reps N]
//                  [--engine=serial|parallel[:N]] [--workers=N]
//
// The configs run interleaved `--reps` times (default 5) and each reports
// its minimum wall-clock, damping scheduler noise; packet counts and
// captured-window counts are deterministic and identical across reps and
// engines.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <atomic>

#include "cli_parse.hpp"
#include "forwarding/ipv4_ecmp.hpp"
#include "hydra/hydra.hpp"
#include "net/engine.hpp"
#include "net/network.hpp"
#include "net/traffic.hpp"
#include "obs/httpd.hpp"

using namespace hydra;

namespace {

net::EngineKind g_kind = net::EngineKind::kSerial;
int g_workers = 0;

bool degraded_hw(int eff_workers) {
  const unsigned hw = std::thread::hardware_concurrency();
  return g_kind == net::EngineKind::kParallel && hw != 0 &&
         hw < static_cast<unsigned>(eff_workers < 1 ? 1 : eff_workers);
}

struct RunResult {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  double wall_s = 0;
  double hops_per_wall_s = 0;
  std::uint64_t windows = 0;
  std::uint64_t scrapes = 0;
};

// One 16-switch fabric run under all-pairs-style Poisson load; `obs`
// enables the observability layer, `interval_s > 0` additionally arms the
// export scheduler (which itself implies observability), and `scrape`
// additionally arms the live plane + HTTP server with a client thread
// hammering /metrics every 10 ms of wall time. Production scrape cadence
// (1 Hz) is 100x slower, so this bounds the scrape overhead from above.
RunResult run_once(bool obs, double interval_s, double duration,
                   bool scrape = false) {
  auto fabric = net::make_leaf_spine(8, 8, 2);  // 16 switches, 16 hosts
  net::Network net(fabric.topo);
  net.set_engine(g_kind, g_workers);
  fwd::install_leaf_spine_routing(net, fabric);
  const int vf = net.deploy(compile_library_checker("valley_free"));
  configure_valley_free(net, vf, fabric);
  net.deploy(compile_library_checker("loops"));
  if (interval_s > 0) {
    net.set_export_interval(interval_s);
  } else if (obs) {
    net.set_observability(true);
  }
  obs::SnapshotPublisher publisher;
  std::unique_ptr<obs::HttpServer> server;
  std::atomic<bool> scraper_stop{false};
  std::thread scraper;
  std::uint64_t scrapes = 0;
  if (scrape) {
    net.arm_live_obs({});
    net.set_live_publisher(&publisher);
    server = std::make_unique<obs::HttpServer>(publisher, 0);
    scraper = std::thread([&scraper_stop, &scrapes, port = server->port()] {
      while (!scraper_stop.load(std::memory_order_relaxed)) {
        std::string body;
        if (obs::http_get(port, "/metrics", &body)) ++scrapes;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
  }

  std::vector<std::unique_ptr<net::UdpFlood>> flows;
  const int leaves = static_cast<int>(fabric.leaves.size());
  for (int i = 0; i < leaves; ++i) {
    for (int h = 0; h < fabric.hosts_per_leaf; ++h) {
      const int src = fabric.hosts[static_cast<std::size_t>(i)]
                                  [static_cast<std::size_t>(h)];
      const int dst =
          fabric.hosts[static_cast<std::size_t>((i + 1 + h) % leaves)]
                      [static_cast<std::size_t>(h)];
      flows.push_back(std::make_unique<net::UdpFlood>(
          net, src, dst, 2.0, 1000,
          static_cast<std::uint16_t>(6000 + i * 8 + h)));
      flows.back()->set_poisson(static_cast<std::uint64_t>(100 + i * 8 + h));
      flows.back()->start(0.0, duration);
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  net.events().run();
  const auto t1 = std::chrono::steady_clock::now();
  if (scrape) {
    scraper_stop.store(true, std::memory_order_relaxed);
    scraper.join();
    server->stop();
  }

  RunResult r;
  r.scrapes = scrapes;
  for (const auto& f : flows) r.sent += f->packets_sent();
  r.delivered = net.counters().delivered;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.hops_per_wall_s =
      r.wall_s > 0 ? 3.0 * static_cast<double>(r.delivered) / r.wall_s : 0;
  if (net.export_armed()) r.windows = net.export_scheduler_ptr()->captured();
  return r;
}

// Runs every config once per repetition, interleaved, and keeps each
// config's minimum wall-clock. Interleaving matters on shared machines:
// running one config's reps back to back lets a single contention burst
// inflate that config's every sample, which reads as phantom overhead.
struct Config {
  bool obs = false;
  double interval_s = 0;
  bool scrape = false;
};

std::vector<RunResult> run_configs(const std::vector<Config>& configs,
                                   double duration, int reps) {
  std::vector<RunResult> best;
  for (const Config& c : configs) {
    best.push_back(run_once(c.obs, c.interval_s, duration, c.scrape));
  }
  for (int i = 1; i < reps; ++i) {
    for (std::size_t j = 0; j < configs.size(); ++j) {
      const RunResult r = run_once(configs[j].obs, configs[j].interval_s,
                                   duration, configs[j].scrape);
      best[j].wall_s = std::min(best[j].wall_s, r.wall_s);
      best[j].scrapes = std::max(best[j].scrapes, r.scrapes);
    }
  }
  for (RunResult& r : best) {
    r.hops_per_wall_s =
        r.wall_s > 0 ? 3.0 * static_cast<double>(r.delivered) / r.wall_s : 0;
  }
  return best;
}

void write_run(std::FILE* f, const char* name, const RunResult& r,
               const char* trailer) {
  std::fprintf(f,
               "  \"%s\": {\"sent\": %llu, \"delivered\": %llu, "
               "\"wall_s\": %.4f, \"hops_per_wall_s\": %.1f, "
               "\"windows\": %llu}%s\n",
               name, static_cast<unsigned long long>(r.sent),
               static_cast<unsigned long long>(r.delivered), r.wall_s,
               r.hops_per_wall_s, static_cast<unsigned long long>(r.windows),
               trailer);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_obs_export.json";
  int reps = 5;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      long r = 0;
      if (!tools::parse_long_arg(argv[0], "--reps", argv[++i], 1, 1000000,
                                 &r)) {
        return 2;
      }
      reps = static_cast<int>(r);
    } else if (std::strncmp(argv[i], "--engine=", 9) == 0) {
      g_kind = net::parse_engine_kind(argv[i] + 9, &g_workers);
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      long w = 0;
      if (!tools::parse_long_arg(argv[0], "--workers", argv[i] + 10, 1, 1024,
                                 &w)) {
        return 2;
      }
      g_workers = static_cast<int>(w);
    }
  }
  const int eff_workers = g_kind == net::EngineKind::kSerial ? 1 : g_workers;

  const double duration = 0.02;
  const double interval = 2e-4;  // 100 windows over the run
  std::printf("Streaming-export overhead, 16-switch fabric "
              "[engine=%s workers=%d reps=%d]\n\n",
              net::engine_kind_name(g_kind), eff_workers, reps);

  const std::vector<RunResult> runs = run_configs(
      {{false, 0, false},
       {true, 0, false},
       {true, interval, false},
       {true, interval, true}},
      duration, reps);
  const RunResult& off = runs[0];
  const RunResult& on = runs[1];
  const RunResult& exp = runs[2];
  const RunResult& scr = runs[3];

  const double obs_vs_off =
      off.wall_s > 0 ? 100.0 * (on.wall_s - off.wall_s) / off.wall_s : 0;
  const double export_vs_obs =
      on.wall_s > 0 ? 100.0 * (exp.wall_s - on.wall_s) / on.wall_s : 0;
  const double scrape_vs_export =
      exp.wall_s > 0 ? 100.0 * (scr.wall_s - exp.wall_s) / exp.wall_s : 0;

  std::printf("  %-12s %10s %14s %9s\n", "config", "wall_s", "hops/wall-s",
              "windows");
  std::printf("  %-12s %10.3f %14.0f %9llu\n", "obs-off", off.wall_s,
              off.hops_per_wall_s, static_cast<unsigned long long>(off.windows));
  std::printf("  %-12s %10.3f %14.0f %9llu\n", "obs-on", on.wall_s,
              on.hops_per_wall_s, static_cast<unsigned long long>(on.windows));
  std::printf("  %-12s %10.3f %14.0f %9llu\n", "export", exp.wall_s,
              exp.hops_per_wall_s,
              static_cast<unsigned long long>(exp.windows));
  std::printf("  %-12s %10.3f %14.0f %9llu (%llu scrapes)\n", "scrape",
              scr.wall_s, scr.hops_per_wall_s,
              static_cast<unsigned long long>(scr.windows),
              static_cast<unsigned long long>(scr.scrapes));
  std::printf("\n  obs vs off:       %+.2f%%\n  export vs obs:    %+.2f%% %s\n"
              "  scrape vs export: %+.2f%%\n",
              obs_vs_off, export_vs_obs,
              export_vs_obs <= 5.0 ? "(within the 5%% budget)"
                                   : "(EXCEEDS the 5%% budget)",
              scrape_vs_export);

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"obs_export\",\n"
               "  \"engine\": \"%s\",\n  \"workers\": %d,\n"
               "  \"hw_threads\": %u,\n  \"degraded_hw\": %s,\n"
               "  \"duration_s\": %g,\n  \"interval_s\": %g,\n"
               "  \"reps\": %d,\n",
               net::engine_kind_name(g_kind), eff_workers,
               std::thread::hardware_concurrency(),
               degraded_hw(eff_workers) ? "true" : "false", duration, interval,
               reps);
  write_run(f, "obs_off", off, ",");
  write_run(f, "obs_on", on, ",");
  write_run(f, "obs_export", exp, ",");
  write_run(f, "obs_scrape", scr, ",");
  std::fprintf(f, "  \"scrapes\": %llu,\n",
               static_cast<unsigned long long>(scr.scrapes));
  std::fprintf(f,
               "  \"overhead_pct\": {\"obs_vs_off\": %.2f, "
               "\"export_vs_obs\": %.2f, \"scrape_vs_export\": %.2f}\n}\n",
               obs_vs_off, export_vs_obs, scrape_vs_export);
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
