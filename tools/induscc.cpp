// induscc — the Indus checker compiler, as a command-line tool.
//
//   induscc [options] checker.indus
//
//   -o FILE                 write the generated P4 to FILE (default stdout)
//   --name NAME             checker name (default: file stem)
//   --placement MODE        last-hop | every-hop | auto   (default last-hop)
//   --byte-aligned          byte-align telemetry fields on the wire
//   --baseline PROFILE      fabric-upf | simple-router    (default fabric-upf)
//   --resources             print the stage/PHV resource report
//   --layout                print the telemetry wire layout
//   --dump-ir               print the compiler IR listing
//   --loc                   print Indus vs generated P4 line counts
//   -q                      suppress the P4 output (reports only)
//
// Exit status: 0 on success, 1 on compile errors, 2 on usage errors.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "compiler/compile.hpp"
#include "compiler/link_p4.hpp"
#include "compiler/relocate.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: induscc [options] checker.indus\n"
               "  -o FILE           write generated P4 to FILE\n"
               "  --name NAME       checker name\n"
               "  --placement MODE  last-hop | every-hop | auto\n"
               "  --dialect D       tna | v1model\n"
               "  --byte-aligned    byte-align telemetry fields\n"
               "  --baseline P      fabric-upf | simple-router\n"
               "  --link SKELETON   link with a forwarding skeleton\n"
               "  --role R          edge | core (with --link)\n"
               "  --resources       print resource report\n"
               "  --layout          print telemetry wire layout\n"
               "  --dump-ir         print compiler IR\n"
               "  --loc             print line counts\n"
               "  -q                suppress P4 output\n");
}

std::string file_stem(const std::string& path) {
  const auto slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  const auto dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hydra;

  std::string input;
  std::string output;
  std::string name;
  compiler::CompileOptions opts;
  bool want_resources = false;
  bool want_layout = false;
  bool want_ir = false;
  bool want_loc = false;
  bool quiet = false;
  bool link = false;
  std::string link_skeleton = "fabric-upf";
  std::string link_role = "edge";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "induscc: %s expects an argument\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-o") {
      output = next("-o");
    } else if (arg == "--name") {
      name = next("--name");
    } else if (arg == "--placement") {
      const std::string mode = next("--placement");
      if (mode == "last-hop") {
        opts.placement = compiler::CheckPlacement::kLastHop;
      } else if (mode == "every-hop") {
        opts.placement = compiler::CheckPlacement::kEveryHop;
      } else if (mode == "auto") {
        opts.placement = compiler::CheckPlacement::kAuto;
      } else {
        std::fprintf(stderr, "induscc: unknown placement '%s'\n",
                     mode.c_str());
        return 2;
      }
    } else if (arg == "--dialect") {
      const std::string d = next("--dialect");
      if (d == "tna") {
        opts.dialect = compiler::P4Dialect::kTna;
      } else if (d == "v1model") {
        opts.dialect = compiler::P4Dialect::kV1Model;
      } else {
        std::fprintf(stderr, "induscc: unknown dialect '%s'\n", d.c_str());
        return 2;
      }
    } else if (arg == "--byte-aligned") {
      opts.byte_aligned_layout = true;
    } else if (arg == "--baseline") {
      const std::string p = next("--baseline");
      if (p == "fabric-upf") {
        opts.baseline = compiler::fabric_upf_profile();
      } else if (p == "simple-router") {
        opts.baseline = compiler::simple_router_profile();
      } else {
        std::fprintf(stderr, "induscc: unknown baseline '%s'\n", p.c_str());
        return 2;
      }
    } else if (arg == "--link") {
      link = true;
      link_skeleton = next("--link");  // fabric-upf | simple-router
    } else if (arg == "--role") {
      link_role = next("--role");  // edge | core
    } else if (arg == "--resources") {
      want_resources = true;
    } else if (arg == "--layout") {
      want_layout = true;
    } else if (arg == "--dump-ir") {
      want_ir = true;
    } else if (arg == "--loc") {
      want_loc = true;
    } else if (arg == "-q") {
      quiet = true;
    } else if (arg == "-h" || arg == "--help") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "induscc: unknown option '%s'\n", arg.c_str());
      usage();
      return 2;
    } else if (input.empty()) {
      input = arg;
    } else {
      std::fprintf(stderr, "induscc: multiple input files\n");
      return 2;
    }
  }
  if (input.empty()) {
    usage();
    return 2;
  }
  if (name.empty()) name = file_stem(input);

  std::ifstream in(input);
  if (!in) {
    std::fprintf(stderr, "induscc: cannot open '%s'\n", input.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  compiler::CompiledChecker c;
  try {
    c = compiler::compile_checker(buf.str(), name, opts);
  } catch (const hydra::indus::CompileError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  if (want_loc) {
    std::printf("loc: indus=%d p4=%d (%.1fx)\n", c.indus_loc, c.p4_loc,
                static_cast<double>(c.p4_loc) /
                    static_cast<double>(c.indus_loc));
  }
  if (want_resources) {
    std::printf("resources: stages=%d (init=%d tele=%d check=%d) "
                "phv_bits=%d (+%.2f%%) tables=%d registers=%d\n",
                c.resources.checker_stages, c.resources.init_stages,
                c.resources.tele_stages, c.resources.check_stages,
                c.resources.phv_bits, c.resources.phv_percent,
                c.resources.tables, c.resources.registers);
    std::printf("linked vs %s: stages=%d phv=%.2f%% fits=%s\n",
                c.options.baseline.name.c_str(), c.linked.stages,
                c.linked.phv_percent, c.linked.fits ? "yes" : "NO");
    std::printf("placement: %s (%s)\n",
                c.options.placement == compiler::CheckPlacement::kEveryHop
                    ? "every-hop"
                    : "last-hop",
                c.relocation_reason.c_str());
  }
  if (want_layout) {
    std::printf("telemetry layout (%s, %d bytes on the wire):\n",
                c.layout.byte_aligned ? "byte-aligned" : "packed",
                c.layout.wire_bytes);
    for (const auto& e : c.layout.entries) {
      std::printf("  [%4d +%2d] %s\n", e.offset_bits, e.width,
                  c.ir.field(e.field).name.c_str());
    }
  }
  if (want_ir) {
    std::fputs(c.ir.dump().c_str(), stdout);
  }
  std::string code = c.p4_code;
  if (link) {
    compiler::ForwardingSkeleton skel;
    if (link_skeleton == "fabric-upf") {
      skel = compiler::ForwardingSkeleton::fabric_upf();
    } else if (link_skeleton == "simple-router") {
      skel = compiler::ForwardingSkeleton::simple_router();
    } else {
      std::fprintf(stderr, "induscc: unknown skeleton '%s'\n",
                   link_skeleton.c_str());
      return 2;
    }
    const auto role = link_role == "core" ? compiler::SwitchRole::kCore
                                          : compiler::SwitchRole::kEdge;
    code = link_p4(c, skel, role).p4_code;
  }
  if (!quiet) {
    if (output.empty()) {
      std::fputs(code.c_str(), stdout);
    } else {
      std::ofstream out(output);
      if (!out) {
        std::fprintf(stderr, "induscc: cannot write '%s'\n", output.c_str());
        return 2;
      }
      out << code;
    }
  }
  return 0;
}
