#include "net/network.hpp"

#include <stdexcept>

#include "p4rt/tele_codec.hpp"

namespace hydra::net {

Network::Network(Topology topo) : topo_(std::move(topo)) {
  for (const auto& l : topo_.links()) links_.emplace_back(l);
  hosts_.resize(static_cast<std::size_t>(topo_.node_count()));
  programs_.resize(static_cast<std::size_t>(topo_.node_count()));
  for (int i = 0; i < topo_.node_count(); ++i) {
    const NodeSpec& n = topo_.node(i);
    if (n.kind == NodeKind::kHost) {
      hosts_[static_cast<std::size_t>(i)] = Host(i, n.name, n.ip, n.mac);
    }
  }
}

Host& Network::host(int node_id) {
  if (topo_.node(node_id).kind != NodeKind::kHost) {
    throw std::invalid_argument("node " + std::to_string(node_id) +
                                " is not a host");
  }
  return hosts_[static_cast<std::size_t>(node_id)];
}

void Network::set_program(int switch_id,
                          std::shared_ptr<ForwardingProgram> prog) {
  if (topo_.node(switch_id).kind != NodeKind::kSwitch) {
    throw std::invalid_argument("node " + std::to_string(switch_id) +
                                " is not a switch");
  }
  if (obs_ != nullptr && prog != nullptr) {
    prog->attach_metrics(&obs_->registry);
  }
  programs_[static_cast<std::size_t>(switch_id)] = std::move(prog);
}

ForwardingProgram* Network::program(int switch_id) {
  return programs_[static_cast<std::size_t>(switch_id)].get();
}

int Network::deploy(
    std::shared_ptr<const compiler::CompiledChecker> checker) {
  if (!checker) throw std::invalid_argument("deploy: null checker");
  Deployment d;
  d.checker = checker;
  d.interp = std::make_unique<p4rt::Interp>(checker->ir);
  d.tele_wire_bytes = checker->layout.wire_bytes;
  d.per_switch.resize(static_cast<std::size_t>(topo_.node_count()));
  for (int i = 0; i < topo_.node_count(); ++i) {
    if (topo_.node(i).kind == NodeKind::kSwitch) {
      d.per_switch[static_cast<std::size_t>(i)] =
          p4rt::make_checker_state(checker->ir);
    }
  }
  deployments_.push_back(std::move(d));
  if (obs_ != nullptr) wire_deployment_obs(deployments_.back());
  return static_cast<int>(deployments_.size()) - 1;
}

const compiler::CompiledChecker& Network::checker(int deployment) const {
  return *deployments_.at(static_cast<std::size_t>(deployment)).checker;
}

p4rt::Table& Network::checker_table(int deployment, int switch_id,
                                    const std::string& var) {
  Deployment& d = deployments_.at(static_cast<std::size_t>(deployment));
  const int t = d.checker->ir.find_table(var);
  if (t < 0) {
    throw std::invalid_argument("checker '" + d.checker->name +
                                "' has no control table '" + var + "'");
  }
  return d.per_switch.at(static_cast<std::size_t>(switch_id))
      .tables[static_cast<std::size_t>(t)];
}

void Network::set_config(int deployment, int switch_id,
                         const std::string& var,
                         std::vector<BitVec> values) {
  checker_table(deployment, switch_id, var).set_default(std::move(values));
}

void Network::set_config_all(int deployment, const std::string& var,
                             std::vector<BitVec> values) {
  for (int i = 0; i < topo_.node_count(); ++i) {
    if (topo_.node(i).kind == NodeKind::kSwitch) {
      set_config(deployment, i, var, values);
    }
  }
}

void Network::dict_insert_all(int deployment, const std::string& var,
                              const std::vector<BitVec>& key,
                              std::vector<BitVec> value) {
  for (int i = 0; i < topo_.node_count(); ++i) {
    if (topo_.node(i).kind == NodeKind::kSwitch) {
      checker_table(deployment, i, var).insert_exact(key, value);
    }
  }
}

p4rt::RegisterArray& Network::checker_register(int deployment, int switch_id,
                                               const std::string& var) {
  Deployment& d = deployments_.at(static_cast<std::size_t>(deployment));
  const int r = d.checker->ir.find_register(var);
  if (r < 0) {
    throw std::invalid_argument("checker '" + d.checker->name +
                                "' has no sensor '" + var + "'");
  }
  return d.per_switch.at(static_cast<std::size_t>(switch_id))
      .registers[static_cast<std::size_t>(r)];
}

void Network::subscribe_reports(ReportCallback callback) {
  report_callbacks_.push_back(std::move(callback));
}

void Network::emit_report(ReportRecord record) {
  reports_.push_back(std::move(record));
  const ReportRecord& stored = reports_.back();
  for (const auto& cb : report_callbacks_) cb(stored);
}

int Network::pipeline_stages() const {
  int stages = baseline_.stages;
  for (const auto& d : deployments_) {
    stages = std::max(stages, d.checker->resources.checker_stages);
  }
  return stages;
}

double Network::switch_latency() const {
  return base_proc_s_ + per_stage_s_ * pipeline_stages();
}

int Network::packet_wire_bytes(const p4rt::Packet& pkt) const {
  int bytes = pkt.base_wire_bytes();
  for (const auto& f : pkt.tele) {
    if (f.checker >= 0 &&
        f.checker < static_cast<int>(deployments_.size())) {
      bytes += deployments_[static_cast<std::size_t>(f.checker)]
                   .tele_wire_bytes;
    }
  }
  return bytes;
}

void Network::send_from_host(int host_id, p4rt::Packet pkt) {
  Host& h = host(host_id);
  pkt.id = next_packet_id_++;
  pkt.created_at = events_.now();
  if (pkt.eth.src == 0) pkt.eth.src = h.mac();
  ++counters_.injected;
  if (obs_ != nullptr && obs_->sampler && obs_->traces.has_capacity() &&
      obs_->sampler(pkt)) {
    obs_->traces.begin(pkt.id, events_.now(),
                       p4rt::flow_of(pkt).to_string());
  }
  transmit({host_id, 0}, std::move(pkt));
}

void Network::transmit(PortRef from, p4rt::Packet pkt) {
  const int li = topo_.link_index(from);
  if (li < 0) return;  // unconnected port: packet vanishes
  const LinkSpec& spec = topo_.links()[static_cast<std::size_t>(li)];
  const int dir = spec.a == from ? 0 : 1;
  const PortRef dest = dir == 0 ? spec.b : spec.a;
  Link& link = links_[static_cast<std::size_t>(li)];
  const auto arrival =
      link.transmit(dir, events_.now(), packet_wire_bytes(pkt));
  if (!arrival) {
    ++counters_.queue_dropped;
    if (obs_ != nullptr && obs_->traces.tracing()) {
      obs_->traces.finish(pkt.id, obs::PacketFate::kQueueDropped,
                          events_.now());
    }
    return;
  }
  events_.schedule_at(*arrival,
                      [this, dest, p = std::move(pkt)]() mutable {
                        node_receive(dest.node, dest.port, std::move(p));
                      });
}

void Network::node_receive(int node, int port, p4rt::Packet pkt) {
  const NodeSpec& spec = topo_.node(node);
  if (spec.kind == NodeKind::kHost) {
    ++counters_.delivered;
    if (obs_ != nullptr) {
      obs_->delivered_hops.observe(pkt.hops);
      if (obs_->traces.tracing()) {
        obs_->traces.finish(pkt.id, obs::PacketFate::kDelivered,
                            events_.now());
      }
    }
    Host& h = hosts_[static_cast<std::size_t>(node)];
    auto reply = h.deliver(pkt, events_.now());
    if (reply) send_from_host(node, std::move(*reply));
    return;
  }
  // Switch: model pipeline traversal latency, then process.
  events_.schedule_in(switch_latency(),
                      [this, node, port, p = std::move(pkt)]() mutable {
                        switch_process(node, port, std::move(p));
                      });
}

void Network::switch_process(int sw, int in_port, p4rt::Packet pkt) {
  ++pkt.hops;
  HopContext ctx;
  ctx.switch_id = sw;
  ctx.switch_tag = switch_tag(sw);
  ctx.in_port = in_port;
  ctx.first_hop = topo_.host_facing({sw, in_port});
  ctx.wire_bytes = packet_wire_bytes(pkt);

  // Hop trace, recorded only for sampled packets (null otherwise; the
  // untraced cost is one null check plus, while any trace is live, one
  // hash probe on the packet id).
  obs::TraceHop* hop = nullptr;
  if (obs_ != nullptr && obs_->traces.tracing()) {
    if (obs::PacketTrace* tr = obs_->traces.active(pkt.id)) {
      tr->hops.emplace_back();
      hop = &tr->hops.back();
      hop->hop = pkt.hops;
      hop->switch_id = sw;
      hop->switch_name = topo_.node(sw).name;
      hop->time = events_.now();
      hop->in_port = in_port;
      hop->first_hop = ctx.first_hop;
      hop->wire_bytes = ctx.wire_bytes;
    }
  }

  auto resolver = [&pkt, &ctx](const std::string& ann, int width) {
    return resolve_header(pkt, ctx, ann, width);
  };

  // 1. Hydra init at the first hop: create and fill telemetry frames.
  if (ctx.first_hop) {
    for (std::size_t di = 0; di < deployments_.size(); ++di) {
      Deployment& d = deployments_[di];
      d.init_runs.inc();
      d.interp->reset_store(d.scratch_vals);
      std::vector<BitVec>& vals = d.scratch_vals;
      p4rt::ExecOutcome& out = d.scratch_out;
      out.reject = false;
      out.reports.clear();
      d.interp->run(d.checker->ir.init_block, vals,
                    d.per_switch[static_cast<std::size_t>(sw)], resolver,
                    out);
      p4rt::TeleFrame frame;
      frame.checker = static_cast<int>(di);
      d.interp->store_frame(vals, frame);
      if (hop != nullptr) {
        hop->checkers.push_back(
            trace_checker_record(d, &frame, /*before=*/nullptr, out,
                                 /*init=*/true, /*tele=*/false,
                                 /*check=*/false));
      }
      pkt.tele.push_back(std::move(frame));
      d.reports.inc(out.reports.size());
      for (auto& r : out.reports) {
        ReportRecord rec{static_cast<int>(di), d.checker->name, sw,
                         events_.now(), std::move(r)};
        rec.flow = p4rt::flow_of(pkt);
        rec.hop_count = pkt.hops;
        emit_report(std::move(rec));
      }
    }
  }

  // 2. Forwarding.
  ForwardingProgram* prog = programs_[static_cast<std::size_t>(sw)].get();
  ForwardingProgram::Decision decision;
  if (prog != nullptr) {
    decision = prog->process(pkt, in_port, sw);
  } else {
    decision.drop = true;
  }
  ctx.eg_port = decision.eg_port;
  ctx.fwd_drop = decision.drop;
  // A forwarding drop ends the packet's journey: this is its last hop, so
  // the checker still gets to observe (and report) the drop decision.
  ctx.last_hop =
      decision.drop ||
      (decision.eg_port >= 0 && topo_.host_facing({sw, decision.eg_port}));
  ctx.wire_bytes = packet_wire_bytes(pkt);

  // 3./4. Telemetry at every hop; checker at the last hop (or every hop,
  // for checkers compiled with per-hop placement).
  bool rejected = false;
  for (std::size_t di = 0; di < deployments_.size(); ++di) {
    Deployment& d = deployments_[di];
    p4rt::TeleFrame* frame = pkt.frame(static_cast<int>(di));
    if (frame == nullptr) continue;  // entered before deployment; skip
    d.tele_runs.inc();
    std::vector<BitVec> trace_before;  // traced packets only
    if (hop != nullptr) trace_before = frame->values;
    d.interp->reset_store(d.scratch_vals);
    std::vector<BitVec>& vals = d.scratch_vals;
    d.interp->load_frame(*frame, vals);
    p4rt::ExecOutcome& out = d.scratch_out;
    out.reject = false;
    out.reports.clear();
    auto& state = d.per_switch[static_cast<std::size_t>(sw)];
    d.interp->run(d.checker->ir.tele_block, vals, state, resolver, out);
    const bool run_check =
        ctx.last_hop ||
        d.checker->options.placement == compiler::CheckPlacement::kEveryHop;
    if (run_check) {
      d.check_runs.inc();
      d.interp->run(d.checker->ir.check_block, vals, state, resolver, out);
    }
    d.interp->store_frame(vals, *frame);
    if (hop != nullptr) {
      hop->checkers.push_back(
          trace_checker_record(d, frame, &trace_before, out,
                               /*init=*/false, /*tele=*/true, run_check));
    }
    if (wire_validation_) {
      const auto bytes = p4rt::serialize_frame(d.checker->layout,
                                               d.checker->ir, *frame);
      const auto back = p4rt::parse_frame(d.checker->layout, d.checker->ir,
                                          frame->checker, bytes);
      for (std::size_t i = 0; i < frame->values.size(); ++i) {
        if (d.checker->ir.fields[i].space == ir::Space::kTele &&
            !(back.values[i] == frame->values[i])) {
          throw std::logic_error(
              "telemetry wire round-trip mismatch in checker '" +
              d.checker->name + "' field '" + d.checker->ir.fields[i].name +
              "'");
        }
      }
    }
    if (out.reject) d.rejects.inc();
    d.reports.inc(out.reports.size());
    for (auto& r : out.reports) {
      ReportRecord rec{static_cast<int>(di), d.checker->name, sw,
                       events_.now(), std::move(r)};
      rec.flow = p4rt::flow_of(pkt);
      rec.hop_count = pkt.hops;
      emit_report(std::move(rec));
    }
    rejected = rejected || out.reject;
  }

  // Strip telemetry before the packet exits the network.
  if (ctx.last_hop) pkt.tele.clear();

  if (hop != nullptr) {
    hop->eg_port = ctx.eg_port;
    hop->last_hop = ctx.last_hop;
    hop->fwd_drop = ctx.fwd_drop;
    hop->rejected = rejected;
    hop->forwarding = prog != nullptr ? prog->name() : "none";
  }

  if (decision.drop) {
    ++counters_.fwd_dropped;
    if (obs_ != nullptr) {
      obs_->switches[static_cast<std::size_t>(sw)].fwd_dropped.inc();
      if (obs_->traces.tracing()) {
        obs_->traces.finish(pkt.id, obs::PacketFate::kFwdDropped,
                            events_.now());
      }
    }
    return;
  }
  if (rejected) {
    ++counters_.rejected;
    if (obs_ != nullptr) {
      obs_->switches[static_cast<std::size_t>(sw)].rejected.inc();
      if (obs_->traces.tracing()) {
        obs_->traces.finish(pkt.id, obs::PacketFate::kRejected,
                            events_.now());
      }
    }
    return;
  }
  if (obs_ != nullptr) {
    obs_->switches[static_cast<std::size_t>(sw)].forwarded.inc();
  }
  transmit({sw, decision.eg_port}, std::move(pkt));
}

// ---- observability --------------------------------------------------------

obs::CheckerHopRecord Network::trace_checker_record(
    const Deployment& d, const p4rt::TeleFrame* after,
    const std::vector<BitVec>* before, const p4rt::ExecOutcome& out,
    bool init, bool tele, bool check) const {
  obs::CheckerHopRecord rec;
  rec.checker = d.checker->name;
  rec.ran_init = init;
  rec.ran_tele = tele;
  rec.ran_check = check;
  rec.reject = out.reject;
  for (const auto& r : out.reports) {
    std::vector<std::uint64_t> payload;
    payload.reserve(r.size());
    for (const auto& v : r) payload.push_back(v.value());
    rec.reports.push_back(std::move(payload));
  }
  const ir::CheckerIR& ir = d.checker->ir;
  for (std::size_t i = 0; i < ir.fields.size(); ++i) {
    if (ir.fields[i].space != ir::Space::kTele) continue;
    obs::TraceFieldValue fv;
    fv.name = ir.fields[i].name;
    fv.before = before != nullptr && i < before->size()
                    ? (*before)[i].value()
                    : 0;
    fv.after = after != nullptr && i < after->values.size()
                   ? after->values[i].value()
                   : 0;
    rec.tele.push_back(std::move(fv));
  }
  return rec;
}

void Network::wire_deployment_obs(Deployment& d) {
  obs::Registry& reg = obs_->registry;
  const std::string& cn = d.checker->name;
  d.init_runs = reg.counter("checker." + cn + ".init_runs");
  d.tele_runs = reg.counter("checker." + cn + ".tele_runs");
  d.check_runs = reg.counter("checker." + cn + ".check_runs");
  d.rejects = reg.counter("checker." + cn + ".rejects");
  d.reports = reg.counter("checker." + cn + ".reports");

  p4rt::InterpMetrics im;
  im.instructions = reg.counter("p4rt.interp." + cn + ".instructions");
  im.table_lookups = reg.counter("p4rt.interp." + cn + ".table_lookups");
  im.reg_reads = reg.counter("p4rt.interp." + cn + ".reg_reads");
  im.reg_writes = reg.counter("p4rt.interp." + cn + ".reg_writes");
  d.interp->attach_metrics(im);

  // One aggregate counter set per checker table, shared by every switch's
  // instance of that table.
  for (std::size_t t = 0; t < d.checker->ir.tables.size(); ++t) {
    const std::string base =
        "p4rt.table." + cn + "." + d.checker->ir.tables[t].name;
    p4rt::TableMetrics tm;
    tm.hits = reg.counter(base + ".hits");
    tm.misses = reg.counter(base + ".misses");
    tm.cache_hits = reg.counter(base + ".cache_hits");
    for (auto& state : d.per_switch) {
      if (t < state.tables.size()) state.tables[t].attach_metrics(tm);
    }
  }
}

void Network::detach_deployment_obs(Deployment& d) {
  d.init_runs = {};
  d.tele_runs = {};
  d.check_runs = {};
  d.rejects = {};
  d.reports = {};
  d.interp->attach_metrics({});
  for (auto& state : d.per_switch) {
    for (auto& table : state.tables) table.attach_metrics({});
  }
}

void Network::set_observability(bool enabled) {
  if (enabled == (obs_ != nullptr)) return;
  if (!enabled) {
    // Detach every handle before the registry (which owns the slots the
    // handles point into) is destroyed.
    for (auto& d : deployments_) detach_deployment_obs(d);
    for (auto& prog : programs_) {
      if (prog != nullptr) prog->attach_metrics(nullptr);
    }
    obs_.reset();
    return;
  }
  obs_ = std::make_unique<ObsState>();
  obs::Registry& reg = obs_->registry;
  obs_->switches.resize(static_cast<std::size_t>(topo_.node_count()));
  for (int i = 0; i < topo_.node_count(); ++i) {
    if (topo_.node(i).kind != NodeKind::kSwitch) continue;
    const std::string base = "net.switch." + topo_.node(i).name;
    auto& c = obs_->switches[static_cast<std::size_t>(i)];
    c.forwarded = reg.counter(base + ".forwarded");
    c.fwd_dropped = reg.counter(base + ".fwd_dropped");
    c.rejected = reg.counter(base + ".rejected");
  }
  obs_->delivered_hops = reg.histogram(
      "net.delivered.hops", {1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0});
  for (auto& d : deployments_) wire_deployment_obs(d);
  for (auto& prog : programs_) {
    // Shared program instances are wired repeatedly; attach_metrics is
    // idempotent by contract.
    if (prog != nullptr) prog->attach_metrics(&reg);
  }
}

obs::Registry& Network::metrics() {
  if (obs_ == nullptr) {
    throw std::logic_error(
        "observability is off; call set_observability(true) first");
  }
  return obs_->registry;
}

obs::TraceSink& Network::trace_sink() {
  if (obs_ == nullptr) {
    throw std::logic_error(
        "observability is off; call set_observability(true) first");
  }
  return obs_->traces;
}

void Network::set_trace_sampler(TraceSampler sampler) {
  set_observability(true);
  obs_->sampler = std::move(sampler);
}

void Network::trace_next(std::size_t n) {
  set_trace_sampler([left = n](const p4rt::Packet&) mutable {
    if (left == 0) return false;
    --left;
    return true;
  });
}

void Network::collect_metrics() {
  obs::Registry& reg = metrics();
  const double now = events_.now();
  reg.gauge("net.time_s").set(now);
  reg.gauge("net.packets.injected")
      .set(static_cast<double>(counters_.injected));
  reg.gauge("net.packets.delivered")
      .set(static_cast<double>(counters_.delivered));
  reg.gauge("net.packets.rejected")
      .set(static_cast<double>(counters_.rejected));
  reg.gauge("net.packets.fwd_dropped")
      .set(static_cast<double>(counters_.fwd_dropped));
  reg.gauge("net.packets.queue_dropped")
      .set(static_cast<double>(counters_.queue_dropped));

  for (std::size_t li = 0; li < links_.size(); ++li) {
    const LinkSpec& spec = links_[li].spec();
    for (int dir = 0; dir < 2; ++dir) {
      const PortRef from = dir == 0 ? spec.a : spec.b;
      const PortRef to = dir == 0 ? spec.b : spec.a;
      const std::string base = "net.link." + topo_.node(from.node).name +
                               ":" + std::to_string(from.port) + "->" +
                               topo_.node(to.node).name + ":" +
                               std::to_string(to.port);
      const Link::DirStats& s = links_[li].stats(dir);
      reg.gauge(base + ".packets").set(static_cast<double>(s.packets));
      reg.gauge(base + ".bytes").set(static_cast<double>(s.bytes));
      reg.gauge(base + ".drops").set(static_cast<double>(s.drops));
      reg.gauge(base + ".utilization").set(links_[li].utilization(dir, now));
    }
  }

  for (const auto& d : deployments_) {
    for (std::size_t t = 0; t < d.checker->ir.tables.size(); ++t) {
      std::size_t entries = 0;
      for (const auto& state : d.per_switch) {
        if (t < state.tables.size()) entries += state.tables[t].size();
      }
      reg.gauge("p4rt.table." + d.checker->name + "." +
                d.checker->ir.tables[t].name + ".entries")
          .set(static_cast<double>(entries));
    }
  }
}

std::string Network::metrics_json() {
  collect_metrics();
  return obs_->registry.to_json();
}

void Network::reset_observability() {
  if (obs_ == nullptr) return;
  obs_->registry.reset();
  obs_->traces.clear();
}

}  // namespace hydra::net
