file(REMOVE_RECURSE
  "CMakeFiles/hydra_api.dir/hydra/apps.cpp.o"
  "CMakeFiles/hydra_api.dir/hydra/apps.cpp.o.d"
  "CMakeFiles/hydra_api.dir/hydra/hydra.cpp.o"
  "CMakeFiles/hydra_api.dir/hydra/hydra.cpp.o.d"
  "libhydra_api.a"
  "libhydra_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
