// hydrastat — one-shot observability snapshot tool.
//
// Rebuilds a canonical scenario with the observability layer enabled,
// traces a packet of interest, and dumps a combined JSON document
// (metrics snapshot + packet traces) plus a human-readable per-hop
// narrative of each traced packet.
//
//   $ ./hydrastat                          # aether scenario, JSON to stdout
//   $ ./hydrastat --scenario leafspine
//   $ ./hydrastat --out hydrastat.json     # narrative to stdout, JSON to file
//   $ ./hydrastat --engine parallel --workers 4   # replay on the parallel
//                                                 # engine; output identical
//
// Scenarios:
//   aether    — the §5.2 application-filtering bug: a client attaches, the
//               operator updates the slice's rules, and the client's retry
//               of previously-allowed traffic is silently dropped by the
//               UPF. The dropped packet is traced, so the narrative shows
//               the Hydra checker's report at the drop switch.
//   leafspine — a 2x2 leaf-spine running the stateful_firewall checker:
//               one allowed flow is delivered, one unsolicited flow is
//               rejected at its last hop. Both packets are traced.
#include <cstdio>
#include <cstring>
#include <string>

#include <cstdlib>

#include "aether/controller.hpp"
#include "forwarding/ipv4_ecmp.hpp"
#include "forwarding/upf.hpp"
#include "hydra/hydra.hpp"
#include "net/engine.hpp"
#include "net/network.hpp"

using namespace hydra;

namespace {

void aether_scenario(net::Network& net, const net::LeafSpine& fabric) {
  auto routing = fwd::install_leaf_spine_routing(net, fabric);
  auto upf = std::make_shared<fwd::UpfProgram>(routing);
  net.set_program(fabric.leaves[0], upf);
  const int dep = net.deploy(compile_library_checker("application_filtering"));
  net.set_observability(true);

  aether::AetherController ctl(net, upf, dep);
  ctl.define_slice(aether::example_camera_slice(1));

  const std::uint32_t enb = net.topo().node(fabric.hosts[0][0]).ip;
  const std::uint32_t n3 = 0x0a0001fe;
  const std::uint32_t app = net.topo().node(fabric.hosts[1][0]).ip;
  const std::uint32_t ue = 0x0a640001;
  const std::uint32_t teid = 1001;

  auto uplink = [&]() {
    p4rt::Packet inner = p4rt::make_udp(ue, app, 40000, 81, 64);
    net.send_from_host(fabric.hosts[0][0],
                       p4rt::gtpu_encap(inner, enb, n3, teid));
    net.events().run();
  };

  // Attach, verify the flow works, then apply the buggy rule update. A new
  // client attaching afterwards installs the updated rule as a fresh,
  // higher-priority shared application entry — which the pre-update client
  // has no termination for.
  ctl.attach_client(1, {123450001ULL, ue, teid}, enb, n3);
  uplink();
  aether::Slice updated = aether::example_camera_slice(1);
  updated.rules[1].port_hi = 82;
  updated.rules[1].priority = 30;
  ctl.update_slice_rules(1, updated.rules);
  ctl.attach_client(1, {123459999ULL, 0x0a6400f0, 2001}, enb, n3);

  // The old client retries its previously-allowed traffic; trace that
  // packet — the narrative shows the silent UPF drop and Hydra's report.
  net.trace_next(1);
  uplink();
}

void leafspine_scenario(net::Network& net, const net::LeafSpine& fabric) {
  fwd::install_leaf_spine_routing(net, fabric);
  const int dep = net.deploy(compile_library_checker("stateful_firewall"));
  net.set_observability(true);

  const std::uint32_t client = net.topo().node(fabric.hosts[0][0]).ip;
  const std::uint32_t server = net.topo().node(fabric.hosts[1][0]).ip;
  net.dict_insert_all(dep, "allowed", {BitVec(32, client), BitVec(32, server)},
                      {BitVec::from_bool(true)});
  net.dict_insert_all(dep, "allowed", {BitVec(32, server), BitVec(32, client)},
                      {BitVec::from_bool(true)});

  net.trace_next(2);
  // Allowed flow: delivered end to end.
  net.send_from_host(fabric.hosts[0][0],
                     p4rt::make_udp(client, server, 40000, 80, 64));
  net.events().run();
  // Unsolicited flow from a host with no allow entry: rejected at last hop.
  const std::uint32_t intruder = net.topo().node(fabric.hosts[0][1]).ip;
  net.send_from_host(fabric.hosts[0][1],
                     p4rt::make_udp(intruder, server, 40001, 80, 64));
  net.events().run();
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario = "aether";
  std::string out_path;
  net::EngineKind engine = net::EngineKind::kSerial;
  int workers = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scenario") == 0 && i + 1 < argc) {
      scenario = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
      engine = net::parse_engine_kind(argv[++i], &workers);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scenario aether|leafspine] [--out FILE] "
                   "[--engine serial|parallel[:N]] [--workers N]\n",
                   argv[0]);
      return 2;
    }
  }

  auto fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net(fabric.topo);
  // Engine choice never changes what a scenario observes — traces, reports
  // and metrics below are identical by the engine contract.
  net.set_engine(engine, workers);
  if (scenario == "aether") {
    aether_scenario(net, fabric);
  } else if (scenario == "leafspine") {
    leafspine_scenario(net, fabric);
  } else {
    std::fprintf(stderr, "unknown scenario '%s'\n", scenario.c_str());
    return 2;
  }

  for (const auto& trace : net.trace_sink().traces()) {
    std::printf("%s\n", obs::TraceSink::narrative(trace).c_str());
  }
  for (const auto& r : net.reports()) {
    std::printf("report: checker=%s switch=%d hop=%d flow=%s\n",
                r.checker.c_str(), r.switch_id, r.hop_count,
                r.flow.to_string().c_str());
  }

  const std::string doc = "{\n\"scenario\": \"" + scenario +
                          "\",\n\"metrics\": " + net.metrics_json() +
                          ",\n\"traces\": " + net.trace_sink().to_json() +
                          "\n}\n";
  if (out_path.empty()) {
    std::printf("%s", doc.c_str());
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}
