// Rolling checker deploy/undeploy and full-state snapshot/restore tests:
// the deployment-slot lifecycle (64-slot cap, retirement, generation-tagged
// reuse), fail-closed stale-frame accounting through a live-traffic swap,
// the atomic snapshot writer, and the v2 full-state snapshot's restart
// equivalence — a restored network must behave byte-identically to the one
// that wrote the snapshot, across engines and worker counts.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "../tools/cli_parse.hpp"
#include "forwarding/ipv4_ecmp.hpp"
#include "forwarding/upf.hpp"
#include "hydra/hydra.hpp"
#include "net/engine.hpp"
#include "net/network.hpp"
#include "net/traffic.hpp"

namespace hydra {
namespace {

// Value of one labeled sample in a Prometheus exposition; -1 when the
// exact "name{labels}" prefix is absent.
double prom_sample(const std::string& prom, const std::string& prefix) {
  std::size_t pos = 0;
  while ((pos = prom.find(prefix, pos)) != std::string::npos) {
    if (pos == 0 || prom[pos - 1] == '\n') {
      const std::size_t sp = prom.find(' ', pos);
      if (sp == std::string::npos) return -1.0;
      return std::strtod(prom.c_str() + sp + 1, nullptr);
    }
    ++pos;
  }
  return -1.0;
}

// ---- deployment lifecycle --------------------------------------------------

TEST(RollingDeploy, SlotCapFailsLoudlyAndRetiredSlotsAreReused) {
  auto fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net(fabric.topo);
  fwd::install_leaf_spine_routing(net, fabric);
  const auto checker = compile_library_checker("loops");
  for (int i = 0; i < net::Network::kMaxDeployments; ++i) {
    EXPECT_EQ(net.deploy(checker), i);
  }
  // Slot 65 must fail loudly — not wrap, clamp, or silently no-op.
  try {
    net.deploy(checker);
    FAIL() << "65th deploy accepted";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("64"), std::string::npos) << msg;
    EXPECT_NE(msg.find("undeploy"), std::string::npos) << msg;
  }
  // Retiring any slot frees exactly one id, and redeploying reuses it
  // under a fresh generation tag.
  net.undeploy(5);
  EXPECT_FALSE(net.deployment_live(5));
  const std::uint32_t old_gen = 5;  // slots were deployed in order
  const int slot = net.deploy(checker);
  EXPECT_EQ(slot, 5);
  EXPECT_TRUE(net.deployment_live(5));
  EXPECT_EQ(net.deployment_generation(5),
            static_cast<std::uint32_t>(net::Network::kMaxDeployments));
  EXPECT_NE(net.deployment_generation(5), old_gen);
}

TEST(RollingDeploy, RetiredAndOutOfRangeIdsFailWithClearErrors) {
  auto fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net(fabric.topo);
  fwd::install_leaf_spine_routing(net, fabric);
  const int dep = net.deploy(compile_library_checker("stateful_firewall"));
  net.undeploy(dep);

  // A retired slot: every control-plane entry point reports "retired",
  // never UB against the freed per-switch state.
  const int sw = fabric.leaves[0];
  try {
    net.checker_table(dep, sw, "allowed");
    FAIL() << "checker_table on retired slot accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("retired"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(net.checker_register(dep, sw, "allowed"),
               std::invalid_argument);
  EXPECT_THROW(net.set_config_all(dep, "allowed", {BitVec::from_bool(true)}),
               std::invalid_argument);
  EXPECT_THROW(net.undeploy(dep), std::invalid_argument);
  EXPECT_THROW(net.undeploy_rolling(dep), std::invalid_argument);

  // Out-of-range ids (undeploy introduced holes, but ids beyond the slot
  // vector were never valid): "out of range", not a crash.
  for (const int bad : {-1, net.deployment_count(), 1000}) {
    try {
      net.deployment_live(bad);
      FAIL() << "deployment_live(" << bad << ") accepted";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("out of range"),
                std::string::npos)
          << e.what();
    }
    EXPECT_THROW(net.undeploy(bad), std::invalid_argument);
  }
  // The retired checker stays readable for attribution and forensics.
  EXPECT_EQ(net.checker(dep).name, "stateful_firewall");
}

// ---- fail-closed stale frames through a live-traffic swap ------------------

TEST(RollingDeploy, UndeployUnderTrafficCountsStaleFramesFailClosed) {
  auto fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net(fabric.topo);
  fwd::install_leaf_spine_routing(net, fabric);
  net.set_observability(true);
  net.set_export_interval(5e-5);
  const int dep = net.deploy(compile_library_checker("loops"));
  EXPECT_EQ(net.deployment_generation(dep), 0u);

  // Multi-hop cross-leaf traffic so frames are in flight when the sweep
  // lands. The burst at 0.997 ms is the deterministic core: with 2 µs
  // per-hop propagation its packets are stamped at the ingress leaf
  // (~0.999 ms, before the pause at 1 ms) but reach the spine (~1.001 ms)
  // after every switch has swapped — guaranteed stale frames.
  net::UdpFlood flood(net, fabric.hosts[0][0], fabric.hosts[1][1], 0.6, 600);
  flood.set_poisson(13);
  flood.start(0.0, 2e-3);
  const std::uint32_t sip = net.topo().node(fabric.hosts[0][1]).ip;
  const std::uint32_t dip = net.topo().node(fabric.hosts[1][0]).ip;
  net.events().schedule_at(0.997e-3, [&] {
    for (int i = 0; i < 48; ++i) {
      net.send_from_host(fabric.hosts[0][1],
                         p4rt::make_udp(sip, dip,
                                        static_cast<std::uint16_t>(9000 + i),
                                        80, 128));
    }
  });

  net.events().run_until(1e-3);
  const std::uint64_t rejected_before = net.counters().rejected;
  net.undeploy_rolling(dep);
  EXPECT_TRUE(net.swap_in_progress());
  net.events().run();

  // Sweep committed and the slot fully retired.
  EXPECT_FALSE(net.swap_in_progress());
  EXPECT_FALSE(net.deployment_live(dep));

  // Frames stamped with generation 0 that crossed an already-swapped
  // switch were rejected fail-closed AND counted per generation — never
  // dropped silently, never attributed to checker rejects.
  const std::string prom = net.export_prometheus();
  const double stale = prom_sample(
      prom,
      "hydra_checker_stale_generation_rejects_total{property=\"loops\"}");
  EXPECT_GT(stale, 0.0) << prom;
  EXPECT_EQ(net.counters().rejected, rejected_before);

  // Redeploy into the reused slot: a fresh generation, and the retired
  // generation's counter family stays present and monotone.
  const int again = net.deploy_rolling(compile_library_checker("loops"));
  EXPECT_EQ(again, dep);
  EXPECT_EQ(net.deployment_generation(again), 1u);
  net.events().run();  // drain the enable sweep
  EXPECT_FALSE(net.swap_in_progress());
  EXPECT_TRUE(net.deployment_live(again));
  const double stale_after = prom_sample(
      net.export_prometheus(),
      "hydra_checker_stale_generation_rejects_total{property=\"loops\"}");
  EXPECT_GE(stale_after, stale);
}

TEST(RollingDeploy, UndeployRollingDuringDeploySweepFailsLoudly) {
  auto fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net(fabric.topo);
  fwd::install_leaf_spine_routing(net, fabric);
  const int dep = net.deploy_rolling(compile_library_checker("loops"));
  EXPECT_TRUE(net.swap_in_progress());
  EXPECT_THROW(net.undeploy_rolling(dep), std::logic_error);
  net.events().run();
  EXPECT_FALSE(net.swap_in_progress());
  net.undeploy_rolling(dep);
  net.events().run();
  EXPECT_FALSE(net.deployment_live(dep));
}

// ---- snapshot writer + truncation regression -------------------------------

TEST(SnapshotFile, AtomicWriterLeavesNoPartialFiles) {
  const std::string path = ::testing::TempDir() + "rolling_snap.txt";
  const std::string tmp = path + ".tmp";
  std::remove(path.c_str());
  std::remove(tmp.c_str());

  const std::string content = "hydra-obs-snapshot v1\nsim injected 7\nend\n";
  ASSERT_TRUE(tools::write_text_file(path, content));
  std::ifstream in(path, std::ios::binary);
  std::string back((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(back, content);
  // The staging file was renamed away, not left behind.
  EXPECT_FALSE(std::ifstream(tmp).good());
  std::remove(path.c_str());
}

TEST(SnapshotFile, TruncatedSnapshotIsRejectedNotPartiallyApplied) {
  auto fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net(fabric.topo);
  fwd::install_leaf_spine_routing(net, fabric);
  net.set_observability(true);
  net.set_export_interval(5e-5);
  const int dep = net.deploy(compile_library_checker("loops"));
  net::UdpFlood flood(net, fabric.hosts[0][0], fabric.hosts[1][1], 0.5, 400);
  flood.set_poisson(7);
  flood.start(0.0, 1e-3);
  net.events().run();
  net.undeploy(dep);
  net.deploy(compile_library_checker("loops"));
  const std::string snap = net.full_snapshot();
  ASSERT_GT(snap.size(), 200u);

  // A kill mid-write (the scenario the atomic writer prevents, and the
  // .bad quarantine handles): every truncation point must throw, and a
  // fresh scenario must remain deployable afterwards.
  for (const std::size_t cut :
       {snap.size() / 4, snap.size() / 2, snap.size() - 3}) {
    net::Network fresh(fabric.topo);
    fwd::install_leaf_spine_routing(fresh, fabric);
    fresh.set_observability(true);
    fresh.set_export_interval(5e-5);
    EXPECT_THROW(fresh.obs_restore(snap.substr(0, cut)),
                 std::invalid_argument)
        << "cut at " << cut;
    // The failed restore does not wedge the scenario: rebuild-and-deploy
    // (hydrad's .bad fallback path) still works on a fresh network.
    net::Network rebuilt(fabric.topo);
    fwd::install_leaf_spine_routing(rebuilt, fabric);
    rebuilt.set_observability(true);
    EXPECT_EQ(rebuilt.deploy(compile_library_checker("loops")), 0);
  }

  // A v2 snapshot refuses to land on a scenario that already deployed.
  net::Network occupied(fabric.topo);
  fwd::install_leaf_spine_routing(occupied, fabric);
  occupied.set_observability(true);
  occupied.set_export_interval(5e-5);
  occupied.deploy(compile_library_checker("loops"));
  EXPECT_THROW(occupied.obs_restore(snap), std::logic_error);
}

// ---- full-state restart equivalence across engines -------------------------

namespace {

// The hydrad-like scenario: UPF forwarding state on one leaf, observability
// + export + top-K armed, and a deployment history that spans three
// generations (deploy, rolling undeploy, rolling redeploy) under traffic.
struct FullBed {
  net::LeafSpine fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net{fabric.topo};
  std::shared_ptr<fwd::UpfProgram> upf;

  explicit FullBed(net::EngineKind kind, int workers) {
    net.set_engine(kind, workers);
    auto routing = fwd::install_leaf_spine_routing(net, fabric);
    upf = std::make_shared<fwd::UpfProgram>(routing);
    net.set_program(fabric.leaves[0], upf);
    net.set_observability(true);
    net.set_export_interval(1e-4);
    net::Network::LiveObsOptions live;
    live.topk_k = 4;
    net.arm_live_obs(live);
  }

  std::uint32_t ip(int host) const { return net.topo().node(host).ip; }

  // Deterministic cross-leaf bursts at absolute times t0+k*step: the same
  // call produces the same packets whether the clock started at 0 or was
  // restored mid-run.
  void drive(double t0, int rounds) {
    const int a = fabric.hosts[0][0];
    const int b = fabric.hosts[1][1];
    for (int i = 0; i < rounds; ++i) {
      const double t = t0 + 2e-5 * (i + 1);
      net.events().schedule_at(t, [this, a, b, i] {
        net.send_from_host(
            a, p4rt::make_udp(ip(a), ip(b),
                              static_cast<std::uint16_t>(6000 + i % 32), 80,
                              96 + 8 * (i % 4)));
      });
    }
    net.events().run();
  }
};

}  // namespace

TEST(FullSnapshot, ThirdGenerationRestoreIsByteIdenticalAcrossEngines) {
  std::string serial_snap;
  for (const auto& [kind, workers] :
       std::vector<std::pair<net::EngineKind, int>>{
           {net::EngineKind::kSerial, 0},
           {net::EngineKind::kParallel, 1},
           {net::EngineKind::kParallel, 2},
           {net::EngineKind::kParallel, 8}}) {
    const std::string label =
        std::string(net::engine_kind_name(kind)) + ":" +
        std::to_string(workers);

    // Generation history: gen0 loops (stays), gen1 stateful_firewall
    // rolling-deployed mid-traffic then rolling-retired, gen2 reuses the
    // slot. Stale frames from the swap land in the per-generation family.
    FullBed a(kind, workers);
    const int base = a.net.deploy(compile_library_checker("loops"));
    a.drive(0.0, 40);
    const int fw =
        a.net.deploy_rolling(compile_library_checker("stateful_firewall"));
    EXPECT_NE(fw, base);
    a.drive(a.net.events().now(), 40);
    a.net.undeploy_rolling(fw);
    a.drive(a.net.events().now(), 20);
    EXPECT_FALSE(a.net.swap_in_progress());
    const int fw2 =
        a.net.deploy_rolling(compile_library_checker("stateful_firewall"));
    EXPECT_EQ(fw2, fw);
    a.drive(a.net.events().now(), 20);
    EXPECT_EQ(a.net.deployment_generation(fw2), 2u);

    const std::string snap1 = a.net.full_snapshot();
    EXPECT_NE(snap1.find("hydra-obs-snapshot v2"), std::string::npos);
    EXPECT_NE(snap1.find("gen 1 1 stateful_firewall"), std::string::npos)
        << label;

    // Restart equivalence, round 1: a fresh process restores the snapshot
    // and must re-emit it byte for byte.
    FullBed b(kind, workers);
    b.net.obs_restore(snap1);
    EXPECT_EQ(b.net.full_snapshot(), snap1) << label;
    EXPECT_EQ(b.net.events().now(), a.net.events().now()) << label;
    EXPECT_EQ(b.net.deployment_count(), a.net.deployment_count());
    EXPECT_TRUE(b.net.deployment_live(base));
    EXPECT_EQ(b.net.deployment_generation(fw2), 2u);

    // Identical further traffic on the original and the restored network
    // must produce identical verdict behaviour — counters, exposition,
    // forensics, and the next snapshot all byte-equal.
    const double t0 = a.net.events().now();
    a.drive(t0, 30);
    b.drive(t0, 30);
    EXPECT_EQ(b.net.export_prometheus(), a.net.export_prometheus()) << label;
    const std::string snap2 = a.net.full_snapshot();
    EXPECT_EQ(b.net.full_snapshot(), snap2) << label;

    // Round 2 (the third generation of the file itself): restore the
    // resumed run's snapshot and round-trip it again.
    FullBed c(kind, workers);
    c.net.obs_restore(snap2);
    EXPECT_EQ(c.net.full_snapshot(), snap2) << label;

    // And the whole history is engine-invariant: every engine writes the
    // exact bytes the serial engine wrote.
    if (serial_snap.empty()) {
      serial_snap = snap1;
    } else {
      EXPECT_EQ(snap1, serial_snap) << label;
    }
  }
}

TEST(FullSnapshot, RefusesWhileSweepInFlightAndWithoutObs) {
  auto fabric = net::make_leaf_spine(2, 2, 2);
  net::Network bare(fabric.topo);
  fwd::install_leaf_spine_routing(bare, fabric);
  EXPECT_THROW(bare.full_snapshot(), std::logic_error);

  net::Network net(fabric.topo);
  fwd::install_leaf_spine_routing(net, fabric);
  net.set_observability(true);
  net.deploy_rolling(compile_library_checker("loops"));
  EXPECT_TRUE(net.swap_in_progress());
  EXPECT_THROW(net.full_snapshot(), std::logic_error);
  net.events().run();
  EXPECT_FALSE(net.swap_in_progress());
  EXPECT_NO_THROW(net.full_snapshot());
}

}  // namespace
}  // namespace hydra
