
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ltlf_compile.cpp" "bench/CMakeFiles/ltlf_compile.dir/ltlf_compile.cpp.o" "gcc" "bench/CMakeFiles/ltlf_compile.dir/ltlf_compile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hydra_api.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_aether.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_checkers.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_ltlf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_forwarding.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_p4rt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_indus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hydra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
