// indus_export — writes every library checker to <dir>/<name>.indus so the
// shipped properties can be edited and recompiled with induscc.
//
//   indus_export [dir]        (default: current directory)
#include <cstdio>
#include <fstream>
#include <string>

#include "checkers/library.hpp"

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : ".";
  int written = 0;
  for (const auto& spec : hydra::checkers::all_checkers()) {
    const std::string path = dir + "/" + spec.name + ".indus";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "indus_export: cannot write '%s'\n", path.c_str());
      return 1;
    }
    out << "// " << spec.description << "\n" << spec.source;
    ++written;
  }
  std::printf("wrote %d checkers to %s\n", written, dir.c_str());
  return 0;
}
