file(REMOVE_RECURSE
  "libhydra_forwarding.a"
)
