// SLO evaluation over the streaming window series.
//
// evaluate_health folds the most recent N captured windows into one
// aggregate (summed deltas, merged latency buckets) and grades four
// signals against configurable degraded/failing thresholds:
//
//   * reject rate          — checker rejects / injected packets
//   * delivered p99        — interpolated from the merged latency buckets
//   * fault-drop burn rate — fault-plan drops / injected packets
//   * cold-suppression burn— suppressed reports / (reports + suppressed)
//
// The verdict is `ok | degraded | failing` plus machine-readable reasons,
// and is a pure function of (windows, bounds, thresholds): windows are
// captured at virtual-time boundaries on the commit path, so the verdict
// — like everything else on the live plane — is byte-identical across
// engines and worker counts. A threshold <= 0 disables that grade for its
// signal, and an empty window set grades `ok` (nothing measured yet).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/exporter.hpp"

namespace hydra::obs {

enum class HealthStatus { kOk = 0, kDegraded = 1, kFailing = 2 };

const char* health_status_name(HealthStatus s);

struct HealthThresholds {
  // Most recent windows folded into the rolling aggregate.
  std::size_t windows = 10;
  // Rates are dimensionless fractions; latency is seconds.
  double reject_rate_degraded = 0.01;
  double reject_rate_failing = 0.10;
  double latency_p99_degraded_s = 0.0;  // <= 0 disables
  double latency_p99_failing_s = 0.0;
  double fault_drop_rate_degraded = 0.01;
  double fault_drop_rate_failing = 0.10;
  double cold_suppression_degraded = 0.5;
  double cold_suppression_failing = 0.9;
};

struct HealthVerdict {
  HealthStatus status = HealthStatus::kOk;
  std::vector<std::string> reasons;  // empty iff ok
  // Measured signal values over the evaluated span.
  std::size_t windows_evaluated = 0;
  double reject_rate = 0.0;
  double latency_p99_s = 0.0;
  double fault_drop_rate = 0.0;
  double cold_suppression_rate = 0.0;
  // {"status": "...", "reasons": [...], "signals": {...}} — deterministic.
  std::string to_json() const;
};

HealthVerdict evaluate_health(const std::deque<WindowSample>& windows,
                              const std::vector<double>& latency_bounds,
                              const HealthThresholds& thresholds);

}  // namespace hydra::obs
