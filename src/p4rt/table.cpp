#include "p4rt/table.hpp"

#include <algorithm>
#include <stdexcept>

namespace hydra::p4rt {

KeyPattern KeyPattern::exact(BitVec v) {
  KeyPattern p;
  p.mask = BitVec(v.width(), BitVec::mask(v.width()));
  p.value = v;
  return p;
}

KeyPattern KeyPattern::ternary(BitVec v, BitVec m) {
  KeyPattern p;
  p.value = v;
  p.mask = m;
  return p;
}

KeyPattern KeyPattern::wildcard(int width) {
  KeyPattern p;
  p.value = BitVec(width, 0);
  p.mask = BitVec(width, 0);
  return p;
}

KeyPattern KeyPattern::lpm(BitVec v, int prefix_len) {
  KeyPattern p;
  p.value = v;
  p.prefix_len = prefix_len;
  const int w = v.width();
  const std::uint64_t m =
      prefix_len == 0 ? 0 : BitVec::mask(w) << (w - prefix_len);
  p.mask = BitVec(w, m);
  return p;
}

KeyPattern KeyPattern::range(BitVec lo, BitVec hi) {
  KeyPattern p;
  p.lo = lo;
  p.hi = hi;
  return p;
}

Table::Table(std::string name, std::vector<MatchFieldSpec> key_spec)
    : name_(std::move(name)), key_spec_(std::move(key_spec)) {
  for (std::size_t i = 0; i < key_spec_.size(); ++i) {
    if (key_spec_[i].kind == MatchKind::kLpm) {
      // The LPM fast path handles tables with exactly one LPM field (the
      // shape every real pipeline here uses); multi-LPM entries fall back
      // to the residue scan.
      lpm_field_ = lpm_field_ < 0 ? static_cast<int>(i) : -2;
    }
  }
  if (lpm_field_ == -2) lpm_field_ = -1;
}

void Table::insert(TableEntry entry) {
  if (entry.patterns.size() != key_spec_.size()) {
    throw std::invalid_argument("table '" + name_ + "': entry has " +
                                std::to_string(entry.patterns.size()) +
                                " patterns, expected " +
                                std::to_string(key_spec_.size()));
  }
  entries_.push_back(std::move(entry));
  index_entry(static_cast<std::uint32_t>(entries_.size() - 1));
  invalidate_cache();
}

void Table::insert_exact(const std::vector<BitVec>& key,
                         std::vector<BitVec> action_data,
                         const std::string& action, int priority) {
  TableEntry e;
  e.priority = priority;
  e.action = action;
  e.action_data = std::move(action_data);
  for (const auto& k : key) e.patterns.push_back(KeyPattern::exact(k));
  insert(std::move(e));
}

bool Table::pattern_equal(MatchKind kind, const KeyPattern& a,
                          const KeyPattern& b) {
  switch (kind) {
    case MatchKind::kExact:
      // Only the value is consulted by the match; mask/prefix/bounds are
      // incidental to how the pattern was constructed.
      return a.value == b.value;
    case MatchKind::kTernary:
    case MatchKind::kLpm:
      // Same mask and same value under that mask describe the same match
      // set, regardless of don't-care value bits or a stale prefix_len.
      return a.mask == b.mask &&
             (a.value.value() & a.mask.value()) ==
                 (b.value.value() & b.mask.value());
    case MatchKind::kRange:
      return a.lo == b.lo && a.hi == b.hi;
  }
  return false;
}

int Table::remove_if_key_equals(const std::vector<KeyPattern>& patterns) {
  if (patterns.size() != key_spec_.size()) return 0;
  if (dup_pinned_ == 0 && !key_spec_.empty()) {
    bool all_pinned = true;
    std::vector<std::uint64_t> flat(patterns.size(), 0);
    for (std::size_t i = 0; all_pinned && i < patterns.size(); ++i) {
      const FieldClass c = classify_field(patterns[i], key_spec_[i]);
      all_pinned = c.pins_single_key;
      flat[i] = c.bits;
    }
    // Fully-pinned query: it can only pattern_equal a fully-pinned entry
    // (an unpinned entry field has a different mask / real range / partial
    // prefix), and with no duplicate pinned keys that entry — if any — is
    // exactly the one exact_ maps the flattened bits to. O(1).
    if (all_pinned) {
      const auto it = exact_.find(flat);
      if (it == exact_.end()) return 0;
      remove_entry(it->second);
      return 1;
    }
    // Field-0-pinned query on an LPM-free table: every candidate shares
    // the unpinned shape, so it lives in the field-0 residue bucket — scan
    // just that bucket (re-found per removal: remove_entry reindexes the
    // swapped-in entry, which may reshuffle bucket vectors).
    const FieldClass c0 = classify_field(patterns[0], key_spec_[0]);
    if (lpm_field_ < 0 && c0.pins_single_key) {
      int removed = 0;
      for (bool again = true; again;) {
        again = false;
        const auto bit = residue_buckets_.find(c0.bits);
        if (bit == residue_buckets_.end()) break;
        for (const std::uint32_t idx : bit->second) {
          bool same = true;
          const TableEntry& e = entries_[idx];
          for (std::size_t i = 0; same && i < patterns.size(); ++i) {
            same = pattern_equal(key_spec_[i].kind, e.patterns[i],
                                 patterns[i]);
          }
          if (same) {
            remove_entry(idx);
            ++removed;
            again = true;
            break;
          }
        }
      }
      return removed;
    }
  }
  // Reference path: scan, erase, rebuild.
  int removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    bool same = true;
    for (std::size_t i = 0; same && i < patterns.size(); ++i) {
      same = pattern_equal(key_spec_[i].kind, it->patterns[i], patterns[i]);
    }
    if (same) {
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  if (removed > 0) {
    rebuild_index();
    invalidate_cache();
  }
  return removed;
}

void Table::clear() {
  entries_.clear();
  exact_.clear();
  lpm_.clear();
  residue_buckets_.clear();
  residue_any_.clear();
  dup_pinned_ = 0;
  invalidate_cache();
}

bool Table::matches(const KeyPattern& p, MatchKind kind, const BitVec& v) {
  switch (kind) {
    case MatchKind::kExact:
      return v.value() == p.value.value();
    case MatchKind::kTernary:
    case MatchKind::kLpm:
      return (v.value() & p.mask.value()) ==
             (p.value.value() & p.mask.value());
    case MatchKind::kRange:
      return p.lo.value() <= v.value() && v.value() <= p.hi.value();
  }
  return false;
}

std::uint64_t Table::prefix_mask(int width, int len) {
  if (len <= 0) return 0;
  if (len >= width) return BitVec::mask(width);
  return (BitVec::mask(width) << (width - len)) & BitVec::mask(width);
}

std::size_t Table::FlatKeyHash::operator()(
    const std::vector<std::uint64_t>& v) const {
  // SplitMix64-style mixing, folded across the flattened key words.
  std::uint64_t h = 0x9e3779b97f4a7c15ULL + v.size();
  for (std::uint64_t x : v) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    h = (h ^ x) * 0xff51afd7ed558ccdULL;
  }
  return static_cast<std::size_t>(h ^ (h >> 33));
}

Table::FieldClass Table::classify_field(const KeyPattern& p,
                                        const MatchFieldSpec& spec) {
  FieldClass c;
  const std::uint64_t full = BitVec::mask(spec.width);
  switch (spec.kind) {
    case MatchKind::kExact:
      // The reference compares raw values, so the flattened bits are the
      // raw pattern value.
      c.pins_single_key = true;
      c.bits = p.value.value();
      break;
    case MatchKind::kTernary:
      if (p.mask.value() == full) {
        c.pins_single_key = true;
        c.bits = p.value.value() & full;
      }
      break;
    case MatchKind::kLpm: {
      const std::uint64_t m = p.mask.value();
      if (m == full) {
        c.pins_single_key = true;
        c.bits = p.value.value() & full;
        break;
      }
      for (int len = 0; len < spec.width; ++len) {
        if (m == prefix_mask(spec.width, len)) {
          c.lpm_general = true;
          c.prefix = len;
          c.bits = p.value.value() & m;
          break;
        }
      }
      // Non-contiguous hand-built masks fall through to the residue.
      break;
    }
    case MatchKind::kRange:
      if (p.lo.value() == p.hi.value()) {
        c.pins_single_key = true;
        c.bits = p.lo.value();
      }
      break;
  }
  return c;
}

bool Table::better(std::uint32_t a, std::uint32_t b) const {
  const int pa = entries_[a].priority;
  const int pb = entries_[b].priority;
  return pa > pb || (pa == pb && a < b);
}

bool Table::could_beat(std::uint32_t a, std::uint32_t b) const {
  // Identical to better(); kept separate for readability at call sites
  // where `a` has not been matched yet.
  return better(a, b);
}

void Table::index_entry(std::uint32_t idx) {
  const TableEntry& e = entries_[idx];
  bool all_pinned = true;
  int lpm_prefix = -1;  // >= 0 when the LPM field has a general prefix
  std::vector<std::uint64_t> flat(e.patterns.size(), 0);
  for (std::size_t i = 0; i < e.patterns.size(); ++i) {
    const FieldClass c = classify_field(e.patterns[i], key_spec_[i]);
    flat[i] = c.bits;
    if (c.pins_single_key) continue;
    all_pinned = false;
    if (c.lpm_general && static_cast<int>(i) == lpm_field_ &&
        lpm_prefix == -1) {
      lpm_prefix = c.prefix;
    } else {
      lpm_prefix = -2;  // a second unpinned field disqualifies the LPM path
    }
  }

  if (all_pinned) {
    auto [it, fresh] = exact_.emplace(std::move(flat), idx);
    if (!fresh) {
      ++dup_pinned_;
      if (better(idx, it->second)) it->second = idx;
    }
    return;
  }
  if (lpm_prefix >= 0) {
    auto [it, fresh] = lpm_[lpm_prefix].emplace(std::move(flat), idx);
    if (!fresh) {
      ++dup_pinned_;
      if (better(idx, it->second)) it->second = idx;
    }
    return;
  }
  // Residue vectors stay sorted by (priority desc, index asc) so the scan
  // can stop as soon as the best hit dominates the remainder.
  const FieldClass c0 = classify_field(e.patterns[0], key_spec_[0]);
  std::vector<std::uint32_t>& vec =
      c0.pins_single_key ? residue_buckets_[c0.bits] : residue_any_;
  const auto pos = std::upper_bound(
      vec.begin(), vec.end(), idx,
      [this](std::uint32_t a, std::uint32_t b) { return better(a, b); });
  vec.insert(pos, idx);
}

void Table::unindex_entry(std::uint32_t idx) {
  const TableEntry& e = entries_[idx];
  bool all_pinned = true;
  int lpm_prefix = -1;
  std::vector<std::uint64_t> flat(e.patterns.size(), 0);
  for (std::size_t i = 0; i < e.patterns.size(); ++i) {
    const FieldClass c = classify_field(e.patterns[i], key_spec_[i]);
    flat[i] = c.bits;
    if (c.pins_single_key) continue;
    all_pinned = false;
    if (c.lpm_general && static_cast<int>(i) == lpm_field_ &&
        lpm_prefix == -1) {
      lpm_prefix = c.prefix;
    } else {
      lpm_prefix = -2;
    }
  }
  if (all_pinned) {
    exact_.erase(flat);
    return;
  }
  if (lpm_prefix >= 0) {
    const auto it = lpm_.find(lpm_prefix);
    if (it != lpm_.end()) {
      it->second.erase(flat);
      if (it->second.empty()) lpm_.erase(it);
    }
    return;
  }
  const FieldClass c0 = classify_field(e.patterns[0], key_spec_[0]);
  if (c0.pins_single_key) {
    const auto bit = residue_buckets_.find(c0.bits);
    if (bit == residue_buckets_.end()) return;
    std::vector<std::uint32_t>& vec = bit->second;
    vec.erase(std::remove(vec.begin(), vec.end(), idx), vec.end());
    if (vec.empty()) residue_buckets_.erase(bit);
    return;
  }
  residue_any_.erase(
      std::remove(residue_any_.begin(), residue_any_.end(), idx),
      residue_any_.end());
}

void Table::remove_entry(std::uint32_t idx) {
  unindex_entry(idx);
  const auto last = static_cast<std::uint32_t>(entries_.size() - 1);
  if (idx != last) {
    unindex_entry(last);
    entries_[idx] = std::move(entries_[last]);
    entries_.pop_back();
    index_entry(idx);
  } else {
    entries_.pop_back();
  }
  invalidate_cache();
}

void Table::rebuild_index() {
  exact_.clear();
  lpm_.clear();
  residue_buckets_.clear();
  residue_any_.clear();
  dup_pinned_ = 0;
  for (std::uint32_t i = 0; i < entries_.size(); ++i) index_entry(i);
}

void Table::flatten_into(const std::vector<BitVec>& key,
                         std::vector<std::uint64_t>& raw_out,
                         std::vector<std::uint64_t>& flat_out) const {
  raw_out.clear();
  flat_out.clear();
  for (std::size_t i = 0; i < key.size(); ++i) {
    const std::uint64_t raw = key[i].value();
    raw_out.push_back(raw);
    switch (key_spec_[i].kind) {
      case MatchKind::kExact:
      case MatchKind::kRange:
        flat_out.push_back(raw);
        break;
      case MatchKind::kTernary:
      case MatchKind::kLpm:
        flat_out.push_back(raw & BitVec::mask(key_spec_[i].width));
        break;
    }
  }
}

std::int64_t Table::probe_index(const std::vector<BitVec>& key,
                                const std::vector<std::uint64_t>& raw,
                                std::vector<std::uint64_t>& flat) const {
  std::int64_t best = -1;
  // Bucket key for the field-0 residue split, captured before the LPM
  // probe loop below mutates flat[lpm_field_] (which may be field 0).
  const std::uint64_t bucket_key = flat.empty() ? 0 : flat[0];
  if (!exact_.empty()) {
    const auto it = exact_.find(flat);
    if (it != exact_.end()) best = it->second;
  }
  if (!lpm_.empty()) {
    const std::uint64_t r = raw[static_cast<std::size_t>(lpm_field_)];
    const int w = key_spec_[static_cast<std::size_t>(lpm_field_)].width;
    for (const auto& [len, map] : lpm_) {
      flat[static_cast<std::size_t>(lpm_field_)] = r & prefix_mask(w, len);
      const auto it = map.find(flat);
      if (it != map.end() &&
          (best < 0 || better(it->second, static_cast<std::uint32_t>(best)))) {
        best = it->second;
      }
    }
  }
  // Residue: merge the field-0 bucket for this key with the unbucketed
  // entries, in better() order, stopping once the best hit so far
  // dominates both heads. A field-0-pinned entry can only match a key
  // whose flattened field-0 bits equal its own, so scanning one bucket
  // covers every bucketed candidate.
  const std::vector<std::uint32_t>* bucket = nullptr;
  if (!residue_buckets_.empty()) {
    const auto it = residue_buckets_.find(bucket_key);
    if (it != residue_buckets_.end()) bucket = &it->second;
  }
  std::size_t bi = 0;
  std::size_t ai = 0;
  const std::size_t bn = bucket != nullptr ? bucket->size() : 0;
  while (bi < bn || ai < residue_any_.size()) {
    const bool take_bucket =
        bi < bn && (ai >= residue_any_.size() ||
                    better((*bucket)[bi], residue_any_[ai]));
    const std::uint32_t idx = take_bucket ? (*bucket)[bi] : residue_any_[ai];
    if (best >= 0 && !could_beat(idx, static_cast<std::uint32_t>(best))) {
      break;  // sorted vectors: nothing later can win either
    }
    const TableEntry& e = entries_[idx];
    bool hit = true;
    for (std::size_t i = 0; hit && i < key.size(); ++i) {
      hit = matches(e.patterns[i], key_spec_[i].kind, key[i]);
    }
    if (hit) {
      best = idx;  // first match in merge order dominates the rest
      break;
    }
    if (take_bucket) {
      ++bi;
    } else {
      ++ai;
    }
  }
  return best;
}

const TableEntry* Table::lookup(const std::vector<BitVec>& key) const {
  if (key.size() != key_spec_.size()) {
    throw std::invalid_argument("table '" + name_ + "': lookup key arity " +
                                std::to_string(key.size()) + ", expected " +
                                std::to_string(key_spec_.size()));
  }
  flatten_into(key, raw_scratch_, flat_scratch_);
  if (cache_state_ == CacheState::kValid && raw_scratch_ == cache_key_) {
    metrics_.cache_hits.inc();
    if (cache_idx_ < 0) {
      metrics_.misses.inc();
      return nullptr;
    }
    metrics_.hits.inc();
    return &entries_[static_cast<std::size_t>(cache_idx_)];
  }

  const std::int64_t best = probe_index(key, raw_scratch_, flat_scratch_);

  cache_key_ = raw_scratch_;
  cache_idx_ = best;
  cache_state_ = CacheState::kValid;
  if (best < 0) {
    metrics_.misses.inc();
    return nullptr;
  }
  metrics_.hits.inc();
  return &entries_[static_cast<std::size_t>(best)];
}

const TableEntry* Table::lookup_shared(const std::vector<BitVec>& key,
                                       TableScratch& scratch) const {
  if (key.size() != key_spec_.size()) {
    throw std::invalid_argument("table '" + name_ + "': lookup key arity " +
                                std::to_string(key.size()) + ", expected " +
                                std::to_string(key_spec_.size()));
  }
  flatten_into(key, scratch.raw, scratch.flat);
  const std::int64_t best = probe_index(key, scratch.raw, scratch.flat);
  if (best < 0) {
    metrics_.misses.inc();
    return nullptr;
  }
  metrics_.hits.inc();
  return &entries_[static_cast<std::size_t>(best)];
}

const TableEntry* Table::lookup_linear_reference(
    const std::vector<BitVec>& key) const {
  if (key.size() != key_spec_.size()) {
    throw std::invalid_argument("table '" + name_ + "': lookup key arity " +
                                std::to_string(key.size()) + ", expected " +
                                std::to_string(key_spec_.size()));
  }
  const TableEntry* best = nullptr;
  for (const auto& e : entries_) {
    bool hit = true;
    for (std::size_t i = 0; hit && i < key.size(); ++i) {
      hit = matches(e.patterns[i], key_spec_[i].kind, key[i]);
    }
    if (hit && (best == nullptr || e.priority > best->priority)) {
      best = &e;
    }
  }
  return best;
}

void Table::set_default(std::vector<BitVec> action_data) {
  default_data_ = std::move(action_data);
}

}  // namespace hydra::p4rt
