# Empty dependencies file for link_p4_test.
# This may be replaced when dependencies are built.
