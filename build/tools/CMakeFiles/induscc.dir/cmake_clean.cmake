file(REMOVE_RECURSE
  "CMakeFiles/induscc.dir/induscc.cpp.o"
  "CMakeFiles/induscc.dir/induscc.cpp.o.d"
  "induscc"
  "induscc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/induscc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
