// Deterministic pseudo-random source for workload generation and property
// tests. Wraps a SplitMix64-seeded xoshiro256** generator so experiment runs
// are reproducible bit-for-bit across platforms (std::mt19937 distributions
// are not portable across standard libraries).
#pragma once

#include <cstdint>
#include <vector>

namespace hydra {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  std::uint64_t next();

  // Uniform in [0, bound) — bound must be nonzero.
  std::uint64_t below(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

  // Uniform double in [0, 1).
  double uniform();

  bool chance(double p) { return uniform() < p; }

  // Exponentially distributed with the given mean (for Poisson arrivals).
  double exponential(double mean);

  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[below(v.size())];
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace hydra
