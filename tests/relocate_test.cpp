// Tests for the §4.3 check-relocation analysis: which library checkers can
// soundly run per-hop, that kAuto resolves correctly, and that relocated
// checkers behave identically on end-to-end traffic while rejecting
// violations earlier.
#include <gtest/gtest.h>

#include "checkers/library.hpp"
#include "compiler/compile.hpp"
#include "compiler/relocate.hpp"
#include "forwarding/source_route.hpp"
#include "hydra/hydra.hpp"
#include "net/network.hpp"

namespace hydra::compiler {
namespace {

RelocationAnalysis analyze(const std::string& name) {
  const auto c = compile_checker(checkers::checker_by_name(name).source,
                                 std::string(name));
  return analyze_relocation(c.ir);
}

RelocationAnalysis analyze_src(const std::string& src) {
  const auto c = compile_checker(src, "inline");
  return analyze_relocation(c.ir);
}

// --- Library checker verdicts ---------------------------------------------

TEST(Relocate, ValleyFreeIsRelocatable) {
  const auto r = analyze("valley_free");
  EXPECT_TRUE(r.relocatable) << r.reason;
}

TEST(Relocate, LoopsIsRelocatable) {
  const auto r = analyze("loops");
  EXPECT_TRUE(r.relocatable) << r.reason;
}

TEST(Relocate, VlanIsolationIsRelocatable) {
  const auto r = analyze("vlan_isolation");
  EXPECT_TRUE(r.relocatable) << r.reason;
}

TEST(Relocate, EgressPortValidityIsRelocatable) {
  const auto r = analyze("egress_port_validity");
  EXPECT_TRUE(r.relocatable) << r.reason;
}

TEST(Relocate, RoutingValidityIsRelocatable) {
  const auto r = analyze("routing_validity");
  EXPECT_TRUE(r.relocatable) << r.reason;
}

TEST(Relocate, StatefulFirewallIsRelocatable) {
  // `violated` is written only by the init block: stable along the path.
  const auto r = analyze("stateful_firewall");
  EXPECT_TRUE(r.relocatable) << r.reason;
}

TEST(Relocate, WaypointingIsNotRelocatable) {
  // `if (!seen) reject` — seen latches true later; early hops would
  // reject packets that reach the waypoint downstream.
  const auto r = analyze("waypointing");
  EXPECT_FALSE(r.relocatable);
  EXPECT_NE(r.reason.find("negation"), std::string::npos) << r.reason;
}

TEST(Relocate, MultiTenancyIsNotRelocatable) {
  // The check block applies the tenants table (per-switch state).
  const auto r = analyze("multi_tenancy");
  EXPECT_FALSE(r.relocatable);
}

TEST(Relocate, ServiceChainsIsNotRelocatable) {
  // progress != chain_len is not monotone.
  const auto r = analyze("service_chains");
  EXPECT_FALSE(r.relocatable);
}

TEST(Relocate, ApplicationFilteringIsNotRelocatable) {
  // Conditions read the to_be_dropped header, which differs per hop.
  const auto r = analyze("application_filtering");
  EXPECT_FALSE(r.relocatable);
}

TEST(Relocate, PathValidationIsNotRelocatable) {
  const auto r = analyze("source_routing_path_validation");
  EXPECT_FALSE(r.relocatable);
}

// --- Analysis corner cases --------------------------------------------------

TEST(Relocate, EmptyCheckIsRelocatable) {
  EXPECT_TRUE(analyze_src("{ } { } { }").relocatable);
}

TEST(Relocate, LatchResetMakesFieldOther) {
  // The tele block can also RESET the flag: not a latch.
  const auto r = analyze_src(R"(
    tele bool flag = false;
    header bool cond;
    { }
    { if (cond) { flag = true; } else { flag = false; } }
    { if (flag) { reject; } }
  )");
  EXPECT_FALSE(r.relocatable);
  EXPECT_NE(r.reason.find("non-monotonically"), std::string::npos)
      << r.reason;
}

TEST(Relocate, ElseBranchRequiresBothPolarities) {
  const auto r = analyze_src(R"(
    tele bool ok = true;
    header bool cond;
    { }
    { if (cond) { ok = true; } }
    { if (ok) { pass; } else { reject; } }
  )");
  EXPECT_FALSE(r.relocatable);
}

TEST(Relocate, StableFieldMayBeNegated) {
  // Assigned only in init: same value at every hop, any polarity is fine.
  const auto r = analyze_src(R"(
    tele bool allowed = false;
    header bool cond;
    { if (cond) { allowed = true; } }
    { }
    { if (!allowed) { reject; } }
  )");
  EXPECT_TRUE(r.relocatable) << r.reason;
}

TEST(Relocate, ComparisonOnLatchBlocksRelocation) {
  const auto r = analyze_src(R"(
    tele bit<8> count = 0;
    { }
    { count += 1; }
    { if (count == 3) { reject; } }
  )");
  EXPECT_FALSE(r.relocatable);
}

TEST(Relocate, AssignmentInCheckBlocksRelocation) {
  const auto r = analyze_src(R"(
    tele bool a = false;
    tele bool b = false;
    { } { }
    { b = a; if (b) { reject; } }
  )");
  EXPECT_FALSE(r.relocatable);
  EXPECT_NE(r.reason.find("mutates"), std::string::npos) << r.reason;
}

// --- kAuto resolution --------------------------------------------------------

TEST(Relocate, AutoPlacementResolvesPerCheckder) {
  CompileOptions opts;
  opts.placement = CheckPlacement::kAuto;
  const auto vf = compile_checker(
      checkers::checker_by_name("valley_free").source, "vf", opts);
  EXPECT_EQ(vf.options.placement, CheckPlacement::kEveryHop);
  EXPECT_TRUE(vf.relocatable);

  const auto wp = compile_checker(
      checkers::checker_by_name("waypointing").source, "wp", opts);
  EXPECT_EQ(wp.options.placement, CheckPlacement::kLastHop);
  EXPECT_FALSE(wp.relocatable);
}

// --- Behavioural equivalence end to end -------------------------------------

struct SrNet {
  net::LeafSpine fabric = net::make_leaf_spine(2, 2, 2);
  net::Network net{fabric.topo};
  std::shared_ptr<fwd::SourceRouteProgram> prog =
      std::make_shared<fwd::SourceRouteProgram>();
  SrNet() {
    for (int sw : fabric.leaves) net.set_program(sw, prog);
    for (int sw : fabric.spines) net.set_program(sw, prog);
  }
};

TEST(Relocate, RelocatedValleyFreeRejectsSameTraffic) {
  for (auto placement :
       {CheckPlacement::kLastHop, CheckPlacement::kAuto}) {
    SrNet s;
    CompileOptions opts;
    opts.placement = placement;
    auto checker = compile_shared(
        checkers::checker_by_name("valley_free").source, "vf", opts);
    const int dep = s.net.deploy(checker);
    configure_valley_free(s.net, dep, s.fabric);
    // 3 legal, 2 errant.
    auto send = [&](const std::vector<int>& ports) {
      p4rt::Packet p = p4rt::make_udp(1, 2, 3, 4, 64);
      fwd::set_source_route(p, ports);
      s.net.send_from_host(s.fabric.hosts[0][0], std::move(p));
    };
    for (int i = 0; i < 3; ++i) {
      send(fwd::leaf_spine_route(s.fabric, s.fabric.hosts[0][0],
                                 s.fabric.hosts[1][0], i % 2));
    }
    for (int i = 0; i < 2; ++i) {
      send({s.fabric.leaf_uplink_port(0), s.fabric.spine_down_port(1),
            s.fabric.leaf_uplink_port(1), s.fabric.spine_down_port(1),
            s.fabric.leaf_host_port(0)});
    }
    s.net.events().run();
    EXPECT_EQ(s.net.counters().delivered, 3u);
    EXPECT_EQ(s.net.counters().rejected, 2u);
  }
}

TEST(Relocate, PerHopRejectionSavesFabricTraffic) {
  auto run = [](CheckPlacement placement) {
    SrNet s;
    CompileOptions opts;
    opts.placement = placement;
    auto checker = compile_shared(
        checkers::checker_by_name("valley_free").source, "vf", opts);
    const int dep = s.net.deploy(checker);
    configure_valley_free(s.net, dep, s.fabric);
    for (int i = 0; i < 10; ++i) {
      p4rt::Packet p = p4rt::make_udp(1, 2, 3, 4, 400);
      fwd::set_source_route(p, {s.fabric.leaf_uplink_port(0),
                                s.fabric.spine_down_port(1),
                                s.fabric.leaf_uplink_port(1),
                                s.fabric.spine_down_port(1),
                                s.fabric.leaf_host_port(0)});
      s.net.send_from_host(s.fabric.hosts[0][0], std::move(p));
    }
    s.net.events().run();
    std::uint64_t bytes = 0;
    for (std::size_t li = 0; li < s.net.link_count(); ++li) {
      bytes += s.net.link(static_cast<int>(li)).stats(0).bytes +
               s.net.link(static_cast<int>(li)).stats(1).bytes;
    }
    return std::pair{s.net.counters().rejected, bytes};
  };
  const auto [rej_last, bytes_last] = run(CheckPlacement::kLastHop);
  const auto [rej_auto, bytes_auto] = run(CheckPlacement::kAuto);
  EXPECT_EQ(rej_last, 10u);
  EXPECT_EQ(rej_auto, 10u);
  EXPECT_LT(bytes_auto, bytes_last);  // rejected at the second spine visit
}

}  // namespace
}  // namespace hydra::compiler
