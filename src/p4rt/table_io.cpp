#include "p4rt/table_io.hpp"

#include <cctype>
#include <ostream>
#include <istream>
#include <stdexcept>
#include <string>

namespace hydra::p4rt {

namespace {

void put_bitvec(const BitVec& v, std::ostream& out) {
  out << ' ' << v.width() << ' ' << v.value();
}

BitVec get_bitvec(std::istream& in) {
  int width = 0;
  std::uint64_t value = 0;
  if (!(in >> width >> value) || width < 1 || width > BitVec::kMaxWidth)
    throw std::runtime_error("table snapshot: bad bitvec");
  return BitVec(width, value);
}

}  // namespace

void serialize_table(const Table& table, std::ostream& out) {
  out << table.size() << ' ' << table.default_data().size();
  for (const BitVec& v : table.default_data()) put_bitvec(v, out);
  for (const TableEntry& e : table.entries()) {
    for (char c : e.action)
      if (std::isspace(static_cast<unsigned char>(c)))
        throw std::invalid_argument("serialize_table: action name '" +
                                    e.action + "' contains whitespace");
    out << ' ' << e.priority << ' '
        << (e.action.empty() ? "-" : e.action.c_str()) << ' '
        << e.patterns.size();
    for (const KeyPattern& p : e.patterns) {
      put_bitvec(p.value, out);
      put_bitvec(p.mask, out);
      out << ' ' << p.prefix_len;
      put_bitvec(p.lo, out);
      put_bitvec(p.hi, out);
    }
    out << ' ' << e.action_data.size();
    for (const BitVec& v : e.action_data) put_bitvec(v, out);
  }
}

void deserialize_table(Table& table, std::istream& in) {
  std::size_t nentries = 0, ndefault = 0;
  if (!(in >> nentries >> ndefault))
    throw std::runtime_error("table snapshot: bad header");
  table.clear();
  std::vector<BitVec> def;
  def.reserve(ndefault);
  for (std::size_t i = 0; i < ndefault; ++i) def.push_back(get_bitvec(in));
  table.set_default(std::move(def));
  for (std::size_t i = 0; i < nentries; ++i) {
    TableEntry e;
    std::size_t npat = 0;
    if (!(in >> e.priority >> e.action >> npat))
      throw std::runtime_error("table snapshot: bad entry");
    if (e.action == "-") e.action.clear();
    e.patterns.reserve(npat);
    for (std::size_t p = 0; p < npat; ++p) {
      KeyPattern pat;
      pat.value = get_bitvec(in);
      pat.mask = get_bitvec(in);
      if (!(in >> pat.prefix_len))
        throw std::runtime_error("table snapshot: bad pattern");
      pat.lo = get_bitvec(in);
      pat.hi = get_bitvec(in);
      e.patterns.push_back(pat);
    }
    std::size_t nad = 0;
    if (!(in >> nad)) throw std::runtime_error("table snapshot: bad entry");
    e.action_data.reserve(nad);
    for (std::size_t a = 0; a < nad; ++a)
      e.action_data.push_back(get_bitvec(in));
    table.insert(std::move(e));
  }
}

void serialize_registers(const RegisterArray& regs, std::ostream& out) {
  std::size_t divergent = 0;
  for (std::size_t i = 0; i < regs.size(); ++i)
    if (regs.read(i).value() != regs.initial().value()) ++divergent;
  out << divergent;
  for (std::size_t i = 0; i < regs.size(); ++i) {
    const BitVec v = regs.read(i);
    if (v.value() != regs.initial().value())
      out << ' ' << i << ' ' << v.value();
  }
}

void deserialize_registers(RegisterArray& regs, std::istream& in) {
  std::size_t npairs = 0;
  if (!(in >> npairs)) throw std::runtime_error("register snapshot: bad count");
  regs.reset();
  for (std::size_t p = 0; p < npairs; ++p) {
    std::size_t index = 0;
    std::uint64_t value = 0;
    if (!(in >> index >> value) || index >= regs.size())
      throw std::runtime_error("register snapshot: bad cell");
    regs.write(index, BitVec(regs.width(), value));
  }
}

}  // namespace hydra::p4rt
