#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hydra::stats {

void Online::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Online::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Online::stddev() const { return std::sqrt(variance()); }

double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  Online o;
  for (double x : samples) o.add(x);
  s.count = o.count();
  s.mean = o.mean();
  s.stddev = o.stddev();
  s.min = o.min();
  s.max = o.max();
  s.p50 = percentile_sorted(samples, 0.50);
  s.p90 = percentile_sorted(samples, 0.90);
  s.p99 = percentile_sorted(samples, 0.99);
  return s;
}

std::vector<std::pair<double, double>> empirical_cdf(
    std::vector<double> samples, std::size_t points) {
  std::vector<std::pair<double, double>> out;
  if (samples.empty() || points < 2) return out;
  std::sort(samples.begin(), samples.end());
  const double lo = samples.front();
  const double hi = samples.back();
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    const auto it = std::upper_bound(samples.begin(), samples.end(), x);
    const double f = static_cast<double>(it - samples.begin()) /
                     static_cast<double>(samples.size());
    out.emplace_back(x, f);
  }
  return out;
}

namespace {

// Lanczos approximation of log Gamma.
double log_gamma(double x) {
  static const double coef[6] = {76.18009172947146,  -86.50532032941677,
                                 24.01409824083091,  -1.231739572450155,
                                 0.1208650973866179e-2, -0.5395239384953e-5};
  double y = x;
  double tmp = x + 5.5;
  tmp -= (x + 0.5) * std::log(tmp);
  double ser = 1.000000000190015;
  for (double c : coef) ser += c / ++y;
  return -tmp + std::log(2.5066282746310005 * ser / x);
}

// Continued-fraction evaluation for the incomplete beta function.
double beta_cf(double a, double b, double x) {
  constexpr int kMaxIter = 200;
  constexpr double kEps = 3.0e-12;
  constexpr double kFpMin = 1.0e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_bt = log_gamma(a + b) - log_gamma(a) - log_gamma(b) +
                       a * std::log(x) + b * std::log(1.0 - x);
  const double bt = std::exp(ln_bt);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return bt * beta_cf(a, b, x) / a;
  }
  return 1.0 - bt * beta_cf(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double df) {
  if (df <= 0.0) throw std::invalid_argument("t-cdf requires df > 0");
  const double x = df / (df + t * t);
  const double p = 0.5 * incomplete_beta(df / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - p : p;
}

namespace {
TTest finish_test(double t, double df) {
  TTest r;
  r.t = t;
  r.df = df;
  const double tail = 1.0 - student_t_cdf(std::fabs(t), df);
  r.p_value = std::min(1.0, 2.0 * tail);
  return r;
}
}  // namespace

TTest welch_t_test(const std::vector<double>& a,
                   const std::vector<double>& b) {
  if (a.size() < 2 || b.size() < 2) {
    throw std::invalid_argument("welch_t_test requires >= 2 samples per group");
  }
  Online oa, ob;
  for (double x : a) oa.add(x);
  for (double x : b) ob.add(x);
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double va = oa.variance() / na;
  const double vb = ob.variance() / nb;
  const double denom = std::sqrt(va + vb);
  if (denom == 0.0) return finish_test(0.0, na + nb - 2.0);
  const double t = (oa.mean() - ob.mean()) / denom;
  const double df =
      (va + vb) * (va + vb) /
      (va * va / (na - 1.0) + vb * vb / (nb - 1.0));
  return finish_test(t, df);
}

TTest student_t_test(const std::vector<double>& a,
                     const std::vector<double>& b) {
  if (a.size() < 2 || b.size() < 2) {
    throw std::invalid_argument(
        "student_t_test requires >= 2 samples per group");
  }
  Online oa, ob;
  for (double x : a) oa.add(x);
  for (double x : b) ob.add(x);
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double df = na + nb - 2.0;
  const double pooled =
      ((na - 1.0) * oa.variance() + (nb - 1.0) * ob.variance()) / df;
  const double denom = std::sqrt(pooled * (1.0 / na + 1.0 / nb));
  if (denom == 0.0) return finish_test(0.0, df);
  return finish_test((oa.mean() - ob.mean()) / denom, df);
}

}  // namespace hydra::stats
