# Empty dependencies file for aether_bug.
# This may be replaced when dependencies are built.
